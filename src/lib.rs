//! # monadic-ai — Monadic Abstract Interpreters in Rust
//!
//! A reproduction of *Monadic Abstract Interpreters* (Sergey, Devriese,
//! Might, Midtgaard, Darais, Clarke, Piessens — PLDI 2013), packaged as a
//! workspace façade.  The paper shows that once a small-step semantics is
//! refactored into monadic normal form against a small semantic interface,
//! the **monad** — together with a handful of orthogonal type-class-like
//! parameters — determines every classical property of a static analysis:
//! non-determinism, polyvariance, context-sensitivity, abstract counting,
//! abstract garbage collection and heap cloning vs. shared-store widening.
//!
//! The workspace members are re-exported here:
//!
//! * [`core`] (`mai-core`) — the language-independent framework: GAT-based
//!   monads ([`core::monad`]), lattices and Kleene iteration
//!   ([`core::lattice`]), polyvariance contexts ([`core::addr`]), abstract
//!   stores and counting ([`core::store`]), abstract GC ([`core::gc`]) and
//!   the collecting-semantics domains ([`core::collect`]).
//! * [`cps`] (`mai-cps`) — the CPS λ-calculus the paper develops in full.
//! * [`lambda`] (`mai-lambda`) — the direct-style λ-calculus on a CESK
//!   machine.
//! * [`fj`] (`mai-fj`) — Featherweight Java.
//!
//! ## Quick start
//!
//! ```rust
//! use monadic_ai::cps::{analyse_mono, flow_map_of_store, parse_program};
//!
//! let program = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
//! let result = analyse_mono(&program);
//! let flows = flow_map_of_store(result.store());
//! assert_eq!(flows[&monadic_ai::core::Name::from("x")].len(), 1);
//! ```
//!
//! See the `examples/` directory for larger walk-throughs and `mai-bench`
//! for the experiment harness described in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mai_core as core;
pub use mai_cps as cps;
pub use mai_fj as fj;
pub use mai_lambda as lambda;
