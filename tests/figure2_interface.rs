//! F2/E1 — the semantic interface of Figure 2: one `mnext`, many monads.
//!
//! The same transition function drives the concrete interpreter (a
//! deterministic state monad over a real heap), the fresh-address concrete
//! collecting semantics and the abstract interpreters; on terminating,
//! deterministic programs they must agree about what the program does.

use monadic_ai::cps::programs::{identity_application, omega, standard_corpus};
use monadic_ai::cps::{
    analyse_concrete_collecting, analyse_kcfa_shared, analyse_mono, interpret_with_limit, PState,
};

#[test]
fn concrete_interpreter_and_collecting_semantics_agree_on_termination() {
    // The corpus' terminating programs halt within a few hundred steps; the
    // divergent ones (omega) make the fresh-address heap grow every step, so
    // a large step budget costs quadratic time.  2k steps / 128 Kleene
    // iterations classify the whole corpus correctly and keep the suite fast.
    for (name, program) in standard_corpus() {
        let concrete = interpret_with_limit(&program, 2_000);
        let collecting = analyse_concrete_collecting(&program, 128);
        let collecting_halts = collecting
            .value()
            .distinct_states()
            .iter()
            .any(PState::is_final);
        assert_eq!(
            concrete.halted(),
            collecting_halts,
            "{name}: concrete interpreter and concrete collecting semantics disagree"
        );
        // A halting verdict must never rest on a truncated iterate: when
        // the concrete run halts, the collecting run must actually have
        // converged (the divergent programs are the only ones allowed to
        // exhaust the Kleene bound).
        assert!(
            collecting.converged() || !concrete.halted(),
            "{name}: halting classified from a truncated Kleene iterate"
        );
    }
}

#[test]
fn every_abstract_interpreter_covers_the_concrete_run() {
    // If the concrete run halts, the abstract analyses must keep an exit
    // state reachable (soundness of the abstraction).
    for (name, program) in standard_corpus() {
        let concrete = interpret_with_limit(&program, 2_000);
        if !concrete.halted() {
            continue;
        }
        assert!(
            analyse_mono(&program)
                .distinct_states()
                .iter()
                .any(PState::is_final),
            "{name}: 0CFA lost the final state"
        );
        assert!(
            analyse_kcfa_shared::<1>(&program)
                .distinct_states()
                .iter()
                .any(PState::is_final),
            "{name}: 1CFA lost the final state"
        );
    }
}

#[test]
fn the_abstract_semantics_is_finite_even_when_the_concrete_one_diverges() {
    let divergent = omega();
    assert!(!interpret_with_limit(&divergent, 2_000).halted());
    // The abstract interpreter terminates (Kleene iteration over a finite
    // lattice) even though the program does not.
    let result = analyse_mono(&divergent);
    assert!(!result.is_empty());
    assert!(!result.distinct_states().iter().any(PState::is_final));
}

#[test]
fn the_concrete_interpreter_is_deterministic() {
    let program = identity_application();
    let a = interpret_with_limit(&program, 10_000);
    let b = interpret_with_limit(&program, 10_000);
    assert_eq!(a.halted(), b.halted());
    assert_eq!(a.state(), b.state());
}
