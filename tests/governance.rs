//! Governance of the engines: budgets, cancellation, resumable partials,
//! panic containment and the degradation ladder.
//!
//! The suite pins four properties over the *same committed corpus* the
//! differential suite replays (`tests/common`):
//!
//! 1. **Governed-off parity** — `Budget::unlimited()` runs are
//!    byte-identical to the classic entry points, fixpoint *and* every
//!    deterministic work counter, sequentially and at every committed
//!    thread count.  The governed solver is the single implementation,
//!    so this pins the "wrapper passes unlimited" contract.
//! 2. **Resume soundness** — an `Exhausted` partial's seed, resumed (on
//!    the same driver or any other), converges onto exactly the one-shot
//!    fixpoint; chaining arbitrarily many tight budgets changes nothing.
//! 3. **Cancel latency** — a cancellation raised *inside* a step is
//!    observed within one round (sequential) or one epoch (elastic),
//!    asserted from traced telemetry, not timing.
//! 4. **Fault containment** (`--features fault-inject`) — deterministically
//!    injected worker panics surface as clean [`EngineError`]s, never
//!    deadlocks, and the degradation ladder still produces the
//!    byte-identical sequential fixpoint.

use std::collections::BTreeSet;

use mai_core::engine::{
    Budget, CancelToken, DirectCollecting, EngineStats, ExhaustReason, Outcome, ParallelCollecting,
    ParallelConfig, SolveFrom,
};
use mai_core::store::BasicStore;
use mai_core::telemetry::{GovernorTraceKind, TraceBuffer};
use mai_core::KCallCtx;
use mai_lambda::analysis as la;
use mai_lambda::Term;

mod common;
use common::{term_from_seed, COMMITTED_SEEDS, PARALLEL_THREADS};

/// Zeroes the timing gauges (`steal_events`, `shard_imbalance`) and the
/// fold-order-dependent `store_bytes_shared` sample, which legitimately
/// vary between parallel runs — the same exemptions the differential
/// suite's counter parity grants.  Everything else must match exactly.
fn deterministic_counters(stats: EngineStats) -> EngineStats {
    let mut s = stats;
    s.steal_events = 0;
    s.shard_imbalance = 0;
    s.store_bytes_shared = 0;
    s
}

/// The resume chain is provably finite (each resumed round steps at least
/// one state of a finite abstract space), but a regression that dropped
/// the seed's accumulated store could loop — bound the chain defensively.
const MAX_RESUME_CHAIN: usize = 10_000;

// ---------------------------------------------------------------------------
// Governed-off parity
// ---------------------------------------------------------------------------

#[test]
fn unlimited_budget_is_byte_identical_to_the_classic_engines() {
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        let (direct, direct_stats) = la::analyse_kcfa_shared_direct::<1>(&term);
        let (outcome, stats) = la::analyse_kcfa_shared_governed::<1>(&term, &Budget::unlimited());
        assert!(
            outcome.is_complete(),
            "unlimited budget exhausted on seed {seed:#x}"
        );
        assert_eq!(
            outcome.into_complete(),
            direct,
            "governed-off CESK fixpoint differs on seed {seed:#x}"
        );
        assert_eq!(
            stats, direct_stats,
            "governed-off CESK work counters differ on seed {seed:#x}"
        );

        let program = mai_cps::cps_convert(&term);
        let (c_direct, c_direct_stats) =
            mai_cps::analysis::analyse_kcfa_shared_direct::<1>(&program);
        let (c_outcome, c_stats) =
            mai_cps::analysis::analyse_kcfa_shared_governed::<1>(&program, &Budget::unlimited());
        assert_eq!(
            c_outcome.into_complete(),
            c_direct,
            "governed-off CPS fixpoint differs on seed {seed:#x}"
        );
        assert_eq!(
            c_stats, c_direct_stats,
            "governed-off CPS work counters differ on seed {seed:#x}"
        );
    }
}

#[test]
fn unlimited_budget_is_byte_identical_to_the_classic_parallel_driver() {
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        for threads in PARALLEL_THREADS {
            let (classic, classic_stats) = la::analyse_kcfa_shared_parallel::<1>(&term, threads);
            let (outcome, stats) = la::analyse_kcfa_shared_parallel_governed::<1>(
                &term,
                threads,
                &Budget::unlimited(),
            )
            .expect("no worker fault without an installed fault plan");
            assert_eq!(
                outcome.into_complete(),
                classic,
                "governed-off parallel fixpoint differs on seed {seed:#x} at {threads} threads"
            );
            assert_eq!(
                deterministic_counters(stats),
                deterministic_counters(classic_stats),
                "governed-off parallel work counters differ on seed {seed:#x} at {threads} threads"
            );
        }
    }
}

#[test]
fn unlimited_budget_matches_the_classic_elastic_driver_fixpoint() {
    // Elastic work counters are timing-dependent by design (see the
    // differential suite), so only fixpoint identity is demanded here.
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        let (direct, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        let config = ParallelConfig {
            threads: 2,
            epochs: 4,
        };
        let (outcome, _) =
            la::analyse_kcfa_shared_elastic_governed::<1>(&term, config, &Budget::unlimited())
                .expect("no worker fault without an installed fault plan");
        assert_eq!(
            outcome.into_complete(),
            direct,
            "governed-off elastic fixpoint differs on seed {seed:#x}"
        );
    }
}

// ---------------------------------------------------------------------------
// Resume soundness
// ---------------------------------------------------------------------------

/// Chains `analyse_kcfa_shared_resume` under `budget` until completion,
/// starting from an already-obtained outcome.
fn drain_resume_chain(
    mut outcome: Outcome<la::KCeskShared<1>, la::KCeskSeed<1>>,
    budget: &Budget,
    ctx: &str,
) -> la::KCeskShared<1> {
    for _ in 0..MAX_RESUME_CHAIN {
        match outcome {
            Outcome::Complete(value) => return value,
            Outcome::Exhausted {
                reason,
                resume_seed,
                ..
            } => {
                assert_eq!(reason, ExhaustReason::RoundBudget, "{ctx}: wrong reason");
                outcome = la::analyse_kcfa_shared_resume::<1>(*resume_seed, budget).0;
            }
        }
    }
    panic!("{ctx}: resume chain failed to converge in {MAX_RESUME_CHAIN} links")
}

#[test]
fn exhausted_partials_resume_onto_the_one_shot_fixpoint() {
    let tight = Budget::unlimited().with_max_rounds(1);
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        let (oracle, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        let ctx = format!("seed {seed:#x}");

        // One tight round, then a single unlimited resume.
        let (first, _) = la::analyse_kcfa_shared_governed::<1>(&term, &tight);
        match first {
            Outcome::Complete(value) => assert_eq!(value, oracle, "{ctx}: one-round completion"),
            Outcome::Exhausted { resume_seed, .. } => {
                let (resumed, _) =
                    la::analyse_kcfa_shared_resume::<1>(*resume_seed, &Budget::unlimited());
                assert_eq!(
                    resumed.into_complete(),
                    oracle,
                    "{ctx}: unlimited resume diverged from the one-shot fixpoint"
                );
            }
        }

        // The worst case: every link of the chain is one round.
        let (chained, _) = la::analyse_kcfa_shared_governed::<1>(&term, &tight);
        let fixpoint = drain_resume_chain(chained, &tight, &ctx);
        assert_eq!(
            fixpoint, oracle,
            "{ctx}: one-round resume chain diverged from the one-shot fixpoint"
        );
    }
}

#[test]
fn parallel_exhaustion_resumes_on_either_driver() {
    let tight = Budget::unlimited().with_max_rounds(1);
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        let (oracle, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        for threads in PARALLEL_THREADS {
            let ctx = format!("seed {seed:#x} at {threads} threads");
            let (outcome, _) =
                la::analyse_kcfa_shared_parallel_governed::<1>(&term, threads, &tight)
                    .expect("no worker fault without an installed fault plan");
            match outcome {
                Outcome::Complete(value) => {
                    assert_eq!(value, oracle, "{ctx}: one-round completion")
                }
                Outcome::Exhausted { resume_seed, .. } => {
                    // The seed is driver-agnostic: resume sequentially …
                    let (seq, _) = la::analyse_kcfa_shared_resume::<1>(
                        (*resume_seed).clone(),
                        &Budget::unlimited(),
                    );
                    assert_eq!(
                        seq.into_complete(),
                        oracle,
                        "{ctx}: sequential resume of a parallel partial"
                    );
                    // … and on the parallel driver it came from.
                    let (par, _) = la::KCeskShared::<1>::explore_frontier_parallel_governed(
                        &mai_lambda::direct::mnext_direct::<KCallCtx<1>, la::KCeskStore>,
                        SolveFrom::Resume(*resume_seed),
                        threads,
                        &Budget::unlimited(),
                    )
                    .expect("no worker fault without an installed fault plan");
                    assert_eq!(
                        par.into_complete(),
                        oracle,
                        "{ctx}: parallel resume of a parallel partial"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Budgets on the concrete interpreters (the unified PR-1 step limits)
// ---------------------------------------------------------------------------

/// Ω — the canonical diverging term.
fn omega() -> Term {
    let mut b = mai_lambda::syntax::TermBuilder::new();
    let self_app = |b: &mut mai_lambda::syntax::TermBuilder| {
        let app = b.app(Term::var("x"), Term::var("x"));
        Term::lam("x", app)
    };
    let f = self_app(&mut b);
    let a = self_app(&mut b);
    b.app(f, a)
}

#[test]
fn step_budgets_halt_divergent_concrete_runs() {
    let term = omega();
    let budget = Budget::unlimited().with_max_steps(50);
    assert!(matches!(
        mai_lambda::concrete::evaluate_governed(&term, &budget),
        mai_lambda::concrete::Outcome::OutOfFuel { .. }
    ));
    let program = mai_cps::cps_convert(&term);
    assert!(matches!(
        mai_cps::concrete::interpret_governed(&program, &budget),
        mai_cps::concrete::Outcome::OutOfFuel { .. }
    ));
}

#[test]
fn cancellation_stops_a_concrete_run_before_its_first_step() {
    let token = CancelToken::new();
    token.cancel();
    let budget = Budget::unlimited().with_cancel(token);
    assert!(matches!(
        mai_lambda::concrete::evaluate_governed(&omega(), &budget),
        mai_lambda::concrete::Outcome::OutOfFuel { .. }
    ));
    let fj = mai_fj::programs::pair_fst();
    assert!(matches!(
        mai_fj::concrete::run_governed(&fj, &budget),
        mai_fj::concrete::Outcome::OutOfFuel { .. }
    ));
}

#[test]
fn fj_budgeted_run_resumes_nothing_but_reports_fuel() {
    let fj = mai_fj::programs::pair_fst();
    let out = mai_fj::concrete::run_governed(&fj, &Budget::unlimited().with_max_steps(1));
    assert!(matches!(out, mai_fj::concrete::Outcome::OutOfFuel { .. }));
    // The same program under an unlimited budget still halts normally.
    let out = mai_fj::concrete::run_governed(&fj, &Budget::unlimited());
    assert!(out.halted());
}

// ---------------------------------------------------------------------------
// Traced cancel latency on a crafted chain machine
// ---------------------------------------------------------------------------

/// A heap value for the chain machines (never actually bound; the store
/// exists to satisfy the shared-store domain shape).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Probe(u8);

impl mai_core::gc::Touches<u8> for Probe {
    fn touches(&self) -> BTreeSet<u8> {
        BTreeSet::new()
    }
}

/// A state of the crafted chain machines.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Chain(u32);

impl mai_core::StateRoots for Chain {
    type Addr = u8;

    fn state_roots(&self) -> BTreeSet<u8> {
        BTreeSet::new()
    }
}

type ChainStore = BasicStore<u8, Probe>;
type ChainDom = mai_core::SharedStoreDomain<Chain, u64, ChainStore>;

#[test]
fn sequential_cancellation_lands_within_one_round() {
    // The chain 0 → 1 → … → 10 steps exactly one state per round, so
    // state `n` is stepped in round `n + 1`.  The step of state 3 (round
    // 4) raises cancellation *mid-round*; the governor observes it at
    // that round's boundary, so exactly 4 rounds are recorded.
    let token = CancelToken::new();
    let cancel = token.clone();
    let step = move |ps: Chain, g: u64, s: ChainStore| {
        if ps.0 == 3 {
            cancel.cancel();
        }
        if ps.0 >= 10 {
            vec![]
        } else {
            vec![((Chain(ps.0 + 1), g), s)]
        }
    };
    let budget = Budget::unlimited().with_cancel(token);
    let mut sink = TraceBuffer::new();
    let (outcome, stats): (Outcome<ChainDom, _>, _) = ChainDom::explore_frontier_governed_traced(
        &step,
        SolveFrom::Fresh(Chain(0)),
        &budget,
        &mut sink,
    );
    assert_eq!(outcome.exhaust_reason(), Some(ExhaustReason::Cancelled));
    assert_eq!(stats.iterations, 4, "cancel latency exceeded one round");
    assert_eq!(sink.rounds.len(), 4, "cancel latency exceeded one round");
    assert!(
        sink.governor_events
            .iter()
            .any(|e| e.kind == GovernorTraceKind::Exhausted(ExhaustReason::Cancelled)),
        "no governor event recorded for the cancellation"
    );
}

/// The forked chain for the elastic latency test: 0 forks into two long
/// arms (1…64 and 1001…1064) so both workers stay busy for many epochs
/// when ungoverned.
fn forked_step(
    cancel_at: u32,
    token: CancelToken,
) -> impl Fn(Chain, u64, ChainStore) -> Vec<((Chain, u64), ChainStore)> {
    move |ps: Chain, g: u64, s: ChainStore| {
        if ps.0 == cancel_at {
            token.cancel();
        }
        match ps.0 {
            0 => vec![((Chain(1), g), s.clone()), ((Chain(1001), g), s)],
            n if n < 64 => vec![((Chain(n + 1), g), s)],
            n if (1001..1064).contains(&n) => vec![((Chain(n + 1), g), s)],
            _ => vec![],
        }
    }
}

#[test]
fn elastic_cancellation_lands_within_one_epoch() {
    let token = CancelToken::new();
    let step = forked_step(0, token.clone());
    let budget = Budget::unlimited().with_cancel(token);
    let mut sink = TraceBuffer::new();
    let config = ParallelConfig {
        threads: 2,
        epochs: 8,
    };
    let (outcome, _stats) = ChainDom::explore_frontier_elastic_governed_traced(
        &step,
        SolveFrom::Fresh(Chain(0)),
        config,
        &budget,
        &mut sink,
    )
    .expect("no worker fault without an installed fault plan");
    assert_eq!(outcome.exhaust_reason(), Some(ExhaustReason::Cancelled));
    // Cancellation was raised by the very first step, so no worker may
    // run past its next interruptible epoch boundary: every recorded
    // epoch is 1 (in flight when the flag rose) or 2 (already scheduled).
    assert!(
        sink.epochs.iter().all(|e| e.epoch <= 2),
        "a worker ran epochs past the cancellation: {:?}",
        sink.epochs
    );
    assert_eq!(
        sink.rounds.len(),
        1,
        "cancellation was not observed at the first barrier"
    );
    // The partial really is partial — an ungoverned run discovers the
    // whole 130-state space.
    let (full, _) =
        ChainDom::explore_frontier_direct(&forked_step(u32::MAX, CancelToken::new()), Chain(0));
    assert!(
        outcome.value().states().len() < full.states().len(),
        "cancelled run still explored the full space"
    );
}

#[test]
fn elastic_round_budget_partial_resumes_onto_the_full_fixpoint() {
    let (full, _) =
        ChainDom::explore_frontier_direct(&forked_step(u32::MAX, CancelToken::new()), Chain(0));
    let step = forked_step(u32::MAX, CancelToken::new());
    let config = ParallelConfig {
        threads: 2,
        epochs: 2,
    };
    let (outcome, _) = ChainDom::explore_frontier_elastic_governed(
        &step,
        SolveFrom::Fresh(Chain(0)),
        config,
        &Budget::unlimited().with_max_rounds(1),
    )
    .expect("no worker fault without an installed fault plan");
    match outcome {
        Outcome::Complete(value) => assert_eq!(value, full),
        Outcome::Exhausted {
            reason,
            resume_seed,
            ..
        } => {
            assert_eq!(reason, ExhaustReason::RoundBudget);
            // Cross-driver resume: the elastic partial continues on the
            // sequential engine and lands on the identical fixpoint.
            let (resumed, _): (Outcome<ChainDom, _>, _) = ChainDom::explore_frontier_governed(
                &step,
                SolveFrom::Resume(*resume_seed),
                &Budget::unlimited(),
            );
            assert_eq!(resumed.into_complete(), full);
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic fault injection (feature-gated)
// ---------------------------------------------------------------------------

#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use mai_core::engine::{EngineError, FaultPlan, LadderRung};

    /// The committed thread counts the fault matrix replays at (a faulted
    /// singleton pool is covered by the ladder tests).
    const FAULT_THREADS: [usize; 2] = [2, 4];

    #[test]
    fn injected_worker_panic_surfaces_as_a_clean_error() {
        let term = term_from_seed(COMMITTED_SEEDS[1]);
        for threads in FAULT_THREADS {
            // The first frontier is the singleton initial state, stepped
            // on the coordinator's inline path as worker 0 — so the
            // (0, 0) fault fires deterministically on every program.
            let guard = FaultPlan::new().panic_at(0, 0).install();
            let result = la::analyse_kcfa_shared_parallel_governed::<1>(
                &term,
                threads,
                &Budget::unlimited(),
            );
            drop(guard);
            match result {
                Err(EngineError::WorkerPanicked { message }) => assert!(
                    message.contains("injected fault"),
                    "unexpected panic message: {message}"
                ),
                other => panic!("expected a contained worker panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn ladder_degrades_from_elastic_to_barrier() {
        let term = term_from_seed(COMMITTED_SEEDS[2]);
        let (oracle, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        let config = ParallelConfig {
            threads: 2,
            epochs: 2,
        };
        // Worker 0's step counter persists across rungs within one
        // install, so (0, 0) fires in the elastic rung and is already
        // spent when the barrier rung steps worker 0 again (nth = 1).
        let guard = FaultPlan::new().panic_at(0, 0).install();
        let (outcome, _, report) =
            la::analyse_kcfa_shared_ladder::<1>(&term, config, &Budget::unlimited());
        drop(guard);
        assert!(report.degraded());
        assert_eq!(report.rung, LadderRung::Barrier);
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].0, LadderRung::Elastic);
        assert_eq!(
            outcome.into_complete(),
            oracle,
            "degraded ladder fixpoint differs from the sequential oracle"
        );
    }

    #[test]
    fn ladder_falls_all_the_way_to_the_sequential_engine() {
        let term = term_from_seed(COMMITTED_SEEDS[3]);
        let (oracle, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        let config = ParallelConfig {
            threads: 2,
            epochs: 2,
        };
        // Elastic faults at worker 0's step 0, barrier at its step 1; the
        // sequential rung never consults the plan.
        let guard = FaultPlan::new().panic_at(0, 0).panic_at(0, 1).install();
        let (outcome, _, report) =
            la::analyse_kcfa_shared_ladder::<1>(&term, config, &Budget::unlimited());
        drop(guard);
        assert_eq!(report.rung, LadderRung::SequentialDirect);
        assert_eq!(
            report.faults.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![LadderRung::Elastic, LadderRung::Barrier]
        );
        assert_eq!(
            outcome.into_complete(),
            oracle,
            "fully-degraded ladder fixpoint differs from the sequential oracle"
        );
    }

    #[test]
    fn single_epoch_ladder_skips_the_elastic_rung() {
        let term = term_from_seed(COMMITTED_SEEDS[4]);
        let (oracle, _) = la::analyse_kcfa_shared_direct::<1>(&term);
        let config = ParallelConfig {
            threads: 2,
            epochs: 1,
        };
        let guard = FaultPlan::new().panic_at(0, 0).install();
        let (outcome, _, report) =
            la::analyse_kcfa_shared_ladder::<1>(&term, config, &Budget::unlimited());
        drop(guard);
        assert_eq!(report.rung, LadderRung::SequentialDirect);
        assert_eq!(
            report.faults.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec![LadderRung::Barrier]
        );
        assert_eq!(outcome.into_complete(), oracle);
    }

    #[test]
    fn injected_delays_perturb_timing_but_not_the_fixpoint() {
        let term = term_from_seed(COMMITTED_SEEDS[5]);
        let (classic, classic_stats) = la::analyse_kcfa_shared_parallel::<1>(&term, 2);
        let guard = FaultPlan::new()
            .delay_at(0, 0, 2)
            .delay_at(1, 1, 2)
            .install();
        let (outcome, stats) =
            la::analyse_kcfa_shared_parallel_governed::<1>(&term, 2, &Budget::unlimited())
                .expect("delays must not fault the pool");
        drop(guard);
        assert_eq!(outcome.into_complete(), classic);
        assert_eq!(
            deterministic_counters(stats),
            deterministic_counters(classic_stats),
            "a delayed worker changed the deterministic work counters"
        );
    }

    #[test]
    fn cps_ladder_survives_the_full_fault_cascade() {
        let term = term_from_seed(COMMITTED_SEEDS[6]);
        let program = mai_cps::cps_convert(&term);
        let (oracle, _) = mai_cps::analysis::analyse_kcfa_shared_direct::<1>(&program);
        let config = ParallelConfig {
            threads: 2,
            epochs: 2,
        };
        let guard = FaultPlan::new().panic_at(0, 0).panic_at(0, 1).install();
        let (outcome, _, report) = mai_cps::analysis::analyse_kcfa_shared_ladder::<1>(
            &program,
            config,
            &Budget::unlimited(),
        );
        drop(guard);
        assert_eq!(report.rung, LadderRung::SequentialDirect);
        assert_eq!(outcome.into_complete(), oracle);
    }
}
