//! The worklist engines are observationally equivalent to Kleene iteration.
//!
//! The id-indexed (interned) incremental engine (`mai_core::engine`, the
//! default behind `analyse_*_worklist`), the retained PR-2 structural-key
//! incremental engine (`analyse_*_structural`) and the retained PR-1
//! rescanning engine (`analyse_*_rescan`) all promise to compute *exactly*
//! the fixpoint `explore_fp` computes, for every combination of the
//! paper's degrees of freedom: context sensitivity (mono / 0CFA / 1CFA),
//! store representation (basic / counting) and abstract GC (on / off),
//! with per-state or shared stores, across all three language substrates.
//! These tests assert `==` on the analysis domains over the benchmark
//! corpus, that the engines do strictly less work than Kleene iteration on
//! the k-CFA worst-case family, and that the incremental engines fold
//! O(|frontier|) contributions per round where the rescanning engine
//! re-joins O(|states|).

use std::cell::Cell;
use std::rc::Rc;

use monadic_ai::core::collect::explore_fp;
use monadic_ai::core::store::{BasicStore, CountingStore};
use monadic_ai::core::{KCallAddr, KCallCtx, MonoAddr, MonoCtx, StorePassing};
use monadic_ai::cps::programs::{
    fan_out, garbage_chain, id_chain, identity_application, kcfa_worst_case, standard_corpus,
};
use monadic_ai::cps::{PState, Val};
use monadic_ai::{cps, fj, lambda};

/// Asserts Kleene / incremental-worklist / rescanning-worklist agreement
/// for one CPS shared-store configuration, with and without abstract GC.
macro_rules! check_cps_shared {
    ($name:expr, $program:expr, $label:expr, $ctx:ty, $store:ty) => {{
        type Domain = monadic_ai::core::SharedStoreDomain<
            PState<<$ctx as monadic_ai::core::addr::Context>::Addr>,
            $ctx,
            $store,
        >;
        let program = $program;
        let kleene: Domain = cps::analyse::<$ctx, $store, _>(program);
        let (worklist, stats): (Domain, _) = cps::analyse_worklist::<$ctx, $store, _>(program);
        assert_eq!(
            worklist, kleene,
            "{}/{}: worklist differs from Kleene (no gc)",
            $name, $label
        );
        assert!(stats.states_stepped > 0);
        // The id-indexed default engine interned every configuration.
        assert_eq!(
            stats.distinct_states,
            worklist.len(),
            "{}/{}",
            $name,
            $label
        );
        assert_eq!(stats.intern_misses, worklist.len(), "{}/{}", $name, $label);
        let (structural, structural_stats): (Domain, _) =
            cps::analyse_worklist_structural::<$ctx, $store, _>(program);
        assert_eq!(
            structural, kleene,
            "{}/{}: structural engine differs from Kleene (no gc)",
            $name, $label
        );
        // Same frontier strategy with tighter read sets: the id-indexed
        // engine never does more logical work than the structural one.
        assert!(
            stats.states_stepped <= structural_stats.states_stepped,
            "{}/{}",
            $name,
            $label
        );
        assert!(
            stats.store_joins <= structural_stats.store_joins,
            "{}/{}",
            $name,
            $label
        );
        let (rescan, rescan_stats): (Domain, _) =
            cps::analyse_worklist_rescan::<$ctx, $store, _>(program);
        assert_eq!(
            rescan, kleene,
            "{}/{}: rescanning engine differs from Kleene (no gc)",
            $name, $label
        );
        // GC-free contributions are monotone, so the incremental engine
        // never leaves the fast path and folds exactly one contribution per
        // stepped pair — never more than the rescanning engine's per-round
        // full re-join.
        assert_eq!(stats.rebuild_rounds, 0, "{}/{}", $name, $label);
        assert_eq!(
            stats.store_joins, stats.states_stepped,
            "{}/{}",
            $name, $label
        );
        assert!(
            stats.store_joins <= rescan_stats.store_joins,
            "{}/{}",
            $name,
            $label
        );

        let kleene_gc: Domain = cps::analyse_gc::<$ctx, $store, _>(program);
        let (worklist_gc, _): (Domain, _) = cps::analyse_gc_worklist::<$ctx, $store, _>(program);
        assert_eq!(
            worklist_gc, kleene_gc,
            "{}/{}: worklist differs from Kleene (gc)",
            $name, $label
        );
        let (structural_gc, _): (Domain, _) =
            cps::analyse_gc_worklist_structural::<$ctx, $store, _>(program);
        assert_eq!(
            structural_gc, kleene_gc,
            "{}/{}: structural engine differs from Kleene (gc)",
            $name, $label
        );
        let (rescan_gc, _): (Domain, _) =
            cps::analyse_gc_worklist_rescan::<$ctx, $store, _>(program);
        assert_eq!(
            rescan_gc, kleene_gc,
            "{}/{}: rescanning engine differs from Kleene (gc)",
            $name, $label
        );
    }};
}

/// The full shared-store configuration matrix of the acceptance criteria:
/// {mono, 0CFA, 1CFA} × {basic, counting} × {gc on, gc off} over the CPS
/// corpus.
#[test]
fn cps_shared_store_matrix_agrees_with_kleene_across_the_corpus() {
    for (name, program) in standard_corpus() {
        check_cps_shared!(
            name,
            &program,
            "mono/basic",
            MonoCtx,
            BasicStore<MonoAddr, Val<MonoAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "mono/counting",
            MonoCtx,
            CountingStore<MonoAddr, Val<MonoAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "0cfa/basic",
            KCallCtx<0>,
            BasicStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "0cfa/counting",
            KCallCtx<0>,
            CountingStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "1cfa/basic",
            KCallCtx<1>,
            BasicStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "1cfa/counting",
            KCallCtx<1>,
            CountingStore<KCallAddr, Val<KCallAddr>>
        );
    }
}

/// Per-state ("heap cloning") domains: the engine is plain frontier
/// reachability and must reproduce the Kleene closure exactly, gc on/off,
/// basic and counting stores.
#[test]
fn cps_per_state_domains_agree_with_kleene() {
    let programs = vec![
        ("identity", identity_application()),
        ("id-chain-4", id_chain(4)),
        ("fan-out-4", fan_out(4)),
        ("garbage-chain-4", garbage_chain(4)),
    ];
    for (name, program) in programs {
        let kleene = cps::analyse_kcfa::<1>(&program);
        let (worklist, stats) = cps::analyse_kcfa_worklist::<1>(&program);
        assert_eq!(worklist, kleene, "{name}: per-state 1CFA differs");
        // Frontier reachability steps each configuration exactly once.
        assert_eq!(stats.states_stepped, worklist.len(), "{name}");

        let kleene_gc = cps::analyse_kcfa_gc::<1>(&program);
        let (worklist_gc, _) = cps::analyse_kcfa_gc_worklist::<1>(&program);
        assert_eq!(worklist_gc, kleene_gc, "{name}: per-state 1CFA+GC differs");

        let kleene_count = cps::analyse_kcfa_count_cloned::<1>(&program);
        let (worklist_count, _) = cps::analyse_kcfa_count_cloned_worklist::<1>(&program);
        assert_eq!(
            worklist_count, kleene_count,
            "{name}: per-state counting differs"
        );
    }
}

/// The acceptance-criteria benchmark: on `kcfa_worst_case` the worklist
/// engine must step strictly fewer states than Kleene iteration while
/// computing the identical fixpoint (asserted via `EngineStats` against an
/// instrumented `explore_fp`).
#[test]
fn worklist_steps_strictly_fewer_states_than_kleene_on_kcfa_worst_case() {
    type Ctx = KCallCtx<1>;
    type Store = cps::analysis::KStore;
    type M = StorePassing<Ctx, Store>;
    type Domain = cps::analysis::KCfaShared<1>;

    for n in [2usize, 3] {
        let program = kcfa_worst_case(n);
        let kleene_steps = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&kleene_steps);
        let counted_step = move |ps: PState<KCallAddr>| {
            counter.set(counter.get() + 1);
            monadic_ai::cps::mnext::<M, KCallAddr>(ps)
        };
        let kleene: Domain =
            explore_fp::<M, _, _, _>(counted_step, PState::inject(program.clone()));

        let (worklist, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
        assert_eq!(worklist, kleene, "kcfa-worst-{n}: fixpoints differ");
        assert!(
            stats.states_stepped < kleene_steps.get(),
            "kcfa-worst-{n}: worklist stepped {} states, Kleene stepped {}",
            stats.states_stepped,
            kleene_steps.get()
        );
        assert!(stats.cache_hits > 0, "kcfa-worst-{n}: no cache hits");
    }
}

/// The E9 acceptance criterion on `kcfa_worst_case`: the incremental
/// engine's contribution joins per round are O(|frontier|) where the
/// rescanning engine (like naive Kleene iteration) re-joins O(|states|)
/// cached contributions per round.
#[test]
fn incremental_engine_joins_per_frontier_not_per_state() {
    for n in [2usize, 3, 4] {
        let program = kcfa_worst_case(n);
        let (incremental, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
        let (rescan, rescan_stats) = cps::analyse_kcfa_shared_rescan::<1>(&program);
        assert_eq!(incremental, rescan, "kcfa-worst-{n}: fixpoints differ");

        // Fast path throughout: one fold per stepped pair, so total joins
        // track the frontier sizes (Σ_r |frontier_r| = states_stepped)…
        assert_eq!(stats.rebuild_rounds, 0, "kcfa-worst-{n}");
        assert_eq!(stats.store_joins, stats.states_stepped, "kcfa-worst-{n}");
        // …while the rescanning engine re-joins every cached contribution
        // every round (Σ_r |states_r| ≥ iterations × final-state-count / 2).
        assert!(
            stats.store_joins < rescan_stats.store_joins,
            "kcfa-worst-{n}: incremental joined {} contributions, rescan {}",
            stats.store_joins,
            rescan_stats.store_joins
        );
        // The per-round average drops from O(|states|) to O(|frontier|):
        // the rescanning engine's joins/round equals the (growing) state
        // count, the incremental engine's stays a small constant frontier.
        assert!(
            stats.joins_per_round() < rescan_stats.joins_per_round(),
            "kcfa-worst-{n}: joins/round {} vs {}",
            stats.joins_per_round(),
            rescan_stats.joins_per_round()
        );
        assert!(
            rescan_stats.joins_per_round() >= incremental.len() as f64 / 2.0,
            "kcfa-worst-{n}: rescan joins/round should scale with |states|"
        );
    }
}

/// The same engine drives the CESK machine unchanged.
#[test]
fn cesk_worklist_agrees_with_kleene() {
    let corpus = vec![
        ("identity", lambda::programs::identity_application()),
        ("church-2x2", lambda::programs::church_multiplication(2, 2)),
        ("let-chain-4", lambda::programs::let_chain(4)),
        ("omega", lambda::programs::omega()),
    ];
    for (name, term) in corpus {
        let mono = lambda::analyse_mono(&term);
        let (mono_wl, _) = lambda::analyse_mono_worklist(&term);
        assert_eq!(mono_wl, mono, "{name}: CESK mono differs");

        let one = lambda::analyse_kcfa_shared::<1>(&term);
        let (one_wl, _) = lambda::analyse_kcfa_shared_worklist::<1>(&term);
        assert_eq!(one_wl, one, "{name}: CESK 1CFA differs");
        let (one_structural, _) = lambda::analyse_kcfa_shared_structural::<1>(&term);
        assert_eq!(one_structural, one, "{name}: CESK 1CFA structural differs");
        let (one_rescan, _) = lambda::analyse_kcfa_shared_rescan::<1>(&term);
        assert_eq!(one_rescan, one, "{name}: CESK 1CFA rescan differs");

        let counted = lambda::analyse_kcfa_with_count::<1>(&term);
        let (counted_wl, _) = lambda::analyse_kcfa_with_count_worklist::<1>(&term);
        assert_eq!(counted_wl, counted, "{name}: CESK counting differs");

        let gced = lambda::analyse_kcfa_shared_gc::<1>(&term);
        let (gced_wl, _) = lambda::analyse_kcfa_shared_gc_worklist::<1>(&term);
        assert_eq!(gced_wl, gced, "{name}: CESK 1CFA+GC differs");
        let (gced_rescan, _) = lambda::analyse_with_gc_worklist_rescan::<
            KCallCtx<1>,
            monadic_ai::core::BasicStore<KCallAddr, lambda::Storable<KCallAddr>>,
            lambda::analysis::KCeskShared<1>,
        >(&term);
        assert_eq!(gced_rescan, gced, "{name}: CESK 1CFA+GC rescan differs");
    }
}

/// …and Featherweight Java, completing the three-language wiring.
#[test]
fn fj_worklist_agrees_with_kleene() {
    for (name, program) in fj::programs::standard_corpus() {
        let mono = fj::analyse_mono(&program);
        let (mono_wl, _) = fj::analyse_mono_worklist(&program);
        assert_eq!(mono_wl, mono, "{name}: FJ mono differs");

        let one = fj::analyse_kcfa_shared::<1>(&program);
        let (one_wl, _) = fj::analyse_kcfa_shared_worklist::<1>(&program);
        assert_eq!(one_wl, one, "{name}: FJ 1CFA differs");
        let (one_structural, _) = fj::analyse_kcfa_shared_structural::<1>(&program);
        assert_eq!(one_structural, one, "{name}: FJ 1CFA structural differs");
        let (one_rescan, _) = fj::analyse_kcfa_shared_rescan::<1>(&program);
        assert_eq!(one_rescan, one, "{name}: FJ 1CFA rescan differs");

        let counted = fj::analyse_kcfa_with_count::<1>(&program);
        let (counted_wl, _) = fj::analyse_kcfa_with_count_worklist::<1>(&program);
        assert_eq!(counted_wl, counted, "{name}: FJ counting differs");

        let gced = fj::analyse_kcfa_shared_gc::<1>(&program);
        let (gced_wl, _) = fj::analyse_kcfa_shared_gc_worklist::<1>(&program);
        assert_eq!(gced_wl, gced, "{name}: FJ 1CFA+GC differs");
        let (gced_rescan, _) = fj::analyse_with_gc_worklist_rescan::<
            KCallCtx<1>,
            monadic_ai::core::BasicStore<KCallAddr, fj::Storable<KCallAddr>>,
            fj::analysis::KFjShared<1>,
        >(&program);
        assert_eq!(gced_rescan, gced, "{name}: FJ 1CFA+GC rescan differs");
    }
}

/// The per-state engine also reproduces the heap-cloning results for the
/// other two languages.
#[test]
fn per_state_worklist_agrees_across_languages() {
    let term = lambda::programs::identity_application();
    let cesk_kleene = lambda::analyse_kcfa::<1>(&term);
    let (cesk_wl, _) = lambda::analyse_kcfa_worklist::<1>(&term);
    assert_eq!(cesk_wl, cesk_kleene);

    let program = fj::programs::pair_fst();
    let fj_kleene = fj::analyse_kcfa::<1>(&program);
    let (fj_wl, _) = fj::analyse_kcfa_worklist::<1>(&program);
    assert_eq!(fj_wl, fj_kleene);
}

/// EngineStats invariants that hold for every run.
#[test]
fn engine_stats_are_internally_consistent() {
    let program = kcfa_worst_case(2);
    let (result, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
    assert!(!result.is_empty());
    // Every distinct (state, guts) pair was stepped at least once, and
    // re-enqueues are the only source of repeat steps.
    assert!(stats.states_stepped >= result.len());
    assert_eq!(stats.states_stepped - stats.reenqueued, result.len());
    assert!(stats.iterations > 0);
    assert!(stats.peak_frontier > 0);
    assert!(stats.peak_frontier <= stats.states_stepped);
}
