//! The worklist engine is observationally equivalent to Kleene iteration.
//!
//! The frontier-driven engine (`mai_core::engine`) promises to compute
//! *exactly* the fixpoint `explore_fp` computes, for every combination of
//! the paper's degrees of freedom: context sensitivity (mono / 0CFA /
//! 1CFA), store representation (basic / counting) and abstract GC (on /
//! off), with per-state or shared stores, across all three language
//! substrates.  These tests assert `==` on the analysis domains over the
//! benchmark corpus, and additionally that the engine does strictly less
//! work than Kleene iteration on the k-CFA worst-case family.

use std::cell::Cell;
use std::rc::Rc;

use monadic_ai::core::collect::explore_fp;
use monadic_ai::core::store::{BasicStore, CountingStore};
use monadic_ai::core::{KCallAddr, KCallCtx, MonoAddr, MonoCtx, StorePassing};
use monadic_ai::cps::programs::{
    fan_out, garbage_chain, id_chain, identity_application, kcfa_worst_case, standard_corpus,
};
use monadic_ai::cps::{PState, Val};
use monadic_ai::{cps, fj, lambda};

/// Asserts Kleene/worklist agreement for one CPS shared-store
/// configuration, with and without abstract GC.
macro_rules! check_cps_shared {
    ($name:expr, $program:expr, $label:expr, $ctx:ty, $store:ty) => {{
        type Domain = monadic_ai::core::SharedStoreDomain<
            PState<<$ctx as monadic_ai::core::addr::Context>::Addr>,
            $ctx,
            $store,
        >;
        let program = $program;
        let kleene: Domain = cps::analyse::<$ctx, $store, _>(program);
        let (worklist, stats): (Domain, _) = cps::analyse_worklist::<$ctx, $store, _>(program);
        assert_eq!(
            worklist, kleene,
            "{}/{}: worklist differs from Kleene (no gc)",
            $name, $label
        );
        assert!(stats.states_stepped > 0);

        let kleene_gc: Domain = cps::analyse_gc::<$ctx, $store, _>(program);
        let (worklist_gc, _): (Domain, _) = cps::analyse_gc_worklist::<$ctx, $store, _>(program);
        assert_eq!(
            worklist_gc, kleene_gc,
            "{}/{}: worklist differs from Kleene (gc)",
            $name, $label
        );
    }};
}

/// The full shared-store configuration matrix of the acceptance criteria:
/// {mono, 0CFA, 1CFA} × {basic, counting} × {gc on, gc off} over the CPS
/// corpus.
#[test]
fn cps_shared_store_matrix_agrees_with_kleene_across_the_corpus() {
    for (name, program) in standard_corpus() {
        check_cps_shared!(
            name,
            &program,
            "mono/basic",
            MonoCtx,
            BasicStore<MonoAddr, Val<MonoAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "mono/counting",
            MonoCtx,
            CountingStore<MonoAddr, Val<MonoAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "0cfa/basic",
            KCallCtx<0>,
            BasicStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "0cfa/counting",
            KCallCtx<0>,
            CountingStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "1cfa/basic",
            KCallCtx<1>,
            BasicStore<KCallAddr, Val<KCallAddr>>
        );
        check_cps_shared!(
            name,
            &program,
            "1cfa/counting",
            KCallCtx<1>,
            CountingStore<KCallAddr, Val<KCallAddr>>
        );
    }
}

/// Per-state ("heap cloning") domains: the engine is plain frontier
/// reachability and must reproduce the Kleene closure exactly, gc on/off,
/// basic and counting stores.
#[test]
fn cps_per_state_domains_agree_with_kleene() {
    let programs = vec![
        ("identity", identity_application()),
        ("id-chain-4", id_chain(4)),
        ("fan-out-4", fan_out(4)),
        ("garbage-chain-4", garbage_chain(4)),
    ];
    for (name, program) in programs {
        let kleene = cps::analyse_kcfa::<1>(&program);
        let (worklist, stats) = cps::analyse_kcfa_worklist::<1>(&program);
        assert_eq!(worklist, kleene, "{name}: per-state 1CFA differs");
        // Frontier reachability steps each configuration exactly once.
        assert_eq!(stats.states_stepped, worklist.len(), "{name}");

        let kleene_gc = cps::analyse_kcfa_gc::<1>(&program);
        let (worklist_gc, _) = cps::analyse_kcfa_gc_worklist::<1>(&program);
        assert_eq!(worklist_gc, kleene_gc, "{name}: per-state 1CFA+GC differs");

        let kleene_count = cps::analyse_kcfa_count_cloned::<1>(&program);
        let (worklist_count, _) = cps::analyse_kcfa_count_cloned_worklist::<1>(&program);
        assert_eq!(
            worklist_count, kleene_count,
            "{name}: per-state counting differs"
        );
    }
}

/// The acceptance-criteria benchmark: on `kcfa_worst_case` the worklist
/// engine must step strictly fewer states than Kleene iteration while
/// computing the identical fixpoint (asserted via `EngineStats` against an
/// instrumented `explore_fp`).
#[test]
fn worklist_steps_strictly_fewer_states_than_kleene_on_kcfa_worst_case() {
    type Ctx = KCallCtx<1>;
    type Store = cps::analysis::KStore;
    type M = StorePassing<Ctx, Store>;
    type Domain = cps::analysis::KCfaShared<1>;

    for n in [2usize, 3] {
        let program = kcfa_worst_case(n);
        let kleene_steps = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&kleene_steps);
        let counted_step = move |ps: PState<KCallAddr>| {
            counter.set(counter.get() + 1);
            monadic_ai::cps::mnext::<M, KCallAddr>(ps)
        };
        let kleene: Domain =
            explore_fp::<M, _, _, _>(counted_step, PState::inject(program.clone()));

        let (worklist, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
        assert_eq!(worklist, kleene, "kcfa-worst-{n}: fixpoints differ");
        assert!(
            stats.states_stepped < kleene_steps.get(),
            "kcfa-worst-{n}: worklist stepped {} states, Kleene stepped {}",
            stats.states_stepped,
            kleene_steps.get()
        );
        assert!(stats.cache_hits > 0, "kcfa-worst-{n}: no cache hits");
    }
}

/// The same engine drives the CESK machine unchanged.
#[test]
fn cesk_worklist_agrees_with_kleene() {
    let corpus = vec![
        ("identity", lambda::programs::identity_application()),
        ("church-2x2", lambda::programs::church_multiplication(2, 2)),
        ("let-chain-4", lambda::programs::let_chain(4)),
        ("omega", lambda::programs::omega()),
    ];
    for (name, term) in corpus {
        let mono = lambda::analyse_mono(&term);
        let (mono_wl, _) = lambda::analyse_mono_worklist(&term);
        assert_eq!(mono_wl, mono, "{name}: CESK mono differs");

        let one = lambda::analyse_kcfa_shared::<1>(&term);
        let (one_wl, _) = lambda::analyse_kcfa_shared_worklist::<1>(&term);
        assert_eq!(one_wl, one, "{name}: CESK 1CFA differs");

        let counted = lambda::analyse_kcfa_with_count::<1>(&term);
        let (counted_wl, _) = lambda::analyse_kcfa_with_count_worklist::<1>(&term);
        assert_eq!(counted_wl, counted, "{name}: CESK counting differs");

        let gced = lambda::analyse_kcfa_shared_gc::<1>(&term);
        let (gced_wl, _) = lambda::analyse_kcfa_shared_gc_worklist::<1>(&term);
        assert_eq!(gced_wl, gced, "{name}: CESK 1CFA+GC differs");
    }
}

/// …and Featherweight Java, completing the three-language wiring.
#[test]
fn fj_worklist_agrees_with_kleene() {
    for (name, program) in fj::programs::standard_corpus() {
        let mono = fj::analyse_mono(&program);
        let (mono_wl, _) = fj::analyse_mono_worklist(&program);
        assert_eq!(mono_wl, mono, "{name}: FJ mono differs");

        let one = fj::analyse_kcfa_shared::<1>(&program);
        let (one_wl, _) = fj::analyse_kcfa_shared_worklist::<1>(&program);
        assert_eq!(one_wl, one, "{name}: FJ 1CFA differs");

        let counted = fj::analyse_kcfa_with_count::<1>(&program);
        let (counted_wl, _) = fj::analyse_kcfa_with_count_worklist::<1>(&program);
        assert_eq!(counted_wl, counted, "{name}: FJ counting differs");

        let gced = fj::analyse_kcfa_shared_gc::<1>(&program);
        let (gced_wl, _) = fj::analyse_kcfa_shared_gc_worklist::<1>(&program);
        assert_eq!(gced_wl, gced, "{name}: FJ 1CFA+GC differs");
    }
}

/// The per-state engine also reproduces the heap-cloning results for the
/// other two languages.
#[test]
fn per_state_worklist_agrees_across_languages() {
    let term = lambda::programs::identity_application();
    let cesk_kleene = lambda::analyse_kcfa::<1>(&term);
    let (cesk_wl, _) = lambda::analyse_kcfa_worklist::<1>(&term);
    assert_eq!(cesk_wl, cesk_kleene);

    let program = fj::programs::pair_fst();
    let fj_kleene = fj::analyse_kcfa::<1>(&program);
    let (fj_wl, _) = fj::analyse_kcfa_worklist::<1>(&program);
    assert_eq!(fj_wl, fj_kleene);
}

/// EngineStats invariants that hold for every run.
#[test]
fn engine_stats_are_internally_consistent() {
    let program = kcfa_worst_case(2);
    let (result, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
    assert!(!result.is_empty());
    // Every distinct (state, guts) pair was stepped at least once, and
    // re-enqueues are the only source of repeat steps.
    assert!(stats.states_stepped >= result.len());
    assert_eq!(stats.states_stepped - stats.reenqueued, result.len());
    assert!(stats.iterations > 0);
    assert!(stats.peak_frontier > 0);
    assert!(stats.peak_frontier <= stats.states_stepped);
}
