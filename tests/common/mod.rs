//! Shared corpus machinery for the root integration suites.
//!
//! The committed seeds and the deterministic λ-term generator they drive
//! are used by both `tests/differential.rs` (the engine pentagon) and
//! `tests/governance.rs` (budgets, resume, faults), so the corpus the two
//! suites exercise is literally the same set of programs.  Each seed
//! drives a deterministic xorshift generator from which a λ-term is
//! drawn; the corpus they induce is fixed until this list (or the
//! generator) changes, so the list is part of the reviewable surface.

#![allow(dead_code)]

use mai_lambda::syntax::TermBuilder;
use mai_lambda::Term;
use proptest::prelude::*;
use proptest::test_runner::Rng;

/// The committed seeds driving the full-matrix replays.
pub const COMMITTED_SEEDS: [u64; 10] = [
    0x0000_0000_DEAD_BEEF,
    0x0123_4567_89AB_CDEF,
    0x1BAD_B002_CAFE_F00D,
    0x2C3A_4D5E_6F70_8192,
    0x3141_5926_5358_9793,
    0x4242_4242_4242_4242,
    0x5A5A_5A5A_A5A5_A5A5,
    0x6B8B_4567_327B_23C6,
    0x7FFF_FFFF_FFFF_FFF1,
    0x8000_0000_0000_0001,
];

/// The thread counts every parallel differential run is replayed at.
pub const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

/// The label-free shape of a generated term; conversion assigns labels
/// through a `TermBuilder` in a deterministic traversal order.
#[derive(Debug, Clone)]
pub enum Shape {
    /// A variable reference from the 3-name pool (may be unbound — the
    /// machines treat unbound lookups as stuck, which the engines must
    /// agree on too).
    Var(u8),
    /// λ-abstraction over a pool name.
    Lam(u8, Box<Shape>),
    /// Application.
    App(Box<Shape>, Box<Shape>),
    /// `let` binding of a pool name.
    Let(u8, Box<Shape>, Box<Shape>),
}

pub fn shape_strategy() -> BoxedStrategy<Shape> {
    let leaf = prop_oneof![
        (0u8..3).prop_map(Shape::Var),
        ((0u8..3), (0u8..3)).prop_map(|(p, v)| Shape::Lam(p, Box::new(Shape::Var(v)))),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            ((0u8..3), inner.clone()).prop_map(|(p, b)| Shape::Lam(p, Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Shape::App(Box::new(f), Box::new(a))),
            ((0u8..3), inner.clone(), inner.clone()).prop_map(|(n, r, b)| Shape::Let(
                n,
                Box::new(r),
                Box::new(b)
            )),
        ]
    })
}

fn pool_name(i: u8) -> String {
    format!("v{}", i % 3)
}

pub fn to_term(shape: &Shape, b: &mut TermBuilder) -> Term {
    match shape {
        Shape::Var(i) => Term::var(pool_name(*i)),
        Shape::Lam(p, body) => {
            let body = to_term(body, b);
            Term::lam(pool_name(*p), body)
        }
        Shape::App(f, a) => {
            let f = to_term(f, b);
            let a = to_term(a, b);
            b.app(f, a)
        }
        Shape::Let(n, rhs, body) => {
            let rhs = to_term(rhs, b);
            let body = to_term(body, b);
            b.let_in(&pool_name(*n), rhs, body)
        }
    }
}

/// Draws one λ-term from a seeded deterministic generator.
pub fn term_from_seed(seed: u64) -> Term {
    let mut rng = Rng::new(seed);
    let shape = shape_strategy().generate(&mut rng);
    to_term(&shape, &mut TermBuilder::new())
}
