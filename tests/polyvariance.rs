//! E2 — polyvariance and context-sensitivity as monadic parameters.

use monadic_ai::core::Name;
use monadic_ai::cps::programs::{fan_out, id_chain};
use monadic_ai::cps::{analyse_kcfa_shared, analyse_mono, flow_map_of_store, AnalysisMetrics};

#[test]
fn zero_cfa_conflates_fan_out_arguments_and_one_cfa_splits_them() {
    for n in [2usize, 4, 6] {
        let program = fan_out(n);
        let mono = analyse_mono(&program);
        let one = analyse_kcfa_shared::<1>(&program);

        let mono_flows = flow_map_of_store(mono.store());
        assert_eq!(
            mono_flows[&Name::from("x")].len(),
            n,
            "0CFA must see all {n} arguments in one flow set"
        );

        let mono_metrics = AnalysisMetrics::of_shared(&mono);
        let one_metrics = AnalysisMetrics::of_shared(&one);
        // 1CFA splits x's binding across n call-string contexts…
        assert!(one_metrics.store_bindings > mono_metrics.store_bindings);
        // …and each split binding is a singleton.
        assert!(one_metrics.singleton_flows >= n);
    }
}

#[test]
fn higher_k_never_reduces_precision_on_id_chains() {
    for n in [3usize, 5] {
        let program = id_chain(n);
        let mono = AnalysisMetrics::of_shared(&analyse_mono(&program));
        let one = AnalysisMetrics::of_shared(&analyse_kcfa_shared::<1>(&program));
        let two = AnalysisMetrics::of_shared(&analyse_kcfa_shared::<2>(&program));
        assert!(one.singleton_flows >= mono.singleton_flows);
        assert!(two.singleton_flows >= one.singleton_flows);
        // Finer contexts mean at least as many (finer-grained) bindings.
        assert!(one.store_bindings >= mono.store_bindings);
        assert!(two.store_bindings >= one.store_bindings);
    }
}

#[test]
fn analysis_metrics_scale_with_program_size() {
    let small = AnalysisMetrics::of_shared(&analyse_mono(&fan_out(2)));
    let large = AnalysisMetrics::of_shared(&analyse_mono(&fan_out(8)));
    assert!(large.distinct_states > small.distinct_states);
    assert!(large.store_facts > small.store_facts);
}
