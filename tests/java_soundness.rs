//! Featherweight Java end-to-end: typechecking, concrete execution and the
//! abstract class analyses agree with each other on the example corpus.

use monadic_ai::core::Name;
use monadic_ai::fj::programs::{bad_downcast, nested_cells, standard_corpus};
use monadic_ai::fj::{
    analyse_kcfa_shared, analyse_mono, check_program, result_classes, run_with_limit, PState,
};

#[test]
fn corpus_programs_typecheck_run_and_are_covered_by_the_analyses() {
    for (name, program) in standard_corpus() {
        check_program(&program).unwrap_or_else(|e| panic!("{name} is ill-typed: {e}"));
        let concrete = run_with_limit(&program, 200_000);
        assert!(concrete.halted(), "{name} did not halt");
        let concrete_class = concrete.result_class().unwrap();

        let mono_classes = result_classes(&analyse_mono(&program));
        let one_classes = result_classes(&analyse_kcfa_shared::<1>(&program));
        assert!(
            mono_classes.contains(&concrete_class),
            "{name}: 0CFA result {mono_classes:?} does not cover {concrete_class}"
        );
        assert!(
            one_classes.contains(&concrete_class),
            "{name}: 1CFA result {one_classes:?} does not cover {concrete_class}"
        );
        // Context sensitivity only refines the result set.
        assert!(one_classes.len() <= mono_classes.len(), "{name}");
    }
}

#[test]
fn failing_downcasts_are_stuck_in_both_semantics() {
    let program = bad_downcast();
    check_program(&program).expect("downcasts are statically fine");
    let concrete = run_with_limit(&program, 10_000);
    assert!(!concrete.halted());
    let abstract_result = analyse_mono(&program);
    assert!(abstract_result
        .distinct_states()
        .iter()
        .any(PState::is_stuck));
    assert!(!abstract_result
        .distinct_states()
        .iter()
        .any(PState::is_final));
}

#[test]
fn nested_cells_always_return_the_payload_class() {
    for n in 1..6 {
        let program = nested_cells(n);
        check_program(&program).expect("nested cells are well-typed");
        let concrete = run_with_limit(&program, 200_000);
        assert_eq!(concrete.result_class(), Some(Name::from("A")), "depth {n}");
        let abstract_classes = result_classes(&analyse_kcfa_shared::<1>(&program));
        assert!(abstract_classes.contains(&Name::from("A")), "depth {n}");
    }
}
