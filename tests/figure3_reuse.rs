//! F3/E6 — the reuse claim of Figure 3: the language-independent monadic
//! parameters (contexts, stores, counting, GC, collecting domains) drive all
//! three language substrates without modification.

use std::collections::BTreeSet;

use monadic_ai::core::{KCallCtx, MonoCtx, Name};
use monadic_ai::cps::convert::cps_convert;
use monadic_ai::{cps, fj, lambda};

#[test]
fn the_same_context_types_drive_all_three_languages() {
    // The *types* below are the proof: `MonoCtx` and `KCallCtx<1>` from
    // mai-core instantiate analyses for CPS, the CESK machine and FJ alike.
    let cps_program = cps::programs::identity_application();
    let _cps_mono: cps::analysis::MonoShared =
        cps::analysis::analyse::<MonoCtx, _, _>(&cps_program);
    let _cps_one: cps::analysis::KCfaShared<1> =
        cps::analysis::analyse::<KCallCtx<1>, _, _>(&cps_program);

    let cesk_term = lambda::programs::identity_application();
    let _cesk_mono: lambda::analysis::MonoCeskShared =
        lambda::analysis::analyse::<MonoCtx, _, _>(&cesk_term);
    let _cesk_one: lambda::analysis::KCeskShared<1> =
        lambda::analysis::analyse::<KCallCtx<1>, _, _>(&cesk_term);

    let fj_program = fj::programs::pair_fst();
    let _fj_mono: fj::analysis::MonoFjShared = fj::analysis::analyse::<MonoCtx, _, _>(&fj_program);
    let _fj_one: fj::analysis::KFjShared<1> =
        fj::analysis::analyse::<KCallCtx<1>, _, _>(&fj_program);
}

#[test]
fn church_arithmetic_is_consistent_across_cps_and_cesk() {
    for (m, n, expected) in [(2usize, 2usize, 4usize), (2, 3, 8), (3, 2, 9)] {
        let term = lambda::programs::church_exponentiation(m, n);
        // CESK concrete evaluation decodes the numeral.
        assert_eq!(lambda::decode_church_numeral(&term), expected);
        // The CPS conversion of the same term halts concretely.
        let program = cps_convert(&term);
        assert!(cps::interpret_with_limit(&program, 2_000_000).halted());
        // Both abstract interpreters terminate on the smallest instance
        // (kept small so the whole suite stays fast in debug builds).
        if (m, n) == (2, 2) {
            assert!(!cps::analyse_mono(&program).is_empty());
            assert!(!lambda::analyse_mono(&term).is_empty());
        }
    }
}

#[test]
fn garbage_collection_and_counting_apply_to_every_substrate() {
    // GC'd and counting analyses exist (and terminate) for each language.
    let cps_program = cps::programs::garbage_chain(3);
    assert!(!cps::analyse_kcfa_shared_gc::<1>(&cps_program).is_empty());
    assert!(!cps::analyse_kcfa_with_count::<1>(&cps_program).is_empty());

    let term = lambda::programs::blur(2);
    assert!(!lambda::analyse_kcfa_shared_gc::<1>(&term).is_empty());
    assert!(!lambda::analyse_kcfa_with_count::<1>(&term).is_empty());

    let fj_program = fj::programs::two_cells();
    assert!(!fj::analyse_kcfa_shared_gc::<1>(&fj_program).is_empty());
    assert!(!fj::analyse_kcfa_with_count::<1>(&fj_program).is_empty());
}

#[test]
fn context_insensitive_java_analysis_conflates_exactly_like_the_lambda_ones() {
    // The hallmark of context-insensitivity is the same in all three
    // languages: distinct call/allocation sites collapse into one abstract
    // binding.
    let fan = cps::programs::fan_out(4);
    let cps_flows = cps::flow_map_of_store(cps::analyse_mono(&fan).store());
    assert_eq!(cps_flows[&Name::from("x")].len(), 4);

    let fj_program = fj::programs::two_cells();
    let fj_flows = fj::class_flow_map(fj::analyse_mono(&fj_program).store());
    let cell_classes: BTreeSet<_> = fj_flows
        .iter()
        .filter(|(name, _)| name.as_str() == "Cell.content")
        .flat_map(|(_, classes)| classes.clone())
        .collect();
    assert_eq!(cell_classes.len(), 2);
}
