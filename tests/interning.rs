//! Hash-consed state interning: the id-indexed engine layer and its
//! supporting cast (the `Interner`, the copy-on-write environments, the
//! pooled names) preserve structural semantics exactly.
//!
//! The unit suites of `mai-core` cover each piece in isolation; these
//! integration tests drive them through whole analyses: interner ids must
//! agree with structural equality on real machine states, the id-indexed
//! engine must agree with every other solver on the scaled k-CFA
//! worst-case family, the intern statistics must account for every
//! configuration, and environment sharing must be observable end to end.

use monadic_ai::core::intern::{EnvId, InternKey, Interner, StateId};
use monadic_ai::core::Name;
use monadic_ai::cps;
use monadic_ai::cps::programs::{kcfa_worst_case, kcfa_worst_case_scaled};

/// Interner ids agree with structural equality on real abstract machine
/// states (the property tests of `mai-core` cover synthetic values; this
/// drives full CPS states through the same law).
#[test]
fn interner_ids_agree_with_structural_equality_on_machine_states() {
    let program = kcfa_worst_case_scaled(2, 2);
    let result = cps::analyse_kcfa_shared::<1>(&program);
    let states: Vec<_> = result.states().iter().cloned().collect();

    let mut interner: Interner<_, StateId> = Interner::new();
    let ids: Vec<StateId> = states.iter().map(|s| interner.intern(s.clone())).collect();
    // Distinct states get distinct ids; re-interning is a hit on the same id.
    assert_eq!(interner.len(), states.len());
    for (state, id) in states.iter().zip(ids.iter()) {
        assert_eq!(interner.intern(state.clone()), *id);
        assert_eq!(interner.resolve(*id), state);
        assert_eq!(interner.get(state), Some(*id));
    }
    assert_eq!(interner.hits(), states.len());
    // Ids are dense: they index the value table in insertion order.
    for (index, id) in ids.iter().enumerate() {
        assert_eq!(id.index(), index);
    }
}

/// The id-indexed engine, the structural engine, the rescanning engine and
/// Kleene iteration agree on the scaled worst-case family — the E10
/// workloads — and the intern statistics account for every configuration.
#[test]
fn interned_engine_agrees_on_the_scaled_worst_case_family() {
    for (n, width) in [(3usize, 2usize), (4, 2), (3, 4)] {
        let program = kcfa_worst_case_scaled(n, width);
        let kleene = cps::analyse_kcfa_shared::<1>(&program);
        let (interned, stats) = cps::analyse_kcfa_shared_worklist::<1>(&program);
        let (structural, structural_stats) = cps::analyse_kcfa_shared_structural::<1>(&program);
        let (rescan, _) = cps::analyse_kcfa_shared_rescan::<1>(&program);

        assert_eq!(interned, kleene, "kcfa-worst-{n}w{width}: interned differs");
        assert_eq!(
            structural, kleene,
            "kcfa-worst-{n}w{width}: structural differs"
        );
        assert_eq!(rescan, kleene, "kcfa-worst-{n}w{width}: rescan differs");

        // Intern accounting: one miss per distinct configuration, hits for
        // every re-derivation, and the id space is exactly the state set.
        assert_eq!(stats.distinct_states, interned.len());
        assert_eq!(stats.intern_misses, interned.len());
        assert!(stats.intern_hits > 0);
        assert!(stats.intern_hit_rate() > 0.0 && stats.intern_hit_rate() < 1.0);

        // The engines run the same frontier strategy; the id-indexed
        // engine's tighter read sets may re-step strictly less, never more.
        assert!(stats.states_stepped <= structural_stats.states_stepped);
        assert!(stats.store_joins <= structural_stats.store_joins);
        assert!(stats.iterations <= structural_stats.iterations);
        assert_eq!(stats.rebuild_rounds, 0);
    }
}

/// `distinct_env_count` (the language-boundary half of the intern stats)
/// counts structurally distinct environments, and stays below the
/// configuration count.
#[test]
fn distinct_env_counts_are_consistent() {
    let program = kcfa_worst_case(3);
    let result = cps::analyse_kcfa_shared::<1>(&program);
    let envs = cps::distinct_env_count(&result);
    assert!(envs > 0);
    assert!(envs <= result.len());

    // An EnvId interner over the same environments agrees.
    let mut interner: Interner<_, EnvId> = Interner::new();
    for (ps, _) in result.states() {
        interner.intern(ps.env.clone());
    }
    assert_eq!(interner.len(), envs);
}

/// Copy-on-write environments share allocations end to end: states whose
/// environments are structurally equal compare equal regardless of whether
/// they share the allocation, and the pooled names make variable lookups
/// pointer-cheap.
#[test]
fn cow_environments_and_pooled_names_preserve_structure() {
    let program = kcfa_worst_case(2);
    let a = cps::analyse_kcfa_shared::<1>(&program);
    let b = cps::analyse_kcfa_shared::<1>(&program);
    // Two independent runs build environments in fresh allocations…
    assert_eq!(a, b, "independent runs must agree structurally");

    // …while the global name pool deduplicates every identifier: the same
    // variable parsed twice shares one allocation.
    let x1 = Name::from("chooser");
    let x2 = Name::new(String::from("chooser"));
    assert!(x1.ptr_eq(&x2));

    // Environment maps expose BTreeMap-like structural views.
    for (ps, _) in a.states() {
        for (var, _addr) in ps.env.iter() {
            assert!(!var.as_str().is_empty());
        }
    }
}
