//! Randomized differential testing of the analysis engines and carriers.
//!
//! A proptest generator produces small (possibly open, possibly diverging)
//! λ-terms; each term is analysed as a CESK machine (`mai-lambda`) and,
//! through the CPS transform, as a CPS machine (`mai-cps`), across the
//! configuration matrix context ∈ {0CFA (mono), k-CFA k=0, k-CFA k=1} ×
//! store ∈ {basic, counting} × {plain, abstract GC}, and each
//! configuration is solved by every engine and carrier in the tree:
//!
//! * naive Kleene iteration (`analyse*` — the paper's literal algorithm,
//!   the ground truth),
//! * the PR-1 rescanning worklist engine (`analyse_*_rescan`),
//! * the PR-2 structural-key incremental engine (`analyse_*_structural`),
//! * the PR-3 id-indexed engine on the `Rc`-closure carrier
//!   (`analyse_*_worklist`),
//! * the id-indexed engine on the direct-style carrier
//!   (`analyse_*_direct`),
//! * the sharded parallel driver (`analyse_*_parallel`, this PR), run at
//!   1, 2 and 4 worker threads.
//!
//! All five sequential solvers must produce bit-identical fixpoints, and
//! the parallel driver must additionally reproduce the sequential direct
//! engine's *deterministic work counters* (steps, joins, rounds,
//! widenings, re-enqueues, intern traffic) at every thread count — only
//! its timing gauges (`steal_events`, `shard_imbalance`) and the
//! fold-order-dependent `store_bytes_shared` sample may vary.  Two drivers run the
//! suite: a `proptest!` block (deterministic fixed-seed stub; case count
//! pinned in CI via `PROPTEST_CASES`) covering the 1CFA shared-store
//! configuration on every case, and an explicit list of **committed
//! seeds** (below) that replays the *full* matrix reproducibly — change a
//! seed and the whole derived program corpus changes, so the list is part
//! of the reviewable surface.

use std::collections::BTreeSet;

use mai_core::engine::EngineStats;
use mai_core::store::{BasicStore, CountingStore};
use mai_core::{KCallAddr, KCallCtx, MonoAddr, MonoCtx};
use mai_lambda::syntax::TermBuilder;
use mai_lambda::Term;
use proptest::prelude::*;

// The committed seeds and the deterministic λ-term generator live in
// `tests/common` so the governance suite replays the same corpus.
mod common;
use common::{shape_strategy, term_from_seed, to_term, COMMITTED_SEEDS, PARALLEL_THREADS};

// ---------------------------------------------------------------------------
// The per-configuration engine pentagon
// ---------------------------------------------------------------------------

/// Asserts that a parallel run reproduced the sequential direct engine's
/// deterministic work counters (the timing gauges `steal_events` /
/// `shard_imbalance` and the fold-order-dependent `store_bytes_shared`
/// sample are exempt by design; `sync_rounds` must equal the parallel
/// run's own round count).
fn assert_parallel_counters(label: &str, threads: usize, seq: &EngineStats, par: &EngineStats) {
    let ctx = format!("{label} at {threads} threads");
    assert_eq!(par.iterations, seq.iterations, "{ctx}: iterations");
    assert_eq!(
        par.states_stepped, seq.states_stepped,
        "{ctx}: states_stepped"
    );
    assert_eq!(par.cache_hits, seq.cache_hits, "{ctx}: cache_hits");
    assert_eq!(par.reenqueued, seq.reenqueued, "{ctx}: reenqueued");
    assert_eq!(
        par.store_joins_applied, seq.store_joins_applied,
        "{ctx}: store_joins_applied"
    );
    assert_eq!(par.widen_applied, seq.widen_applied, "{ctx}: widen_applied");
    assert_eq!(par.store_joins, seq.store_joins, "{ctx}: store_joins");
    assert_eq!(
        par.rebuild_rounds, seq.rebuild_rounds,
        "{ctx}: rebuild_rounds"
    );
    assert_eq!(par.peak_frontier, seq.peak_frontier, "{ctx}: peak_frontier");
    assert_eq!(par.intern_hits, seq.intern_hits, "{ctx}: intern_hits");
    assert_eq!(par.intern_misses, seq.intern_misses, "{ctx}: intern_misses");
    assert_eq!(
        par.distinct_states, seq.distinct_states,
        "{ctx}: distinct_states"
    );
    assert_eq!(par.spine_clones, seq.spine_clones, "{ctx}: spine_clones");
    assert_eq!(par.sync_rounds, par.iterations, "{ctx}: sync_rounds");
}

/// Solves one CESK configuration with all five engine/carrier combinations
/// (plus the GC'd variants of each) and asserts them identical.
fn cesk_pentagon<C, S>(term: &Term)
where
    C: mai_core::addr::Context + std::hash::Hash,
    S: mai_core::store::StoreLike<C::Addr, D = BTreeSet<mai_lambda::Storable<C::Addr>>>
        + mai_core::store::StoreDelta<C::Addr>
        + mai_core::monad::Value
        + mai_core::lattice::WidenLattice,
{
    use mai_lambda::analysis as la;
    type Dom<C, S> =
        mai_core::SharedStoreDomain<mai_lambda::PState<<C as mai_core::addr::Context>::Addr>, C, S>;

    let kleene: Dom<C, S> = la::analyse::<C, S, _>(term);
    let (interned, _): (Dom<C, S>, _) = la::analyse_worklist::<C, S, _>(term);
    let (structural, _): (Dom<C, S>, _) = la::analyse_worklist_structural::<C, S, _>(term);
    let (rescan, _): (Dom<C, S>, _) = la::analyse_worklist_rescan::<C, S, _>(term);
    let (direct, direct_stats): (Dom<C, S>, _) = la::analyse_worklist_direct::<C, S, _>(term);
    assert_eq!(interned, kleene, "CESK interned != Kleene");
    assert_eq!(structural, kleene, "CESK structural != Kleene");
    assert_eq!(rescan, kleene, "CESK rescan != Kleene");
    assert_eq!(direct, kleene, "CESK direct != Kleene");
    for threads in PARALLEL_THREADS {
        let (parallel, par_stats): (Dom<C, S>, _) =
            la::analyse_worklist_parallel::<C, S, _>(term, threads);
        assert_eq!(
            parallel, kleene,
            "CESK parallel != Kleene at {threads} threads"
        );
        assert_parallel_counters("CESK", threads, &direct_stats, &par_stats);
    }

    let gc_kleene: Dom<C, S> = la::analyse_with_gc::<C, S, _>(term);
    let (gc_interned, _): (Dom<C, S>, _) = la::analyse_with_gc_worklist::<C, S, _>(term);
    let (gc_structural, _): (Dom<C, S>, _) =
        la::analyse_with_gc_worklist_structural::<C, S, _>(term);
    let (gc_rescan, _): (Dom<C, S>, _) = la::analyse_with_gc_worklist_rescan::<C, S, _>(term);
    let (gc_direct, gc_direct_stats): (Dom<C, S>, _) =
        la::analyse_with_gc_worklist_direct::<C, S, _>(term);
    assert_eq!(gc_interned, gc_kleene, "CESK gc interned != Kleene");
    assert_eq!(gc_structural, gc_kleene, "CESK gc structural != Kleene");
    assert_eq!(gc_rescan, gc_kleene, "CESK gc rescan != Kleene");
    assert_eq!(gc_direct, gc_kleene, "CESK gc direct != Kleene");
    for threads in PARALLEL_THREADS {
        let (gc_parallel, gc_par_stats): (Dom<C, S>, _) =
            la::analyse_with_gc_parallel::<C, S, _>(term, threads);
        assert_eq!(
            gc_parallel, gc_kleene,
            "CESK gc parallel != Kleene at {threads} threads"
        );
        assert_parallel_counters("CESK gc", threads, &gc_direct_stats, &gc_par_stats);
    }
}

/// Solves one CPS configuration with all five engine/carrier combinations
/// (plus the GC'd variants) and asserts them identical.
fn cps_pentagon<C, S>(program: &mai_cps::CExp)
where
    C: mai_core::addr::Context + std::hash::Hash,
    S: mai_core::store::StoreLike<C::Addr, D = BTreeSet<mai_cps::Val<C::Addr>>>
        + mai_core::store::StoreDelta<C::Addr>
        + mai_core::monad::Value
        + mai_core::lattice::WidenLattice,
{
    use mai_cps::analysis as ca;
    type Dom<C, S> =
        mai_core::SharedStoreDomain<mai_cps::PState<<C as mai_core::addr::Context>::Addr>, C, S>;

    let kleene: Dom<C, S> = ca::analyse::<C, S, _>(program);
    let (interned, _): (Dom<C, S>, _) = ca::analyse_worklist::<C, S, _>(program);
    let (structural, _): (Dom<C, S>, _) = ca::analyse_worklist_structural::<C, S, _>(program);
    let (rescan, _): (Dom<C, S>, _) = ca::analyse_worklist_rescan::<C, S, _>(program);
    let (direct, direct_stats): (Dom<C, S>, _) = ca::analyse_worklist_direct::<C, S, _>(program);
    assert_eq!(interned, kleene, "CPS interned != Kleene");
    assert_eq!(structural, kleene, "CPS structural != Kleene");
    assert_eq!(rescan, kleene, "CPS rescan != Kleene");
    assert_eq!(direct, kleene, "CPS direct != Kleene");
    for threads in PARALLEL_THREADS {
        let (parallel, par_stats): (Dom<C, S>, _) =
            ca::analyse_worklist_parallel::<C, S, _>(program, threads);
        assert_eq!(
            parallel, kleene,
            "CPS parallel != Kleene at {threads} threads"
        );
        assert_parallel_counters("CPS", threads, &direct_stats, &par_stats);
    }

    let gc_kleene: Dom<C, S> = ca::analyse_gc::<C, S, _>(program);
    let (gc_interned, _): (Dom<C, S>, _) = ca::analyse_gc_worklist::<C, S, _>(program);
    let (gc_structural, _): (Dom<C, S>, _) = ca::analyse_gc_worklist_structural::<C, S, _>(program);
    let (gc_rescan, _): (Dom<C, S>, _) = ca::analyse_gc_worklist_rescan::<C, S, _>(program);
    let (gc_direct, gc_direct_stats): (Dom<C, S>, _) =
        ca::analyse_gc_worklist_direct::<C, S, _>(program);
    assert_eq!(gc_interned, gc_kleene, "CPS gc interned != Kleene");
    assert_eq!(gc_structural, gc_kleene, "CPS gc structural != Kleene");
    assert_eq!(gc_rescan, gc_kleene, "CPS gc rescan != Kleene");
    assert_eq!(gc_direct, gc_kleene, "CPS gc direct != Kleene");
    for threads in PARALLEL_THREADS {
        let (gc_parallel, gc_par_stats): (Dom<C, S>, _) =
            ca::analyse_gc_worklist_parallel::<C, S, _>(program, threads);
        assert_eq!(
            gc_parallel, gc_kleene,
            "CPS gc parallel != Kleene at {threads} threads"
        );
        assert_parallel_counters("CPS gc", threads, &gc_direct_stats, &gc_par_stats);
    }
}

/// The full configuration matrix for one generated term, both languages:
/// {mono, k-CFA k=0, k-CFA k=1} × {basic, counting} × {plain, GC} × five
/// engines.
fn full_matrix(term: &Term) {
    type LStorable<A> = mai_lambda::Storable<A>;
    type CVal<A> = mai_cps::Val<A>;

    // CESK side.
    cesk_pentagon::<MonoCtx, BasicStore<MonoAddr, LStorable<MonoAddr>>>(term);
    cesk_pentagon::<MonoCtx, CountingStore<MonoAddr, LStorable<MonoAddr>>>(term);
    cesk_pentagon::<KCallCtx<0>, BasicStore<KCallAddr, LStorable<KCallAddr>>>(term);
    cesk_pentagon::<KCallCtx<0>, CountingStore<KCallAddr, LStorable<KCallAddr>>>(term);
    cesk_pentagon::<KCallCtx<1>, BasicStore<KCallAddr, LStorable<KCallAddr>>>(term);
    cesk_pentagon::<KCallCtx<1>, CountingStore<KCallAddr, LStorable<KCallAddr>>>(term);

    // CPS side, through the CPS transform.
    let program = mai_cps::cps_convert(term);
    cps_pentagon::<MonoCtx, BasicStore<MonoAddr, CVal<MonoAddr>>>(&program);
    cps_pentagon::<MonoCtx, CountingStore<MonoAddr, CVal<MonoAddr>>>(&program);
    cps_pentagon::<KCallCtx<0>, BasicStore<KCallAddr, CVal<KCallAddr>>>(&program);
    cps_pentagon::<KCallCtx<0>, CountingStore<KCallAddr, CVal<KCallAddr>>>(&program);
    cps_pentagon::<KCallCtx<1>, BasicStore<KCallAddr, CVal<KCallAddr>>>(&program);
    cps_pentagon::<KCallCtx<1>, CountingStore<KCallAddr, CVal<KCallAddr>>>(&program);
}

#[test]
fn committed_seeds_replay_the_full_matrix() {
    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        full_matrix(&term);
    }
}

/// The epoch budgets every elastic differential run is replayed at:
/// the barrier-delegation point, the smallest genuinely-elastic budget,
/// and a deep budget that lets sub-frontiers run well ahead of the merge.
const ELASTIC_EPOCHS: [usize; 3] = [1, 2, 8];

/// The barrier-elastic driver against the sequential direct oracle over
/// the committed corpus: λ and CPS, plain and GC'd, 1CFA shared store, at
/// every `threads × epochs` point of the committed grid.  Only **fixpoint
/// equality** is asserted — elastic work counters are timing-dependent by
/// design (a worker may legitimately re-step a state it saw stale), so
/// unlike [`assert_parallel_counters`] no step/join parity is demanded.
#[test]
fn elastic_matches_direct_across_committed_seeds() {
    use mai_core::engine::ParallelConfig;
    use mai_cps::analysis as ca;
    use mai_lambda::analysis as la;
    type Ctx = KCallCtx<1>;
    type LStore = BasicStore<KCallAddr, mai_lambda::Storable<KCallAddr>>;
    type CStore = BasicStore<KCallAddr, mai_cps::Val<KCallAddr>>;
    type LDom = mai_core::SharedStoreDomain<mai_lambda::PState<KCallAddr>, Ctx, LStore>;
    type CDom = mai_core::SharedStoreDomain<mai_cps::PState<KCallAddr>, Ctx, CStore>;

    for seed in COMMITTED_SEEDS {
        let term = term_from_seed(seed);
        let program = mai_cps::cps_convert(&term);
        let (l_direct, _): (LDom, _) = la::analyse_worklist_direct::<Ctx, LStore, _>(&term);
        let (l_gc_direct, _): (LDom, _) =
            la::analyse_with_gc_worklist_direct::<Ctx, LStore, _>(&term);
        let (c_direct, _): (CDom, _) = ca::analyse_worklist_direct::<Ctx, CStore, _>(&program);
        let (c_gc_direct, _): (CDom, _) =
            ca::analyse_gc_worklist_direct::<Ctx, CStore, _>(&program);
        for threads in PARALLEL_THREADS {
            for epochs in ELASTIC_EPOCHS {
                let config = ParallelConfig { threads, epochs };
                let ctx = format!("seed {seed:#x} at {threads} threads, {epochs} epochs");
                let (l, _): (LDom, _) =
                    la::analyse_worklist_elastic::<Ctx, LStore, _>(&term, config);
                assert_eq!(l, l_direct, "CESK elastic != direct for {ctx}");
                let (lg, _): (LDom, _) =
                    la::analyse_with_gc_elastic::<Ctx, LStore, _>(&term, config);
                assert_eq!(lg, l_gc_direct, "CESK gc elastic != direct for {ctx}");
                let (c, _): (CDom, _) =
                    ca::analyse_worklist_elastic::<Ctx, CStore, _>(&program, config);
                assert_eq!(c, c_direct, "CPS elastic != direct for {ctx}");
                let (cg, _): (CDom, _) =
                    ca::analyse_gc_worklist_elastic::<Ctx, CStore, _>(&program, config);
                assert_eq!(cg, c_gc_direct, "CPS gc elastic != direct for {ctx}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The crafted two-shard staleness workload
// ---------------------------------------------------------------------------

/// A heap value for the staleness machine: a tag the reader's branching
/// depends on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Cell(u8);

impl mai_core::gc::Touches<u8> for Cell {
    fn touches(&self) -> BTreeSet<u8> {
        BTreeSet::new()
    }
}

/// A state of the two-shard staleness machine (see [`staleness_step`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct TwoShard(u32);

impl mai_core::StateRoots for TwoShard {
    type Addr = u8;

    fn state_roots(&self) -> BTreeSet<u8> {
        if self.0 == 11 {
            [0u8].into_iter().collect()
        } else {
            BTreeSet::new()
        }
    }
}

type StaleStore = BasicStore<u8, Cell>;

/// The two-shard staleness workload: the initial state forks a **writer
/// chain** (`1 → 2 → 3 ⟨binds addr 0 := Cell(9)⟩ → 4`) and a **reader
/// chain** (`10 → 11 ⟨reads addr 0⟩ → …`).  Under the elastic driver with
/// `epochs ≥ 2` and ≥ 2 workers the chains advance in separate
/// sub-frontiers, so the reader's epoch-2 step of state 11 can run before
/// the writer's shard has published its delta — the read is **stale** and
/// the value-dependent successor `20 + 9` is missed.  The merge then
/// reports address 0 as changed, the reverse dependency index re-seeds
/// state 11 into the next frontier, and the re-step against the merged
/// store produces exactly the successors the direct engine saw — which is
/// the staleness argument this test pins: the fixpoint is identical no
/// matter how late any shard's delta was published.
fn staleness_step(ps: TwoShard, g: u64, s: StaleStore) -> Vec<((TwoShard, u64), StaleStore)> {
    use mai_core::store::StoreLike;
    match ps.0 {
        0 => vec![((TwoShard(1), g), s.clone()), ((TwoShard(10), g), s)],
        3 => {
            let bound = s.bind(0u8, [Cell(9)].into_iter().collect());
            vec![((TwoShard(4), g), bound)]
        }
        11 => {
            let mut branches = vec![((TwoShard(12), g), s.clone())];
            for Cell(v) in s.fetch(&0u8) {
                branches.push(((TwoShard(20 + v as u32), g), s.clone()));
            }
            branches
        }
        n if n == 4 || n == 12 || n >= 20 => vec![((ps, g), s)],
        n => vec![((TwoShard(n + 1), g), s)],
    }
}

#[test]
fn stale_shard_delta_reconverges_through_the_dependency_index() {
    use mai_core::engine::{DirectCollecting, ParallelCollecting, ParallelConfig};
    type Dom = mai_core::SharedStoreDomain<TwoShard, u64, StaleStore>;

    let (direct, _) = <Dom as DirectCollecting<TwoShard, u64, StaleStore>>::explore_frontier_direct(
        &staleness_step,
        TwoShard(0),
    );
    // The reader really does consume the writer's delta: the
    // value-dependent successor is in the oracle fixpoint.
    assert!(
        direct.states().iter().any(|(ps, _)| *ps == TwoShard(29)),
        "oracle never saw the heap-dependent successor — workload is vacuous"
    );
    for threads in PARALLEL_THREADS {
        for epochs in ELASTIC_EPOCHS {
            let (elastic, stats) =
                <Dom as ParallelCollecting<TwoShard, u64, StaleStore>>::explore_frontier_elastic(
                    &staleness_step,
                    TwoShard(0),
                    ParallelConfig { threads, epochs },
                );
            assert_eq!(
                elastic, direct,
                "stale delta not re-converged at {threads} threads, {epochs} epochs"
            );
            assert_eq!(stats.sync_rounds, stats.iterations);
        }
    }
}

// ---------------------------------------------------------------------------
// The committed interval counting-loop workloads (infinite-height domain)
// ---------------------------------------------------------------------------

/// A program point of the interval counting loop (see [`counting_step`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct CountSt(u8);

impl mai_core::StateRoots for CountSt {
    type Addr = u8;

    fn state_roots(&self) -> BTreeSet<u8> {
        // Only the loop head reads the counter cell, so only it re-enters
        // the frontier when the cell grows — the re-enqueue channel the
        // engines' widening-point selection watches.
        if self.0 == 1 {
            [0u8].into_iter().collect()
        } else {
            BTreeSet::new()
        }
    }
}

type IStore = mai_core::store::IntervalStore<u8>;
type IDom = mai_core::SharedStoreDomain<CountSt, u64, IStore>;

/// The counting-loop workload over the infinite-height interval domain:
/// `0 ⟨x := 0⟩ → 1 ⟨loop head: exit | x := (x ⊓ guard) + 1; goto 1⟩ → 2`.
/// Under plain join the loop-head contribution grows `x` by one every
/// round — the latent non-termination the engines' widening machinery
/// exists for.  `cap = None` counts without bound; `cap = Some(c)` guards
/// the increment with `x < c`, which the narrowing post-pass can recover
/// after the widened ascent overshoots to `+∞`.
fn counting_step(
    cap: Option<i64>,
) -> impl Fn(CountSt, u64, IStore) -> Vec<((CountSt, u64), IStore)> + Sync {
    use mai_core::lattice::{Interval, Lattice, MeetLattice};
    use mai_core::store::StoreLike;
    move |ps, g, s| match ps.0 {
        0 => vec![((CountSt(1), g), s.bind(0u8, Interval::singleton(0)))],
        1 => {
            let x = s.fetch(&0u8);
            let body = match cap {
                Some(c) => x.meet(Interval::at_most(c - 1)),
                None => x,
            };
            let mut branches = vec![((CountSt(2), g), s.clone())];
            if !body.is_bottom() {
                let incremented = body + Interval::singleton(1);
                branches.push(((CountSt(1), g), s.replace(0u8, incremented)));
            }
            branches
        }
        _ => vec![((ps, g), s)],
    }
}

/// The same loop on the `Rc`-closure carrier (`StorePassing`), desugared
/// by `run_store_passing` exactly as the language crates' `mnext` is —
/// the carrier-duality half of the interval workload.
fn m_counting_step(
    cap: Option<i64>,
) -> impl Fn(
    CountSt,
) -> <mai_core::monad::StorePassing<u64, IStore> as mai_core::monad::MonadFamily>::M<CountSt> {
    use mai_core::lattice::{Interval, Lattice, MeetLattice};
    use mai_core::monad::{
        MonadFamily, MonadPlus, MonadState, MonadTrans, StateT, StorePassing, VecM,
    };
    use mai_core::store::StoreLike;
    type M = StorePassing<u64, IStore>;
    move |ps| match ps.0 {
        0 => {
            let write =
                <M as MonadTrans>::lift(<StateT<IStore, VecM> as MonadState<IStore>>::modify(
                    move |s: IStore| s.bind(0u8, Interval::singleton(0)),
                ));
            M::bind(write, |_| M::pure(CountSt(1)))
        }
        1 => {
            let fetched = <M as MonadTrans>::lift(
                <StateT<IStore, VecM> as MonadState<IStore>>::gets(|s: &IStore| s.fetch(&0u8)),
            );
            M::bind(fetched, move |x: Interval| {
                let body = match cap {
                    Some(c) => x.meet(Interval::at_most(c - 1)),
                    None => x,
                };
                let exit = M::pure(CountSt(2));
                if body.is_bottom() {
                    exit
                } else {
                    let incremented = body + Interval::singleton(1);
                    let write = <M as MonadTrans>::lift(<StateT<IStore, VecM> as MonadState<
                        IStore,
                    >>::modify(
                        move |s: IStore| s.replace(0u8, incremented),
                    ));
                    M::mplus(exit, M::bind(write, |_| M::pure(CountSt(1))))
                }
            })
        }
        _ => M::pure(ps),
    }
}

#[test]
fn interval_counting_loop_diverges_without_widening_and_converges_with_it() {
    use mai_core::engine::{Budget, ParallelConfig, WidenPolicy};
    use mai_core::lattice::Interval;
    use mai_core::monad::run_store_passing;
    use mai_core::store::StoreLike;
    use mai_core::{DirectCollecting, ExhaustReason, Outcome, ParallelCollecting, SolveFrom};

    for (cap, expected) in [
        (None, Interval::at_least(0)),
        (Some(10), Interval::range(0, 10)),
    ] {
        let step = counting_step(cap);
        let label = match cap {
            None => "uncapped",
            Some(_) => "capped",
        };

        // Without widening the uncapped ascent never stabilises: a step
        // budget is the only thing that stops it, and it must report
        // cleanly as budget exhaustion (an under-approximation), not
        // convergence.  The capped loop has finite height, so join-only
        // iteration legitimately completes — and pins the precision the
        // narrowing pass must recover after widening overshoots.
        let fuel = Budget::unlimited().with_max_steps(64);
        let (join_only, _) =
            <IDom as DirectCollecting<CountSt, u64, IStore>>::explore_frontier_governed(
                &step,
                SolveFrom::Fresh(CountSt(0)),
                &fuel,
            );
        match cap {
            None => assert_eq!(
                join_only.exhaust_reason(),
                Some(ExhaustReason::StepBudget),
                "{label}: join-only iteration must starve the step budget"
            ),
            Some(_) => {
                let Outcome::Complete(finite) = join_only else {
                    panic!("{label}: join-only iteration of a finite chain must converge")
                };
                assert_eq!(
                    finite.store().fetch(&0u8),
                    expected,
                    "{label}: join-only counter bound"
                );
            }
        }

        // With widening the same solve completes, and the outcome shape
        // keeps widening-forced convergence distinguishable from budget
        // exhaustion.
        let widened = Budget::unlimited().with_widening(WidenPolicy::after_growths(3));
        let (outcome, seq_stats) =
            <IDom as DirectCollecting<CountSt, u64, IStore>>::explore_frontier_governed(
                &step,
                SolveFrom::Fresh(CountSt(0)),
                &widened,
            );
        let Outcome::Complete(sequential) = outcome else {
            panic!("{label}: widened direct solve must converge");
        };
        assert_eq!(
            sequential.store().fetch(&0u8),
            expected,
            "{label}: widened (then narrowed) counter bound"
        );
        assert!(seq_stats.widen_applied > 0, "{label}: widening never fired");

        // Carrier duality: the Rc-closure step desugars to the identical
        // solve — fixpoint and every work counter byte-for-byte.
        let m_step = m_counting_step(cap);
        let rc_step = move |ps: CountSt, g: u64, s: IStore| run_store_passing(m_step(ps), g, s);
        let (rc_outcome, rc_stats) =
            <IDom as DirectCollecting<CountSt, u64, IStore>>::explore_frontier_governed(
                &rc_step,
                SolveFrom::Fresh(CountSt(0)),
                &widened,
            );
        let Outcome::Complete(rc) = rc_outcome else {
            panic!("{label}: widened Rc-carrier solve must converge");
        };
        assert_eq!(rc, sequential, "{label}: Rc carrier != direct carrier");
        assert_eq!(rc_stats, seq_stats, "{label}: Rc carrier work counters");

        // The barrier-parallel driver widens at the coordinator only, so
        // the fixpoint *and* the deterministic counters reproduce the
        // sequential direct engine at every thread count.
        for threads in PARALLEL_THREADS {
            let (outcome, par_stats) =
                <IDom as ParallelCollecting<CountSt, u64, IStore>>::explore_frontier_parallel_governed(
                    &step,
                    SolveFrom::Fresh(CountSt(0)),
                    threads,
                    &widened,
                )
                .expect("parallel widened solve must not fault");
            let Outcome::Complete(parallel) = outcome else {
                panic!("{label}: widened parallel solve must converge at {threads} threads");
            };
            assert_eq!(
                parallel, sequential,
                "{label}: parallel != direct at {threads} threads"
            );
            assert_parallel_counters(
                &format!("interval {label}"),
                threads,
                &seq_stats,
                &par_stats,
            );

            // The elastic driver re-steps states it saw stale, so its
            // widening counters are timing-dependent by design — only the
            // fixpoint is pinned, at every (threads, epochs) grid point.
            for epochs in ELASTIC_EPOCHS {
                let (outcome, _) =
                    <IDom as ParallelCollecting<CountSt, u64, IStore>>::explore_frontier_elastic_governed(
                        &step,
                        SolveFrom::Fresh(CountSt(0)),
                        ParallelConfig { threads, epochs },
                        &widened,
                    )
                    .expect("elastic widened solve must not fault");
                let Outcome::Complete(elastic) = outcome else {
                    panic!(
                        "{label}: widened elastic solve must converge at {threads} threads, {epochs} epochs"
                    );
                };
                assert_eq!(
                    elastic, sequential,
                    "{label}: elastic != direct at {threads} threads, {epochs} epochs"
                );
            }
        }

        // Soundness against the whole-domain widened Kleene oracle: the
        // engines' per-address widening points are at least as precise,
        // never unsound.
        let oracle: IDom = mai_core::collect::explore_fp_widened::<
            mai_core::monad::StorePassing<u64, IStore>,
            CountSt,
            IDom,
            _,
        >(m_counting_step(cap), CountSt(0), 3, 2);
        assert!(
            mai_core::Lattice::leq(&sequential, &oracle),
            "{label}: engine fixpoint is not below the widened Kleene oracle"
        );
    }
}

#[test]
fn committed_seeds_derive_a_stable_corpus() {
    // The corpus is part of the reviewable surface: if the generator or a
    // seed changes, this digest moves and the diff shows it.
    let rendered: Vec<String> = COMMITTED_SEEDS
        .iter()
        .map(|seed| term_from_seed(*seed).to_string())
        .collect();
    // At least one generated program must actually exercise application
    // (the matrix on a corpus of bare variables would be vacuous).
    assert!(rendered.iter().any(|t| t.contains('(')));
    let digest = mai_core::fx_hash_of(&rendered);
    assert_eq!(
        digest, 0x576f_8cb3_103b_c135,
        "committed differential corpus changed: {rendered:#?}"
    );
}

proptest! {
    /// Every random term: the 1CFA shared-store configuration (the one the
    /// benchmarks run) across all five engines, both languages, plus the
    /// GC'd direct-vs-Rc pair.
    #[test]
    fn prop_engines_agree_on_random_terms(shape in shape_strategy()) {
        let term = to_term(&shape, &mut TermBuilder::new());
        cesk_pentagon::<KCallCtx<1>, BasicStore<KCallAddr, mai_lambda::Storable<KCallAddr>>>(&term);
        let program = mai_cps::cps_convert(&term);
        cps_pentagon::<KCallCtx<1>, BasicStore<KCallAddr, mai_cps::Val<KCallAddr>>>(&program);
    }
}
