//! Tracing is observation, never behaviour: the on/off parity suite.
//!
//! Every rung of the fixpoint ladder — Kleene iteration (`explore_fp`),
//! the rescanning and structural worklist engines, the id-indexed
//! incremental engine, the direct-carrier engine and the sharded parallel
//! driver — has a `_traced` entry point that threads a
//! [`TraceSink`](monadic_ai::core::telemetry::TraceSink) through the
//! solve.  The telemetry layer's central guarantee is that the sink is
//! write-only: attaching a recording [`TraceBuffer`] must reproduce the
//! untraced fixpoint **and** the untraced [`EngineStats`] bit-for-bit,
//! while still delivering one [`RoundTrace`] per solver round.  These
//! tests assert that parity over the kCFA workload family, across all
//! three language substrates, and validate the Chrome trace-event export
//! schema end to end.
//!
//! [`TraceBuffer`]: monadic_ai::core::telemetry::TraceBuffer
//! [`RoundTrace`]: monadic_ai::core::telemetry::RoundTrace

use monadic_ai::core::collect::{explore_fp, explore_fp_traced};
use monadic_ai::core::engine::{
    explore_worklist_rescan_stats, explore_worklist_rescan_traced_stats, explore_worklist_stats,
    explore_worklist_structural_stats, explore_worklist_structural_traced_stats,
    explore_worklist_traced_stats, EngineStats,
};
use monadic_ai::core::telemetry::TraceBuffer;
use monadic_ai::core::{KCallAddr, KCallCtx, SharedStoreDomain, StorePassing};
use monadic_ai::cps::analysis::KStore;
use monadic_ai::cps::programs::{id_chain, kcfa_worst_case, kcfa_worst_case_scaled};
use monadic_ai::cps::PState;
use monadic_ai::{cps, fj, lambda};

type Ctx = KCallCtx<1>;
type M = StorePassing<Ctx, KStore>;
type Domain = SharedStoreDomain<PState<KCallAddr>, Ctx, KStore>;

/// The workloads the parity suite sweeps: a monotone chain, the kCFA
/// worst case and its widened (rebuild-triggering) scaled variant.
fn corpus() -> Vec<monadic_ai::cps::syntax::CExp> {
    vec![
        id_chain(3),
        kcfa_worst_case(2),
        kcfa_worst_case_scaled(2, 4),
    ]
}

/// Sequential rounds decompose into step + join only; the sync share is
/// the parallel driver's alone.
fn assert_sequential_rounds(trace: &TraceBuffer, stats: &EngineStats, label: &str) {
    assert_eq!(
        trace.rounds.len(),
        stats.iterations,
        "{label}: one RoundTrace per solver round"
    );
    assert!(
        trace.rounds.iter().all(|r| r.sync_ns == 0),
        "{label}: sequential engines have no sync phase"
    );
    assert_eq!(
        trace.rounds.iter().map(|r| r.joins).sum::<usize>(),
        stats.store_joins,
        "{label}: per-round joins sum to the engine counter"
    );
    assert_eq!(
        trace.rounds.iter().filter(|r| r.rebuild).count(),
        stats.rebuild_rounds,
        "{label}: rebuild rounds are flagged"
    );
}

#[test]
fn kleene_traced_matches_untraced() {
    for program in corpus() {
        let untraced: Domain =
            explore_fp::<M, _, _, _>(cps::mnext::<M, KCallAddr>, PState::inject(program.clone()));
        let mut trace = TraceBuffer::new();
        let traced: Domain = explore_fp_traced::<M, _, _, _, _>(
            cps::mnext::<M, KCallAddr>,
            PState::inject(program),
            &mut trace,
        );
        assert_eq!(traced, untraced, "Kleene fixpoint changed under tracing");
        assert!(!trace.rounds.is_empty());
        assert!(trace.rounds.iter().all(|r| r.sync_ns == 0));
        // Kleene re-steps the whole domain each round, so the frontier is
        // the domain size and grows monotonically.
        let frontiers: Vec<usize> = trace.rounds.iter().map(|r| r.frontier).collect();
        assert!(frontiers.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*frontiers.last().unwrap(), untraced.len());
    }
}

#[test]
fn worklist_engines_traced_match_untraced() {
    for program in corpus() {
        let inject = || PState::inject(program.clone());
        let step = cps::mnext::<M, KCallAddr>;

        let (untraced, stats): (Domain, _) = explore_worklist_stats::<M, _, _, _>(step, inject());
        let mut trace = TraceBuffer::new();
        let (traced, traced_stats): (Domain, _) =
            explore_worklist_traced_stats::<M, _, _, _, _>(step, inject(), &mut trace);
        assert_eq!(traced, untraced, "interned fixpoint changed under tracing");
        assert_eq!(traced_stats, stats, "interned stats changed under tracing");
        assert_sequential_rounds(&trace, &stats, "interned");

        let (untraced, stats): (Domain, _) =
            explore_worklist_rescan_stats::<M, _, _, _>(step, inject());
        let mut trace = TraceBuffer::new();
        let (traced, traced_stats): (Domain, _) =
            explore_worklist_rescan_traced_stats::<M, _, _, _, _>(step, inject(), &mut trace);
        assert_eq!(traced, untraced, "rescan fixpoint changed under tracing");
        assert_eq!(traced_stats, stats, "rescan stats changed under tracing");
        assert_sequential_rounds(&trace, &stats, "rescan");

        let (untraced, stats): (Domain, _) =
            explore_worklist_structural_stats::<M, _, _, _>(step, inject());
        let mut trace = TraceBuffer::new();
        let (traced, traced_stats): (Domain, _) =
            explore_worklist_structural_traced_stats::<M, _, _, _, _>(step, inject(), &mut trace);
        assert_eq!(
            traced, untraced,
            "structural fixpoint changed under tracing"
        );
        assert_eq!(
            traced_stats, stats,
            "structural stats changed under tracing"
        );
        assert_sequential_rounds(&trace, &stats, "structural");
    }
}

#[test]
fn direct_engine_traced_matches_untraced_across_languages() {
    let program = kcfa_worst_case_scaled(2, 4);
    let (untraced, stats) = cps::analysis::analyse_kcfa_shared_direct::<1>(&program);
    let mut trace = TraceBuffer::new();
    let (traced, traced_stats) =
        cps::analysis::analyse_kcfa_shared_direct_traced::<1, _>(&program, &mut trace);
    assert_eq!(traced, untraced, "cps: direct fixpoint changed");
    assert_eq!(traced_stats, stats, "cps: direct stats changed");
    assert_sequential_rounds(&trace, &stats, "cps/direct");
    // The direct engine attributes step cost per interned state.
    assert!(!trace.top_states(4).is_empty());

    let term = lambda::programs::church_multiplication(2, 2);
    let (untraced, stats) = lambda::analysis::analyse_kcfa_shared_direct::<1>(&term);
    let mut trace = TraceBuffer::new();
    let (traced, traced_stats) =
        lambda::analysis::analyse_kcfa_shared_direct_traced::<1, _>(&term, &mut trace);
    assert_eq!(traced, untraced, "lambda: direct fixpoint changed");
    assert_eq!(traced_stats, stats, "lambda: direct stats changed");
    assert_sequential_rounds(&trace, &stats, "lambda/direct");

    let fj_program = fj::programs::pair_fst();
    let (untraced, stats) = fj::analysis::analyse_kcfa_shared_direct::<1>(&fj_program);
    let mut trace = TraceBuffer::new();
    let (traced, traced_stats) =
        fj::analysis::analyse_kcfa_shared_direct_traced::<1, _>(&fj_program, &mut trace);
    assert_eq!(traced, untraced, "fj: direct fixpoint changed");
    assert_eq!(traced_stats, stats, "fj: direct stats changed");
    assert_sequential_rounds(&trace, &stats, "fj/direct");
}

#[test]
fn parallel_driver_traced_matches_untraced() {
    let program = kcfa_worst_case_scaled(2, 4);
    for threads in [1usize, 2, 4] {
        let (untraced, stats) = cps::analysis::analyse_kcfa_shared_parallel::<1>(&program, threads);
        let mut trace = TraceBuffer::new();
        let (traced, traced_stats) = cps::analysis::analyse_kcfa_shared_parallel_traced::<1, _>(
            &program, threads, &mut trace,
        );
        assert_eq!(
            traced, untraced,
            "t{threads}: parallel fixpoint changed under tracing"
        );
        // `steal_events` is a scheduling gauge (how often a worker ran dry
        // and claimed a chunk), and `stripe_acquisitions` counts interner
        // lock traffic (the traced run resolves extra labels) — both
        // legitimately different between any two runs; every deterministic
        // counter must agree exactly.
        let normalise = |mut s: EngineStats| {
            s.steal_events = 0;
            s.stripe_acquisitions = 0;
            s
        };
        assert_eq!(
            normalise(traced_stats),
            normalise(stats),
            "t{threads}: parallel work counters changed under tracing"
        );
        assert_eq!(trace.rounds.len(), stats.iterations);
        // Worker spans cover every phase of every round: rebuild rounds
        // run two phases, and a singleton frontier is stepped inline by
        // the coordinator (one span) instead of waking the pool.  The
        // per-worker occupancy sums to the engine's step counter.
        let phases = stats.iterations + stats.rebuild_rounds;
        assert!(trace.workers.len() >= phases);
        assert!(trace.workers.len() <= threads * phases);
        assert_eq!(
            trace.workers.iter().map(|s| s.processed).sum::<usize>(),
            stats.states_stepped
        );
        // Steal traces and the aggregate counter tell the same story about
        // the *traced* run.
        assert_eq!(trace.steals.len(), traced_stats.steal_events);
        // Join-traffic attribution saw every store join.
        assert_eq!(
            trace.rounds.iter().map(|r| r.joins).sum::<usize>(),
            stats.store_joins
        );
    }
}

#[test]
fn chrome_trace_export_is_schema_valid() {
    use mai_bench::report::Json;

    let program = kcfa_worst_case_scaled(2, 4);
    let mut trace = TraceBuffer::new();
    let (_, stats) =
        cps::analysis::analyse_kcfa_shared_parallel_traced::<1, _>(&program, 2, &mut trace);
    let chrome = trace.chrome_trace_json();
    let parsed = Json::parse(&chrome).expect("Chrome trace export parses as JSON");
    assert_eq!(
        parsed.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = parsed
        .get("traceEvents")
        .expect("traceEvents array")
        .items();
    assert!(!events.is_empty());
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("phase tag");
        assert!(
            matches!(ph, "X" | "i" | "M"),
            "unexpected event phase {ph:?}"
        );
        assert!(event.get("pid").is_some());
        assert!(event.get("tid").is_some());
        if ph == "X" {
            // Complete events need a timestamp and a duration.
            assert!(event.get("ts").and_then(Json::as_f64).is_some());
            assert!(event.get("dur").and_then(Json::as_f64).is_some());
        }
    }
    // One step and one join slice per round on the driver thread.
    let slices = |cat: &str| {
        events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some(cat))
            .count()
    };
    assert_eq!(slices("step"), stats.iterations);
    assert_eq!(slices("join"), stats.iterations);
    assert_eq!(
        slices("worker"),
        trace.workers.len(),
        "one busy slice per worker span"
    );
    assert_eq!(slices("steal"), trace.steals.len());
}
