//! E7 — textbook control-flow-analysis results, plus the qualitative
//! store-widening and GC claims of §6.4–§6.5.

use monadic_ai::core::Lattice;
use monadic_ai::core::Name;
use monadic_ai::cps::programs::{garbage_chain, id_chain, identity_application, kcfa_worst_case};
use monadic_ai::cps::{
    analyse_kcfa, analyse_kcfa_shared, analyse_kcfa_shared_gc, analyse_mono, flow_map_of_store,
    AnalysisMetrics, PState,
};

#[test]
fn the_identity_example_has_the_expected_flow_sets() {
    let program = identity_application();
    let result = analyse_mono(&program);
    let flows = flow_map_of_store(result.store());
    // x ↦ {(λ (y j) …)}, k ↦ {(λ (r) exit)}, r ↦ {(λ (y j) …)}
    assert_eq!(flows[&Name::from("x")].len(), 1);
    assert_eq!(flows[&Name::from("k")].len(), 1);
    assert_eq!(flows[&Name::from("r")].len(), 1);
    assert_eq!(
        flows[&Name::from("x")],
        flows[&Name::from("r")],
        "the value returned through k is the value bound to x"
    );
}

#[test]
fn shared_store_widening_is_sound_and_coarser_than_heap_cloning() {
    for program in [id_chain(4), kcfa_worst_case(2)] {
        let cloned = analyse_kcfa::<1>(&program);
        let shared = analyse_kcfa_shared::<1>(&program);
        // Every program point reached with per-state stores is reached with
        // the widened store…
        for ps in cloned.distinct_states() {
            assert!(shared.distinct_states().contains(&ps));
        }
        // …and every per-state store is below the single widened store.
        for (_, store) in cloned.iter() {
            assert!(store.leq(shared.store()));
        }
    }
}

#[test]
fn heap_cloning_explores_at_least_as_many_configurations_as_sharing() {
    for n in [2usize, 3, 4] {
        let program = id_chain(n);
        let cloned = analyse_kcfa::<1>(&program).len();
        let shared = analyse_kcfa_shared::<1>(&program).len();
        assert!(
            cloned >= shared,
            "id-chain-{n}: cloning explored {cloned} < shared {shared}"
        );
    }
}

#[test]
fn abstract_gc_never_loses_reachability_and_never_grows_the_store() {
    for n in [3usize, 5, 7] {
        let program = garbage_chain(n);
        let plain = analyse_kcfa_shared::<1>(&program);
        let gced = analyse_kcfa_shared_gc::<1>(&program);
        assert!(gced.distinct_states().iter().any(PState::is_final));
        let plain_metrics = AnalysisMetrics::of_shared(&plain);
        let gc_metrics = AnalysisMetrics::of_shared(&gced);
        assert!(gc_metrics.store_facts <= plain_metrics.store_facts);
        assert!(gc_metrics.store_bindings <= plain_metrics.store_bindings);
    }
}
