//! The direct-style evaluation mode of the CPS transition rule.
//!
//! [`mnext_direct`] is the same Figure-2 semantics as
//! [`mnext`](crate::semantics::mnext), expressed on the direct-style step
//! carrier ([`mai_core::monad::direct`]): each `do`-notation bind of the
//! `Rc`-closure original becomes plain control flow threading an explicit
//! `(context, store)` pair, so a transition allocates no `Rc<dyn Fn>` at
//! all.  Branch structure is reproduced *faithfully* — one branch per
//! combination of operator closure and operand values, in the same order
//! the non-determinism monad enumerates them — so the two carriers are
//! observationally identical and the `Rc` encoding remains the
//! differential-testing oracle (see `tests/differential.rs`).

use std::collections::BTreeSet;

use mai_core::addr::Context;
use mai_core::store::{fetch_filtered, StoreLike};

use crate::semantics::{arity_mismatch, first_unbound, Env, PState, Val};
use crate::syntax::{AExp, CExp};

/// The branch vector of one direct-style CPS transition.
pub type Branches<C, S> = Vec<((PState<<C as Context>::Addr>, C), S)>;

/// Evaluates an atomic expression to its branch values against a store —
/// the direct-style `fun`/`arg` (one closure for a λ-literal, the fetched
/// value set for a reference, nothing for an unbound variable).
fn atomic<C, S>(env: &Env<C::Addr>, e: &AExp, store: &S) -> Vec<Val<C::Addr>>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>>,
{
    match e {
        AExp::Lam(lam) => vec![Val::closure(lam.clone(), env.clone())],
        AExp::Ref(v) => match env.get(v) {
            // Borrow the binding instead of materialising a fresh set
            // (`fetch` deep-clones the BTreeSet); each value is cloned
            // exactly once, into the branch vector.
            Some(a) => fetch_filtered(store, a, |v| Some(v)),
            None => Vec::new(),
        },
    }
}

/// The direct-style transition rule of CPS — the paper's `mnext`
/// (Figure 2) on the allocation-free carrier:
///
/// ```text
/// mnext ps@(Call f aes, ρ) = do
///   proc@(Clo (vs ⇒ call′, ρ′)) ← fun ρ f      -- outer branch loop
///   tick proc ps                               -- mutates the context copy
///   as ← mapM alloc vs                         -- plain loop
///   ds ← mapM (arg ρ) aes                      -- cartesian branch loop
///   let ρ′′ = ρ′ // [v ⇒ a | v ← vs | a ← as]
///   sequence [a ↦ d | a ← as | d ← ds]         -- in-place weak updates
///   return (call′, ρ′′)
/// mnext ς = return ς
/// ```
pub fn mnext_direct<C, S>(ps: PState<C::Addr>, ctx: C, store: S) -> Branches<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>>,
{
    let (f, args) = match &ps.call {
        CExp::Call { f, args, .. } => (f.clone(), args.clone()),
        CExp::Exit | CExp::Error(_) => return vec![((ps, ctx), store)],
    };
    // Same pure stuck check as the Rc carrier's `mnext`: an unbound
    // reference becomes an error state, not an empty branch set.
    if let Some(v) = first_unbound(&ps.env, &f, &args) {
        return vec![(
            (
                PState::new(CExp::Error(format!("unbound variable `{}`", v)), Env::new()),
                ctx,
            ),
            store,
        )];
    }
    let site = ps.site();
    let env = ps.env.clone();

    let mut out = Vec::new();
    for proc in atomic::<C, S>(&env, &f, &store) {
        // Arity mismatches error per callee branch, before the tick —
        // matching `mnext`, whose check precedes the monadic `tick`.
        if proc.lambda().params().len() != args.len() {
            out.push((
                (
                    PState::new(
                        CExp::Error(arity_mismatch(proc.lambda(), args.len())),
                        Env::new(),
                    ),
                    ctx.clone(),
                ),
                store.clone(),
            ));
            continue;
        }
        // tick: advance the context across this call (per callee branch,
        // exactly as the Rc carrier's state threading does).
        let ticked = ctx.clone().advance(site);
        // mapM alloc: deterministic, against the ticked context.
        let lambda = proc.lambda().clone();
        let addrs: Vec<C::Addr> = lambda.params().iter().map(|v| ticked.valloc(v)).collect();
        // ρ′′ = ρ′ // [v ⇒ a] — shared by every operand-value branch.
        let mut next_env = proc.env().clone();
        for (v, a) in lambda.params().iter().zip(addrs.iter()) {
            next_env.insert(v.clone(), a.clone());
        }
        let body = lambda.body();
        // mapM (arg ρ): each operand contributes a branch per value; the
        // cartesian product enumerates them leftmost-outermost, matching
        // the list monad.
        let arg_vals: Vec<Vec<Val<C::Addr>>> = args
            .iter()
            .map(|ae| atomic::<C, S>(&env, ae, &store))
            .collect();
        // An operand with no values (unbound/stuck) annihilates the
        // product, exactly like `mzero`.
        if arg_vals.iter().any(Vec::is_empty) {
            continue;
        }
        let mut chosen: Vec<usize> = vec![0; arg_vals.len()];
        loop {
            // sequence [a ↦ d]: weak updates on this branch's own store.
            let mut branch_store = store.clone();
            for (a, (vals, pick)) in addrs.iter().zip(arg_vals.iter().zip(chosen.iter())) {
                branch_store.bind_in_place(a.clone(), [vals[*pick].clone()].into_iter().collect());
            }
            out.push((
                (
                    PState::new((**body).clone(), next_env.clone()),
                    ticked.clone(),
                ),
                branch_store,
            ));
            // Advance the odometer (rightmost fastest, as nested binds).
            let mut pos = chosen.len();
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                chosen[pos] += 1;
                if chosen[pos] < arg_vals[pos].len() {
                    break;
                }
                chosen[pos] = 0;
            }
            if chosen.iter().all(|c| *c == 0) {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::KStore;
    use crate::parser::parse_program;
    use crate::semantics::mnext;
    use mai_core::monad::{run_store_passing, StorePassing};
    use mai_core::{KCallAddr, KCallCtx};

    type Ctx = KCallCtx<1>;
    type M = StorePassing<Ctx, KStore>;

    /// Steps a state with both carriers and compares the branch sets.
    fn assert_carriers_agree(ps: PState<KCallAddr>, ctx: Ctx, store: KStore) {
        let mut rc: Vec<((PState<KCallAddr>, Ctx), KStore)> = run_store_passing(
            mnext::<M, KCallAddr>(ps.clone()),
            ctx.clone(),
            store.clone(),
        );
        let mut direct = mnext_direct::<Ctx, KStore>(ps, ctx, store);
        // Branch order within one transition is an implementation detail of
        // the list monad; compare as multisets.
        rc.sort();
        direct.sort();
        assert_eq!(rc, direct);
    }

    #[test]
    fn carriers_agree_on_every_reachable_state_of_a_program() {
        let program = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
        // Drive the Rc analysis and replay every reachable (state, ctx)
        // pair against the accumulated store with both carriers.
        let (fixpoint, _) = crate::analysis::analyse_kcfa_shared_worklist::<1>(&program);
        assert!(!fixpoint.states().is_empty());
        for (ps, ctx) in fixpoint.states() {
            assert_carriers_agree(ps.clone(), ctx.clone(), fixpoint.store().clone());
        }
    }

    #[test]
    fn exit_states_step_to_themselves_on_both_carriers() {
        let ps: PState<KCallAddr> = PState::inject(CExp::Exit);
        assert_carriers_agree(ps, Ctx::empty(), KStore::new());
    }
}
