//! Syntax of the continuation-passing-style λ-calculus (paper Figure 1).
//!
//! CPS partitions the λ-calculus into two worlds: *atomic expressions*
//! (variable references and λ-abstractions, evaluation of which always
//! terminates and has no effect) and *call sites* (the application of a
//! function to atomic arguments), plus a distinguished `exit` call.

use std::fmt;
use std::sync::Arc;

use mai_core::name::{Label, Name};

/// A variable.  CPS variables are plain [`Name`]s.
pub type Var = Name;

/// A λ-abstraction `(λ (v₁ … vₙ) call)`.
///
/// The fields are private (read through [`Lambda::params`] /
/// [`Lambda::body`]): the cached free-variable set and the label-based
/// `Hash` are only sound while an abstraction is immutable after
/// construction, so no mutation is exposed.
#[derive(Clone)]
pub struct Lambda {
    /// The formal parameters.
    params: Vec<Var>,
    /// The body — always a call site in CPS.
    body: Arc<CExp>,
    /// The lazily computed free variables, shared by every clone of this
    /// abstraction.  Free-variable sets drive the `Touches` instances (and
    /// through them abstract GC and the engines' read-dependency sets), so
    /// every transition used to recompute this subtree walk many times
    /// over.  Not part of the value: equality, ordering and hashing ignore
    /// it.
    free: std::sync::Arc<std::sync::OnceLock<std::collections::BTreeSet<Var>>>,
}

impl PartialEq for Lambda {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.body == other.body
    }
}

impl Eq for Lambda {}

impl PartialOrd for Lambda {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Lambda {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.params
            .cmp(&other.params)
            .then_with(|| self.body.cmp(&other.body))
    }
}

/// Hashing a λ-abstraction must not walk its whole body: abstract machine
/// states embed program fragments, and the hash-consing engine layer hashes
/// states constantly.  The head label of the body identifies the call site
/// (labels are unique within a program), so `params + head label` is a
/// cheap digest that is consistent with the structural `Eq` — equal lambdas
/// have equal parameter lists and equal (hence equally-labelled) bodies.
/// Distinct lambdas from *different* programs may collide; hash users
/// resolve that with their equality checks, as they must anyway.
impl std::hash::Hash for Lambda {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.params.hash(state);
        self.body.label().hash(state);
    }
}

impl Lambda {
    /// Creates a λ-abstraction.
    pub fn new(params: Vec<Var>, body: CExp) -> Self {
        Lambda {
            params,
            body: Arc::new(body),
            free: std::sync::Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The formal parameters.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// The body — always a call site in CPS.
    pub fn body(&self) -> &Arc<CExp> {
        &self.body
    }

    /// The free variables of this λ-abstraction.
    pub fn free_vars(&self) -> std::collections::BTreeSet<Var> {
        self.free_vars_ref().clone()
    }

    /// The free variables, borrowed from the per-abstraction cache (the
    /// subtree walk happens once per abstraction, not once per query).
    pub fn free_vars_ref(&self) -> &std::collections::BTreeSet<Var> {
        self.free.get_or_init(|| {
            let mut free = self.body.free_vars();
            for p in &self.params {
                free.remove(p);
            }
            free
        })
    }
}

impl fmt::Debug for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Lambda {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(λ (")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", p)?;
        }
        write!(f, ") {})", self.body)
    }
}

/// An atomic expression: a variable reference or a λ-abstraction.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AExp {
    /// A variable reference.
    Ref(Var),
    /// A λ-abstraction.
    Lam(Lambda),
}

impl AExp {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<Name>) -> Self {
        AExp::Ref(name.into())
    }

    /// Convenience constructor for a λ-abstraction.
    pub fn lam(params: Vec<Var>, body: CExp) -> Self {
        AExp::Lam(Lambda::new(params, body))
    }

    /// The free variables of this atomic expression.
    pub fn free_vars(&self) -> std::collections::BTreeSet<Var> {
        match self {
            AExp::Ref(v) => [v.clone()].into_iter().collect(),
            AExp::Lam(lam) => lam.free_vars(),
        }
    }
}

impl fmt::Debug for AExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for AExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AExp::Ref(v) => write!(f, "{}", v),
            AExp::Lam(lam) => write!(f, "{}", lam),
        }
    }
}

/// A call expression: either the application of a function to atomic
/// arguments, or the distinguished `exit` expression that halts the
/// machine.
///
/// Every call site carries a [`Label`] identifying it as a program point;
/// the k-CFA context machinery records sequences of these labels.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum CExp {
    /// `(f æ₁ … æₙ)` — apply `f` to the arguments.
    Call {
        /// The program-point label of this call site.
        label: Label,
        /// The operator position.
        f: AExp,
        /// The operand positions.
        args: Vec<AExp>,
    },
    /// The final state of the machine.
    Exit,
    /// A stuck control point, carrying an abstract error message.
    ///
    /// **Not source syntax**: the parser and builders never produce it.
    /// In CPS the machine's control component *is* a call expression, so
    /// the abstract error layer lives here — [`crate::semantics::mnext`]
    /// manufactures an `Error` state when a transition gets stuck (an
    /// unbound variable, an arity mismatch), making stuckness a
    /// reachable, observable state instead of a silently dropped branch.
    Error(String),
}

/// Call expressions hash by their label alone (see [`Lambda`]'s `Hash` for
/// the rationale): within one program the label determines the call site,
/// so the digest is consistent with the structural `Eq` at O(1) cost
/// instead of a full-subtree walk per machine-state hash.
impl std::hash::Hash for CExp {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        self.label().hash(state);
    }
}

impl CExp {
    /// Creates a call expression.
    pub fn call(label: Label, f: AExp, args: Vec<AExp>) -> Self {
        CExp::Call { label, f, args }
    }

    /// The label of this call site ([`Label::none`] for `exit` and error
    /// states).
    pub fn label(&self) -> Label {
        match self {
            CExp::Call { label, .. } => *label,
            CExp::Exit | CExp::Error(_) => Label::none(),
        }
    }

    /// Whether this is the `exit` expression.
    pub fn is_exit(&self) -> bool {
        matches!(self, CExp::Exit)
    }

    /// The free variables of this call expression.
    pub fn free_vars(&self) -> std::collections::BTreeSet<Var> {
        match self {
            CExp::Call { f, args, .. } => {
                let mut free = f.free_vars();
                for a in args {
                    free.extend(a.free_vars());
                }
                free
            }
            CExp::Exit | CExp::Error(_) => std::collections::BTreeSet::new(),
        }
    }

    /// All call-site labels occurring in this expression (including inside
    /// nested λ-abstractions).  Useful for sanity checks and for sizing
    /// benchmark programs.
    pub fn labels(&self) -> std::collections::BTreeSet<Label> {
        fn go_cexp(e: &CExp, out: &mut std::collections::BTreeSet<Label>) {
            if let CExp::Call { label, f, args } = e {
                out.insert(*label);
                go_aexp(f, out);
                for a in args {
                    go_aexp(a, out);
                }
            }
        }
        fn go_aexp(e: &AExp, out: &mut std::collections::BTreeSet<Label>) {
            if let AExp::Lam(lam) = e {
                go_cexp(&lam.body, out);
            }
        }
        let mut out = std::collections::BTreeSet::new();
        go_cexp(self, &mut out);
        out
    }

    /// The number of call sites in the program.
    pub fn call_site_count(&self) -> usize {
        self.labels().len()
    }

    /// All λ-abstractions occurring in this expression, in syntactic order.
    pub fn lambdas(&self) -> Vec<Lambda> {
        fn go_cexp(e: &CExp, out: &mut Vec<Lambda>) {
            if let CExp::Call { f, args, .. } = e {
                go_aexp(f, out);
                for a in args {
                    go_aexp(a, out);
                }
            }
        }
        fn go_aexp(e: &AExp, out: &mut Vec<Lambda>) {
            if let AExp::Lam(lam) = e {
                out.push(lam.clone());
                go_cexp(&lam.body, out);
            }
        }
        let mut out = Vec::new();
        go_cexp(self, &mut out);
        out
    }

    /// Whether the program is closed (no free variables).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl fmt::Debug for CExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for CExp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CExp::Call { f: op, args, .. } => {
                write!(f, "({}", op)?;
                for a in args {
                    write!(f, " {}", a)?;
                }
                write!(f, ")")
            }
            CExp::Exit => write!(f, "exit"),
            CExp::Error(msg) => write!(f, "(error {:?})", msg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CExp {
        // ((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))
        CExp::call(
            Label::new(1),
            AExp::lam(
                vec![Name::from("x"), Name::from("k")],
                CExp::call(Label::new(2), AExp::var("k"), vec![AExp::var("x")]),
            ),
            vec![
                AExp::lam(
                    vec![Name::from("y"), Name::from("j")],
                    CExp::call(Label::new(3), AExp::var("j"), vec![AExp::var("y")]),
                ),
                AExp::lam(vec![Name::from("r")], CExp::Exit),
            ],
        )
    }

    #[test]
    fn free_vars_of_closed_program_is_empty() {
        assert!(sample().is_closed());
    }

    #[test]
    fn free_vars_sees_through_binders() {
        let open = CExp::call(
            Label::new(1),
            AExp::lam(
                vec![Name::from("x")],
                CExp::call(Label::new(2), AExp::var("f"), vec![AExp::var("x")]),
            ),
            vec![AExp::var("y")],
        );
        let free = open.free_vars();
        assert!(free.contains(&Name::from("f")));
        assert!(free.contains(&Name::from("y")));
        assert!(!free.contains(&Name::from("x")));
    }

    #[test]
    fn labels_collects_all_call_sites() {
        let labels = sample().labels();
        assert_eq!(
            labels,
            [Label::new(1), Label::new(2), Label::new(3)]
                .into_iter()
                .collect()
        );
        assert_eq!(sample().call_site_count(), 3);
    }

    #[test]
    fn lambdas_are_enumerated_in_syntactic_order() {
        let lambdas = sample().lambdas();
        assert_eq!(lambdas.len(), 3);
        assert_eq!(lambdas[0].params[0], Name::from("x"));
        assert_eq!(lambdas[2].params[0], Name::from("r"));
    }

    #[test]
    fn display_renders_readable_sexps() {
        assert_eq!(
            sample().to_string(),
            "((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))"
        );
        assert_eq!(CExp::Exit.to_string(), "exit");
    }

    #[test]
    fn exit_has_the_reserved_label() {
        assert_eq!(CExp::Exit.label(), Label::none());
        assert!(CExp::Exit.is_exit());
        assert!(!sample().is_exit());
    }

    #[test]
    fn syntax_is_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(sample());
        set.insert(sample());
        set.insert(CExp::Exit);
        assert_eq!(set.len(), 2);
    }
}
