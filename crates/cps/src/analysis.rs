//! Abstract interpretation of CPS: the `StorePassing` instance of the
//! semantic interface, abstract garbage collection, and the k-CFA analysis
//! family (paper §5.3, §6 and §8).
//!
//! Everything in this module is assembled from language-independent parts of
//! `mai-core`: the [`StorePassing`] monad, [`Context`]s for polyvariance,
//! [`StoreLike`] stores (plain or counting), the per-state / shared-store
//! [`Collecting`] domains, and the garbage-collection reachability engine.
//! The only CPS-specific ingredients are the [`CpsInterface`] instance below
//! and the [`Touches`] instances of [`crate::semantics`].

use std::collections::{BTreeMap, BTreeSet};

use mai_core::addr::{Context, NamedAddress};
use mai_core::collect::{
    explore_fp_bounded, run_analysis, with_gc, Collecting, PerStateDomain, SharedStoreDomain,
};
use mai_core::engine::{
    explore_frontier_ladder, explore_worklist_direct_stats, explore_worklist_direct_traced_stats,
    explore_worklist_elastic_stats, explore_worklist_elastic_traced_stats,
    explore_worklist_parallel_stats, explore_worklist_parallel_traced_stats,
    explore_worklist_rescan_stats, explore_worklist_stats, explore_worklist_structural_stats,
    with_state_gc, Budget, DirectCollecting, EngineError, EngineStats, FrontierCollecting,
    LadderReport, Outcome, ParallelCollecting, ParallelConfig, SharedResumeSeed, SolveFrom,
};
use mai_core::gc::{reachable, GcStrategy, Touches};
use mai_core::lattice::{KleeneOutcome, Lattice};
use mai_core::monad::{
    gets_nd_set, MonadFamily, MonadState, MonadTrans, StateT, StorePassing, Value, VecM,
};
use mai_core::name::Name;
use mai_core::store::{BasicStore, CountingStore, StoreLike};
use mai_core::{ConcreteCtx, KCallAddr, KCallCtx, MonoAddr, MonoCtx};

use crate::semantics::{mnext, CpsInterface, Env, PState, Val};
use crate::syntax::{AExp, CExp, Lambda, Var};

/// The abstract (and concrete-collecting) implementation of the CPS semantic
/// interface over the paper's `StorePassing` monad (§5.3.2, generalised to
/// arbitrary contexts in §6.1 and arbitrary stores in §6.2).
///
/// * `fun`/`arg` on a variable reference go through `lift ∘ getsNDSet`,
///   turning the set of closures at the variable's address into monadic
///   non-determinism;
/// * `write` joins a singleton into the store (a weak update);
/// * `alloc` consults the context (the outer state) through `valloc`;
/// * `tick` advances the context across the call site being executed.
impl<C, S> CpsInterface<C::Addr> for StorePassing<C, S>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
{
    fn fun(env: &Env<C::Addr>, e: &AExp) -> Self::M<Val<C::Addr>> {
        match e {
            AExp::Lam(lam) => Self::pure(Val::closure(lam.clone(), env.clone())),
            AExp::Ref(v) => {
                let addr = env.get(v).cloned();
                Self::lift(gets_nd_set::<StateT<S, VecM>, S, Val<C::Addr>, _>(
                    move |store| match &addr {
                        Some(a) => store.fetch(a),
                        None => BTreeSet::new(),
                    },
                ))
            }
        }
    }

    fn arg(env: &Env<C::Addr>, e: &AExp) -> Self::M<Val<C::Addr>> {
        Self::fun(env, e)
    }

    fn write(addr: C::Addr, val: Val<C::Addr>) -> Self::M<()> {
        Self::lift(<StateT<S, VecM> as MonadState<S>>::modify(move |store| {
            store.bind(addr.clone(), [val.clone()].into_iter().collect())
        }))
    }

    fn alloc(var: &Var) -> Self::M<C::Addr> {
        let var = var.clone();
        <Self as MonadState<C>>::gets(move |ctx| ctx.valloc(&var))
    }

    fn tick(_proc: &Val<C::Addr>, ps: &PState<C::Addr>) -> Self::M<()> {
        let site = ps.site();
        <Self as MonadState<C>>::modify(move |ctx| ctx.advance(site))
    }
}

/// The abstract garbage collector for CPS (paper §6.4): restrict the store
/// to the addresses reachable from the current partial state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CpsGc;

impl<C, S> GcStrategy<StorePassing<C, S>, PState<C::Addr>> for CpsGc
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
{
    fn collect(&self, ps: &PState<C::Addr>) -> <StorePassing<C, S> as MonadFamily>::M<()> {
        let roots = ps.touches();
        <StorePassing<C, S> as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |store: S| {
                let live = reachable(roots.clone(), &store);
                store.filter_store(|a| live.contains(a))
            },
        ))
    }
}

/// Runs the monadically-parameterized analysis of a CPS program with an
/// arbitrary combination of context `C`, store `S` and collecting domain
/// `Fp` — the paper's `runAnalysis` with its three degrees of freedom
/// spelled out as type parameters.
pub fn analyse<C, S, Fp>(program: &CExp) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(program.clone()),
    )
}

/// Like [`analyse`], but performs abstract garbage collection after every
/// transition (the `STEP-GC` rule of §6.4).
pub fn analyse_gc<C, S, Fp>(program: &CExp) -> Fp
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: Collecting<StorePassing<C, S>, PState<C::Addr>>,
{
    run_analysis::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CpsGc,
        ),
        PState::inject(program.clone()),
    )
}

/// Like [`analyse`], but solved by the frontier-driven worklist engine
/// instead of naive Kleene iteration, additionally reporting
/// [`EngineStats`].  Computes exactly the same fixpoint (the engine replays
/// the Kleene iterate sequence, serving unchanged states from its step
/// cache), so `analyse` remains the reference oracle.
pub fn analyse_worklist<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_gc`], but solved by the worklist engine.
pub fn analyse_gc_worklist<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CpsGc,
        ),
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_worklist`], but evaluated on the **direct-style step
/// carrier**: the engine runs [`crate::direct::mnext_direct`] — the same
/// Figure-2 semantics with `bind` as plain function composition on an
/// explicit `(context, store)` context — instead of desugaring the
/// `Rc`-closure monad per step.  Identical fixpoint and identical work
/// counters (the solver code is shared); only the per-step constant factor
/// differs.  The `Rc` carrier remains the differential-testing oracle.
pub fn analyse_worklist_direct<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_direct_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_gc_worklist`], but on the direct-style carrier: abstract
/// GC runs as a per-branch store restriction ([`with_state_gc`]) after
/// each direct transition.
pub fn analyse_gc_worklist_direct<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_direct_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_worklist_direct`], but *governed*: the solve consults
/// `budget` at every round boundary and returns an [`Outcome`] — either
/// the complete fixpoint or an `Exhausted` partial whose resume seed
/// reaches the identical fixpoint when handed back to
/// [`analyse_resume_governed`].  With `Budget::unlimited()` the result and
/// every deterministic work counter are byte-identical to
/// [`analyse_worklist_direct`] (the ungoverned entry point *is* this one,
/// applied to the unlimited budget).
pub fn analyse_worklist_governed<C, S, Fp>(
    program: &CExp,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(program.clone())),
        budget,
    )
}

/// Resumes an exhausted governed solve from its carried seed.  Monotone
/// accumulation guarantees the resumed solve reaches exactly the fixpoint
/// the one-shot solve would have.
pub fn analyse_resume_governed<C, S, Fp>(
    seed: Fp::Seed,
    budget: &Budget,
) -> (Outcome<Fp, Fp::Seed>, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Resume(seed),
        budget,
    )
}

/// [`analyse_worklist_parallel`], governed: budget and cancellation are
/// checked at every barrier, and a panicked worker surfaces as a clean
/// [`EngineError`] instead of deadlocking the pool.
pub fn analyse_worklist_parallel_governed<C, S, Fp>(
    program: &CExp,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_parallel_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(program.clone())),
        threads,
        budget,
    )
}

/// [`analyse_worklist_elastic`], governed: budget and cancellation are
/// checked at every epoch boundary (cancel latency is at most one epoch).
pub fn analyse_worklist_elastic_governed<C, S, Fp>(
    program: &CExp,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<Fp, Fp::Seed>, EngineStats), EngineError>
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    Fp::explore_frontier_elastic_governed(
        &crate::direct::mnext_direct::<C, S>,
        SolveFrom::Fresh(PState::inject(program.clone())),
        config,
        budget,
    )
}

/// The outcome type of a ladder solve over the shared-store CPS domain.
pub type LadderOutcome<C, S> = Outcome<
    SharedStoreDomain<PState<<C as Context>::Addr>, C, S>,
    SharedResumeSeed<PState<<C as Context>::Addr>, C, S>,
>;

/// [`analyse_worklist_elastic`] behind the full degradation ladder:
/// elastic → barrier → sequential direct.  A faulted parallel rung is
/// reported in the [`LadderReport`]; the returned fixpoint is byte-identical
/// to [`analyse_worklist_direct`] no matter which rung completed.
pub fn analyse_worklist_ladder<C, S>(
    program: &CExp,
    config: ParallelConfig,
    budget: &Budget,
) -> (LadderOutcome<C, S>, EngineStats, LadderReport)
where
    C: Context + std::hash::Hash,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>>
        + mai_core::store::StoreDelta<C::Addr>
        + mai_core::lattice::WidenLattice
        + Value,
{
    explore_frontier_ladder(
        &crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        config,
        budget,
    )
}

/// Like [`analyse_worklist_direct`], but solved by the **sharded parallel
/// driver** ([`mai_core::engine::parallel`]) on `threads` worker threads:
/// the frontier is sharded across workers (work-stealing by `StateId`
/// ranges), each worker steps against a snapshot of the global store, and
/// per-shard deltas are joined at a sync barrier each round.  Byte-identical
/// fixpoint — and identical deterministic work counters — to
/// [`analyse_worklist_direct`] at every thread count; the sequential direct
/// engine remains the determinism oracle.
pub fn analyse_worklist_parallel<C, S, Fp>(program: &CExp, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_parallel_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        threads,
    )
}

/// [`analyse_worklist_direct`] with a [`TraceSink`](mai_core::telemetry::TraceSink)
/// observing the solve: per-round phase timings, store-join traffic and
/// hot-state attribution.  Identical fixpoint and identical deterministic
/// work counters at every sink — with
/// [`NoopSink`](mai_core::telemetry::NoopSink) this *is*
/// [`analyse_worklist_direct`], monomorphized back to the untraced code.
pub fn analyse_worklist_direct_traced<C, S, Fp, T>(
    program: &CExp,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: DirectCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_direct_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        sink,
    )
}

/// Like [`analyse_gc_worklist_direct`], but solved by the sharded parallel
/// driver (abstract GC as the per-branch [`with_state_gc`] store
/// restriction, inside each worker).
pub fn analyse_gc_worklist_parallel<C, S, Fp>(program: &CExp, threads: usize) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_parallel_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(program.clone()),
        threads,
    )
}

/// Like [`analyse_worklist_parallel`], but solved by the **barrier-elastic
/// driver** ([`mai_core::engine::parallel::elastic`]): workers advance
/// private sub-frontiers for up to [`ParallelConfig::epochs`] epochs
/// between barriers, merging per-shard store deltas lazily.  The fixpoint
/// stays byte-identical to [`analyse_worklist_direct`]; the *work
/// counters* become timing-dependent (`epochs = 1` delegates to the
/// barrier engine, deterministic counters and all).
pub fn analyse_worklist_elastic<C, S, Fp>(
    program: &CExp,
    config: ParallelConfig,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_elastic_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        config,
    )
}

/// [`analyse_worklist_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker, per-epoch and per-merge profiles).
pub fn analyse_worklist_elastic_traced<C, S, Fp, T>(
    program: &CExp,
    config: ParallelConfig,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_elastic_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        config,
        sink,
    )
}

/// Like [`analyse_gc_worklist_parallel`], but on the barrier-elastic
/// driver.
pub fn analyse_gc_worklist_elastic<C, S, Fp>(
    program: &CExp,
    config: ParallelConfig,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
{
    explore_worklist_elastic_stats(
        with_state_gc(crate::direct::mnext_direct::<C, S>),
        PState::inject(program.clone()),
        config,
    )
}

/// [`analyse_worklist_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve:
/// per-round phase timings **plus one
/// [`WorkerSpan`](mai_core::telemetry::WorkerSpan) per worker per round**
/// and a [`StealTrace`](mai_core::telemetry::StealTrace) per stolen chunk —
/// the decomposition of E12's sync overhead.
pub fn analyse_worklist_parallel_traced<C, S, Fp, T>(
    program: &CExp,
    threads: usize,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: ParallelCollecting<PState<C::Addr>, C, S>,
    T: mai_core::telemetry::TraceSink,
{
    explore_worklist_parallel_traced_stats(
        crate::direct::mnext_direct::<C, S>,
        PState::inject(program.clone()),
        threads,
        sink,
    )
}

/// Like [`analyse_worklist`], but solved by the PR-2 *structural-key*
/// incremental engine (states as `BTreeMap` keys instead of interned ids).
/// Same fixpoint and same frontier strategy; kept as a differential-testing
/// oracle and the E10 benchmark baseline.
pub fn analyse_worklist_structural<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_gc_worklist`], but solved by the structural-key engine.
pub fn analyse_gc_worklist_structural<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_structural_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CpsGc,
        ),
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_worklist`], but solved by the PR-1 *rescanning* worklist
/// engine (full contribution re-join per round).  Same fixpoint; kept as
/// the differential-testing oracle and the E9 benchmark baseline.
pub fn analyse_worklist_rescan<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        mnext::<StorePassing<C, S>, C::Addr>,
        PState::inject(program.clone()),
    )
}

/// Like [`analyse_gc_worklist`], but solved by the rescanning engine.
pub fn analyse_gc_worklist_rescan<C, S, Fp>(program: &CExp) -> (Fp, EngineStats)
where
    C: Context,
    S: StoreLike<C::Addr, D = BTreeSet<Val<C::Addr>>> + Value,
    Fp: FrontierCollecting<StorePassing<C, S>, PState<C::Addr>>,
{
    explore_worklist_rescan_stats::<StorePassing<C, S>, _, Fp, _>(
        with_gc::<StorePassing<C, S>, PState<C::Addr>, _, _>(
            mnext::<StorePassing<C, S>, C::Addr>,
            CpsGc,
        ),
        PState::inject(program.clone()),
    )
}

/// The plain store used by the k-CFA family: addresses are
/// variable × call-string pairs, values are CPS closures.
pub type KStore = BasicStore<KCallAddr, Val<KCallAddr>>;

/// The counting store used by `analyseWithCount` (§8.3).
pub type KCountingStore = CountingStore<KCallAddr, Val<KCallAddr>>;

/// The heap-cloning ("per-state store") k-CFA analysis domain (§8.1).
pub type KCfaPerState<const K: usize> = PerStateDomain<PState<KCallAddr>, KCallCtx<K>, KStore>;

/// The shared-store (widened) k-CFA analysis domain (§8.2).
pub type KCfaShared<const K: usize> = SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KStore>;

/// The shared-store k-CFA domain with abstract counting (§8.3).
pub type KCfaCounting<const K: usize> =
    SharedStoreDomain<PState<KCallAddr>, KCallCtx<K>, KCountingStore>;

/// The monovariant (0CFA) shared-store analysis domain.
pub type MonoShared =
    SharedStoreDomain<PState<MonoAddr>, MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>>;

/// The paper's `analyseKCFA` (§8.1): a k-CFA analysis with a per-state
/// ("cloned") store.
pub fn analyse_kcfa<const K: usize>(program: &CExp) -> KCfaPerState<K> {
    analyse::<KCallCtx<K>, KStore, _>(program)
}

/// The paper's `analyseShared` (§8.2): k-CFA with a single widened store.
pub fn analyse_kcfa_shared<const K: usize>(program: &CExp) -> KCfaShared<K> {
    analyse::<KCallCtx<K>, KStore, _>(program)
}

/// The paper's `analyseWithCount` (§8.3): k-CFA with a shared *counting*
/// store, enabling cardinality bounds.
///
/// Note that with a single widened store the global Kleene iteration
/// re-executes transitions against the accumulated store, so counts
/// saturate quickly; they remain a *sound* upper bound on allocation
/// multiplicity (which is all §6.3 requires).  For the precise per-path
/// counts used by must-alias reasoning, use
/// [`analyse_kcfa_count_cloned`], which pairs the counting store with the
/// heap-cloning domain.
pub fn analyse_kcfa_with_count<const K: usize>(program: &CExp) -> KCfaCounting<K> {
    analyse::<KCallCtx<K>, KCountingStore, _>(program)
}

/// The heap-cloning k-CFA domain with abstract counting: every explored
/// configuration carries its own counting store, so counts reflect the
/// allocations actually performed along each path.
pub type KCfaCountingPerState<const K: usize> =
    PerStateDomain<PState<KCallAddr>, KCallCtx<K>, KCountingStore>;

/// k-CFA with per-state *counting* stores: the configuration of abstract
/// counting used for must-alias / strong-update reasoning (§6.3).
pub fn analyse_kcfa_count_cloned<const K: usize>(program: &CExp) -> KCfaCountingPerState<K> {
    analyse::<KCallCtx<K>, KCountingStore, _>(program)
}

/// k-CFA with a shared store and abstract garbage collection (§6.4).
pub fn analyse_kcfa_shared_gc<const K: usize>(program: &CExp) -> KCfaShared<K> {
    analyse_gc::<KCallCtx<K>, KStore, _>(program)
}

/// k-CFA with a per-state store and abstract garbage collection.
pub fn analyse_kcfa_gc<const K: usize>(program: &CExp) -> KCfaPerState<K> {
    analyse_gc::<KCallCtx<K>, KStore, _>(program)
}

/// The classical monovariant analysis (0CFA, §2.3.1) with a shared store.
pub fn analyse_mono(program: &CExp) -> MonoShared {
    analyse::<MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>, _>(program)
}

/// [`analyse_kcfa`] solved by the worklist engine (per-state stores).
pub fn analyse_kcfa_worklist<const K: usize>(program: &CExp) -> (KCfaPerState<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the worklist engine with store-delta
/// dependency invalidation.
pub fn analyse_kcfa_shared_worklist<const K: usize>(
    program: &CExp,
) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the PR-1 rescanning worklist engine —
/// the baseline the E9 experiment measures the incremental engine against.
pub fn analyse_kcfa_shared_rescan<const K: usize>(program: &CExp) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist_rescan::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_shared`] solved by the PR-2 structural-key incremental
/// engine — the baseline the E10 experiment measures the id-indexed engine
/// against.
pub fn analyse_kcfa_shared_structural<const K: usize>(
    program: &CExp,
) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist_structural::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_shared_worklist`] on the direct-style carrier — the E11
/// fast path (no `Rc<dyn Fn>` per bind, persistent-spine store clones).
pub fn analyse_kcfa_shared_direct<const K: usize>(program: &CExp) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist_direct::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_shared_direct`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve.
pub fn analyse_kcfa_shared_direct_traced<const K: usize, T>(
    program: &CExp,
    sink: &mut T,
) -> (KCfaShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_direct_traced::<KCallCtx<K>, KStore, _, T>(program, sink)
}

/// [`analyse_kcfa_shared_gc_worklist`] on the direct-style carrier.
pub fn analyse_kcfa_shared_gc_direct<const K: usize>(
    program: &CExp,
) -> (KCfaShared<K>, EngineStats) {
    analyse_gc_worklist_direct::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_worklist`] (per-state stores) on the direct-style
/// carrier.
pub fn analyse_kcfa_direct<const K: usize>(program: &CExp) -> (KCfaPerState<K>, EngineStats) {
    analyse_worklist_direct::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_with_count_worklist`] (shared counting store) on the
/// direct-style carrier.
pub fn analyse_kcfa_with_count_direct<const K: usize>(
    program: &CExp,
) -> (KCfaCounting<K>, EngineStats) {
    analyse_worklist_direct::<KCallCtx<K>, KCountingStore, _>(program)
}

/// [`analyse_mono_worklist`] on the direct-style carrier.
pub fn analyse_mono_direct(program: &CExp) -> (MonoShared, EngineStats) {
    analyse_worklist_direct::<MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>, _>(program)
}

/// [`analyse_kcfa_shared_direct`] solved by the sharded parallel driver —
/// the E12 measurement subject.
pub fn analyse_kcfa_shared_parallel<const K: usize>(
    program: &CExp,
    threads: usize,
) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist_parallel::<KCallCtx<K>, KStore, _>(program, threads)
}

/// [`analyse_kcfa_shared_parallel`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve —
/// the E13 measurement subject (per-round, per-worker profiles).
pub fn analyse_kcfa_shared_parallel_traced<const K: usize, T>(
    program: &CExp,
    threads: usize,
    sink: &mut T,
) -> (KCfaShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_parallel_traced::<KCallCtx<K>, KStore, _, T>(program, threads, sink)
}

/// [`analyse_kcfa_shared_gc_direct`] solved by the sharded parallel driver.
pub fn analyse_kcfa_shared_gc_parallel<const K: usize>(
    program: &CExp,
    threads: usize,
) -> (KCfaShared<K>, EngineStats) {
    analyse_gc_worklist_parallel::<KCallCtx<K>, KStore, _>(program, threads)
}

/// [`analyse_mono_direct`] solved by the sharded parallel driver.
pub fn analyse_mono_parallel(program: &CExp, threads: usize) -> (MonoShared, EngineStats) {
    analyse_worklist_parallel::<MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>, _>(program, threads)
}

/// [`analyse_kcfa_with_count_direct`] solved by the sharded parallel
/// driver.
pub fn analyse_kcfa_with_count_parallel<const K: usize>(
    program: &CExp,
    threads: usize,
) -> (KCfaCounting<K>, EngineStats) {
    analyse_worklist_parallel::<KCallCtx<K>, KCountingStore, _>(program, threads)
}

/// [`analyse_kcfa_shared_direct`] solved by the barrier-elastic driver —
/// the E14 measurement subject.
pub fn analyse_kcfa_shared_elastic<const K: usize>(
    program: &CExp,
    config: ParallelConfig,
) -> (KCfaShared<K>, EngineStats) {
    analyse_worklist_elastic::<KCallCtx<K>, KStore, _>(program, config)
}

/// [`analyse_kcfa_shared_elastic`] with a
/// [`TraceSink`](mai_core::telemetry::TraceSink) observing the solve
/// (per-round, per-worker, per-epoch and per-merge profiles).
pub fn analyse_kcfa_shared_elastic_traced<const K: usize, T>(
    program: &CExp,
    config: ParallelConfig,
    sink: &mut T,
) -> (KCfaShared<K>, EngineStats)
where
    T: mai_core::telemetry::TraceSink,
{
    analyse_worklist_elastic_traced::<KCallCtx<K>, KStore, _, T>(program, config, sink)
}

/// [`analyse_kcfa_shared_gc_direct`] solved by the barrier-elastic driver.
pub fn analyse_kcfa_shared_gc_elastic<const K: usize>(
    program: &CExp,
    config: ParallelConfig,
) -> (KCfaShared<K>, EngineStats) {
    analyse_gc_worklist_elastic::<KCallCtx<K>, KStore, _>(program, config)
}

/// [`analyse_mono_direct`] solved by the barrier-elastic driver.
pub fn analyse_mono_elastic(program: &CExp, config: ParallelConfig) -> (MonoShared, EngineStats) {
    analyse_worklist_elastic::<MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>, _>(program, config)
}

/// [`analyse_kcfa_with_count_direct`] solved by the barrier-elastic
/// driver (abstract counting commutes with lazy merging: the counting
/// store's join is the analysis join).
pub fn analyse_kcfa_with_count_elastic<const K: usize>(
    program: &CExp,
    config: ParallelConfig,
) -> (KCfaCounting<K>, EngineStats) {
    analyse_worklist_elastic::<KCallCtx<K>, KCountingStore, _>(program, config)
}

/// The resume seed of a governed shared-store k-CFA solve.
pub type KCfaSeed<const K: usize> = SharedResumeSeed<PState<KCallAddr>, KCallCtx<K>, KStore>;

/// [`analyse_kcfa_shared_direct`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_governed<const K: usize>(
    program: &CExp,
    budget: &Budget,
) -> (Outcome<KCfaShared<K>, KCfaSeed<K>>, EngineStats) {
    analyse_worklist_governed::<KCallCtx<K>, KStore, _>(program, budget)
}

/// Resumes an exhausted [`analyse_kcfa_shared_governed`] solve.
pub fn analyse_kcfa_shared_resume<const K: usize>(
    seed: KCfaSeed<K>,
    budget: &Budget,
) -> (Outcome<KCfaShared<K>, KCfaSeed<K>>, EngineStats) {
    analyse_resume_governed::<KCallCtx<K>, KStore, _>(seed, budget)
}

/// [`analyse_kcfa_shared_parallel`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_parallel_governed<const K: usize>(
    program: &CExp,
    threads: usize,
    budget: &Budget,
) -> Result<(Outcome<KCfaShared<K>, KCfaSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_parallel_governed::<KCallCtx<K>, KStore, _>(program, threads, budget)
}

/// [`analyse_kcfa_shared_elastic`], governed by a [`Budget`].
pub fn analyse_kcfa_shared_elastic_governed<const K: usize>(
    program: &CExp,
    config: ParallelConfig,
    budget: &Budget,
) -> Result<(Outcome<KCfaShared<K>, KCfaSeed<K>>, EngineStats), EngineError> {
    analyse_worklist_elastic_governed::<KCallCtx<K>, KStore, _>(program, config, budget)
}

/// [`analyse_kcfa_shared_elastic`] behind the degradation ladder
/// (elastic → barrier → sequential direct).
pub fn analyse_kcfa_shared_ladder<const K: usize>(
    program: &CExp,
    config: ParallelConfig,
    budget: &Budget,
) -> (
    Outcome<KCfaShared<K>, KCfaSeed<K>>,
    EngineStats,
    LadderReport,
) {
    analyse_worklist_ladder::<KCallCtx<K>, KStore>(program, config, budget)
}

/// How many distinct environments the states of a shared-store fixpoint
/// carry, measured with an [`EnvId`](mai_core::intern::EnvId) interner —
/// the language-boundary half of the engine's intern statistics
/// ([`EngineStats::distinct_envs`]).  With copy-on-write environments this
/// is also (a lower bound on) how many environment allocations the whole
/// run needed.
pub fn distinct_env_count<A, G, S>(result: &SharedStoreDomain<PState<A>, G, S>) -> usize
where
    A: mai_core::addr::Address + std::hash::Hash,
    G: Ord + Clone,
    S: Lattice,
{
    mai_core::intern::distinct_count(result.states().iter().map(|(ps, _)| ps.env.clone()))
}

/// [`analyse_kcfa_with_count`] solved by the worklist engine (shared
/// counting store; count bumps participate in dependency invalidation).
pub fn analyse_kcfa_with_count_worklist<const K: usize>(
    program: &CExp,
) -> (KCfaCounting<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KCountingStore, _>(program)
}

/// [`analyse_kcfa_count_cloned`] solved by the worklist engine.
pub fn analyse_kcfa_count_cloned_worklist<const K: usize>(
    program: &CExp,
) -> (KCfaCountingPerState<K>, EngineStats) {
    analyse_worklist::<KCallCtx<K>, KCountingStore, _>(program)
}

/// [`analyse_kcfa_shared_gc`] solved by the worklist engine: abstract GC
/// composes with the engine because a GC'd transition still only depends on
/// the store restricted to the state's reachable addresses.
pub fn analyse_kcfa_shared_gc_worklist<const K: usize>(
    program: &CExp,
) -> (KCfaShared<K>, EngineStats) {
    analyse_gc_worklist::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_kcfa_gc`] solved by the worklist engine.
pub fn analyse_kcfa_gc_worklist<const K: usize>(program: &CExp) -> (KCfaPerState<K>, EngineStats) {
    analyse_gc_worklist::<KCallCtx<K>, KStore, _>(program)
}

/// [`analyse_mono`] solved by the worklist engine.
pub fn analyse_mono_worklist(program: &CExp) -> (MonoShared, EngineStats) {
    analyse_worklist::<MonoCtx, BasicStore<MonoAddr, Val<MonoAddr>>, _>(program)
}

/// The per-state domain of the fresh-address concrete collecting semantics
/// (§5.3): concrete contexts, concrete addresses, one store per state.
pub type ConcreteCollectingDomain = PerStateDomain<
    PState<<ConcreteCtx as Context>::Addr>,
    ConcreteCtx,
    BasicStore<<ConcreteCtx as Context>::Addr, Val<<ConcreteCtx as Context>::Addr>>,
>;

/// The fresh-address *concrete collecting semantics* of §5.3, explored for
/// at most `max_iterations` Kleene steps (its domain has unbounded height,
/// so exhaustive exploration of a non-terminating program would diverge —
/// the paper makes the same caveat).
pub fn analyse_concrete_collecting(
    program: &CExp,
    max_iterations: usize,
) -> KleeneOutcome<ConcreteCollectingDomain> {
    type A = <ConcreteCtx as Context>::Addr;
    type S = BasicStore<A, Val<A>>;
    explore_fp_bounded::<StorePassing<ConcreteCtx, S>, _, _, _>(
        mnext::<StorePassing<ConcreteCtx, S>, A>,
        PState::inject(program.clone()),
        max_iterations,
    )
}

/// The abstract errors observable in a set of reachable states: the
/// power-set of error messages carried by stuck ([`CExp::Error`]) states.
/// This is the analysis-level output of the error layer threaded through
/// [`mnext`] — a program point that abstracts to
/// a stuck configuration (unbound variable, arity mismatch) shows up
/// here instead of vanishing as a silently dropped branch.
pub fn abstract_errors<'a, A, I>(states: I) -> BTreeSet<String>
where
    A: 'a,
    I: IntoIterator<Item = &'a PState<A>>,
{
    states
        .into_iter()
        .filter_map(|ps| ps.error().map(str::to_owned))
        .collect()
}

/// A flow set: which λ-abstractions may be bound to each variable.
pub type FlowMap = BTreeMap<Name, BTreeSet<Lambda>>;

/// Extracts the flow map (variable ↦ set of λ-abstractions) from any store
/// whose addresses remember their variable.
pub fn flow_map_of_store<A, S>(store: &S) -> FlowMap
where
    A: NamedAddress,
    S: StoreLike<A, D = BTreeSet<Val<A>>>,
{
    let mut flows: FlowMap = BTreeMap::new();
    for addr in store.addresses() {
        let entry = flows.entry(addr.variable().clone()).or_default();
        for val in store.fetch(&addr) {
            entry.insert(val.lambda().clone());
        }
    }
    flows
}

/// Precision and size metrics of an analysis result, used by the
/// experiment harness and the regression tests.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisMetrics {
    /// Number of abstract configurations explored (states × guts × stores
    /// for per-state domains, states × guts for shared-store domains).
    pub configurations: usize,
    /// Number of distinct partial states (program point + environment).
    pub distinct_states: usize,
    /// Number of bound addresses in the (joined) store.
    pub store_bindings: usize,
    /// Number of `(address, value)` facts in the (joined) store.
    pub store_facts: usize,
    /// Number of addresses with a singleton flow set — the headline
    /// precision metric (higher is more precise for the same program).
    pub singleton_flows: usize,
}

impl AnalysisMetrics {
    /// Metrics of a shared-store analysis result.
    pub fn of_shared<Ps, C, A>(result: &SharedStoreDomain<Ps, C, BasicStore<A, Val<A>>>) -> Self
    where
        Ps: Ord + Clone,
        C: Ord + Clone,
        A: NamedAddress,
    {
        let store = result.store();
        AnalysisMetrics {
            configurations: result.len(),
            distinct_states: result.distinct_states().len(),
            store_bindings: store.binding_count(),
            store_facts: store.fact_count(),
            singleton_flows: store.singleton_count(),
        }
    }

    /// Metrics of a per-state-store analysis result (stores are joined
    /// before being measured).
    pub fn of_per_state<Ps, C, A>(result: &PerStateDomain<Ps, C, BasicStore<A, Val<A>>>) -> Self
    where
        Ps: Ord + Clone,
        C: Ord + Clone,
        A: NamedAddress,
        Val<A>: Ord,
    {
        let joined: BasicStore<A, Val<A>> =
            Lattice::join_all(result.iter().map(|(_, s)| s.clone()));
        AnalysisMetrics {
            configurations: result.len(),
            distinct_states: result.distinct_states().len(),
            store_bindings: joined.binding_count(),
            store_facts: joined.fact_count(),
            singleton_flows: joined.singleton_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn identity_program() -> CExp {
        parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap()
    }

    /// Two different functions bound to the same variable through two calls:
    /// a monovariant analysis must conflate them, a 1-CFA analysis must not.
    fn two_call_sites() -> CExp {
        parse_program(
            "((λ (id k0)
                 (id (λ (a) exit)
                     (λ (f1) (id (λ (b) exit) (λ (f2) (f1 f2))))))
              (λ (x k) (k x))
              (λ (r) exit))",
        )
        .unwrap()
    }

    #[test]
    fn identity_program_reaches_exit_under_every_analysis() {
        let p = identity_program();
        assert!(analyse_mono(&p)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa::<1>(&p)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_shared::<1>(&p)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_with_count::<1>(&p)
            .distinct_states()
            .iter()
            .any(PState::is_final));
        assert!(analyse_kcfa_shared_gc::<1>(&p)
            .distinct_states()
            .iter()
            .any(PState::is_final));
    }

    #[test]
    fn stuck_programs_surface_as_abstract_errors() {
        // The operator references an unbound variable, so the only way
        // this program can end is the error state.
        let open = parse_program("(free (λ (r) exit))").unwrap();
        let mono = analyse_mono(&open);
        let states = mono.distinct_states();
        let errors = abstract_errors(states.iter());
        assert!(
            errors.iter().any(|m| m.contains("unbound variable `free`")),
            "expected an unbound-variable error, got {errors:?}"
        );
        assert!(!states.iter().any(PState::is_final));

        // An arity mismatch surfaces the same way.
        let mismatch = parse_program("((λ (x k) (k x)) (λ (y) exit))").unwrap();
        let shared = analyse_kcfa_shared::<1>(&mismatch);
        let errors = abstract_errors(shared.distinct_states().iter());
        assert!(
            errors.iter().any(|m| m.contains("arity mismatch")),
            "expected an arity-mismatch error, got {errors:?}"
        );

        // A well-formed program reports no abstract errors.
        let closed = analyse_mono(&identity_program());
        assert!(abstract_errors(closed.distinct_states().iter()).is_empty());
    }

    #[test]
    fn flow_map_of_identity_program_binds_x_to_the_argument_lambda() {
        let p = identity_program();
        let result = analyse_mono(&p);
        let flows = flow_map_of_store(result.store());
        let x_flows = &flows[&Name::from("x")];
        assert_eq!(x_flows.len(), 1);
        assert_eq!(x_flows.iter().next().unwrap().params()[0], Name::from("y"));
    }

    #[test]
    fn monovariant_analysis_conflates_what_one_cfa_distinguishes() {
        let p = two_call_sites();
        let mono = analyse_mono(&p);
        let kcfa = analyse_kcfa_shared::<1>(&p);
        let mono_flows = flow_map_of_store(mono.store());
        let kcfa_flows = flow_map_of_store(kcfa.store());
        // Under 0CFA the identity's parameter x receives both argument
        // lambdas; the analysis result itself is still sound.
        assert!(mono_flows[&Name::from("x")].len() >= 2);
        // Under 1CFA the binding is split per call site, so at least as many
        // singleton flows exist overall and strictly more address bindings.
        let mono_metrics = AnalysisMetrics::of_shared(&mono);
        let kcfa_metrics = AnalysisMetrics::of_shared(&kcfa);
        assert!(kcfa_metrics.store_bindings > mono_metrics.store_bindings);
        assert!(kcfa_flows.contains_key(&Name::from("x")));
    }

    #[test]
    fn shared_store_overapproximates_per_state_store() {
        let p = two_call_sites();
        let cloned = analyse_kcfa::<1>(&p);
        let shared = analyse_kcfa_shared::<1>(&p);
        // Every state explored with heap cloning is also reached with the
        // widened store.
        for ps in cloned.distinct_states() {
            assert!(shared.distinct_states().contains(&ps));
        }
        // And every per-state store is below the widened store.
        for (_, store) in cloned.iter() {
            assert!(store.leq(shared.store()));
        }
    }

    #[test]
    fn counting_store_certifies_linear_bindings() {
        use mai_core::store::Counter;

        let p = identity_program();
        // With per-state counting stores, every variable in this program is
        // bound exactly once along every path.
        let cloned = analyse_kcfa_count_cloned::<1>(&p);
        let mut saw_binding = false;
        for (_, store) in cloned.iter() {
            for addr in store.addresses() {
                saw_binding = true;
                assert_eq!(store.count(&addr), mai_core::AbsNat::One);
            }
        }
        assert!(saw_binding);

        // The widened (shared-store) counting analysis is a sound upper
        // bound: it never reports a *lower* count than any per-path store.
        let shared = analyse_kcfa_with_count::<1>(&p);
        for (_, store) in cloned.iter() {
            for addr in store.addresses() {
                assert!(store.count(&addr).leq(&shared.store().count(&addr)));
            }
        }
    }

    #[test]
    fn gc_never_loses_reachable_results_and_can_only_shrink_the_store() {
        let p = two_call_sites();
        let plain = analyse_kcfa_shared::<0>(&p);
        let gced = analyse_kcfa_shared_gc::<0>(&p);
        assert!(gced.distinct_states().iter().any(PState::is_final));
        let plain_metrics = AnalysisMetrics::of_shared(&plain);
        let gc_metrics = AnalysisMetrics::of_shared(&gced);
        assert!(gc_metrics.store_facts <= plain_metrics.store_facts);
    }

    #[test]
    fn concrete_collecting_semantics_of_terminating_program_converges() {
        let out = analyse_concrete_collecting(&identity_program(), 64);
        assert!(out.converged());
        assert!(out.value().distinct_states().iter().any(PState::is_final));
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let p = identity_program();
        let shared = analyse_kcfa_shared::<1>(&p);
        let m = AnalysisMetrics::of_shared(&shared);
        assert!(m.singleton_flows <= m.store_bindings);
        assert!(m.store_bindings <= m.store_facts);
        assert!(m.distinct_states <= m.configurations);

        let cloned = analyse_kcfa::<1>(&p);
        let mc = AnalysisMetrics::of_per_state(&cloned);
        assert!(mc.distinct_states <= mc.configurations);
    }
}
