//! CPS transformation from the direct-style λ-calculus of `mai-lambda`.
//!
//! The paper's CPS development and its direct-style (CESK) development are
//! two views of the same programs; this module provides the call-by-value
//! CPS transform connecting them, which the benchmark harness uses to run
//! identical workloads (Church arithmetic, blur, let-chains) through both
//! substrates.

use mai_core::name::{LabelSupply, Name};
use mai_lambda::syntax::Term;

use crate::syntax::{AExp, CExp, Lambda};

/// A call-by-value CPS converter with its own supplies of fresh labels and
/// fresh administrative variables.
#[derive(Debug, Default)]
pub struct CpsConverter {
    labels: LabelSupply,
    gensym: u64,
}

impl CpsConverter {
    /// Creates a fresh converter.
    pub fn new() -> Self {
        CpsConverter {
            labels: LabelSupply::new(),
            gensym: 0,
        }
    }

    fn fresh(&mut self, hint: &str) -> Name {
        self.gensym += 1;
        Name::from(format!("${hint}{}", self.gensym))
    }

    /// Converts a direct-style term into a whole CPS *program* whose final
    /// continuation binds the result to `$result` and exits.
    pub fn program(&mut self, term: &Term) -> CExp {
        let halt = AExp::lam(vec![Name::from("$result")], CExp::Exit);
        self.convert(term, halt)
    }

    /// The Fischer-style call-by-value CPS transform `⟦term⟧ k`.
    pub fn convert(&mut self, term: &Term, k: AExp) -> CExp {
        match term {
            Term::Var(x) => {
                let label = self.labels.fresh();
                CExp::call(label, k, vec![AExp::Ref(x.clone())])
            }
            Term::Lam { param, body } => {
                let kv = self.fresh("k");
                let body_cps = self.convert(body, AExp::Ref(kv.clone()));
                let label = self.labels.fresh();
                CExp::call(
                    label,
                    k,
                    vec![AExp::Lam(Lambda::new(vec![param.clone(), kv], body_cps))],
                )
            }
            Term::App { func, arg, .. } => {
                let fv = self.fresh("f");
                let vv = self.fresh("v");
                let label = self.labels.fresh();
                let apply =
                    CExp::call(label, AExp::Ref(fv.clone()), vec![AExp::Ref(vv.clone()), k]);
                let arg_cps = self.convert(arg, AExp::Lam(Lambda::new(vec![vv], apply)));
                self.convert(func, AExp::Lam(Lambda::new(vec![fv], arg_cps)))
            }
            Term::Let {
                name, rhs, body, ..
            } => {
                let body_cps = self.convert(body, k);
                self.convert(rhs, AExp::Lam(Lambda::new(vec![name.clone()], body_cps)))
            }
        }
    }
}

/// Converts a closed direct-style term into a CPS program.
///
/// ```rust
/// use mai_cps::convert::cps_convert;
/// use mai_lambda::parser::parse_term;
///
/// let term = parse_term("((λ (x) x) (λ (y) y))").unwrap();
/// let program = cps_convert(&term);
/// assert!(program.is_closed());
/// ```
pub fn cps_convert(term: &Term) -> CExp {
    CpsConverter::new().program(term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyse_mono;
    use crate::concrete::{interpret_with_limit, Outcome};
    use crate::semantics::PState;
    use mai_lambda::syntax::{church_numeral, TermBuilder};

    fn decode_cps_church(numeral: &Term) -> usize {
        // Apply the numeral to a counting function and decode by counting
        // the heap cells allocated for the counter's parameter, exactly as
        // the direct-style decoder does.
        let mut b = TermBuilder::new();
        let applied = b.apps(
            numeral.clone(),
            vec![
                Term::lam("cf", Term::var("cf")),
                Term::lam("cx", Term::var("cx")),
            ],
        );
        let program = cps_convert(&applied);
        match interpret_with_limit(&program, 1_000_000) {
            Outcome::Halted { heap, .. } => heap.allocations_for(&Name::from("cf")),
            Outcome::OutOfFuel { .. } => panic!("church decoding diverged"),
            Outcome::Stuck { state, .. } => panic!("church decoding got stuck at {state:?}"),
        }
    }

    #[test]
    fn converted_programs_are_closed_cps() {
        for (name, term) in mai_lambda::programs::standard_corpus() {
            let program = cps_convert(&term);
            assert!(program.is_closed(), "{name} converted to an open program");
            assert!(program.call_site_count() > 0, "{name} lost its call sites");
        }
    }

    #[test]
    fn conversion_preserves_church_arithmetic() {
        let mut b = TermBuilder::new();
        for n in 0..4 {
            let numeral = church_numeral(&mut b, n);
            assert_eq!(decode_cps_church(&numeral), n);
        }
        assert_eq!(
            decode_cps_church(&mai_lambda::programs::church_addition(2, 3)),
            5
        );
        assert_eq!(
            decode_cps_church(&mai_lambda::programs::church_multiplication(2, 3)),
            6
        );
        assert_eq!(
            decode_cps_church(&mai_lambda::programs::church_exponentiation(2, 3)),
            8
        );
    }

    #[test]
    fn converted_identity_halts_concretely_and_abstractly() {
        let program = cps_convert(&mai_lambda::programs::identity_application());
        assert!(interpret_with_limit(&program, 10_000).halted());
        let result = analyse_mono(&program);
        assert!(result.distinct_states().iter().any(PState::is_final));
    }

    #[test]
    fn converted_omega_still_diverges_concretely_but_analyses_finitely() {
        let program = cps_convert(&mai_lambda::programs::omega());
        assert!(!interpret_with_limit(&program, 2_000).halted());
        let result = analyse_mono(&program);
        assert!(!result.is_empty());
    }

    #[test]
    fn administrative_variables_do_not_capture_source_variables() {
        // A source program that uses names colliding with the converter's
        // hints must still convert to a closed, well-behaved program.
        let term = mai_lambda::parser::parse_term("(let (f (λ (v) v)) (f (λ (k) k)))").unwrap();
        let program = cps_convert(&term);
        assert!(program.is_closed());
        assert!(interpret_with_limit(&program, 10_000).halted());
    }
}
