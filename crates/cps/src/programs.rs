//! Benchmark and example CPS programs.
//!
//! These are the workloads used by the test suite, the examples and the
//! experiment harness (`mai-bench`): classic control-flow-analysis stress
//! programs expressed directly in CPS, plus size-parameterised generators
//! for the scaling experiments.  Programs built from direct-style λ-terms
//! (Church arithmetic and friends) are produced by [`crate::convert`]
//! instead.

use mai_core::name::{LabelSupply, Name};

use crate::syntax::{AExp, CExp, Lambda, Var};

/// A tiny builder around a [`LabelSupply`] for constructing CPS programs
/// programmatically with correctly labelled call sites.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    labels: LabelSupply,
}

impl ProgramBuilder {
    /// Creates a fresh builder.
    pub fn new() -> Self {
        ProgramBuilder {
            labels: LabelSupply::new(),
        }
    }

    /// A variable reference.
    pub fn var(&self, name: &str) -> AExp {
        AExp::var(name)
    }

    /// A λ-abstraction.
    pub fn lam(&self, params: &[&str], body: CExp) -> AExp {
        AExp::Lam(Lambda::new(
            params.iter().map(|p| Name::from(*p)).collect::<Vec<Var>>(),
            body,
        ))
    }

    /// A call site with a fresh label.
    pub fn call(&mut self, f: AExp, args: Vec<AExp>) -> CExp {
        CExp::call(self.labels.fresh(), f, args)
    }

    /// The `exit` expression.
    pub fn exit(&self) -> CExp {
        CExp::Exit
    }
}

/// `((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))` — the identity function
/// applied to the identity function; the smallest interesting program.
pub fn identity_application() -> CExp {
    let mut b = ProgramBuilder::new();
    let inner = b.call(b.var("k"), vec![b.var("x")]);
    let id = b.lam(&["x", "k"], inner);
    let arg_body = b.call(b.var("j"), vec![b.var("y")]);
    let arg = b.lam(&["y", "j"], arg_body);
    let exit = b.exit();
    let halt = b.lam(&["r"], exit);
    b.call(id, vec![arg, halt])
}

/// `((λ (f) (f f)) (λ (g) (g g)))` — the classic divergent Ω term.  Finite
/// abstract analyses terminate on it; the concrete interpreter does not.
pub fn omega() -> CExp {
    let mut b = ProgramBuilder::new();
    let ff = b.call(b.var("f"), vec![b.var("f")]);
    let outer = b.lam(&["f"], ff);
    let gg = b.call(b.var("g"), vec![b.var("g")]);
    let inner = b.lam(&["g"], gg);
    b.call(outer, vec![inner])
}

/// A chain of `n` applications of a single shared identity function to `n`
/// syntactically distinct argument functions:
///
/// ```text
/// let id = λ (x k). k x in
///   id a₁ (λ v₁. id a₂ (λ v₂. … exit))
/// ```
///
/// Under a monovariant analysis every `aᵢ` flows into the single binding of
/// `x` (and from there into every `vⱼ`); a 1-CFA analysis keeps the chain
/// precise.  This is the standard polyvariance stress test, and its
/// per-state-store analysis grows very quickly with `n`.
pub fn id_chain(n: usize) -> CExp {
    let mut b = ProgramBuilder::new();
    // Innermost continuation body: exit.
    let mut body = b.exit();
    // Build from the inside out: id aᵢ (λ (vᵢ) body)
    for i in (0..n).rev() {
        let arg_name = format!("a{i}");
        let cont_param = format!("v{i}");
        // The argument lambda: a distinct one-parameter function per step.
        let arg_inner = b.exit();
        let arg = b.lam(&[arg_name.as_str()], arg_inner);
        let cont = b.lam(&[cont_param.as_str()], body);
        body = b.call(b.var("id"), vec![arg, cont]);
    }
    let kx = b.call(b.var("k"), vec![b.var("x")]);
    let id = b.lam(&["x", "k"], kx);
    let top = b.lam(&["id"], body);
    b.call(top, vec![id])
}

/// The k-CFA "paradox" worst case (Van Horn & Might; Might, Smaragdakis &
/// Van Horn, PLDI 2010), scaled by `n`: `n` nested calls of a shared
/// two-continuation function, where each level can observe the bindings of
/// every enclosing level.  Heap-cloning analyses explore exponentially many
/// store variants as `n` grows; a shared-store analysis stays polynomial.
pub fn kcfa_worst_case(n: usize) -> CExp {
    kcfa_worst_case_scaled(n, 1)
}

/// The k-CFA worst case with a *scale knob*: `width` independent **lanes**
/// of the depth-`n` paradox, all abstractly live at the same time.
///
/// Each lane is a full copy of the classic cascade (with lane-local
/// variable names and fresh labels), wrapped as `λ (chᵢ) ⟨cascade over
/// chᵢ⟩`.  The lanes are then merged into **one** abstract address by a
/// two-stage relay —
///
/// ```text
/// merge = λ (x k). (k x)          ; entered from exactly one call site…
/// pump  = λ (y j). (merge y j)    ; …this one, whatever fed the pump
/// ```
///
/// — so after the `width` seeding calls `(pump laneᵢ …)` the single 1-CFA
/// address of `x` holds *every* lane, and the final dispatch `(r chooser)`
/// fans out to all of them at once.  From that round on, all `width`
/// cascades advance simultaneously and independently (lane-local names and
/// labels keep their stores disjoint), so the abstract transition graph is
/// `width` lanes wide instead of `width` times longer: total state count
/// and call-site count still grow as `n × width`, but the *frontier* of
/// the fixpoint engines now carries `≈ width` states per round.  This is
/// what makes the family both the E10/E11 wall-clock workload and the E12
/// parallel-scaling workload — a sharded driver has `width`-way work every
/// round, while a chain-shaped scale knob would leave nothing to shard.
///
/// `kcfa_worst_case_scaled(n, 1)` is byte-for-byte [`kcfa_worst_case`]`(n)`.
pub fn kcfa_worst_case_scaled(n: usize, width: usize) -> CExp {
    let mut b = ProgramBuilder::new();
    // The shared function: takes a value and a continuation, calls the
    // continuation with *both* of two locally-created functions, creating
    // genuine non-determinism at every level.
    //
    //   chooser = λ (p k). (k p)
    //
    // and each level i of a lane does:
    //   (ch f_i  (λ (c_i) (ch g_i (λ (d_i) <next level>))))
    // where f_i / g_i are distinct lambdas closing over earlier c/d's.
    if width <= 1 {
        // The classic single-lane paradox, byte-for-byte.
        let mut body = b.exit();
        for i in (0..n).rev() {
            let c = format!("c{i}");
            let d = format!("d{i}");
            // g closes over c to keep earlier bindings live.
            let g_body = b.call(b.var(c.as_str()), vec![b.var("w")]);
            let g = b.lam(&["w"], g_body);
            let inner_cont = b.lam(&[d.as_str()], body);
            let inner_call = b.call(b.var("chooser"), vec![g, inner_cont]);
            let f_inner = b.exit();
            let f = b.lam(&["z"], f_inner);
            let outer_cont = b.lam(&[c.as_str()], inner_call);
            body = b.call(b.var("chooser"), vec![f, outer_cont]);
        }
        let kp = b.call(b.var("k"), vec![b.var("p")]);
        let chooser = b.lam(&["p", "k"], kp);
        let top = b.lam(&["chooser"], body);
        return b.call(top, vec![chooser]);
    }

    // One classic cascade per lane, over lane-local names (`l3c0`, `l3d0`,
    // …) so the lanes' store footprints are disjoint under every context.
    let lanes: Vec<AExp> = (0..width)
        .map(|l| {
            let ch = format!("ch{l}");
            let mut body = b.exit();
            for i in (0..n).rev() {
                let c = format!("l{l}c{i}");
                let d = format!("l{l}d{i}");
                let w = format!("l{l}w{i}");
                let z = format!("l{l}z{i}");
                let g_body = b.call(b.var(c.as_str()), vec![b.var(w.as_str())]);
                let g = b.lam(&[w.as_str()], g_body);
                let inner_cont = b.lam(&[d.as_str()], body);
                let inner_call = b.call(b.var(ch.as_str()), vec![g, inner_cont]);
                let f_inner = b.exit();
                let f = b.lam(&[z.as_str()], f_inner);
                let outer_cont = b.lam(&[c.as_str()], inner_call);
                body = b.call(b.var(ch.as_str()), vec![f, outer_cont]);
            }
            b.lam(&[ch.as_str()], body)
        })
        .collect();

    // Seeding, inside out: the last pumped continuation dispatches the
    // merged lane set; every earlier one pumps the next lane.
    //
    //   (pump lane₀ (λ (r0) (pump lane₁ (λ (r1) … (λ (r_last) (r_last
    //   chooser))))))
    let r_last = format!("r{}", width - 1);
    let dispatch = b.call(b.var(r_last.as_str()), vec![b.var("chooser")]);
    let mut cont = b.lam(&[r_last.as_str()], dispatch);
    let mut seed = b.call(b.var("pump"), vec![lanes[width - 1].clone(), cont]);
    for l in (0..width - 1).rev() {
        let r = format!("r{l}");
        cont = b.lam(&[r.as_str()], seed);
        seed = b.call(b.var("pump"), vec![lanes[l].clone(), cont]);
    }

    // merge is entered from exactly one call site (inside pump), so under
    // 1-CFA — and any coarser context — `x` is a single address that
    // accumulates every pumped lane.
    let kx = b.call(b.var("k"), vec![b.var("x")]);
    let merge = b.lam(&["x", "k"], kx);
    let merge_call = b.call(b.var("merge"), vec![b.var("y"), b.var("j")]);
    let pump = b.lam(&["y", "j"], merge_call);
    let kp = b.call(b.var("k"), vec![b.var("p")]);
    let chooser = b.lam(&["p", "k"], kp);

    let with_pump = b.call(b.lam(&["pump"], seed), vec![pump]);
    let with_merge = b.call(b.lam(&["merge"], with_pump), vec![merge]);
    b.call(b.lam(&["chooser"], with_merge), vec![chooser])
}

/// A program that creates a long chain of bindings of which only the most
/// recent is ever live: a garbage-collection stress test.  Without abstract
/// GC the (monovariant) store accumulates every generation; with GC each
/// step's dead bindings are dropped.
pub fn garbage_chain(n: usize) -> CExp {
    let mut b = ProgramBuilder::new();
    // step = λ (junk k). (k (λ (u) exit))    — the argument is dead on arrival
    let mut body = b.exit();
    for i in (0..n).rev() {
        let junk_name = format!("t{i}");
        let junk_inner = b.exit();
        let junk = b.lam(&[format!("j{i}").as_str()], junk_inner);
        let cont = b.lam(&[junk_name.as_str()], body);
        body = b.call(b.var("step"), vec![junk, cont]);
    }
    let fresh_exit = b.exit();
    let fresh = b.lam(&["u"], fresh_exit);
    let step_body = b.call(b.var("k"), vec![fresh]);
    let step = b.lam(&["junk", "k"], step_body);
    let top = b.lam(&["step"], body);
    b.call(top, vec![step])
}

/// `n` distinct call sites of one shared identity function, each passing a
/// distinct argument function and immediately exiting.  The flow set of the
/// identity's parameter has `n` elements under 0CFA and is a singleton per
/// context under 1CFA — the textbook polyvariance example.
pub fn fan_out(n: usize) -> CExp {
    let mut b = ProgramBuilder::new();
    let mut body = b.exit();
    for i in (0..n).rev() {
        let arg_inner = b.exit();
        let arg = b.lam(&[format!("p{i}").as_str()], arg_inner);
        let cont_body = body;
        let cont = b.lam(&[format!("r{i}").as_str()], cont_body);
        body = b.call(b.var("id"), vec![arg, cont]);
    }
    let kx = b.call(b.var("k"), vec![b.var("x")]);
    let id = b.lam(&["x", "k"], kx);
    let top = b.lam(&["id"], body);
    b.call(top, vec![id])
}

/// The standard corpus used by the experiment harness: name / program
/// pairs covering the qualitative claims of the paper's §6 and §8.
pub fn standard_corpus() -> Vec<(&'static str, CExp)> {
    vec![
        ("identity", identity_application()),
        ("omega", omega()),
        ("id-chain-4", id_chain(4)),
        ("id-chain-8", id_chain(8)),
        ("fan-out-6", fan_out(6)),
        ("kcfa-worst-3", kcfa_worst_case(3)),
        ("garbage-chain-6", garbage_chain(6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyse_kcfa_shared, analyse_mono, flow_map_of_store};
    use crate::semantics::PState;

    #[test]
    fn all_generated_programs_are_closed() {
        for (name, program) in standard_corpus() {
            assert!(program.is_closed(), "{name} has free variables");
        }
        for n in 0..6 {
            assert!(id_chain(n).is_closed());
            assert!(kcfa_worst_case(n).is_closed());
            assert!(garbage_chain(n).is_closed());
            assert!(fan_out(n).is_closed());
        }
    }

    #[test]
    fn scaled_worst_case_at_width_one_is_the_classic_generator() {
        for n in 0..5 {
            assert_eq!(
                kcfa_worst_case_scaled(n, 1).to_string(),
                kcfa_worst_case(n).to_string()
            );
        }
    }

    #[test]
    fn scaled_worst_case_grows_with_the_width_knob() {
        assert!(kcfa_worst_case_scaled(3, 4).is_closed());
        assert!(
            kcfa_worst_case_scaled(3, 4).call_site_count()
                > kcfa_worst_case_scaled(3, 1).call_site_count()
        );
        let wide = crate::analysis::analyse_kcfa_shared::<1>(&kcfa_worst_case_scaled(2, 3));
        let narrow = crate::analysis::analyse_kcfa_shared::<1>(&kcfa_worst_case_scaled(2, 1));
        assert!(wide.len() > narrow.len());
    }

    #[test]
    fn generated_programs_have_unique_labels() {
        for (name, program) in standard_corpus() {
            let labels = program.labels();
            assert!(
                !labels.is_empty() || program.is_exit(),
                "{name} has no call sites"
            );
            // Labels are a set, so uniqueness is by construction; check that
            // the count grows with the size parameter for the generators.
        }
        assert!(id_chain(8).call_site_count() > id_chain(4).call_site_count());
        assert!(fan_out(8).call_site_count() > fan_out(2).call_site_count());
    }

    #[test]
    fn programs_parse_back_from_their_rendering() {
        use crate::parser::parse_program;
        for (name, program) in standard_corpus() {
            let reparsed = parse_program(&program.to_string())
                .unwrap_or_else(|e| panic!("{name} failed to re-parse: {e}"));
            // Labels may differ, but structure (rendering) must round-trip.
            assert_eq!(reparsed.to_string(), program.to_string(), "{name}");
        }
    }

    #[test]
    fn analyses_terminate_on_the_whole_corpus() {
        for (name, program) in standard_corpus() {
            let mono = analyse_mono(&program);
            assert!(!mono.is_empty(), "{name} produced an empty analysis");
            let one = analyse_kcfa_shared::<1>(&program);
            assert!(!one.is_empty(), "{name} produced an empty 1-CFA analysis");
        }
    }

    #[test]
    fn fan_out_flow_sets_show_the_polyvariance_gap() {
        let program = fan_out(5);
        let mono = analyse_mono(&program);
        let flows = flow_map_of_store(mono.store());
        // Under 0CFA the shared identity's parameter accumulates all five
        // argument lambdas.
        assert_eq!(flows[&mai_core::Name::from("x")].len(), 5);
    }

    #[test]
    fn omega_is_finite_for_the_abstract_semantics() {
        let result = analyse_mono(&omega());
        // The abstract state space of Ω is tiny and the analysis must halt.
        assert!(result.distinct_states().len() <= 4);
        assert!(!result.distinct_states().iter().any(PState::is_final));
    }
}
