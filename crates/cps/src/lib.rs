//! # mai-cps — continuation-passing-style λ-calculus
//!
//! The CPS substrate of the *Monadic Abstract Interpreters* reproduction:
//! the language the paper develops in full (§2–§8).
//!
//! * [`syntax`] — the grammar of Figure 1, with labelled call sites.
//! * [`parser`] — a Scheme-like concrete syntax.
//! * [`semantics`] — the monadic semantic interface `CPSInterface`
//!   (Figure 2), partial states, values, and the single transition rule
//!   [`semantics::mnext`] written once against the interface.
//! * [`concrete`] — the concrete interpreter of §4, recovered by choosing a
//!   deterministic state monad over a real heap.
//! * [`analysis`] — the `StorePassing` instance (§5.3, §6), abstract
//!   garbage collection and the k-CFA analysis family of §8
//!   (`analyse_kcfa`, `analyse_kcfa_shared`, `analyse_kcfa_with_count`,
//!   GC'd variants, the monovariant 0CFA, and the fresh-address concrete
//!   collecting semantics).
//! * [`programs`] — benchmark programs and generators.
//! * [`convert`] — a CPS transform from the direct-style λ-calculus of
//!   `mai-lambda`, used to obtain realistic workloads (Church arithmetic).
//!
//! ```rust
//! use mai_cps::parser::parse_program;
//! use mai_cps::analysis::{analyse_mono, flow_map_of_store};
//!
//! let program = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
//! let result = analyse_mono(&program);
//! let flows = flow_map_of_store(result.store());
//! // The analysis discovers that x may only be bound to (λ (y j) (j y)).
//! assert_eq!(flows[&mai_core::Name::from("x")].len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod concrete;
pub mod convert;
pub mod direct;
pub mod parser;
pub mod programs;
pub mod semantics;
pub mod syntax;

pub use analysis::{
    abstract_errors, analyse, analyse_concrete_collecting, analyse_gc, analyse_gc_worklist,
    analyse_gc_worklist_rescan, analyse_gc_worklist_structural, analyse_kcfa,
    analyse_kcfa_count_cloned, analyse_kcfa_count_cloned_worklist, analyse_kcfa_gc,
    analyse_kcfa_gc_worklist, analyse_kcfa_shared, analyse_kcfa_shared_gc,
    analyse_kcfa_shared_gc_worklist, analyse_kcfa_shared_rescan, analyse_kcfa_shared_structural,
    analyse_kcfa_shared_worklist, analyse_kcfa_with_count, analyse_kcfa_with_count_worklist,
    analyse_kcfa_worklist, analyse_mono, analyse_mono_worklist, analyse_worklist,
    analyse_worklist_rescan, analyse_worklist_structural, distinct_env_count, flow_map_of_store,
    AnalysisMetrics, CpsGc, FlowMap,
};
pub use analysis::{
    analyse_gc_worklist_direct, analyse_kcfa_direct, analyse_kcfa_shared_direct,
    analyse_kcfa_shared_direct_traced, analyse_kcfa_shared_elastic,
    analyse_kcfa_shared_elastic_traced, analyse_kcfa_shared_gc_direct,
    analyse_kcfa_shared_gc_elastic, analyse_kcfa_shared_parallel_traced,
    analyse_kcfa_with_count_direct, analyse_kcfa_with_count_elastic, analyse_mono_direct,
    analyse_mono_elastic, analyse_worklist_direct, analyse_worklist_direct_traced,
    analyse_worklist_elastic_traced, analyse_worklist_parallel_traced,
};
pub use concrete::{interpret, interpret_with_limit, Heap, HeapAddr, Outcome};
pub use convert::cps_convert;
pub use direct::mnext_direct;
pub use parser::{parse_program, ParseCpsError};
pub use semantics::{mnext, CpsInterface, Env, PState, Val};
pub use syntax::{AExp, CExp, Lambda, Var};
