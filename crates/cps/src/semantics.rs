//! The monadic semantic interface of CPS and its single transition rule
//! (paper §3, Figure 2).
//!
//! This module is the heart of the reproduction: the [`CpsInterface`] trait
//! is the paper's `CPSInterface m a` type class, and [`mnext`] is its
//! *final* `mnext` — written once, against the interface, and never changed
//! again.  Everything else (concrete interpretation, 0CFA, k-CFA, abstract
//! counting, garbage collection, store widening) is obtained by choosing a
//! different monad and interface implementation in
//! [`crate::analysis`] / [`crate::concrete`].

use std::collections::BTreeSet;
use std::fmt;

use mai_core::addr::Address;
use mai_core::engine::StateRoots;
use mai_core::env::CowMap;
use mai_core::gc::Touches;
use mai_core::monad::{map_m, sequence_m, MonadFamily};
use mai_core::name::Label;

use crate::syntax::{AExp, CExp, Lambda, Var};

/// An environment: a finite map from variables to addresses
/// (`Env a = Var ⇀ a`), shared copy-on-write — cloning an environment into
/// a closure or successor state is a reference-count bump, and the map is
/// copied only when a shared handle is extended.
pub type Env<A> = CowMap<Var, A>;

/// A denotable value.  CPS is so small that closures are the only kind of
/// value (`Val a = Clo (Lambda, Env a)`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val<A> {
    /// A closure: a λ-abstraction paired with its environment.
    Clo {
        /// The code of the closure.
        lambda: Lambda,
        /// The captured environment.
        env: Env<A>,
    },
}

impl<A> Val<A> {
    /// Creates a closure value.
    pub fn closure(lambda: Lambda, env: Env<A>) -> Self {
        Val::Clo { lambda, env }
    }

    /// The λ-abstraction of this closure.
    pub fn lambda(&self) -> &Lambda {
        match self {
            Val::Clo { lambda, .. } => lambda,
        }
    }

    /// The captured environment of this closure.
    pub fn env(&self) -> &Env<A> {
        match self {
            Val::Clo { env, .. } => env,
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for Val<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Clo { lambda, env } => write!(f, "⟨{}, {:?}⟩", lambda, env),
        }
    }
}

/// A closure touches the addresses its environment assigns to the free
/// variables of its code (the paper's `T̂(æ, ρ̂)`, restricted to the
/// variables that can actually be referenced).
impl<A: Address> Touches<A> for Val<A> {
    fn touches(&self) -> BTreeSet<A> {
        let Val::Clo { lambda, env } = self;
        lambda
            .free_vars_ref()
            .iter()
            .filter_map(|v| env.get(v).cloned())
            .collect()
    }
}

/// A *partial* state: the machine state with the store (and the time) pulled
/// out into the monad (`PΣ a = (CExp, Env a)` — paper §3.3/§3.4).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PState<A> {
    /// The control component: the call being executed.
    pub call: CExp,
    /// The environment in force.
    pub env: Env<A>,
}

impl<A> PState<A> {
    /// Creates a partial state.
    pub fn new(call: CExp, env: Env<A>) -> Self {
        PState { call, env }
    }

    /// The injector `I(call) = (call, [])`: the initial state of a program.
    pub fn inject(program: CExp) -> Self {
        PState {
            call: program,
            env: Env::new(),
        }
    }

    /// Whether this state has halted.
    pub fn is_final(&self) -> bool {
        self.call.is_exit()
    }

    /// Whether this state is stuck on an abstract error.
    pub fn is_error(&self) -> bool {
        matches!(self.call, CExp::Error(_))
    }

    /// The error message, if this state is stuck.
    pub fn error(&self) -> Option<&str> {
        match &self.call {
            CExp::Error(msg) => Some(msg),
            _ => None,
        }
    }

    /// The label of the call site this state is about to execute.
    pub fn site(&self) -> Label {
        self.call.label()
    }
}

impl<A: fmt::Debug> fmt::Debug for PState<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {:?}⟩", self.call, self.env)
    }
}

/// A state touches the addresses its environment assigns to the free
/// variables of its control expression (the paper's `T̂(call, ρ̂, σ̂, t̂)`).
impl<A: Address> Touches<A> for PState<A> {
    fn touches(&self) -> BTreeSet<A> {
        self.call
            .free_vars()
            .iter()
            .filter_map(|v| self.env.get(v).cloned())
            .collect()
    }
}

/// The worklist engine's view of a state's read set: the same roots abstract
/// GC starts from ([`Touches`]), with the address type pinned down so the
/// engine can close them over the shared store.
impl<A: Address> StateRoots for PState<A> {
    type Addr = A;

    fn state_roots(&self) -> BTreeSet<A> {
        self.touches()
    }
}

/// The paper's `CPSInterface m a` (Figure 2): the five operations through
/// which the CPS semantics interacts with values, the store and time.
///
/// Implementations choose the analysis monad `Self` and the address type
/// `A`; [`mnext`] is written once against this interface.
///
/// * [`fun`](CpsInterface::fun) evaluates the operator position (the only
///   source of non-determinism in the abstract semantics);
/// * [`arg`](CpsInterface::arg) evaluates operand positions;
/// * [`write`](CpsInterface::write) is the paper's `(↦)`: binds an address
///   to a value in the store carried by the monad;
/// * [`alloc`](CpsInterface::alloc) allocates an address for a variable,
///   consulting whatever context the monad carries;
/// * [`tick`](CpsInterface::tick) advances the monad's internal notion of
///   time across a call.
pub trait CpsInterface<A: Address>: MonadFamily {
    /// Evaluates an atomic expression in operator position.
    fn fun(env: &Env<A>, e: &AExp) -> Self::M<Val<A>>;

    /// Evaluates an atomic expression in operand position.
    fn arg(env: &Env<A>, e: &AExp) -> Self::M<Val<A>>;

    /// Binds `addr ↦ val` in the store carried by the monad.
    fn write(addr: A, val: Val<A>) -> Self::M<()>;

    /// Allocates an address for the variable `var`.
    fn alloc(var: &Var) -> Self::M<A>;

    /// Advances time across the application of `proc` at state `ps`.
    fn tick(proc: &Val<A>, ps: &PState<A>) -> Self::M<()>;
}

/// The single transition rule of CPS in monadic normal form — the paper's
/// final `mnext` (Figure 2), transcribed bind-for-bind:
///
/// ```text
/// mnext ps@(Call f aes, ρ) = do
///   proc@(Clo (vs ⇒ call′, ρ′)) ← fun ρ f
///   tick proc ps
///   as ← mapM alloc vs
///   ds ← mapM (arg ρ) aes
///   let ρ′′ = ρ′ // [v ⇒ a | v ← vs | a ← as]
///   sequence [a ↦ d | a ← as | d ← ds]
///   return (call′, ρ′′)
/// mnext ς = return ς
/// ```
///
/// Exit states step to themselves.  Stuck transitions — an unbound
/// variable in operator or operand position, or an arity mismatch between
/// callee and call — step to an [`CExp::Error`] state (which then steps to
/// itself): the error layer.  Both checks are *pure* (the environment and
/// the callee's parameter list live outside the monad), so every carrier,
/// concrete or abstract, produces the identical error successor.
pub fn mnext<M, A>(ps: PState<A>) -> M::M<PState<A>>
where
    M: CpsInterface<A>,
    A: Address,
{
    match ps.call.clone() {
        CExp::Call { f, args, .. } => {
            if let Some(v) = first_unbound(&ps.env, &f, &args) {
                return M::pure(PState::new(
                    CExp::Error(format!("unbound variable `{}`", v)),
                    Env::new(),
                ));
            }
            let env = ps.env.clone();
            let state = ps;
            M::bind(M::fun(&env, &f), move |proc| {
                if proc.lambda().params().len() != args.len() {
                    return M::pure(PState::new(
                        CExp::Error(arity_mismatch(proc.lambda(), args.len())),
                        Env::new(),
                    ));
                }
                // Each non-deterministic callee gets its own copies.
                let env = env.clone();
                let args = args.clone();
                let state = state.clone();
                let lambda = proc.lambda().clone();
                let captured_env = proc.env().clone();
                M::bind(M::tick(&proc, &state), move |()| {
                    let env = env.clone();
                    let args = args.clone();
                    let params = lambda.params().to_vec();
                    let body = lambda.body().clone();
                    let captured_env = captured_env.clone();
                    M::bind(
                        map_m::<M, Var, A, _>(|v| M::alloc(&v), params.clone()),
                        move |addrs| {
                            let env = env.clone();
                            let args = args.clone();
                            let params = params.clone();
                            let body = body.clone();
                            let captured_env = captured_env.clone();
                            M::bind(
                                map_m::<M, AExp, Val<A>, _>(
                                    {
                                        let env = env.clone();
                                        move |ae| M::arg(&env, &ae)
                                    },
                                    args.clone(),
                                ),
                                move |vals| {
                                    // ρ′′ = ρ′ // [v ⇒ a]
                                    let mut next_env = captured_env.clone();
                                    for (v, a) in params.iter().zip(addrs.iter()) {
                                        next_env.insert(v.clone(), a.clone());
                                    }
                                    // sequence [a ↦ d]
                                    let writes: Vec<M::M<()>> = addrs
                                        .iter()
                                        .cloned()
                                        .zip(vals)
                                        .map(|(a, d)| M::write(a, d))
                                        .collect();
                                    let body = body.clone();
                                    M::bind(sequence_m::<M, ()>(writes), move |_| {
                                        M::pure(PState::new((*body).clone(), next_env.clone()))
                                    })
                                },
                            )
                        },
                    )
                })
            })
        }
        CExp::Exit | CExp::Error(_) => M::pure(ps),
    }
}

/// The first unbound variable reference of a call, operator position
/// first, operands left to right — shared by both carriers so the error
/// state (and its message) is byte-identical.
pub(crate) fn first_unbound<A>(env: &Env<A>, f: &AExp, args: &[AExp]) -> Option<Var> {
    std::iter::once(f).chain(args.iter()).find_map(|e| match e {
        AExp::Ref(v) if env.get(v).is_none() => Some(v.clone()),
        _ => None,
    })
}

/// The arity-mismatch message for applying `lambda` to `got` arguments.
pub(crate) fn arity_mismatch(lambda: &Lambda, got: usize) -> String {
    format!(
        "arity mismatch: callee takes {} arguments, call passes {}",
        lambda.params().len(),
        got
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mai_core::name::Name;

    #[test]
    fn inject_starts_with_an_empty_environment() {
        let ps: PState<u32> = PState::inject(CExp::Exit);
        assert!(ps.env.is_empty());
        assert!(ps.is_final());
        assert_eq!(ps.site(), Label::none());
    }

    #[test]
    fn closures_touch_only_their_free_variables() {
        // (λ (x) (f x)) with env {f ↦ 1, g ↦ 2, x ↦ 3}
        let lam = Lambda::new(
            vec![Name::from("x")],
            CExp::call(Label::new(1), AExp::var("f"), vec![AExp::var("x")]),
        );
        let env: Env<u32> = [
            (Name::from("f"), 1u32),
            (Name::from("g"), 2),
            (Name::from("x"), 3),
        ]
        .into_iter()
        .collect();
        let val = Val::closure(lam, env);
        assert_eq!(val.touches(), [1u32].into_iter().collect());
    }

    #[test]
    fn states_touch_the_addresses_of_their_free_variables() {
        let call = CExp::call(Label::new(1), AExp::var("f"), vec![AExp::var("x")]);
        let env: Env<u32> = [(Name::from("f"), 10u32), (Name::from("x"), 20)]
            .into_iter()
            .collect();
        let ps = PState::new(call, env);
        assert_eq!(ps.touches(), [10u32, 20].into_iter().collect());
    }

    #[test]
    fn val_accessors_expose_code_and_environment() {
        let lam = Lambda::new(vec![Name::from("x")], CExp::Exit);
        let env: Env<u32> = [(Name::from("y"), 5u32)].into_iter().collect();
        let v = Val::closure(lam.clone(), env.clone());
        assert_eq!(v.lambda(), &lam);
        assert_eq!(v.env(), &env);
    }

    #[test]
    fn debug_renderings_are_nonempty() {
        let ps: PState<u32> = PState::inject(CExp::Exit);
        assert!(!format!("{:?}", ps).is_empty());
        let v: Val<u32> = Val::closure(Lambda::new(vec![], CExp::Exit), Env::new());
        assert!(!format!("{:?}", v).is_empty());
    }
}
