//! A parser for the Scheme-like concrete syntax of CPS programs.
//!
//! Grammar (s-expressions):
//!
//! ```text
//! call ::= (f æ …)            application
//!        | exit | (exit)      the halt expression
//! æ    ::= x                  variable reference
//!        | (λ (x …) call)     abstraction  (`lambda` is accepted for `λ`)
//! ```
//!
//! Every call site receives a fresh [`Label`](mai_core::name::Label) in
//! parse order, so two parses of the same text produce structurally equal
//! programs.

use std::error::Error;
use std::fmt;

use mai_core::name::{LabelSupply, Name};
use mai_core::sexp::{parse_one, ParseSexpError, Sexp};

use crate::syntax::{AExp, CExp, Lambda, Var};

/// An error produced while parsing a CPS program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseCpsError {
    /// The underlying s-expression was malformed.
    Sexp(ParseSexpError),
    /// A λ-abstraction was malformed (wrong arity, bad parameter list, …).
    MalformedLambda(String),
    /// A call expression was malformed.
    MalformedCall(String),
    /// A keyword (`λ`, `exit`) was used where a variable was expected, or
    /// vice versa.
    ReservedWord(String),
}

impl fmt::Display for ParseCpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseCpsError::Sexp(e) => write!(f, "malformed s-expression: {}", e),
            ParseCpsError::MalformedLambda(msg) => write!(f, "malformed lambda: {}", msg),
            ParseCpsError::MalformedCall(msg) => write!(f, "malformed call: {}", msg),
            ParseCpsError::ReservedWord(w) => write!(f, "reserved word used as variable: {}", w),
        }
    }
}

impl Error for ParseCpsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseCpsError::Sexp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseSexpError> for ParseCpsError {
    fn from(e: ParseSexpError) -> Self {
        ParseCpsError::Sexp(e)
    }
}

const LAMBDA_KEYWORDS: &[&str] = &["λ", "lambda"];
const EXIT_KEYWORD: &str = "exit";

fn is_lambda_keyword(s: &str) -> bool {
    LAMBDA_KEYWORDS.contains(&s)
}

fn parse_var(atom: &str) -> Result<Var, ParseCpsError> {
    if is_lambda_keyword(atom) || atom == EXIT_KEYWORD {
        return Err(ParseCpsError::ReservedWord(atom.to_string()));
    }
    Ok(Name::from(atom))
}

fn parse_aexp(sexp: &Sexp, labels: &mut LabelSupply) -> Result<AExp, ParseCpsError> {
    match sexp {
        Sexp::Atom(a) => Ok(AExp::Ref(parse_var(a)?)),
        Sexp::List(items) => {
            let head = items.first().and_then(Sexp::as_atom);
            if head.map(is_lambda_keyword) == Some(true) {
                if items.len() != 3 {
                    return Err(ParseCpsError::MalformedLambda(format!(
                        "expected (λ (params…) body), got {} items",
                        items.len()
                    )));
                }
                let params = match &items[1] {
                    Sexp::List(ps) => ps
                        .iter()
                        .map(|p| match p {
                            Sexp::Atom(a) => parse_var(a),
                            Sexp::List(_) => Err(ParseCpsError::MalformedLambda(
                                "parameter must be an identifier".to_string(),
                            )),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    Sexp::Atom(_) => {
                        return Err(ParseCpsError::MalformedLambda(
                            "parameter list must be parenthesised".to_string(),
                        ))
                    }
                };
                let body = parse_cexp(&items[2], labels)?;
                Ok(AExp::Lam(Lambda::new(params, body)))
            } else {
                Err(ParseCpsError::MalformedCall(format!(
                    "a call expression cannot appear in argument position: {}",
                    sexp
                )))
            }
        }
    }
}

fn parse_cexp(sexp: &Sexp, labels: &mut LabelSupply) -> Result<CExp, ParseCpsError> {
    match sexp {
        Sexp::Atom(a) if a == EXIT_KEYWORD => Ok(CExp::Exit),
        Sexp::Atom(a) => Err(ParseCpsError::MalformedCall(format!(
            "a bare variable `{}` is not a call expression",
            a
        ))),
        Sexp::List(items) => {
            if items.len() == 1 && items[0].as_atom() == Some(EXIT_KEYWORD) {
                return Ok(CExp::Exit);
            }
            if items.is_empty() {
                return Err(ParseCpsError::MalformedCall("empty call".to_string()));
            }
            let label = labels.fresh();
            let f = parse_aexp(&items[0], labels)?;
            let args = items[1..]
                .iter()
                .map(|a| parse_aexp(a, labels))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(CExp::Call { label, f, args })
        }
    }
}

/// Parses a CPS program from its s-expression concrete syntax.
///
/// # Errors
///
/// Returns [`ParseCpsError`] when the s-expression is malformed or does not
/// follow the CPS grammar.
///
/// ```rust
/// use mai_cps::parser::parse_program;
/// let program = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
/// assert!(program.is_closed());
/// assert_eq!(program.call_site_count(), 3);
/// ```
pub fn parse_program(input: &str) -> Result<CExp, ParseCpsError> {
    let sexp = parse_one(input)?;
    let mut labels = LabelSupply::new();
    parse_cexp(&sexp, &mut labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_identity_application() {
        let p = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
        assert_eq!(p.call_site_count(), 3);
        assert!(p.is_closed());
    }

    #[test]
    fn lambda_keyword_spelled_out_is_accepted() {
        let a =
            parse_program("((lambda (x k) (k x)) (lambda (y) exit) (lambda (r) exit))").unwrap();
        let b = parse_program("((λ (x k) (k x)) (λ (y) exit) (λ (r) exit))").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn exit_in_both_spellings() {
        assert_eq!(parse_program("exit").unwrap(), CExp::Exit);
        assert_eq!(parse_program("(exit)").unwrap(), CExp::Exit);
    }

    #[test]
    fn labels_are_assigned_deterministically() {
        let text = "((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))";
        assert_eq!(parse_program(text).unwrap(), parse_program(text).unwrap());
    }

    #[test]
    fn nested_calls_in_argument_position_are_rejected() {
        let err = parse_program("((λ (x k) (k x)) (f g))").unwrap_err();
        assert!(matches!(err, ParseCpsError::MalformedCall(_)));
    }

    #[test]
    fn malformed_lambdas_are_rejected() {
        assert!(matches!(
            parse_program("((λ x (k x)) y)").unwrap_err(),
            ParseCpsError::MalformedLambda(_)
        ));
        assert!(matches!(
            parse_program("((λ (x)) y)").unwrap_err(),
            ParseCpsError::MalformedLambda(_)
        ));
    }

    #[test]
    fn reserved_words_cannot_be_variables() {
        assert!(matches!(
            parse_program("((λ (λ) exit) (λ (x) exit))").unwrap_err(),
            ParseCpsError::ReservedWord(_)
        ));
    }

    #[test]
    fn bare_variable_is_not_a_program() {
        assert!(matches!(
            parse_program("x").unwrap_err(),
            ParseCpsError::MalformedCall(_)
        ));
    }

    #[test]
    fn unbalanced_input_reports_a_sexp_error() {
        assert!(matches!(
            parse_program("((λ (x) exit)").unwrap_err(),
            ParseCpsError::Sexp(_)
        ));
    }

    #[test]
    fn error_messages_are_nonempty_and_chained() {
        let err = parse_program("((λ (x) exit)").unwrap_err();
        assert!(!err.to_string().is_empty());
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn parse_round_trips_through_display() {
        let text = "((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))";
        let once = parse_program(text).unwrap();
        let twice = parse_program(&once.to_string()).unwrap();
        assert_eq!(once, twice);
    }
}
