//! Recovering a concrete interpreter from the monadic semantics (paper §4).
//!
//! The paper demonstrates that the *same* `mnext` that drives every static
//! analysis also yields an ordinary interpreter once the monad is chosen to
//! be "the real world": Haskell's `IO` monad with `IORef`s as addresses.
//! In Rust we play the same trick with a deterministic [`StateM`] monad
//! threading an explicit, unboundedly growing heap — every allocation is
//! fresh, lookups are exact, updates are strong, and `tick` is a no-op
//! ("in the real world, time advances without our help").

use std::collections::BTreeMap;
use std::fmt;

use mai_core::engine::Budget;
use mai_core::monad::{run_state, MonadFamily, MonadState, StateM};
use mai_core::name::Name;

use crate::semantics::{mnext, CpsInterface, Env, PState, Val};
use crate::syntax::{AExp, CExp, Var};

/// A concrete heap address: a variable name paired with a globally fresh
/// allocation index (the moral equivalent of an `IORef`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeapAddr {
    /// The variable this cell was allocated for (for readability only).
    pub name: Name,
    /// The globally unique allocation index.
    pub index: u64,
}

impl fmt::Debug for HeapAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}#{}", self.name, self.index)
    }
}

/// The concrete heap: a map from addresses to values plus a fresh-address
/// counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Heap {
    next: u64,
    cells: BTreeMap<HeapAddr, Val<HeapAddr>>,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Self {
        Heap::default()
    }

    /// The number of cells ever allocated.
    pub fn allocation_count(&self) -> u64 {
        self.next
    }

    /// Reads a cell, if it has been written.
    pub fn read(&self, addr: &HeapAddr) -> Option<&Val<HeapAddr>> {
        self.cells.get(addr)
    }

    /// How many cells were allocated for the given variable name — used by
    /// the Church-numeral decoder of [`crate::convert`] and by adequacy
    /// tests.
    pub fn allocations_for(&self, name: &Name) -> usize {
        self.cells.keys().filter(|a| &a.name == name).count()
    }
}

/// The concrete-interpreter instance of the CPS semantic interface: the
/// monad is a deterministic state monad over the [`Heap`].
///
/// # Panics
///
/// The unbound-variable and read-before-write panics are defensive
/// invariants: `mnext`'s pure stuck checks turn unbound references into
/// [`CExp::Error`] states before `fun`/`arg` run, and fresh allocation
/// writes every address before it can be read.
impl CpsInterface<HeapAddr> for StateM<Heap> {
    fn fun(env: &Env<HeapAddr>, e: &AExp) -> Self::M<Val<HeapAddr>> {
        match e {
            AExp::Lam(lam) => Self::pure(Val::closure(lam.clone(), env.clone())),
            AExp::Ref(v) => {
                let addr = env
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| panic!("unbound variable `{}` in concrete execution", v));
                <Self as MonadState<Heap>>::gets(move |heap| {
                    heap.read(&addr)
                        .cloned()
                        .unwrap_or_else(|| panic!("address {:?} read before being written", addr))
                })
            }
        }
    }

    fn arg(env: &Env<HeapAddr>, e: &AExp) -> Self::M<Val<HeapAddr>> {
        Self::fun(env, e)
    }

    fn write(addr: HeapAddr, val: Val<HeapAddr>) -> Self::M<()> {
        <Self as MonadState<Heap>>::modify(move |mut heap| {
            heap.cells.insert(addr.clone(), val.clone());
            heap
        })
    }

    fn alloc(var: &Var) -> Self::M<HeapAddr> {
        let var = var.clone();
        Self::bind(<Self as MonadState<Heap>>::get(), move |heap| {
            let addr = HeapAddr {
                name: var.clone(),
                index: heap.next,
            };
            let mut bumped = heap.clone();
            bumped.next += 1;
            Self::then(<Self as MonadState<Heap>>::put(bumped), Self::pure(addr))
        })
    }

    fn tick(_proc: &Val<HeapAddr>, _ps: &PState<HeapAddr>) -> Self::M<()> {
        // In the real world, time advances without our help.
        Self::pure(())
    }
}

/// The outcome of running the concrete interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The program reached `exit`; the final state and heap are returned.
    Halted {
        /// The final machine state.
        state: PState<HeapAddr>,
        /// The final heap.
        heap: Heap,
        /// How many transitions were taken.
        steps: usize,
    },
    /// The step budget was exhausted before reaching `exit`.
    OutOfFuel {
        /// The state reached when the budget ran out.
        state: PState<HeapAddr>,
        /// The heap at that point.
        heap: Heap,
    },
    /// The program got stuck (e.g. on an unbound variable or an arity
    /// mismatch) — the concrete counterpart of the abstract error layer:
    /// `mnext` produced an error state instead of panicking, so
    /// stuckness is an outcome, not a crash.
    Stuck {
        /// The stuck (error) machine state.
        state: PState<HeapAddr>,
        /// The heap at that point.
        heap: Heap,
        /// How many transitions were taken.
        steps: usize,
    },
}

impl Outcome {
    /// Whether the program halted normally.
    pub fn halted(&self) -> bool {
        matches!(self, Outcome::Halted { .. })
    }

    /// The final (or last) state.
    pub fn state(&self) -> &PState<HeapAddr> {
        match self {
            Outcome::Halted { state, .. }
            | Outcome::OutOfFuel { state, .. }
            | Outcome::Stuck { state, .. } => state,
        }
    }

    /// The error message, if the run got stuck.
    pub fn stuck_message(&self) -> Option<&str> {
        match self {
            Outcome::Stuck { state, .. } => state.error(),
            _ => None,
        }
    }

    /// The final (or last) heap.
    pub fn heap(&self) -> &Heap {
        match self {
            Outcome::Halted { heap, .. }
            | Outcome::OutOfFuel { heap, .. }
            | Outcome::Stuck { heap, .. } => heap,
        }
    }
}

/// Runs a CPS program with the concrete interpreter — the paper's
/// `interpret` driver loop of §4 — with a step budget so that divergent
/// programs return [`Outcome::OutOfFuel`] instead of looping forever.
/// Stuck programs (unbound variable, arity mismatch) return
/// [`Outcome::Stuck`].
pub fn interpret_with_limit(program: &CExp, max_steps: usize) -> Outcome {
    interpret_governed(program, &Budget::unlimited().with_max_steps(max_steps))
}

/// Runs a CPS program under a [`Budget`]: the governor is consulted before
/// every machine transition, so step limits, deadlines and cancellation
/// all land within one transition.  A concrete run has no rounds, so the
/// budget's round count advances in lockstep with its step count.  Stuck
/// programs return [`Outcome::Stuck`].
pub fn interpret_governed(program: &CExp, budget: &Budget) -> Outcome {
    let mut state = PState::inject(program.clone());
    let mut heap = Heap::new();
    let mut steps = 0usize;
    loop {
        if state.is_final() {
            return Outcome::Halted { state, heap, steps };
        }
        // Error states self-loop (they are final for `mnext`), so the
        // driver surfaces them as an outcome instead of spinning.
        if state.is_error() {
            return Outcome::Stuck { state, heap, steps };
        }
        if budget.exhausted(steps, steps).is_some() {
            return Outcome::OutOfFuel { state, heap };
        }
        let computation = mnext::<StateM<Heap>, HeapAddr>(state);
        let (next_state, next_heap) = run_state(computation, heap);
        state = next_state;
        heap = next_heap;
        steps += 1;
    }
}

/// Runs a CPS program to completion with a generous default step budget.
/// Stuck programs return [`Outcome::Stuck`]; divergent programs are
/// reported as [`Outcome::OutOfFuel`] after 1 000 000 steps.
pub fn interpret(program: &CExp) -> Outcome {
    interpret_with_limit(program, 1_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn identity_application_halts() {
        let p = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
        let out = interpret(&p);
        assert!(out.halted());
        assert!(out.state().is_final());
        assert!(out.heap().allocation_count() >= 3);
    }

    #[test]
    fn trivial_exit_takes_zero_steps() {
        let out = interpret(&CExp::Exit);
        match out {
            Outcome::Halted { steps, .. } => assert_eq!(steps, 0),
            Outcome::OutOfFuel { .. } | Outcome::Stuck { .. } => panic!("exit must halt"),
        }
    }

    #[test]
    fn omega_runs_out_of_fuel() {
        // ((λ (f) (f f)) (λ (g) (g g))) — the classic divergent term.
        let p = parse_program("((λ (f) (f f)) (λ (g) (g g)))").unwrap();
        let out = interpret_with_limit(&p, 500);
        assert!(!out.halted());
    }

    #[test]
    fn every_step_allocates_fresh_addresses() {
        // Each call of the identity allocates new cells; addresses never
        // collide, so the heap grows monotonically.
        let p = parse_program(
            "((λ (id k) (id id (λ (id2) (id2 id2 k))))
              (λ (x j) (j x))
              (λ (r) exit))",
        )
        .unwrap();
        let out = interpret(&p);
        assert!(out.halted());
        assert!(out.heap().allocation_count() >= 6);
    }

    #[test]
    fn final_environment_binds_the_result() {
        // The final continuation binds `r` before exiting, so the heap holds
        // a closure for `r`'s address.
        let p = parse_program("((λ (x k) (k x)) (λ (y j) (j y)) (λ (r) exit))").unwrap();
        let out = interpret(&p);
        let r_addr = out.state().env.get(&Name::from("r")).cloned().unwrap();
        let bound = out.heap().read(&r_addr).unwrap();
        assert_eq!(bound.lambda().params()[0], Name::from("y"));
    }

    #[test]
    fn open_programs_get_stuck() {
        let p = CExp::call(mai_core::name::Label::new(1), AExp::var("free"), vec![]);
        let out = interpret(&p);
        assert!(!out.halted());
        let message = out.stuck_message().expect("open program must get stuck");
        assert!(
            message.contains("unbound variable `free`"),
            "unexpected stuck message: {message}"
        );
    }

    #[test]
    fn arity_mismatches_get_stuck() {
        // ((λ (x k) (k x)) (λ (y) exit)) — a two-parameter callee applied
        // to one argument.
        let p = parse_program("((λ (x k) (k x)) (λ (y) exit))").unwrap();
        let out = interpret(&p);
        let message = out.stuck_message().expect("arity mismatch must get stuck");
        assert!(
            message.contains("arity mismatch"),
            "unexpected stuck message: {message}"
        );
    }
}
