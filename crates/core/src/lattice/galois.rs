//! Galois connections (paper §5.1, §6.5).

use super::Lattice;

/// A Galois connection `⟨C, ⊑⟩ ⇄ ⟨A, ≤⟩` between a concrete and an abstract
/// lattice, given by an abstraction function `α` and a concretisation
/// function `γ` with `α(c) ≤ a ⟺ c ⊑ γ(a)`.
///
/// The paper uses a Galois connection between the heap-cloning analysis
/// domain `P(Σ̂ₜ × Ŝtore)` and the shared-store domain `P(Σ̂ₜ) × Ŝtore`
/// (equation (3)) to derive the single-threaded-store widening; that
/// connection is implemented by
/// [`SharedStoreDomain`](crate::collect::SharedStoreDomain), which
/// implements this trait.
///
/// # Laws
///
/// * `α` and `γ` are monotone;
/// * `c ⊑ γ(α(c))` (extensiveness);
/// * `α(γ(a)) ≤ a` (reductiveness).
pub trait GaloisConnection<C: Lattice>: Lattice {
    /// The abstraction function `α`.
    fn alpha(concrete: C) -> Self;

    /// The concretisation function `γ`.
    fn gamma(&self) -> C;

    /// Transports a concrete operator along the connection:
    /// `α ∘ f ∘ γ`, the best correct approximation induced by `f`.
    fn transport<F>(f: F, abstract_value: &Self) -> Self
    where
        F: Fn(C) -> C,
    {
        Self::alpha(f(abstract_value.gamma()))
    }

    /// Checks the two Galois laws on a particular pair of points.  Intended
    /// for tests.
    fn check_on(concrete: C, abstract_value: Self) -> bool {
        let extensive = concrete.leq(&Self::alpha(concrete.clone()).gamma());
        let reductive = Self::alpha(abstract_value.gamma()).leq(&abstract_value);
        extensive && reductive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// A toy abstraction: a set of naturals abstracted by parity flags
    /// (has-even, has-odd).
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Parity {
        has_even: bool,
        has_odd: bool,
    }

    impl Lattice for Parity {
        fn bottom() -> Self {
            Parity {
                has_even: false,
                has_odd: false,
            }
        }

        fn join(self, other: Self) -> Self {
            Parity {
                has_even: self.has_even || other.has_even,
                has_odd: self.has_odd || other.has_odd,
            }
        }

        fn leq(&self, other: &Self) -> bool {
            (!self.has_even || other.has_even) && (!self.has_odd || other.has_odd)
        }
    }

    impl GaloisConnection<BTreeSet<u8>> for Parity {
        fn alpha(concrete: BTreeSet<u8>) -> Self {
            Parity {
                has_even: concrete.iter().any(|n| n % 2 == 0),
                has_odd: concrete.iter().any(|n| n % 2 == 1),
            }
        }

        fn gamma(&self) -> BTreeSet<u8> {
            (0u8..=255)
                .filter(|n| {
                    if n % 2 == 0 {
                        self.has_even
                    } else {
                        self.has_odd
                    }
                })
                .collect()
        }
    }

    #[test]
    fn galois_laws_hold_for_the_parity_example() {
        let concrete: BTreeSet<u8> = [2u8, 4, 7].into_iter().collect();
        let abstract_value = Parity {
            has_even: true,
            has_odd: false,
        };
        assert!(Parity::check_on(concrete, abstract_value));
    }

    #[test]
    fn transport_computes_best_approximation() {
        // Concrete operator: add one to every element.
        let start = Parity {
            has_even: true,
            has_odd: false,
        };
        let stepped = Parity::transport(
            |s: BTreeSet<u8>| s.into_iter().map(|n| n.wrapping_add(1)).collect(),
            &start,
        );
        assert_eq!(
            stepped,
            Parity {
                has_even: false,
                has_odd: true
            }
        );
    }
}
