//! `Lattice` instances for the container types of the systematic
//! abstraction: unit, booleans, pairs, options, power-sets and point-wise
//! maps (paper §5.2), plus the flat lattice.

use std::collections::{BTreeMap, BTreeSet};

use super::{Lattice, MeetLattice, TopLattice, WidenLattice};

impl Lattice for () {
    fn bottom() -> Self {}

    fn join(self, _other: Self) -> Self {}

    fn leq(&self, _other: &Self) -> bool {
        true
    }

    fn join_in_place(&mut self, _other: Self) -> bool {
        false
    }

    fn is_bottom(&self) -> bool {
        true
    }
}

impl MeetLattice for () {
    fn meet(self, _other: Self) -> Self {}
}

impl TopLattice for () {
    fn top() -> Self {}
}

impl Lattice for bool {
    fn bottom() -> Self {
        false
    }

    fn join(self, other: Self) -> Self {
        self || other
    }

    fn leq(&self, other: &Self) -> bool {
        !*self || *other
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        let changed = other && !*self;
        *self = *self || other;
        changed
    }

    fn is_bottom(&self) -> bool {
        !*self
    }
}

impl MeetLattice for bool {
    fn meet(self, other: Self) -> Self {
        self && other
    }
}

impl TopLattice for bool {
    fn top() -> Self {
        true
    }
}

impl<A: Lattice, B: Lattice> Lattice for (A, B) {
    fn bottom() -> Self {
        (A::bottom(), B::bottom())
    }

    fn join(self, other: Self) -> Self {
        (self.0.join(other.0), self.1.join(other.1))
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        // `|`, not `||`: both components must be joined even when the first
        // already grew.
        self.0.join_in_place(other.0) | self.1.join_in_place(other.1)
    }

    fn is_bottom(&self) -> bool {
        self.0.is_bottom() && self.1.is_bottom()
    }
}

impl<A: MeetLattice, B: MeetLattice> MeetLattice for (A, B) {
    fn meet(self, other: Self) -> Self {
        (self.0.meet(other.0), self.1.meet(other.1))
    }
}

impl<A: TopLattice, B: TopLattice> TopLattice for (A, B) {
    fn top() -> Self {
        (A::top(), B::top())
    }
}

impl<A: Lattice, B: Lattice, C: Lattice> Lattice for (A, B, C) {
    fn bottom() -> Self {
        (A::bottom(), B::bottom(), C::bottom())
    }

    fn join(self, other: Self) -> Self {
        (
            self.0.join(other.0),
            self.1.join(other.1),
            self.2.join(other.2),
        )
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1) && self.2.leq(&other.2)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.0.join_in_place(other.0)
            | self.1.join_in_place(other.1)
            | self.2.join_in_place(other.2)
    }

    fn is_bottom(&self) -> bool {
        self.0.is_bottom() && self.1.is_bottom() && self.2.is_bottom()
    }
}

/// `Option` lifts a lattice by adjoining a new bottom (`None`).
impl<A: Lattice> Lattice for Option<A> {
    fn bottom() -> Self {
        None
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(a.join(b)),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a.leq(b),
        }
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        match (self.as_mut(), other) {
            (_, None) => false,
            (Some(a), Some(b)) => a.join_in_place(b),
            // `Some(⊥) ⋢ None`: Option adjoins a *new* bottom, so even a
            // `Some` wrapping the inner bottom is a strict growth.
            (None, some) => {
                *self = some;
                true
            }
        }
    }

    fn is_bottom(&self) -> bool {
        self.is_none()
    }
}

/// Power-sets ordered by inclusion: the `P s` instance of the paper.
impl<T: Ord + Clone> Lattice for BTreeSet<T> {
    fn bottom() -> Self {
        BTreeSet::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.extend(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.is_subset(other)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        for x in other {
            changed |= self.insert(x);
        }
        changed
    }

    fn is_bottom(&self) -> bool {
        self.is_empty()
    }
}

impl<T: Ord + Clone> MeetLattice for BTreeSet<T> {
    fn meet(self, other: Self) -> Self {
        self.intersection(&other).cloned().collect()
    }
}

/// Point-wise lifted maps: the `k ⇀ v` instance of the paper.  Missing keys
/// are implicitly bound to the co-domain's `⊥`.
impl<K: Ord + Clone, V: Lattice> Lattice for BTreeMap<K, V> {
    fn bottom() -> Self {
        BTreeMap::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.join_in_place(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.iter().all(|(k, v)| match other.get(k) {
            Some(w) => v.leq(w),
            None => v.is_bottom(),
        })
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        for (k, v) in other {
            changed |= self.join_at_in_place(k, v);
        }
        changed
    }

    fn is_bottom(&self) -> bool {
        // A map is semantically ⊥ when every explicit binding is ⊥ (missing
        // keys are implicitly bound to ⊥) — no `bottom()` allocation needed.
        self.values().all(V::is_bottom)
    }
}

// Finite-height container instances: the default widening (plain join)
// already terminates, and the default narrowing (identity) is sound.
impl WidenLattice for () {}
impl WidenLattice for bool {}
impl<T: Ord + Clone> WidenLattice for BTreeSet<T> {}
impl<T: Clone + Eq> WidenLattice for Flat<T> {}

/// Pairs widen and narrow component-wise, so a product of an
/// infinite-height component with anything else still stabilises.
impl<A: WidenLattice, B: WidenLattice> WidenLattice for (A, B) {
    fn widen_in_place(&mut self, other: Self) -> bool {
        self.0.widen_in_place(other.0) | self.1.widen_in_place(other.1)
    }

    fn narrow_in_place(&mut self, other: Self) -> bool {
        self.0.narrow_in_place(other.0) | self.1.narrow_in_place(other.1)
    }
}

impl<A: WidenLattice, B: WidenLattice, C: WidenLattice> WidenLattice for (A, B, C) {
    fn widen_in_place(&mut self, other: Self) -> bool {
        self.0.widen_in_place(other.0)
            | self.1.widen_in_place(other.1)
            | self.2.widen_in_place(other.2)
    }

    fn narrow_in_place(&mut self, other: Self) -> bool {
        self.0.narrow_in_place(other.0)
            | self.1.narrow_in_place(other.1)
            | self.2.narrow_in_place(other.2)
    }
}

/// `Option` widens through the adjoined bottom: leaving `None` is one
/// strict growth, after which the inner lattice's widening takes over.
/// Narrowing never re-enters `None` (the trivial narrowing there).
impl<A: WidenLattice> WidenLattice for Option<A> {
    fn widen_in_place(&mut self, other: Self) -> bool {
        match (self.as_mut(), other) {
            (_, None) => false,
            (Some(a), Some(b)) => a.widen_in_place(b),
            (None, some) => {
                *self = some;
                true
            }
        }
    }

    fn narrow_in_place(&mut self, other: Self) -> bool {
        match (self.as_mut(), other) {
            (Some(a), Some(b)) => a.narrow_in_place(b),
            _ => false,
        }
    }
}

/// Point-wise maps widen key-by-key: a key is a widening point for its own
/// binding, so finitely many keys each stabilising yields stabilisation of
/// the whole map.  Narrowing visits `self`'s keys against `other`'s
/// bindings (`⊥` when absent).
impl<K: Ord + Clone, V: WidenLattice> WidenLattice for BTreeMap<K, V> {
    fn widen_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        for (k, v) in other {
            match self.entry(k) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    changed |= e.get_mut().widen_in_place(v);
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    changed |= !v.is_bottom();
                    e.insert(v);
                }
            }
        }
        changed
    }

    fn narrow_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        for (k, v) in self.iter_mut() {
            let refined = other.get(k).cloned().unwrap_or_else(V::bottom);
            changed |= v.narrow_in_place(refined);
        }
        changed
    }
}

/// Convenience operations on point-wise-lifted maps.
pub trait PointwiseExt<K, V> {
    /// Looks a key up, returning the co-domain `⊥` when absent (total-map
    /// view of a partial map, as the paper's `σ(â)` does).
    fn fetch_or_bottom(&self, key: &K) -> V;

    /// Joins `value` into the binding of `key` (the paper's
    /// `σ ⊔ [â ↦ v]`).
    #[must_use]
    fn join_at(self, key: K, value: V) -> Self;

    /// In-place version of [`PointwiseExt::join_at`]: joins `value` into the
    /// binding of `key` without re-inserting the entry, reporting whether
    /// the binding grew (`!(value ⊑ old binding)`).
    fn join_at_in_place(&mut self, key: K, value: V) -> bool;
}

impl<K: Ord + Clone, V: Lattice> PointwiseExt<K, V> for BTreeMap<K, V> {
    fn fetch_or_bottom(&self, key: &K) -> V {
        self.get(key).cloned().unwrap_or_else(V::bottom)
    }

    fn join_at(mut self, key: K, value: V) -> Self {
        self.join_at_in_place(key, value);
        self
    }

    fn join_at_in_place(&mut self, key: K, value: V) -> bool {
        match self.entry(key) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().join_in_place(value),
            std::collections::btree_map::Entry::Vacant(e) => {
                // Inserting an explicit ⊥ binding matches what `join` does
                // structurally, but is no semantic growth.
                let changed = !value.is_bottom();
                e.insert(value);
                changed
            }
        }
    }
}

/// The flat lattice over a base type: `⊥ < every element < ⊤`.
///
/// Used to abstract base values (integers, booleans) in language substrates
/// that have them.
///
/// ```rust
/// use mai_core::lattice::{Flat, Lattice};
/// let a = Flat::Exactly(3u8);
/// let b = Flat::Exactly(4u8);
/// assert_eq!(a.clone().join(a.clone()), a);
/// assert_eq!(a.join(b), Flat::Top);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flat<T> {
    /// No information: the value is unreachable.
    Bottom,
    /// Exactly this base value.
    Exactly(T),
    /// Any value.
    Top,
}

impl<T> Flat<T> {
    /// Returns the exact value, if this element is a singleton.
    pub fn exact(&self) -> Option<&T> {
        match self {
            Flat::Exactly(t) => Some(t),
            _ => None,
        }
    }
}

impl<T: Clone + Eq> Lattice for Flat<T> {
    fn bottom() -> Self {
        Flat::Bottom
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (Flat::Bottom, x) | (x, Flat::Bottom) => x,
            (Flat::Top, _) | (_, Flat::Top) => Flat::Top,
            (Flat::Exactly(a), Flat::Exactly(b)) => {
                if a == b {
                    Flat::Exactly(a)
                } else {
                    Flat::Top
                }
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Flat::Bottom, _) => true,
            (_, Flat::Top) => true,
            (Flat::Exactly(a), Flat::Exactly(b)) => a == b,
            _ => false,
        }
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        match (&*self, other) {
            (_, Flat::Bottom) => false,
            (Flat::Top, _) => false,
            (Flat::Exactly(a), Flat::Exactly(b)) if *a == b => false,
            (Flat::Bottom, x) => {
                *self = x;
                true
            }
            _ => {
                *self = Flat::Top;
                true
            }
        }
    }

    fn is_bottom(&self) -> bool {
        matches!(self, Flat::Bottom)
    }
}

impl<T: Clone + Eq> TopLattice for Flat<T> {
    fn top() -> Self {
        Flat::Top
    }
}

impl<T: Clone + Eq> MeetLattice for Flat<T> {
    fn meet(self, other: Self) -> Self {
        match (self, other) {
            (Flat::Top, x) | (x, Flat::Top) => x,
            (Flat::Bottom, _) | (_, Flat::Bottom) => Flat::Bottom,
            (Flat::Exactly(a), Flat::Exactly(b)) => {
                if a == b {
                    Flat::Exactly(a)
                } else {
                    Flat::Bottom
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_set() -> impl Strategy<Value = BTreeSet<u8>> {
        proptest::collection::btree_set(0u8..32, 0..8)
    }

    fn arb_map() -> impl Strategy<Value = BTreeMap<u8, BTreeSet<u8>>> {
        proptest::collection::btree_map(0u8..8, arb_set(), 0..6)
    }

    proptest! {
        #[test]
        fn prop_set_join_is_lub(a in arb_set(), b in arb_set()) {
            let j = a.clone().join(b.clone());
            prop_assert!(a.leq(&j));
            prop_assert!(b.leq(&j));
            // least: any other upper bound is above the join
            let ub = a.clone().join(b.clone()).join([200u8].into_iter().collect());
            prop_assert!(j.leq(&ub));
        }

        #[test]
        fn prop_set_join_idempotent_commutative_associative(
            a in arb_set(), b in arb_set(), c in arb_set()
        ) {
            prop_assert_eq!(a.clone().join(a.clone()), a.clone());
            prop_assert_eq!(a.clone().join(b.clone()), b.clone().join(a.clone()));
            prop_assert_eq!(
                a.clone().join(b.clone()).join(c.clone()),
                a.clone().join(b.clone().join(c.clone()))
            );
            prop_assert_eq!(a.clone().join(BTreeSet::bottom()), a);
        }

        #[test]
        fn prop_map_join_pointwise(a in arb_map(), b in arb_map(), k in 0u8..8) {
            let j = a.clone().join(b.clone());
            let expected = a.fetch_or_bottom(&k).join(b.fetch_or_bottom(&k));
            prop_assert_eq!(j.fetch_or_bottom(&k), expected);
        }

        #[test]
        fn prop_map_leq_iff_join_absorbs(a in arb_map(), b in arb_map()) {
            let j = a.clone().join(b.clone());
            prop_assert!(a.leq(&j));
            prop_assert!(b.leq(&j));
            // a ⊑ b iff a ⊔ b is *semantically* equal to b (maps with explicit
            // bottom bindings are non-canonical representations, so compare
            // with mutual ⊑ rather than structural equality).
            prop_assert_eq!(a.leq(&b), j.leq(&b) && b.leq(&j));
        }

        #[test]
        fn prop_pair_lattice_componentwise(a in arb_set(), b in arb_set(), c in arb_set(), d in arb_set()) {
            let j = (a.clone(), b.clone()).join((c.clone(), d.clone()));
            prop_assert_eq!(j.0, a.join(c));
            prop_assert_eq!(j.1, b.join(d));
        }

        /// The `join_in_place` law for every container instance: it agrees
        /// with `join` structurally and its change flag is `!(b ⊑ a)`.
        #[test]
        fn prop_join_in_place_law_sets_maps_pairs(
            a in arb_map(), b in arb_map(),
            s in arb_set(), t in arb_set(),
        ) {
            let mut m = a.clone();
            let changed = m.join_in_place(b.clone());
            prop_assert_eq!(&m, &a.clone().join(b.clone()));
            prop_assert_eq!(changed, !b.leq(&a));

            let mut u = s.clone();
            let changed = u.join_in_place(t.clone());
            prop_assert_eq!(&u, &s.clone().join(t.clone()));
            prop_assert_eq!(changed, !t.leq(&s));

            let pa = (s.clone(), a.clone());
            let pb = (t.clone(), b.clone());
            let mut p = pa.clone();
            let changed = p.join_in_place(pb.clone());
            prop_assert_eq!(&p, &pa.clone().join(pb.clone()));
            prop_assert_eq!(changed, !pb.leq(&pa));
        }

        #[test]
        fn prop_join_in_place_law_options(a in arb_set(), b in arb_set(), none_side in 0u8..4) {
            let oa = if none_side & 1 == 0 { Some(a.clone()) } else { None };
            let ob = if none_side & 2 == 0 { Some(b.clone()) } else { None };
            let mut o = oa.clone();
            let changed = o.join_in_place(ob.clone());
            prop_assert_eq!(&o, &oa.clone().join(ob.clone()));
            prop_assert_eq!(changed, !ob.leq(&oa));
        }

        #[test]
        fn prop_join_in_place_law_flat(a in 0u8..4, b in 0u8..4, shape in 0u8..9) {
            let lift = |n: u8, s: u8| match s % 3 {
                0 => Flat::Bottom,
                1 => Flat::Exactly(n),
                _ => Flat::Top,
            };
            let fa = lift(a, shape);
            let fb = lift(b, shape / 3);
            let mut f = fa;
            let changed = f.join_in_place(fb);
            prop_assert_eq!(f, fa.join(fb));
            prop_assert_eq!(changed, !fb.leq(&fa));
            prop_assert_eq!(fa.is_bottom(), fa == Flat::Bottom);
        }

        #[test]
        fn prop_is_bottom_matches_default(m in arb_map(), s in arb_set()) {
            // The cheap overrides agree with the allocating default.
            prop_assert_eq!(m.is_bottom(), m.leq(&BTreeMap::bottom()));
            prop_assert_eq!(s.is_bottom(), s.leq(&BTreeSet::bottom()));
        }

        #[test]
        fn prop_join_at_in_place_matches_join_at(
            m in arb_map(), k in 0u8..8, v in arb_set()
        ) {
            let mut inplace = m.clone();
            let changed = inplace.join_at_in_place(k, v.clone());
            prop_assert_eq!(&inplace, &m.clone().join_at(k, v.clone()));
            prop_assert_eq!(changed, !v.leq(&m.fetch_or_bottom(&k)));
        }

        #[test]
        fn prop_flat_laws(a in any::<u8>(), b in any::<u8>()) {
            let fa = Flat::Exactly(a);
            let fb = Flat::Exactly(b);
            prop_assert!(Flat::<u8>::Bottom.leq(&fa));
            prop_assert!(fa.leq(&Flat::Top));
            prop_assert!(fa.join(fb).leq(&Flat::Top));
            if a != b {
                prop_assert_eq!(fa.join(fb), Flat::Top);
                prop_assert_eq!(fa.meet(fb), Flat::Bottom);
            }
        }
    }

    #[test]
    fn option_adjoins_a_new_bottom() {
        let a: Option<BTreeSet<u8>> = Some([1].into_iter().collect());
        assert!(Option::<BTreeSet<u8>>::bottom().leq(&a));
        assert_eq!(None.join(a.clone()), a);
    }

    #[test]
    fn bool_lattice_is_implication_order() {
        assert!(false.leq(&true));
        assert!(!true.leq(&false));
        assert!(bool::top());
        assert!(!true.meet(false));
    }

    #[test]
    fn scalar_join_in_place_tracks_change() {
        let mut b = false;
        assert!(b.join_in_place(true));
        assert!(!b.join_in_place(true));
        assert!(b);
        assert!(!b.is_bottom());

        let mut u = ();
        assert!(!u.join_in_place(()));
        assert!(u.is_bottom());
    }

    #[test]
    fn map_with_explicit_bottom_bindings_is_still_bottom() {
        let mut m: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        m.insert(3, BTreeSet::new());
        assert!(m.is_bottom());
        // Joining an explicit ⊥ binding reports no growth but keeps the
        // representation `join` would produce.
        let mut n: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        assert!(!n.join_in_place(m.clone()));
        assert_eq!(n, m);
    }

    #[test]
    fn join_at_merges_bindings() {
        let m: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        let m = m.join_at(1, [1u8].into_iter().collect());
        let m = m.join_at(1, [2u8].into_iter().collect());
        assert_eq!(m.fetch_or_bottom(&1), [1u8, 2].into_iter().collect());
        assert_eq!(m.fetch_or_bottom(&9), BTreeSet::new());
    }

    #[test]
    fn triple_lattice_joins_componentwise() {
        let a = (
            [1u8].into_iter().collect::<BTreeSet<u8>>(),
            false,
            BTreeSet::<u8>::new(),
        );
        let b = (
            [2u8].into_iter().collect(),
            true,
            [9u8].into_iter().collect(),
        );
        let j = a.join(b);
        assert_eq!(j.0, [1u8, 2].into_iter().collect());
        assert!(j.1);
        assert_eq!(j.2, [9u8].into_iter().collect());
    }
}
