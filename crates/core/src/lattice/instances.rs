//! `Lattice` instances for the container types of the systematic
//! abstraction: unit, booleans, pairs, options, power-sets and point-wise
//! maps (paper §5.2), plus the flat lattice.

use std::collections::{BTreeMap, BTreeSet};

use super::{Lattice, MeetLattice, TopLattice};

impl Lattice for () {
    fn bottom() -> Self {}

    fn join(self, _other: Self) -> Self {}

    fn leq(&self, _other: &Self) -> bool {
        true
    }
}

impl MeetLattice for () {
    fn meet(self, _other: Self) -> Self {}
}

impl TopLattice for () {
    fn top() -> Self {}
}

impl Lattice for bool {
    fn bottom() -> Self {
        false
    }

    fn join(self, other: Self) -> Self {
        self || other
    }

    fn leq(&self, other: &Self) -> bool {
        !*self || *other
    }
}

impl MeetLattice for bool {
    fn meet(self, other: Self) -> Self {
        self && other
    }
}

impl TopLattice for bool {
    fn top() -> Self {
        true
    }
}

impl<A: Lattice, B: Lattice> Lattice for (A, B) {
    fn bottom() -> Self {
        (A::bottom(), B::bottom())
    }

    fn join(self, other: Self) -> Self {
        (self.0.join(other.0), self.1.join(other.1))
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1)
    }
}

impl<A: MeetLattice, B: MeetLattice> MeetLattice for (A, B) {
    fn meet(self, other: Self) -> Self {
        (self.0.meet(other.0), self.1.meet(other.1))
    }
}

impl<A: TopLattice, B: TopLattice> TopLattice for (A, B) {
    fn top() -> Self {
        (A::top(), B::top())
    }
}

impl<A: Lattice, B: Lattice, C: Lattice> Lattice for (A, B, C) {
    fn bottom() -> Self {
        (A::bottom(), B::bottom(), C::bottom())
    }

    fn join(self, other: Self) -> Self {
        (
            self.0.join(other.0),
            self.1.join(other.1),
            self.2.join(other.2),
        )
    }

    fn leq(&self, other: &Self) -> bool {
        self.0.leq(&other.0) && self.1.leq(&other.1) && self.2.leq(&other.2)
    }
}

/// `Option` lifts a lattice by adjoining a new bottom (`None`).
impl<A: Lattice> Lattice for Option<A> {
    fn bottom() -> Self {
        None
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (None, x) | (x, None) => x,
            (Some(a), Some(b)) => Some(a.join(b)),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a.leq(b),
        }
    }
}

/// Power-sets ordered by inclusion: the `P s` instance of the paper.
impl<T: Ord + Clone> Lattice for BTreeSet<T> {
    fn bottom() -> Self {
        BTreeSet::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.extend(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.is_subset(other)
    }
}

impl<T: Ord + Clone> MeetLattice for BTreeSet<T> {
    fn meet(self, other: Self) -> Self {
        self.intersection(&other).cloned().collect()
    }
}

/// Point-wise lifted maps: the `k ⇀ v` instance of the paper.  Missing keys
/// are implicitly bound to the co-domain's `⊥`.
impl<K: Ord + Clone, V: Lattice> Lattice for BTreeMap<K, V> {
    fn bottom() -> Self {
        BTreeMap::new()
    }

    fn join(mut self, other: Self) -> Self {
        for (k, v) in other {
            match self.remove(&k) {
                Some(old) => {
                    self.insert(k, old.join(v));
                }
                None => {
                    self.insert(k, v);
                }
            }
        }
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.iter().all(|(k, v)| match other.get(k) {
            Some(w) => v.leq(w),
            None => v.leq(&V::bottom()),
        })
    }
}

/// Convenience operations on point-wise-lifted maps.
pub trait PointwiseExt<K, V> {
    /// Looks a key up, returning the co-domain `⊥` when absent (total-map
    /// view of a partial map, as the paper's `σ(â)` does).
    fn fetch_or_bottom(&self, key: &K) -> V;

    /// Joins `value` into the binding of `key` (the paper's
    /// `σ ⊔ [â ↦ v]`).
    #[must_use]
    fn join_at(self, key: K, value: V) -> Self;
}

impl<K: Ord + Clone, V: Lattice> PointwiseExt<K, V> for BTreeMap<K, V> {
    fn fetch_or_bottom(&self, key: &K) -> V {
        self.get(key).cloned().unwrap_or_else(V::bottom)
    }

    fn join_at(mut self, key: K, value: V) -> Self {
        let joined = match self.remove(&key) {
            Some(old) => old.join(value),
            None => value,
        };
        self.insert(key, joined);
        self
    }
}

/// The flat lattice over a base type: `⊥ < every element < ⊤`.
///
/// Used to abstract base values (integers, booleans) in language substrates
/// that have them.
///
/// ```rust
/// use mai_core::lattice::{Flat, Lattice};
/// let a = Flat::Exactly(3u8);
/// let b = Flat::Exactly(4u8);
/// assert_eq!(a.clone().join(a.clone()), a);
/// assert_eq!(a.join(b), Flat::Top);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Flat<T> {
    /// No information: the value is unreachable.
    Bottom,
    /// Exactly this base value.
    Exactly(T),
    /// Any value.
    Top,
}

impl<T> Flat<T> {
    /// Returns the exact value, if this element is a singleton.
    pub fn exact(&self) -> Option<&T> {
        match self {
            Flat::Exactly(t) => Some(t),
            _ => None,
        }
    }
}

impl<T: Clone + Eq> Lattice for Flat<T> {
    fn bottom() -> Self {
        Flat::Bottom
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (Flat::Bottom, x) | (x, Flat::Bottom) => x,
            (Flat::Top, _) | (_, Flat::Top) => Flat::Top,
            (Flat::Exactly(a), Flat::Exactly(b)) => {
                if a == b {
                    Flat::Exactly(a)
                } else {
                    Flat::Top
                }
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Flat::Bottom, _) => true,
            (_, Flat::Top) => true,
            (Flat::Exactly(a), Flat::Exactly(b)) => a == b,
            _ => false,
        }
    }
}

impl<T: Clone + Eq> TopLattice for Flat<T> {
    fn top() -> Self {
        Flat::Top
    }
}

impl<T: Clone + Eq> MeetLattice for Flat<T> {
    fn meet(self, other: Self) -> Self {
        match (self, other) {
            (Flat::Top, x) | (x, Flat::Top) => x,
            (Flat::Bottom, _) | (_, Flat::Bottom) => Flat::Bottom,
            (Flat::Exactly(a), Flat::Exactly(b)) => {
                if a == b {
                    Flat::Exactly(a)
                } else {
                    Flat::Bottom
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_set() -> impl Strategy<Value = BTreeSet<u8>> {
        proptest::collection::btree_set(0u8..32, 0..8)
    }

    fn arb_map() -> impl Strategy<Value = BTreeMap<u8, BTreeSet<u8>>> {
        proptest::collection::btree_map(0u8..8, arb_set(), 0..6)
    }

    proptest! {
        #[test]
        fn prop_set_join_is_lub(a in arb_set(), b in arb_set()) {
            let j = a.clone().join(b.clone());
            prop_assert!(a.leq(&j));
            prop_assert!(b.leq(&j));
            // least: any other upper bound is above the join
            let ub = a.clone().join(b.clone()).join([200u8].into_iter().collect());
            prop_assert!(j.leq(&ub));
        }

        #[test]
        fn prop_set_join_idempotent_commutative_associative(
            a in arb_set(), b in arb_set(), c in arb_set()
        ) {
            prop_assert_eq!(a.clone().join(a.clone()), a.clone());
            prop_assert_eq!(a.clone().join(b.clone()), b.clone().join(a.clone()));
            prop_assert_eq!(
                a.clone().join(b.clone()).join(c.clone()),
                a.clone().join(b.clone().join(c.clone()))
            );
            prop_assert_eq!(a.clone().join(BTreeSet::bottom()), a);
        }

        #[test]
        fn prop_map_join_pointwise(a in arb_map(), b in arb_map(), k in 0u8..8) {
            let j = a.clone().join(b.clone());
            let expected = a.fetch_or_bottom(&k).join(b.fetch_or_bottom(&k));
            prop_assert_eq!(j.fetch_or_bottom(&k), expected);
        }

        #[test]
        fn prop_map_leq_iff_join_absorbs(a in arb_map(), b in arb_map()) {
            let j = a.clone().join(b.clone());
            prop_assert!(a.leq(&j));
            prop_assert!(b.leq(&j));
            // a ⊑ b iff a ⊔ b is *semantically* equal to b (maps with explicit
            // bottom bindings are non-canonical representations, so compare
            // with mutual ⊑ rather than structural equality).
            prop_assert_eq!(a.leq(&b), j.leq(&b) && b.leq(&j));
        }

        #[test]
        fn prop_pair_lattice_componentwise(a in arb_set(), b in arb_set(), c in arb_set(), d in arb_set()) {
            let j = (a.clone(), b.clone()).join((c.clone(), d.clone()));
            prop_assert_eq!(j.0, a.join(c));
            prop_assert_eq!(j.1, b.join(d));
        }

        #[test]
        fn prop_flat_laws(a in any::<u8>(), b in any::<u8>()) {
            let fa = Flat::Exactly(a);
            let fb = Flat::Exactly(b);
            prop_assert!(Flat::<u8>::Bottom.leq(&fa));
            prop_assert!(fa.leq(&Flat::Top));
            prop_assert!(fa.join(fb).leq(&Flat::Top));
            if a != b {
                prop_assert_eq!(fa.join(fb), Flat::Top);
                prop_assert_eq!(fa.meet(fb), Flat::Bottom);
            }
        }
    }

    #[test]
    fn option_adjoins_a_new_bottom() {
        let a: Option<BTreeSet<u8>> = Some([1].into_iter().collect());
        assert!(Option::<BTreeSet<u8>>::bottom().leq(&a));
        assert_eq!(None.join(a.clone()), a);
    }

    #[test]
    fn bool_lattice_is_implication_order() {
        assert!(false.leq(&true));
        assert!(!true.leq(&false));
        assert!(bool::top());
        assert!(!true.meet(false));
    }

    #[test]
    fn join_at_merges_bindings() {
        let m: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        let m = m.join_at(1, [1u8].into_iter().collect());
        let m = m.join_at(1, [2u8].into_iter().collect());
        assert_eq!(m.fetch_or_bottom(&1), [1u8, 2].into_iter().collect());
        assert_eq!(m.fetch_or_bottom(&9), BTreeSet::new());
    }

    #[test]
    fn triple_lattice_joins_componentwise() {
        let a = (
            [1u8].into_iter().collect::<BTreeSet<u8>>(),
            false,
            BTreeSet::<u8>::new(),
        );
        let b = (
            [2u8].into_iter().collect(),
            true,
            [9u8].into_iter().collect(),
        );
        let j = a.join(b);
        assert_eq!(j.0, [1u8, 2].into_iter().collect());
        assert!(j.1);
        assert_eq!(j.2, [9u8].into_iter().collect());
    }
}
