//! Kleene iteration: computing least fixed points by ascending iteration
//! from `⊥` (paper §5.2, equation (1)).

use super::{Lattice, WidenLattice};
use crate::engine::governor::{Budget, Outcome};

/// Computes the least fixed point of a monotone function by Kleene
/// iteration, as the paper's `kleeneIt`:
///
/// ```text
/// kleeneIt f = loop ⊥  where loop c = let c' = f c in if c' ⊑ c then c else loop c'
/// ```
///
/// The iterate is maintained as a *running accumulator*: each round joins
/// `f(current)` into `current` with the change-tracking
/// [`Lattice::join_in_place`], and the iteration stops as soon as a round
/// reports no growth (`f(current) ⊑ current` — the same stopping condition
/// as the paper's, detected by the change flag instead of a whole-domain
/// comparison per round).  For a monotone `f` the Kleene sequence from `⊥`
/// is ascending, so accumulation computes exactly the paper's iterates and
/// the same least fixed point; for a non-monotone `f` it computes the least
/// fixed point of the inflationary closure `λx. x ⊔ f(x)`.
///
/// # Termination
///
/// Terminates when the iterates stabilise; over a finite-height lattice (the
/// abstract domains of the framework) this always happens.  For domains of
/// unbounded height prefer [`kleene_it_bounded`].
///
/// ```rust
/// use std::collections::BTreeSet;
/// use mai_core::lattice::kleene_it;
///
/// // Reachability in a tiny graph: 0 -> 1 -> 2.
/// let fixed: BTreeSet<u8> = kleene_it(|s: &BTreeSet<u8>| {
///     let mut next = s.clone();
///     next.insert(0);
///     next.extend(s.iter().filter(|&&n| n < 2).map(|&n| n + 1));
///     next
/// });
/// assert_eq!(fixed, [0u8, 1, 2].into_iter().collect());
/// ```
pub fn kleene_it<L, F>(f: F) -> L
where
    L: Lattice,
    F: Fn(&L) -> L,
{
    let mut current = L::bottom();
    loop {
        let next = f(&current);
        if !current.join_in_place(next) {
            return current;
        }
    }
}

/// Widened Kleene iteration: ascends by plain join for `delay` rounds
/// (the standard *widening delay*, buying precision while the iterates are
/// still informative), then switches the accumulation point to
/// [`WidenLattice::widen_in_place`] so the chain provably stabilises even
/// over an infinite-height domain such as
/// [`Interval`](crate::lattice::Interval).
///
/// The result is a *post-fixpoint* of `λx. x ⊔ f(x)` (widening covers the
/// join), i.e. a sound over-approximation of the least fixed point; run
/// [`narrow_it`] afterwards to walk precision back.
///
/// ```rust
/// use mai_core::lattice::{kleene_it_widened, Interval, Lattice};
///
/// // A counting loop: x ↦ [0,0] ⊔ (x + [1,1]) — diverges under kleene_it.
/// let post = kleene_it_widened(
///     |x: &Interval| Interval::singleton(0).join(*x + Interval::singleton(1)),
///     3,
/// );
/// assert_eq!(post, Interval::at_least(0));
/// ```
pub fn kleene_it_widened<L, F>(f: F, delay: usize) -> L
where
    L: WidenLattice,
    F: Fn(&L) -> L,
{
    let mut current = L::bottom();
    let mut rounds = 0usize;
    loop {
        let next = f(&current);
        let changed = if rounds < delay {
            current.join_in_place(next)
        } else {
            current.widen_in_place(next)
        };
        if !changed {
            return current;
        }
        rounds += 1;
    }
}

/// Descending (narrowing) iteration from a post-fixpoint: computes
/// `x_{n+1} = x_n △ f(x_n)` for at most `max_passes` rounds, stopping as
/// soon as a pass refines nothing.
///
/// Starting from any post-fixpoint `x ⊒ f(x)` of a monotone `f`, every
/// narrowed iterate is still a post-fixpoint above the least fixed point
/// (`lfp ⊑ f(x) ⊑ x △ f(x) ⊑ x`), so the pass is sound whenever it
/// stops; the explicit `max_passes` bound makes it *total* even for
/// narrowings that oscillate.
pub fn narrow_it<L, F>(start: L, f: F, max_passes: usize) -> L
where
    L: WidenLattice,
    F: Fn(&L) -> L,
{
    let mut current = start;
    for _ in 0..max_passes {
        let image = f(&current);
        if !current.narrow_in_place(image) {
            break;
        }
    }
    current
}

/// The result of a bounded Kleene iteration.
///
/// The outcome is `#[must_use]`: an [`KleeneOutcome::Exhausted`] carries a
/// *truncated* iterate that is **not** a fixpoint, so callers must check
/// [`KleeneOutcome::converged`] (or match) before treating the value as
/// one — dropping the outcome on the floor is exactly the silent
/// non-convergence bug this type exists to prevent.
#[must_use = "an Exhausted outcome's value is a truncated iterate, not a fixpoint — check converged()"]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KleeneOutcome<L> {
    /// The iteration stabilised at this fixed point after the recorded
    /// number of steps.
    Converged {
        /// The least fixed point.
        value: L,
        /// How many applications of the functional were needed.
        iterations: usize,
    },
    /// The iteration was cut off after `max_iterations` steps; the carried
    /// value is a sound *under*-approximation of the least fixed point of a
    /// monotone functional (the running accumulated iterate).
    Exhausted {
        /// The accumulated iterate reached before giving up.
        value: L,
        /// The bound that was hit.
        max_iterations: usize,
    },
}

impl<L> KleeneOutcome<L> {
    /// The carried lattice element, whether or not the iteration converged.
    pub fn value(&self) -> &L {
        match self {
            KleeneOutcome::Converged { value, .. } => value,
            KleeneOutcome::Exhausted { value, .. } => value,
        }
    }

    /// Whether the iteration reached a fixed point.
    pub fn converged(&self) -> bool {
        matches!(self, KleeneOutcome::Converged { .. })
    }

    /// Consumes the outcome, yielding the lattice element.
    pub fn into_value(self) -> L {
        match self {
            KleeneOutcome::Converged { value, .. } => value,
            KleeneOutcome::Exhausted { value, .. } => value,
        }
    }
}

/// Governed Kleene iteration from an explicit starting iterate: one
/// application of the functional is one *round* (and one *step* — at the
/// whole-lattice level the two coincide), and the [`Budget`] is consulted
/// before each application.  Returns the outcome together with the number
/// of applications performed.
///
/// An `Exhausted` outcome's resume seed is the accumulated iterate
/// itself: passing it back as `start` continues the ascent and reaches
/// the same least fixed point a one-shot run would (the Kleene sequence
/// from any sound under-approximation of the lfp still converges to it).
pub fn kleene_it_governed_from<L, F>(start: L, f: F, budget: &Budget) -> (Outcome<L, L>, usize)
where
    L: Lattice,
    F: Fn(&L) -> L,
{
    let mut current = start;
    let mut rounds = 0usize;
    loop {
        if let Some(reason) = budget.exhausted(rounds, rounds) {
            let resume_seed = Box::new(current.clone());
            return (
                Outcome::Exhausted {
                    partial: current,
                    reason,
                    resume_seed,
                },
                rounds,
            );
        }
        let next = f(&current);
        if !current.join_in_place(next) {
            return (Outcome::Complete(current), rounds);
        }
        rounds += 1;
    }
}

/// Governed Kleene iteration from `⊥` — see [`kleene_it_governed_from`].
pub fn kleene_it_governed<L, F>(f: F, budget: &Budget) -> (Outcome<L, L>, usize)
where
    L: Lattice,
    F: Fn(&L) -> L,
{
    kleene_it_governed_from(L::bottom(), f, budget)
}

/// Kleene iteration with an explicit bound on the number of steps, reporting
/// whether the iteration converged.
///
/// Useful for analyses whose guts are allowed to grow without bound (e.g.
/// the simple integer-time collecting semantics of §5.3, which the paper
/// itself notes "may not terminate").  A compatibility shim over
/// [`kleene_it_governed`] with a round budget of `max_iterations`.
pub fn kleene_it_bounded<L, F>(f: F, max_iterations: usize) -> KleeneOutcome<L>
where
    L: Lattice,
    F: Fn(&L) -> L,
{
    let budget = Budget::unlimited().with_max_rounds(max_iterations);
    match kleene_it_governed(f, &budget) {
        (Outcome::Complete(value), iterations) => KleeneOutcome::Converged { value, iterations },
        (Outcome::Exhausted { partial, .. }, _) => KleeneOutcome::Exhausted {
            value: partial,
            max_iterations,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn kleene_reaches_closure_of_monotone_function() {
        let lfp: BTreeSet<u32> = kleene_it(|s: &BTreeSet<u32>| {
            let mut next = s.clone();
            next.insert(1);
            next.extend(s.iter().filter(|&&x| x < 64).map(|&x| x * 2));
            next
        });
        assert_eq!(lfp, [1u32, 2, 4, 8, 16, 32, 64].into_iter().collect());
    }

    #[test]
    fn kleene_of_constant_function_is_that_constant() {
        let constant: BTreeSet<u8> = [7u8].into_iter().collect();
        let expected = constant.clone();
        let lfp: BTreeSet<u8> = kleene_it(move |_| constant.clone());
        assert_eq!(lfp, expected);
    }

    #[test]
    fn bounded_iteration_reports_convergence() {
        let out = kleene_it_bounded(
            |s: &BTreeSet<u8>| {
                let mut next = s.clone();
                next.insert(3);
                next
            },
            10,
        );
        assert!(out.converged());
        assert_eq!(out.value(), &[3u8].into_iter().collect());
        if let KleeneOutcome::Converged { iterations, .. } = out {
            assert!(iterations <= 2);
        }
    }

    #[test]
    fn governed_exhaustion_resumes_to_the_one_shot_fixpoint() {
        let f = |s: &BTreeSet<u32>| {
            let mut next = s.clone();
            next.insert(1);
            next.extend(s.iter().filter(|&&x| x < 64).map(|&x| x * 2));
            next
        };
        let one_shot: BTreeSet<u32> = kleene_it(f);
        let budget = Budget::unlimited().with_max_rounds(2);
        let (outcome, rounds) = kleene_it_governed(f, &budget);
        assert_eq!(rounds, 2);
        let Outcome::Exhausted {
            partial,
            reason,
            resume_seed,
        } = outcome
        else {
            panic!("two rounds cannot reach the seven-round fixpoint");
        };
        assert_eq!(reason, crate::engine::governor::ExhaustReason::RoundBudget);
        assert!(partial.len() < one_shot.len());
        let (resumed, _) = kleene_it_governed_from(*resume_seed, f, &Budget::unlimited());
        assert_eq!(resumed.into_complete(), one_shot);
    }

    #[test]
    fn widened_iteration_terminates_where_plain_kleene_diverges() {
        use crate::lattice::Interval;
        // The counting functional ascends forever under join…
        let f = |x: &Interval| Interval::singleton(0).join(*x + Interval::singleton(1));
        let bounded = kleene_it_bounded(f, 50);
        assert!(!bounded.converged());
        // …and stabilises at [0, +∞) once the accumulation point widens.
        for delay in [0usize, 1, 3, 10] {
            assert_eq!(kleene_it_widened(f, delay), Interval::at_least(0));
        }
    }

    #[test]
    fn narrowing_recovers_a_bounded_loop_counter() {
        use crate::lattice::{Interval, MeetLattice};
        // x ↦ [0,0] ⊔ ((x + 1) ⊓ (-∞, 10]): a loop counting up to 10.
        let f = |x: &Interval| {
            Interval::singleton(0).join((*x + Interval::singleton(1)).meet(Interval::at_most(10)))
        };
        let post = kleene_it_widened(f, 2);
        assert_eq!(post, Interval::at_least(0));
        // One descending pass replaces the widened +∞ with the true bound.
        let refined = narrow_it(post, f, 4);
        assert_eq!(refined, Interval::range(0, 10));
    }

    #[test]
    fn bounded_iteration_reports_exhaustion() {
        // A functional over an infinite-height chain never converges.
        let out = kleene_it_bounded(
            |s: &BTreeSet<u64>| {
                let mut next = s.clone();
                next.insert(s.len() as u64);
                next
            },
            5,
        );
        assert!(!out.converged());
        assert_eq!(out.value().len(), 5);
        assert_eq!(out.into_value().len(), 5);
    }
}
