//! The interval lattice `[lo, hi]` over the integers — the framework's
//! first *infinite-height* abstract domain.
//!
//! Every previously committed domain (power-sets over a program's finite
//! closure space, [`Flat`](super::Flat), [`AbsNat`](super::AbsNat)) has
//! finite height, so ascending Kleene iteration terminates by counting.
//! Intervals break that accident: `[0,0] ⊑ [0,1] ⊑ [0,2] ⊑ …` ascends
//! forever, and a fixpoint engine that only ever `join`s will chase it
//! forever too.  [`Interval`] therefore carries the classic
//! widening/narrowing pair of interval analysis through the
//! [`WidenLattice`] trait:
//!
//! * [`Interval::widen`] jumps any *unstable* bound to `±∞`.  A widened
//!   chain `x_{n+1} = x_n ▽ f(x_n)` can strictly grow at most three times
//!   (leave `⊥`, lose the lower bound, lose the upper bound), so it
//!   stabilises in finitely many steps regardless of `f`.
//! * [`Interval::narrow`] walks an infinite bound back to the
//!   corresponding bound of a smaller argument, recovering precision the
//!   over-eager widening threw away, and can only tighten finitely often.
//!
//! Bound arithmetic saturates at `i64::MIN`/`i64::MAX`; the two infinities
//! are explicit enum variants, not sentinel integers, so `[0, i64::MAX]`
//! and `[0, +∞)` stay distinguishable.

use std::fmt;

use super::{Lattice, MeetLattice, TopLattice, WidenLattice};

/// A lower bound: `-∞` or a finite inclusive bound.
///
/// The derived `Ord` is the numeric order (`NegInf` below every finite
/// bound), so `min`/`max` on bounds compute interval hulls directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lo {
    /// Unbounded below.
    NegInf,
    /// Bounded below by this value (inclusive).
    At(i64),
}

/// An upper bound: a finite inclusive bound or `+∞`.
///
/// The derived `Ord` is the numeric order (`PosInf` above every finite
/// bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hi {
    /// Bounded above by this value (inclusive).
    At(i64),
    /// Unbounded above.
    PosInf,
}

impl Lo {
    fn plus(self, other: Lo) -> Lo {
        match (self, other) {
            (Lo::At(a), Lo::At(b)) => Lo::At(a.saturating_add(b)),
            _ => Lo::NegInf,
        }
    }
}

impl Hi {
    fn plus(self, other: Hi) -> Hi {
        match (self, other) {
            (Hi::At(a), Hi::At(b)) => Hi::At(a.saturating_add(b)),
            _ => Hi::PosInf,
        }
    }
}

/// An integer interval: either empty (`⊥`) or a non-empty `[lo, hi]`.
///
/// The `Range` constructor is kept normalised — `lo ≤ hi` always holds —
/// so structural equality is semantic equality and the derived `Ord`
/// gives the deterministic total order the power-set domains need.
///
/// ```rust
/// use mai_core::lattice::{Interval, Lattice, WidenLattice};
///
/// let n = Interval::singleton(0);
/// let grown = n.join(Interval::singleton(1));
/// assert_eq!(grown, Interval::range(0, 1));
/// // The unstable upper bound widens away; the stable lower bound stays.
/// assert_eq!(n.widen(grown), Interval::at_least(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Interval {
    /// The empty interval `⊥`: no value is possible.
    Empty,
    /// All integers from the lower to the upper bound, inclusive.
    Range(Lo, Hi),
}

fn range_norm(lo: Lo, hi: Hi) -> Interval {
    match (lo, hi) {
        (Lo::At(l), Hi::At(h)) if l > h => Interval::Empty,
        _ => Interval::Range(lo, hi),
    }
}

impl Interval {
    /// The interval containing exactly `n`.
    pub fn singleton(n: i64) -> Self {
        Interval::Range(Lo::At(n), Hi::At(n))
    }

    /// The interval `[lo, hi]`; `⊥` when `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Self {
        range_norm(Lo::At(lo), Hi::At(hi))
    }

    /// The interval `[n, +∞)`.
    pub fn at_least(n: i64) -> Self {
        Interval::Range(Lo::At(n), Hi::PosInf)
    }

    /// The interval `(-∞, n]`.
    pub fn at_most(n: i64) -> Self {
        Interval::Range(Lo::NegInf, Hi::At(n))
    }

    /// The bounds, or `None` for `⊥`.
    pub fn bounds(&self) -> Option<(Lo, Hi)> {
        match self {
            Interval::Empty => None,
            Interval::Range(lo, hi) => Some((*lo, *hi)),
        }
    }

    /// Whether `n` is a possible value.
    pub fn contains(&self, n: i64) -> bool {
        match self {
            Interval::Empty => false,
            Interval::Range(lo, hi) => {
                let above = match lo {
                    Lo::NegInf => true,
                    Lo::At(l) => *l <= n,
                };
                let below = match hi {
                    Hi::PosInf => true,
                    Hi::At(h) => n <= *h,
                };
                above && below
            }
        }
    }

    /// Whether `0` is a possible value — the guard the abstract-error
    /// layer checks before an abstract division.
    pub fn contains_zero(&self) -> bool {
        self.contains(0)
    }
}

/// Abstract addition: the interval of all pairwise sums, with saturating
/// bound arithmetic.  Adding `⊥` to anything is `⊥` — no concrete pair
/// exists.
impl std::ops::Add for Interval {
    type Output = Interval;

    fn add(self, other: Self) -> Self {
        match (self, other) {
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                Interval::Range(l1.plus(l2), h1.plus(h2))
            }
            _ => Interval::Empty,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interval::Empty => write!(f, "⊥"),
            Interval::Range(lo, hi) => {
                match lo {
                    Lo::NegInf => write!(f, "(-∞, ")?,
                    Lo::At(l) => write!(f, "[{l}, ")?,
                }
                match hi {
                    Hi::PosInf => write!(f, "+∞)"),
                    Hi::At(h) => write!(f, "{h}]"),
                }
            }
        }
    }
}

impl Lattice for Interval {
    fn bottom() -> Self {
        Interval::Empty
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (Interval::Empty, x) | (x, Interval::Empty) => x,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                Interval::Range(l1.min(l2), h1.max(h2))
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (Interval::Empty, _) => true,
            (Interval::Range(..), Interval::Empty) => false,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => l2 <= l1 && h1 <= h2,
        }
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        let changed = !other.leq(self);
        *self = self.join(other);
        changed
    }

    fn is_bottom(&self) -> bool {
        matches!(self, Interval::Empty)
    }
}

impl MeetLattice for Interval {
    fn meet(self, other: Self) -> Self {
        match (self, other) {
            (Interval::Empty, _) | (_, Interval::Empty) => Interval::Empty,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                range_norm(l1.max(l2), h1.min(h2))
            }
        }
    }
}

impl TopLattice for Interval {
    fn top() -> Self {
        Interval::Range(Lo::NegInf, Hi::PosInf)
    }
}

impl WidenLattice for Interval {
    /// Classic interval widening: any bound `other` pushes past jumps
    /// straight to the corresponding infinity; stable bounds are kept.
    fn widen_in_place(&mut self, other: Self) -> bool {
        let widened = match (*self, other) {
            (x, Interval::Empty) => x,
            (Interval::Empty, y) => y,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => Interval::Range(
                if l2 < l1 { Lo::NegInf } else { l1 },
                if h2 > h1 { Hi::PosInf } else { h1 },
            ),
        };
        let changed = widened != *self;
        *self = widened;
        changed
    }

    /// Classic interval narrowing: an infinite bound of `self` is replaced
    /// by the corresponding bound of `other`; finite bounds are kept.
    fn narrow_in_place(&mut self, other: Self) -> bool {
        let narrowed = match (*self, other) {
            (_, Interval::Empty) | (Interval::Empty, _) => Interval::Empty,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => range_norm(
                if l1 == Lo::NegInf { l2 } else { l1 },
                if h1 == Hi::PosInf { h2 } else { h1 },
            ),
        };
        let changed = narrowed != *self;
        *self = narrowed;
        changed
    }
}

/// Intervals are pure base values: they hold no addresses, so abstract
/// garbage collection never traces through them.
impl<A: Ord> crate::gc::Touches<A> for Interval {
    fn touches(&self) -> std::collections::BTreeSet<A> {
        std::collections::BTreeSet::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_hull() {
        assert_eq!(
            Interval::singleton(1).join(Interval::singleton(5)),
            Interval::range(1, 5)
        );
        assert_eq!(
            Interval::at_most(0).join(Interval::at_least(3)),
            Interval::top()
        );
        assert_eq!(
            Interval::bottom().join(Interval::singleton(7)),
            Interval::singleton(7)
        );
    }

    #[test]
    fn leq_is_inclusion() {
        assert!(Interval::range(1, 2).leq(&Interval::range(0, 3)));
        assert!(!Interval::range(0, 3).leq(&Interval::range(1, 2)));
        assert!(Interval::bottom().leq(&Interval::bottom()));
        assert!(Interval::range(0, 0).leq(&Interval::at_least(0)));
        assert!(!Interval::at_least(0).leq(&Interval::range(0, i64::MAX)));
    }

    #[test]
    fn meet_is_the_intersection() {
        assert_eq!(
            Interval::range(0, 5).meet(Interval::range(3, 9)),
            Interval::range(3, 5)
        );
        assert_eq!(
            Interval::range(0, 2).meet(Interval::range(4, 6)),
            Interval::Empty
        );
        assert_eq!(
            Interval::top().meet(Interval::singleton(3)),
            Interval::singleton(3)
        );
    }

    #[test]
    fn range_normalises_empty() {
        assert_eq!(Interval::range(3, 1), Interval::Empty);
        assert!(Interval::range(3, 1).is_bottom());
    }

    #[test]
    fn widen_kills_unstable_bounds_only() {
        let x = Interval::range(0, 1);
        let y = Interval::range(0, 2);
        assert_eq!(x.widen(y), Interval::at_least(0));
        // Stable on both sides: widening is the identity.
        assert_eq!(y.widen(x), y);
        // Unstable below.
        assert_eq!(
            Interval::range(0, 5).widen(Interval::range(-1, 5)),
            Interval::Range(Lo::NegInf, Hi::At(5))
        );
        // Leaving bottom adopts the new value without losing bounds.
        assert_eq!(Interval::Empty.widen(x), x);
    }

    #[test]
    fn widen_is_an_upper_bound_of_both_arguments() {
        let cases = [
            (Interval::range(0, 1), Interval::range(0, 4)),
            (Interval::range(2, 3), Interval::range(-9, 3)),
            (Interval::Empty, Interval::range(1, 1)),
            (Interval::range(1, 1), Interval::Empty),
        ];
        for (a, b) in cases {
            let w = a.widen(b);
            assert!(a.leq(&w) && b.leq(&w), "{a} ▽ {b} = {w}");
        }
    }

    #[test]
    fn widened_counting_chain_stabilises() {
        // x_{n+1} = x_n ▽ (x_n ⊔ (x_n + [1,1])): diverges under join,
        // stabilises in a handful of widening steps.
        let mut x = Interval::singleton(0);
        let mut steps = 0;
        loop {
            let next = x.join(x + Interval::singleton(1));
            if !x.widen_in_place(next) {
                break;
            }
            steps += 1;
            assert!(steps <= 3, "widened chain failed to stabilise");
        }
        assert_eq!(x, Interval::at_least(0));
    }

    #[test]
    fn narrow_recovers_finite_bounds() {
        // Widening overshot to [0, +∞); one descending step recovers the
        // true bound when the functional's image is [0, 10].
        let widened = Interval::at_least(0);
        assert_eq!(
            widened.narrow(Interval::range(0, 10)),
            Interval::range(0, 10)
        );
        // Finite bounds are kept even when `other` is tighter.
        assert_eq!(
            Interval::range(0, 10).narrow(Interval::range(2, 5)),
            Interval::range(0, 10)
        );
        assert_eq!(
            Interval::at_least(0).narrow(Interval::Empty),
            Interval::Empty
        );
    }

    #[test]
    fn add_saturates_and_propagates_infinities() {
        assert_eq!(
            Interval::range(1, 2) + Interval::range(10, 20),
            Interval::range(11, 22)
        );
        assert_eq!(
            Interval::at_least(0) + Interval::singleton(1),
            Interval::at_least(1)
        );
        assert_eq!(
            Interval::singleton(i64::MAX) + Interval::singleton(1),
            Interval::singleton(i64::MAX)
        );
        assert_eq!(Interval::Empty + Interval::singleton(1), Interval::Empty);
    }

    #[test]
    fn contains_checks_both_bounds() {
        assert!(Interval::range(-1, 1).contains_zero());
        assert!(!Interval::range(1, 9).contains_zero());
        assert!(Interval::at_least(0).contains(1_000_000));
        assert!(!Interval::Empty.contains(0));
    }

    #[test]
    fn display_renders_infinities() {
        assert_eq!(Interval::range(0, 3).to_string(), "[0, 3]");
        assert_eq!(Interval::at_least(0).to_string(), "[0, +∞)");
        assert_eq!(Interval::at_most(-2).to_string(), "(-∞, -2]");
        assert_eq!(Interval::Empty.to_string(), "⊥");
    }
}
