//! Lattices, Kleene iteration and Galois connections (paper §5.1–§5.2, §6.5).
//!
//! The collecting semantics of the paper is computed as the least fixed
//! point of a monotone functional over a complete lattice, by Kleene
//! iteration.  This module provides:
//!
//! * the [`Lattice`] trait (join semi-lattice with bottom — the part of the
//!   paper's `Lattice` class actually used by the framework, extended with
//!   the in-place, change-tracking `join_in_place` the incremental fixpoint
//!   engines are built on) together with the optional [`MeetLattice`] and
//!   [`TopLattice`] extensions,
//! * instances for the container types used by the systematic abstraction
//!   of abstract machines: unit, booleans, pairs, options, power-sets and
//!   point-wise maps (§5.2),
//! * [`AbsNat`], the abstract-counting lattice `{0, 1, ∞}` with its
//!   abstract addition `⊕` (§6.3),
//! * [`Flat`], the classic flat lattice used to abstract base values,
//! * [`kleene_it`], the ascending Kleene iteration of equation (1), and
//! * [`GaloisConnection`], used to derive the shared-store widening of
//!   §6.5.
//!
//! ### Deviation from the paper
//!
//! The paper's `Lattice` class also lists `⊤` and `⊓`; its own Haskell
//! instances leave `⊤` undefined for power-sets over infinite carriers.  We
//! split those members into [`TopLattice`] and [`MeetLattice`] so that the
//! power-set instances do not have to provide partial functions.

mod absnat;
mod galois;
mod instances;
mod interval;
mod kleene;

pub use absnat::AbsNat;
pub use galois::GaloisConnection;
pub use instances::{Flat, PointwiseExt};
pub use interval::{Hi, Interval, Lo};
pub use kleene::{
    kleene_it, kleene_it_bounded, kleene_it_governed, kleene_it_governed_from, kleene_it_widened,
    narrow_it, KleeneOutcome,
};

/// A join semi-lattice with a least element.
///
/// This is the portion of the paper's `Lattice` type class that the
/// framework relies on: `⊥`, `⊔` and `⊑`.  All analysis domains (stores,
/// power-sets of states, products of both) implement it.
///
/// # Laws
///
/// * `join` is associative, commutative and idempotent;
/// * `bottom` is the unit of `join`;
/// * `leq(a, b)` iff `join(a.clone(), b.clone()) == b`;
/// * `join_in_place` agrees with `join` and its change flag equals
///   `!(other ⊑ self)`.
///
/// These laws are checked by property tests for all the provided instances.
///
/// ```rust
/// use std::collections::BTreeSet;
/// use mai_core::lattice::Lattice;
///
/// let a: BTreeSet<u8> = [1, 2].into_iter().collect();
/// let b: BTreeSet<u8> = [2, 3].into_iter().collect();
/// let ab = a.clone().join(b.clone());
/// assert!(a.leq(&ab) && b.leq(&ab));
/// assert_eq!(BTreeSet::<u8>::bottom(), BTreeSet::new());
/// ```
pub trait Lattice: Sized + Clone {
    /// The least element `⊥`.
    fn bottom() -> Self;

    /// The least upper bound `⊔` of two elements.
    #[must_use]
    fn join(self, other: Self) -> Self;

    /// The partial order `⊑`.
    fn leq(&self, other: &Self) -> bool;

    /// In-place, change-tracking join: grows `self` to `self ⊔ other` and
    /// reports whether anything grew.
    ///
    /// # Law
    ///
    /// Writing `old` for the value of `self` before the call,
    ///
    /// * `self == old.join(other)` afterwards (structurally — the same
    ///   representation `join` would have produced), and
    /// * the returned flag equals `!other.leq(&old)`.
    ///
    /// The change flag is what lets fixpoint drivers ([`kleene_it`], the
    /// incremental engine in [`crate::engine`]) detect convergence without
    /// comparing whole domains per round.  Instances should override the
    /// default with a non-allocating implementation; the default falls back
    /// to one `leq` plus a value-passing `join`.
    fn join_in_place(&mut self, other: Self) -> bool {
        let changed = !other.leq(self);
        let old = std::mem::replace(self, Self::bottom());
        *self = old.join(other);
        changed
    }

    /// Whether this element is `⊥`.
    ///
    /// The default allocates a fresh `bottom()` and runs `leq`; instances
    /// with a cheap emptiness check should override it.
    fn is_bottom(&self) -> bool {
        self.leq(&Self::bottom())
    }

    /// Joins every element of an iterator, starting from `⊥`
    /// (the paper's `joinWith` specialised to the identity).
    fn join_all<I: IntoIterator<Item = Self>>(items: I) -> Self {
        let mut acc = Self::bottom();
        for item in items {
            acc.join_in_place(item);
        }
        acc
    }
}

/// Lattices that also possess a greatest lower bound `⊓`.
pub trait MeetLattice: Lattice {
    /// The greatest lower bound of two elements.
    #[must_use]
    fn meet(self, other: Self) -> Self;
}

/// Lattices that possess a greatest element `⊤`.
pub trait TopLattice: Lattice {
    /// The greatest element.
    fn top() -> Self;
}

/// Lattices with a widening/narrowing pair — the termination device for
/// *infinite-height* domains such as [`Interval`].
///
/// On a finite-height lattice, ascending Kleene iteration terminates
/// because every strictly ascending chain is finite.  [`Interval`] breaks
/// that: `[0,0] ⊑ [0,1] ⊑ …` ascends forever.  Widening `▽` replaces the
/// join at selected accumulation points so that the iteration sequence
/// `x_{n+1} = x_n ▽ f(x_n)` is still an upper-bound chain but provably
/// stabilises; narrowing `△` then walks the over-approximation back down
/// without ever dropping below a fixpoint.
///
/// # Laws
///
/// * **Upper bound**: `a ⊑ a ▽ b` and `b ⊑ a ▽ b` (widening covers the
///   join, so a widened iterate is still a post-fixpoint candidate);
/// * **Termination**: for every sequence `y_n`, the chain
///   `x_{n+1} = x_n ▽ y_n` stabilises after finitely many strict growths;
/// * **Narrowing**: if `b ⊑ a` then `b ⊑ a △ b ⊑ a`, and every chain
///   `x_{n+1} = x_n △ y_n` with `y_n ⊑ x_n` stabilises.
///
/// The defaults — widen as plain join, narrow as the identity on `self` —
/// satisfy all three laws **on finite-height lattices only**; they make
/// every existing finite domain a `WidenLattice` for free without changing
/// its semantics.  Infinite-height domains must override both.
pub trait WidenLattice: Lattice {
    /// In-place widening: grows `self` to `self ▽ other`, reporting
    /// whether anything changed.  Defaults to [`Lattice::join_in_place`],
    /// which is a correct widening exactly when the lattice has finite
    /// height.
    fn widen_in_place(&mut self, other: Self) -> bool {
        self.join_in_place(other)
    }

    /// In-place narrowing: refines `self` to `self △ other` (with
    /// `other ⊑ self`), reporting whether anything changed.  Defaults to
    /// keeping `self` — the trivial narrowing, sound for every lattice.
    fn narrow_in_place(&mut self, other: Self) -> bool {
        let _ = other;
        false
    }

    /// Value-passing widening `self ▽ other`.
    #[must_use]
    fn widen(mut self, other: Self) -> Self {
        self.widen_in_place(other);
        self
    }

    /// Value-passing narrowing `self △ other`.
    #[must_use]
    fn narrow(mut self, other: Self) -> Self {
        self.narrow_in_place(other);
        self
    }
}

/// The paper's `joinWith` (§5.3.3): map a function over a collection and
/// join the results in a lattice.
///
/// ```rust
/// use mai_core::lattice::join_with;
/// use std::collections::BTreeSet;
///
/// let inputs = vec![1u8, 2, 3];
/// let joined: BTreeSet<u8> = join_with(|x| [x * 2].into_iter().collect(), inputs);
/// assert_eq!(joined, [2u8, 4, 6].into_iter().collect());
/// ```
pub fn join_with<A, L, F, I>(f: F, items: I) -> L
where
    L: Lattice,
    F: Fn(A) -> L,
    I: IntoIterator<Item = A>,
{
    let mut acc = L::bottom();
    for x in items {
        acc.join_in_place(f(x));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, BTreeSet};

    #[test]
    fn join_all_of_nothing_is_bottom() {
        let joined: BTreeSet<u8> = Lattice::join_all(std::iter::empty());
        assert!(joined.is_bottom());
    }

    #[test]
    fn join_with_maps_then_joins() {
        let out: BTreeMap<u8, BTreeSet<u8>> = join_with(
            |k: u8| {
                let mut m = BTreeMap::new();
                m.insert(k % 2, [k].into_iter().collect());
                m
            },
            vec![1u8, 2, 3],
        );
        assert_eq!(out[&1], [1u8, 3].into_iter().collect());
        assert_eq!(out[&0], [2u8].into_iter().collect());
    }

    #[test]
    fn is_bottom_detects_bottom_only() {
        assert!(<(u8,)>::default().0 == 0); // sanity for the test below
        assert!(BTreeSet::<u8>::new().is_bottom());
        assert!(!([1u8].into_iter().collect::<BTreeSet<_>>()).is_bottom());
    }
}
