//! The abstract-counting lattice `N̂ = {0, 1, ∞}` (paper §6.3).

use std::fmt;
use std::ops::Add;

use super::{Lattice, MeetLattice, TopLattice, WidenLattice};

/// An abstract natural number: how many times an abstract resource has been
/// allocated.
///
/// `AbsNat` is both a lattice (ordered `0 ⊑ 1 ⊑ ∞`) and a commutative
/// monoid under the abstract addition `⊕` of the paper: adding any two
/// non-zero counts saturates to `∞`.  Counting with this lattice is what
/// lets an analysis perform strong updates and must-alias reasoning: when an
/// address's count is exactly [`AbsNat::One`], the abstract binding
/// corresponds to exactly one concrete binding.
///
/// ```rust
/// use mai_core::lattice::AbsNat;
/// assert_eq!(AbsNat::Zero + AbsNat::One, AbsNat::One);
/// assert_eq!(AbsNat::One + AbsNat::One, AbsNat::Many);
/// assert!(AbsNat::One.is_at_most_one());
/// assert!(!AbsNat::Many.is_at_most_one());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum AbsNat {
    /// Never allocated.
    #[default]
    Zero,
    /// Allocated exactly once.
    One,
    /// Allocated more than once (the abstraction of "2 or more").
    Many,
}

impl AbsNat {
    /// The abstraction function from concrete naturals.
    pub fn abstraction(n: usize) -> Self {
        match n {
            0 => AbsNat::Zero,
            1 => AbsNat::One,
            _ => AbsNat::Many,
        }
    }

    /// Abstract addition `⊕` (method form; also available through `+`).
    #[must_use]
    pub fn plus(self, other: Self) -> Self {
        match (self, other) {
            (AbsNat::Zero, n) | (n, AbsNat::Zero) => n,
            _ => AbsNat::Many,
        }
    }

    /// True for `Zero` and `One`: the counted resource is known to have at
    /// most one concrete instance, so strong updates are sound.
    pub fn is_at_most_one(self) -> bool {
        !matches!(self, AbsNat::Many)
    }
}

impl Add for AbsNat {
    type Output = AbsNat;

    fn add(self, rhs: Self) -> Self::Output {
        self.plus(rhs)
    }
}

impl fmt::Display for AbsNat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsNat::Zero => write!(f, "0"),
            AbsNat::One => write!(f, "1"),
            AbsNat::Many => write!(f, "∞"),
        }
    }
}

impl Lattice for AbsNat {
    fn bottom() -> Self {
        AbsNat::Zero
    }

    fn join(self, other: Self) -> Self {
        self.max(other)
    }

    fn leq(&self, other: &Self) -> bool {
        self <= other
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        let changed = other > *self;
        if changed {
            *self = other;
        }
        changed
    }

    fn is_bottom(&self) -> bool {
        *self == AbsNat::Zero
    }
}

impl TopLattice for AbsNat {
    fn top() -> Self {
        AbsNat::Many
    }
}

impl MeetLattice for AbsNat {
    fn meet(self, other: Self) -> Self {
        self.min(other)
    }
}

// Three elements: the default widening (join) trivially terminates.
impl WidenLattice for AbsNat {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_absnat() -> impl Strategy<Value = AbsNat> {
        prop_oneof![Just(AbsNat::Zero), Just(AbsNat::One), Just(AbsNat::Many)]
    }

    #[test]
    fn abstraction_is_sound_for_small_naturals() {
        assert_eq!(AbsNat::abstraction(0), AbsNat::Zero);
        assert_eq!(AbsNat::abstraction(1), AbsNat::One);
        assert_eq!(AbsNat::abstraction(2), AbsNat::Many);
        assert_eq!(AbsNat::abstraction(1000), AbsNat::Many);
    }

    #[test]
    fn addition_matches_the_paper_table() {
        assert_eq!(AbsNat::Zero + AbsNat::Zero, AbsNat::Zero);
        assert_eq!(AbsNat::Zero + AbsNat::Many, AbsNat::Many);
        assert_eq!(AbsNat::One + AbsNat::Zero, AbsNat::One);
        assert_eq!(AbsNat::One + AbsNat::Many, AbsNat::Many);
        assert_eq!(AbsNat::Many + AbsNat::Many, AbsNat::Many);
    }

    proptest! {
        #[test]
        fn prop_plus_abstracts_concrete_addition(a in 0usize..5, b in 0usize..5) {
            // α(a + b) ⊑ α(a) ⊕ α(b) — in fact they are equal here.
            prop_assert_eq!(
                AbsNat::abstraction(a + b),
                AbsNat::abstraction(a) + AbsNat::abstraction(b)
            );
        }

        #[test]
        fn prop_plus_commutative_associative(a in arb_absnat(), b in arb_absnat(), c in arb_absnat()) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a + AbsNat::Zero, a);
        }

        #[test]
        fn prop_lattice_laws(a in arb_absnat(), b in arb_absnat()) {
            prop_assert_eq!(a.join(b), b.join(a));
            prop_assert_eq!(a.join(a), a);
            prop_assert!(AbsNat::bottom().leq(&a));
            prop_assert!(a.leq(&AbsNat::top()));
            prop_assert_eq!(a.leq(&b), a.join(b) == b);
            prop_assert!(a.meet(b).leq(&a));
        }

        #[test]
        fn prop_join_in_place_law(a in arb_absnat(), b in arb_absnat()) {
            let mut acc = a;
            let changed = acc.join_in_place(b);
            prop_assert_eq!(acc, a.join(b));
            prop_assert_eq!(changed, !b.leq(&a));
            prop_assert_eq!(a.is_bottom(), a == AbsNat::Zero);
        }

        #[test]
        fn prop_plus_is_monotone(a in arb_absnat(), b in arb_absnat(), c in arb_absnat()) {
            if a.leq(&b) {
                prop_assert!((a + c).leq(&(b + c)));
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(AbsNat::Zero.to_string(), "0");
        assert_eq!(AbsNat::One.to_string(), "1");
        assert_eq!(AbsNat::Many.to_string(), "∞");
    }
}
