//! Contexts drawn from a bounded set of naturals (paper §3.4).
//!
//! "One can take a bounded set of naturals `{n ∈ N | n ≤ N}` for some `N`
//! as contexts, which will give a good precision for sufficiently big `N`."

use std::fmt;

use crate::name::{Label, Name};

use super::{Context, HasInitial};

/// A context that counts transitions modulo-saturating at `N - 1`.
///
/// With a large `N` this behaves like the concrete counter on short
/// executions while remaining finite; with `N = 1` it degenerates to the
/// monovariant allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BoundedCtx<const N: u64> {
    tick: u64,
}

impl<const N: u64> BoundedCtx<N> {
    /// The current (saturated) counter value.
    pub fn value(&self) -> u64 {
        self.tick
    }
}

/// An address allocated under a [`BoundedCtx`]: a variable paired with the
/// saturated counter.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoundedAddr {
    /// The bound variable.
    pub name: Name,
    /// The saturated counter at allocation time.
    pub tick: u64,
}

impl fmt::Debug for BoundedAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name, self.tick)
    }
}

impl<const N: u64> HasInitial for BoundedCtx<N> {
    fn initial() -> Self {
        BoundedCtx { tick: 0 }
    }
}

impl<const N: u64> Context for BoundedCtx<N> {
    type Addr = BoundedAddr;

    fn valloc(&self, name: &Name) -> Self::Addr {
        BoundedAddr {
            name: name.clone(),
            tick: self.tick,
        }
    }

    fn advance(self, _site: Label) -> Self {
        let ceiling = N.saturating_sub(1);
        BoundedCtx {
            tick: (self.tick + 1).min(ceiling),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_at_bound() {
        let mut c = BoundedCtx::<3>::initial();
        for _ in 0..10 {
            c = c.advance(Label::none());
        }
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn bound_one_behaves_monovariantly() {
        let c = BoundedCtx::<1>::initial()
            .advance(Label::new(1))
            .advance(Label::new(2));
        assert_eq!(c, BoundedCtx::<1>::initial());
        assert_eq!(
            c.valloc(&Name::from("x")),
            BoundedCtx::<1>::initial().valloc(&Name::from("x"))
        );
    }

    #[test]
    fn early_allocations_are_distinguished() {
        let c0 = BoundedCtx::<8>::initial();
        let c1 = c0.advanced(Label::none());
        assert_ne!(c0.valloc(&Name::from("x")), c1.valloc(&Name::from("x")));
    }
}
