//! Fresh-address allocation: the context of the *concrete* collecting
//! semantics (paper §5.3).

use std::fmt;

use crate::name::{Label, Name};

use super::{Context, HasInitial};

/// A concrete address: a variable name paired with the (unbounded) step
/// counter at which it was allocated.
///
/// Because the counter grows at every transition, every allocation is
/// fresh — this is the "unique addresses for each allocation" policy that
/// the *a posteriori* soundness theorem of Might and Manolios takes as the
/// ground truth against which all other allocation policies are sound.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConcreteAddr {
    /// The variable this address binds.
    pub name: Name,
    /// The allocation time.
    pub time: u64,
}

impl fmt::Debug for ConcreteAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.name, self.time)
    }
}

/// The concrete context: a simple transition counter ("time"), advanced at
/// every step and embedded into every allocated address.
///
/// Plugging this context into the monadically-parameterized semantics
/// recovers the concrete store-passing collecting semantics of §5.3 (where
/// the paper uses bare `Integer`s — we additionally pair the counter with
/// the variable name so that two parameters bound in the same step do not
/// collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ConcreteCtx {
    /// The current time: how many transitions have been taken.
    pub time: u64,
}

impl HasInitial for ConcreteCtx {
    fn initial() -> Self {
        ConcreteCtx { time: 0 }
    }
}

impl Context for ConcreteCtx {
    type Addr = ConcreteAddr;

    fn valloc(&self, name: &Name) -> Self::Addr {
        ConcreteAddr {
            name: name.clone(),
            time: self.time,
        }
    }

    fn advance(self, _site: Label) -> Self {
        ConcreteCtx {
            time: self.time + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advancing_produces_fresh_addresses() {
        let x = Name::from("x");
        let c0 = ConcreteCtx::initial();
        let c1 = c0.advanced(Label::new(1));
        let c2 = c1.advanced(Label::new(1));
        let a0 = c0.valloc(&x);
        let a1 = c1.valloc(&x);
        let a2 = c2.valloc(&x);
        assert_ne!(a0, a1);
        assert_ne!(a1, a2);
        assert_ne!(a0, a2);
    }

    #[test]
    fn distinct_variables_never_collide_in_one_step() {
        let c = ConcreteCtx::initial().advanced(Label::new(7));
        assert_ne!(c.valloc(&Name::from("x")), c.valloc(&Name::from("y")));
    }

    #[test]
    fn debug_rendering_mentions_name_and_time() {
        let a = ConcreteCtx { time: 3 }.valloc(&Name::from("v"));
        assert_eq!(format!("{:?}", a), "v@3");
    }
}
