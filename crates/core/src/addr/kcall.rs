//! k-CFA call-string contexts (paper §2.4.1 and §6.1).

use std::fmt;

use crate::name::{Label, Name};

use super::{Context, HasInitial};

/// A k-CFA context: the labels of the last `K` call sites crossed,
/// most recent first (`T̂ime_{kCFA} = Call^{≤k}`).
///
/// The degree `K` is a compile-time parameter, mirroring the paper's `KCFA`
/// class whose `getK` fixes the analysis degree per instance.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KCallCtx<const K: usize> {
    calls: Vec<Label>,
}

impl<const K: usize> KCallCtx<K> {
    /// The empty call string (`τ₀ = ⟨⟩`).
    pub fn empty() -> Self {
        KCallCtx { calls: Vec::new() }
    }

    /// The call string, most recent call first.
    pub fn calls(&self) -> &[Label] {
        &self.calls
    }

    /// The analysis degree `k`.
    pub fn degree(&self) -> usize {
        K
    }
}

impl<const K: usize> fmt::Debug for KCallCtx<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, l) in self.calls.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", l)?;
        }
        write!(f, "⟩")
    }
}

/// A k-CFA address: a variable paired with the context in which it was
/// bound (`Âddr_{kCFA} = Var × T̂ime_{kCFA}`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KCallAddr {
    /// The bound variable.
    pub name: Name,
    /// The call string at binding time (already truncated to length `k`).
    pub context: Vec<Label>,
}

impl fmt::Debug for KCallAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ᵏ{:?}", self.name, self.context)
    }
}

impl<const K: usize> HasInitial for KCallCtx<K> {
    fn initial() -> Self {
        KCallCtx::empty()
    }
}

impl<const K: usize> Context for KCallCtx<K> {
    type Addr = KCallAddr;

    fn valloc(&self, name: &Name) -> Self::Addr {
        KCallAddr {
            name: name.clone(),
            context: self.calls.clone(),
        }
    }

    fn advance(mut self, site: Label) -> Self {
        // ⌊site : calls⌋_k — prepend and truncate.
        self.calls.insert(0, site);
        self.calls.truncate(K);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_cfa_as_k_equals_zero_conflates_everything() {
        let ctx = KCallCtx::<0>::initial()
            .advance(Label::new(1))
            .advance(Label::new(2));
        assert_eq!(ctx, KCallCtx::<0>::empty());
        assert_eq!(
            ctx.valloc(&Name::from("x")),
            KCallCtx::<0>::empty().valloc(&Name::from("x"))
        );
    }

    #[test]
    fn one_cfa_remembers_only_the_last_call() {
        let ctx = KCallCtx::<1>::initial()
            .advance(Label::new(1))
            .advance(Label::new(2));
        assert_eq!(ctx.calls(), &[Label::new(2)]);
    }

    #[test]
    fn two_cfa_remembers_two_most_recent_calls_in_order() {
        let ctx = KCallCtx::<2>::initial()
            .advance(Label::new(1))
            .advance(Label::new(2))
            .advance(Label::new(3));
        assert_eq!(ctx.calls(), &[Label::new(3), Label::new(2)]);
        assert_eq!(ctx.degree(), 2);
    }

    #[test]
    fn addresses_separate_bindings_by_context() {
        let x = Name::from("x");
        let c1 = KCallCtx::<1>::initial().advance(Label::new(1));
        let c2 = KCallCtx::<1>::initial().advance(Label::new(2));
        assert_ne!(c1.valloc(&x), c2.valloc(&x));
    }

    proptest! {
        #[test]
        fn prop_call_string_never_exceeds_k(sites in proptest::collection::vec(1u32..100, 0..20)) {
            let mut c2 = KCallCtx::<2>::initial();
            let mut c3 = KCallCtx::<3>::initial();
            for s in &sites {
                c2 = c2.advance(Label::new(*s));
                c3 = c3.advance(Label::new(*s));
            }
            prop_assert!(c2.calls().len() <= 2);
            prop_assert!(c3.calls().len() <= 3);
            // The 2-context is always a prefix of the 3-context.
            prop_assert_eq!(c2.calls(), &c3.calls()[..c2.calls().len().min(c3.calls().len())]);
        }

        #[test]
        fn prop_last_site_is_always_remembered_when_k_positive(sites in proptest::collection::vec(1u32..100, 1..20)) {
            let mut c = KCallCtx::<1>::initial();
            for s in &sites {
                c = c.advance(Label::new(*s));
            }
            prop_assert_eq!(c.calls(), &[Label::new(*sites.last().unwrap())]);
        }
    }
}
