//! Addresses, contexts and polyvariance (paper §6.1).
//!
//! In the abstracted abstract machine, the *allocator* decides how many
//! abstract variants of each variable binding exist, and the *context*
//! ("time-stamp") it consults decides how execution history is remembered.
//! Together they fix the polyvariance and context-sensitivity of the
//! analysis — independently of the language being analysed.
//!
//! The paper packages this as the `Addressable a c` class with a functional
//! dependency `c → a`; here the context type owns its address type as an
//! associated type:
//!
//! * [`ConcreteCtx`] — fresh addresses at every allocation: instantiates the
//!   *concrete* (collecting) semantics of §5.3, where addresses are plain
//!   integers.
//! * [`MonoCtx`] — the monovariant allocator of 0CFA (§2.3.1): the address
//!   of a variable is the variable itself.
//! * [`KCallCtx<K>`] — call-strings of length at most `K`, the k-CFA
//!   contexts of §2.4.1/§6.1.
//! * [`BoundedCtx<N>`] — contexts drawn from the bounded naturals
//!   `{0, …, N-1}` mentioned in §3.4 as a further example.

mod bounded;
mod concrete;
mod kcall;
mod mono;

pub use bounded::{BoundedAddr, BoundedCtx};
pub use concrete::{ConcreteAddr, ConcreteCtx};
pub use kcall::{KCallAddr, KCallCtx};
pub use mono::{MonoAddr, MonoCtx};

#[cfg(test)]
mod named_tests {
    use super::*;

    #[test]
    fn named_addresses_expose_their_variable() {
        let x = Name::from("x");
        assert_eq!(MonoCtx.valloc(&x).variable(), &x);
        assert_eq!(ConcreteCtx { time: 3 }.valloc(&x).variable(), &x);
        assert_eq!(KCallCtx::<2>::empty().valloc(&x).variable(), &x);
        assert_eq!(BoundedCtx::<4>::initial().valloc(&x).variable(), &x);
    }
}

use std::fmt::Debug;

use crate::name::{Label, Name};

/// Types usable as abstract (or concrete) addresses.
///
/// This is a "trait alias" for the constraints every address representation
/// needs: cloneable, totally ordered (so that it can key stores and appear
/// inside power-set lattices), hashable (so that it can be placed in the
/// persistent [`PMap`](crate::pmap) store spine and in the id-indexed
/// engines' dependency indices), printable and thread-safe (so that
/// per-address deltas and dependency sets can cross the sharded parallel
/// engine's sync barrier).
pub trait Address: Clone + Ord + std::hash::Hash + Debug + Send + Sync + 'static {}

impl<T: Clone + Ord + std::hash::Hash + Debug + Send + Sync + 'static> Address for T {}

/// Types with a distinguished initial value (the paper's `HasInitial`
/// class, §5.3.3).  Used to seed the "guts" component when a state is
/// injected into an analysis domain.
pub trait HasInitial {
    /// The initial value (`τ₀` for contexts).
    fn initial() -> Self;
}

impl HasInitial for () {
    fn initial() -> Self {}
}

impl HasInitial for u64 {
    fn initial() -> Self {
        0
    }
}

/// Addresses that remember which variable they bind.
///
/// All the address representations provided by this crate carry the bound
/// variable, which lets language-independent tooling (flow-set extraction,
/// precision metrics, pretty-printing of analysis results) group store
/// bindings by source variable regardless of the polyvariance in use.
pub trait NamedAddress: Address {
    /// The variable this address binds.
    fn variable(&self) -> &Name;
}

impl NamedAddress for ConcreteAddr {
    fn variable(&self) -> &Name {
        &self.name
    }
}

impl NamedAddress for MonoAddr {
    fn variable(&self) -> &Name {
        &self.0
    }
}

impl NamedAddress for KCallAddr {
    fn variable(&self) -> &Name {
        &self.name
    }
}

impl NamedAddress for BoundedAddr {
    fn variable(&self) -> &Name {
        &self.name
    }
}

/// The paper's `Addressable` class: an analysis context (`c`) together with
/// its address type (`a`), the initial context `τ₀`, the allocator `valloc`
/// and the context-transition function `advance`.
///
/// `advance` receives the [`Label`] of the call/transition site being
/// crossed; k-CFA contexts push it onto their call string, monovariant and
/// concrete contexts ignore it or merely count.
///
/// ```rust
/// use mai_core::addr::{Context, KCallCtx};
/// use mai_core::name::{Label, Name};
///
/// let ctx = KCallCtx::<1>::initial_context().advanced(Label::new(3));
/// let addr = ctx.valloc(&Name::from("x"));
/// let deeper = ctx.advanced(Label::new(4));
/// assert_ne!(addr, deeper.valloc(&Name::from("x")));
/// ```
pub trait Context: Clone + Ord + Debug + HasInitial + Send + Sync + 'static {
    /// The address representation allocated under this kind of context.
    type Addr: Address;

    /// The initial context `τ₀` (same as [`HasInitial::initial`], provided
    /// for call-site readability).
    fn initial_context() -> Self {
        Self::initial()
    }

    /// Allocates an address for a variable binding in this context
    /// (the paper's `valloc`).
    fn valloc(&self, name: &Name) -> Self::Addr;

    /// Advances the context across a transition at program point `site`
    /// (the paper's `advance`, here by value).
    #[must_use]
    fn advance(self, site: Label) -> Self;

    /// Convenience: [`Context::advance`] on a borrowed context.
    #[must_use]
    fn advanced(&self, site: Label) -> Self {
        self.clone().advance(site)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_context_mirrors_has_initial() {
        assert_eq!(MonoCtx::initial_context(), MonoCtx::initial());
        assert_eq!(KCallCtx::<2>::initial_context(), KCallCtx::<2>::initial());
    }

    #[test]
    fn unit_and_u64_have_initials() {
        assert_eq!(<()>::initial(), ());
        assert_eq!(u64::initial(), 0);
    }
}
