//! The monovariant (0CFA) allocator (paper §2.3.1).

use std::fmt;

use crate::name::{Label, Name};

use super::{Context, HasInitial};

/// A monovariant address: just the variable itself.
///
/// `Âddr₀CFA = Var` — every binding of a variable, anywhere in the program,
/// is conflated into a single abstract address.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonoAddr(pub Name);

impl fmt::Debug for MonoAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The trivial context of a monovariant, context-insensitive analysis.
///
/// This is the paper's "context-insensitivity monad" parameter in its purest
/// form: there is exactly one context, `advance` is the identity, and the
/// allocator returns the variable itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MonoCtx;

impl HasInitial for MonoCtx {
    fn initial() -> Self {
        MonoCtx
    }
}

impl Context for MonoCtx {
    type Addr = MonoAddr;

    fn valloc(&self, name: &Name) -> Self::Addr {
        MonoAddr(name.clone())
    }

    fn advance(self, _site: Label) -> Self {
        MonoCtx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contexts_are_the_same() {
        let c = MonoCtx::initial();
        assert_eq!(c, c.advanced(Label::new(1)).advanced(Label::new(2)));
    }

    #[test]
    fn address_is_the_variable_itself() {
        let c = MonoCtx::initial();
        assert_eq!(c.valloc(&Name::from("f")), MonoAddr(Name::from("f")));
        // Advancing never changes allocation decisions.
        assert_eq!(
            c.advanced(Label::new(9)).valloc(&Name::from("f")),
            c.valloc(&Name::from("f"))
        );
    }
}
