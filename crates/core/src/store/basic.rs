//! The plain power-set store.

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::Address;
use crate::env::CowSet;
use crate::lattice::Lattice;
use crate::pmap::PMap;

use super::StoreLike;

/// The standard abstract store of the abstracted abstract machine:
/// a point-wise map from addresses to *sets* of values,
/// `Ŝtore = Âddr → P(D̂)`.
///
/// `bind` performs the weak update `σ ⊔ [â ↦ {d̂}]`; `replace` performs a
/// strong update.  The store is itself a lattice (point-wise join), an
/// ordered value (so it can participate in power-set analysis domains) and
/// printable.
///
/// Internally the binding *spine* is a persistent [`PMap`] — an Arc-shared
/// hash trie keyed by the addresses' Fx hashes — and each value set is a
/// shared copy-on-write [`CowSet`].  Cloning a store — which the
/// store-passing monad does once per transition — is therefore an `Arc`
/// bump; a write copies only the O(log n) trie path plus the one value set
/// it touches; and diffing or joining two stores short-circuits on pointer
/// identity for every *subtree* (not just every set) that was merely
/// carried along.  The [`StoreLike`] co-domain stays the structural
/// `BTreeSet<V>`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BasicStore<A: Ord, V: Ord> {
    bindings: PMap<A, CowSet<V>>,
}

impl<A: Address, V: Ord + Clone> BasicStore<A, V> {
    /// Creates an empty store.
    pub fn new() -> Self {
        BasicStore {
            bindings: PMap::new(),
        }
    }

    /// Iterates over the bindings of the store, in the spine's
    /// deterministic (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &BTreeSet<V>)> {
        self.bindings.iter().map(|(a, vs)| (a, vs.as_set()))
    }

    /// The total number of `(address, value)` facts in the store — the
    /// usual "size of the flow relation" precision metric.
    pub fn fact_count(&self) -> usize {
        self.bindings.values().map(|vs| vs.len()).sum()
    }

    /// The number of addresses whose value set is a singleton — a common
    /// precision metric (more singletons means more definite flows).
    pub fn singleton_count(&self) -> usize {
        self.bindings.values().filter(|vs| vs.len() == 1).count()
    }

    /// How many trie nodes the binding spine uses.
    pub fn spine_nodes(&self) -> usize {
        self.bindings.spine_nodes()
    }
}

impl<A: Address + fmt::Debug, V: Ord + Clone + fmt::Debug> fmt::Debug for BasicStore<A, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.bindings.iter()).finish()
    }
}

impl<A: Address, V: Ord + Clone> Lattice for BasicStore<A, V> {
    fn bottom() -> Self {
        BasicStore::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.bindings.join_map_in_place(other.bindings);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.bindings.leq_map(&other.bindings)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.bindings.join_map_in_place(other.bindings)
    }

    fn is_bottom(&self) -> bool {
        self.bindings.is_bottom_map()
    }
}

/// Power-set co-domains have finite height over any fixed program, so the
/// defaults (widen = join, narrow = no-op) are a sound, terminating
/// widening pair.
impl<A: Address, V: Ord + Clone> crate::lattice::WidenLattice for BasicStore<A, V> {}

impl<A, V> StoreLike<A> for BasicStore<A, V>
where
    A: Address,
    V: Ord + Clone + fmt::Debug + Send + Sync + 'static,
{
    type D = BTreeSet<V>;

    fn bind_in_place(&mut self, a: A, d: Self::D) -> bool {
        self.bindings
            .join_at_in_place(a, d.into_iter().collect::<CowSet<V>>())
    }

    fn replace(mut self, a: A, d: Self::D) -> Self {
        self.bindings.insert(a, d.into_iter().collect());
        self
    }

    fn fetch(&self, a: &A) -> Self::D {
        self.bindings
            .get(a)
            .map(|vs| vs.as_set().clone())
            .unwrap_or_default()
    }

    fn contains(&self, a: &A) -> bool {
        // Cheaper than the trait default, which materialises the fetched
        // set just to test it for bottom.
        self.bindings.get(a).is_some_and(|vs| !vs.is_empty())
    }

    fn fetch_ref(&self, a: &A) -> Option<&Self::D> {
        self.bindings.get(a).map(CowSet::as_set)
    }

    fn filter_store<F>(mut self, keep: F) -> Self
    where
        F: Fn(&A) -> bool,
    {
        self.bindings.retain(keep);
        self
    }

    fn restrict_to(mut self, addrs: &BTreeSet<A>) -> Self {
        self.bindings = self.bindings.restricted_to(addrs);
        self
    }

    fn addresses(&self) -> BTreeSet<A> {
        self.bindings.keys().cloned().collect()
    }

    fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn shared_spine_bytes(&self) -> usize {
        self.bindings.shared_spine_bytes()
    }
}

impl<A, V> super::StoreDelta<A> for BasicStore<A, V>
where
    A: Address,
    V: Ord + Clone + fmt::Debug + Send + Sync + 'static,
{
    fn changed_addresses(&self, other: &Self) -> BTreeSet<A> {
        self.bindings.changed_keys(&other.bindings)
    }

    fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<A> {
        self.bindings.join_in_place_delta(other.bindings)
    }
}

impl<A: Address, V: Ord + Clone> FromIterator<(A, BTreeSet<V>)> for BasicStore<A, V> {
    fn from_iter<T: IntoIterator<Item = (A, BTreeSet<V>)>>(iter: T) -> Self {
        let mut store = BasicStore::new();
        for (a, d) in iter {
            store
                .bindings
                .join_at_in_place(a, d.into_iter().collect::<CowSet<V>>());
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type S = BasicStore<u8, u8>;

    fn set(xs: &[u8]) -> BTreeSet<u8> {
        xs.iter().copied().collect()
    }

    #[test]
    fn bind_is_a_weak_update() {
        let s = S::new().bind(1, set(&[10])).bind(1, set(&[20]));
        assert_eq!(s.fetch(&1), set(&[10, 20]));
        assert_eq!(s.fact_count(), 2);
        assert_eq!(s.singleton_count(), 0);
    }

    #[test]
    fn replace_is_a_strong_update() {
        let s = S::new().bind(1, set(&[10, 20])).replace(1, set(&[30]));
        assert_eq!(s.fetch(&1), set(&[30]));
        assert_eq!(s.singleton_count(), 1);
    }

    #[test]
    fn fetch_of_unbound_address_is_bottom() {
        assert_eq!(S::new().fetch(&9), BTreeSet::new());
    }

    #[test]
    fn filter_store_restricts_the_domain() {
        let s = S::new()
            .bind(1, set(&[1]))
            .bind(2, set(&[2]))
            .bind(3, set(&[3]))
            .filter_store(|a| *a != 2);
        assert_eq!(s.addresses(), set(&[1, 3]));
        assert!(!s.contains(&2));
    }

    #[test]
    fn from_iterator_joins_duplicate_addresses() {
        let s: S = vec![(1u8, set(&[1])), (1, set(&[2]))].into_iter().collect();
        assert_eq!(s.fetch(&1), set(&[1, 2]));
    }

    #[test]
    fn store_clone_shares_the_spine() {
        let s = S::new().bind(1, set(&[1])).bind(2, set(&[2]));
        let snapshot = s.clone();
        // The clone shares the whole spine, so shared bytes are visible
        // from either handle.
        assert!(snapshot.shared_spine_bytes() > 0);
        assert!(s.spine_nodes() > 0);
        // Growing one handle leaves the other untouched.
        let grown = s.clone().bind(3, set(&[3]));
        assert!(!snapshot.contains(&3));
        assert!(grown.contains(&3));
    }

    proptest! {
        #[test]
        fn prop_bind_only_grows_the_store(
            addrs in proptest::collection::vec((0u8..8, 0u8..8), 0..20)
        ) {
            let mut s = S::new();
            for (a, v) in addrs {
                let next = s.clone().bind(a, set(&[v]));
                prop_assert!(s.leq(&next));
                prop_assert!(next.fetch(&a).contains(&v));
                s = next;
            }
        }

        #[test]
        fn prop_store_join_is_pointwise(
            xs in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
            ys in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
            probe in 0u8..6,
        ) {
            let s1: S = xs.into_iter().map(|(a, v)| (a, set(&[v]))).collect();
            let s2: S = ys.into_iter().map(|(a, v)| (a, set(&[v]))).collect();
            let joined = s1.clone().join(s2.clone());
            prop_assert_eq!(
                joined.fetch(&probe),
                s1.fetch(&probe).join(s2.fetch(&probe))
            );
            prop_assert!(s1.leq(&joined) && s2.leq(&joined));
        }

        #[test]
        fn prop_join_in_place_law_and_delta(
            xs in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
            ys in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
        ) {
            use crate::store::StoreDelta;
            let s1: S = xs.into_iter().map(|(a, v)| (a, set(&[v]))).collect();
            let s2: S = ys.into_iter().map(|(a, v)| (a, set(&[v]))).collect();

            let mut inplace = s1.clone();
            let changed = inplace.join_in_place(s2.clone());
            prop_assert_eq!(&inplace, &s1.clone().join(s2.clone()));
            prop_assert_eq!(changed, !s2.leq(&s1));

            // The delta fold produces the same store and reports exactly the
            // addresses whose binding grew.
            let mut delta_store = s1.clone();
            let delta = delta_store.join_in_place_delta(s2.clone());
            prop_assert_eq!(&delta_store, &inplace);
            prop_assert_eq!(delta.is_empty(), !changed);
            for a in 0u8..6 {
                let grew = !s2.fetch(&a).leq(&s1.fetch(&a));
                prop_assert_eq!(delta.contains(&a), grew, "address {}", a);
            }
        }

        #[test]
        fn prop_bind_in_place_matches_bind(
            xs in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
            a in 0u8..6,
            v in 0u8..6,
        ) {
            let s: S = xs.into_iter().map(|(a, v)| (a, set(&[v]))).collect();
            let mut inplace = s.clone();
            let changed = inplace.bind_in_place(a, set(&[v]));
            prop_assert_eq!(&inplace, &s.clone().bind(a, set(&[v])));
            prop_assert_eq!(changed, !s.fetch(&a).contains(&v));
        }

        #[test]
        fn prop_filter_then_fetch_is_bottom_for_dropped(
            xs in proptest::collection::vec((0u8..6, 0u8..6), 0..12),
            dropped in 0u8..6,
        ) {
            let s: S = xs.into_iter().map(|(a, v)| (a, set(&[v]))).collect();
            let filtered = s.filter_store(|a| *a != dropped);
            prop_assert!(filtered.fetch(&dropped).is_empty());
        }
    }
}
