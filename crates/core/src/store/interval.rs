//! The numeric abstract store: addresses bound to [`Interval`]s.
//!
//! [`BasicStore`](super::BasicStore) and
//! [`CountingStore`](super::CountingStore) have power-set co-domains, so
//! over any fixed program their height is finite and plain join-driven
//! fixpoint iteration terminates.  [`IntervalStore`] is the store the
//! engines' widening machinery exists for: its co-domain is the
//! infinite-height [`Interval`] lattice, so an address fed by a counting
//! loop grows forever under `⊔` and the engines must switch that
//! address's accumulation to `▽` ([`StoreDelta::widen_in_place_delta`])
//! to terminate.
//!
//! The representation mirrors `BasicStore`: a persistent [`PMap`] spine
//! (cloning is an `Arc` bump; a write copies one root-to-leaf path), with
//! the co-domain a `Copy` interval instead of a value set.

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::Address;
use crate::lattice::{Interval, Lattice, WidenLattice};
use crate::pmap::PMap;

use super::{StoreDelta, StoreLike};

/// A point-wise map from addresses to [`Interval`]s:
/// `Ŝtore = Âddr → Interval`.
///
/// `bind` is the weak update `σ ⊔ [â ↦ ι]`; `replace` is a strong update.
/// The store is a lattice point-wise, a [`WidenLattice`] point-wise (every
/// address is its own widening point), and a [`StoreDelta`] whose
/// [`StoreDelta::widen_in_place_delta`] actually widens — the override
/// that makes the fixpoint engines terminate on numeric domains.
///
/// The store also journals its writes when armed
/// ([`StoreDelta::arm_write_journal`]): `journal`, when present, maps each
/// address written since arming to the written values (weak updates join,
/// strong updates replace — mirroring the writes).  The journal is
/// operational metadata for the engines' narrowing post-pass, **not**
/// part of the store's value: equality, ordering and hashing see the
/// bindings only, so an armed snapshot compares equal to its unarmed
/// original.
#[derive(Clone, Default)]
pub struct IntervalStore<A: Ord> {
    bindings: PMap<A, Interval>,
    journal: Option<PMap<A, Interval>>,
}

impl<A: Ord + Eq> PartialEq for IntervalStore<A> {
    fn eq(&self, other: &Self) -> bool {
        self.bindings == other.bindings
    }
}

impl<A: Ord + Eq> Eq for IntervalStore<A> {}

impl<A: Ord> PartialOrd for IntervalStore<A> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<A: Ord> Ord for IntervalStore<A> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.bindings.cmp(&other.bindings)
    }
}

impl<A: Ord + std::hash::Hash> std::hash::Hash for IntervalStore<A> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bindings.hash(state);
    }
}

impl<A: Address> IntervalStore<A> {
    /// Creates an empty store.
    pub fn new() -> Self {
        IntervalStore {
            bindings: PMap::new(),
            journal: None,
        }
    }

    /// Iterates over the bindings, in the spine's deterministic (hash)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &Interval)> {
        self.bindings.iter()
    }

    /// The number of addresses bound to an interval with at least one
    /// finite bound — the precision metric narrowing improves.
    pub fn finite_bound_count(&self) -> usize {
        self.bindings
            .values()
            .filter(|i| {
                i.bounds().is_some_and(|(lo, hi)| {
                    matches!(lo, crate::lattice::Lo::At(_))
                        || matches!(hi, crate::lattice::Hi::At(_))
                })
            })
            .count()
    }
}

impl<A: Address + fmt::Debug> fmt::Debug for IntervalStore<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.bindings.iter()).finish()
    }
}

impl<A: Address> Lattice for IntervalStore<A> {
    fn bottom() -> Self {
        IntervalStore::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.bindings.join_map_in_place(other.bindings);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.bindings.leq_map(&other.bindings)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.bindings.join_map_in_place(other.bindings)
    }

    fn is_bottom(&self) -> bool {
        self.bindings.is_bottom_map()
    }
}

impl<A: Address> WidenLattice for IntervalStore<A> {
    /// Point-wise widening: every address of `other` is treated as a
    /// widening point.
    fn widen_in_place(&mut self, other: Self) -> bool {
        let everywhere: BTreeSet<A> = other.bindings.keys().cloned().collect();
        !self.widen_in_place_delta(other, &everywhere).is_empty()
    }

    /// Point-wise narrowing of `self`'s bindings against `other`'s.
    ///
    /// **Precondition (the caller's obligation):** wherever `other` binds
    /// an address `a`, `other[a]` must be an upper bound of *every*
    /// producer's contribution at `a` — including a producer whose write
    /// reproduced the current binding exactly.  Addresses `other` does
    /// not bind are left untouched: a missing binding means the image is
    /// *silent* about the address — **no producer wrote it at all** — not
    /// that the address's value is `⊥`.  The engines' narrowing post-pass
    /// meets this contract by assembling the image from per-branch write
    /// journals ([`StoreDelta::take_write_journal`]), which record every
    /// write verbatim; a value-level diff against the accumulator would
    /// *not* meet it, because a write of exactly the current value is
    /// invisible to a diff and its exclusion would let another producer's
    /// tighter write unsoundly narrow the address.
    fn narrow_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        let addrs: Vec<A> = self.bindings.keys().cloned().collect();
        for a in addrs {
            let Some(refined) = other.bindings.get(&a).copied() else {
                continue;
            };
            let mut cur = *self.bindings.get(&a).expect("key just listed");
            if cur.narrow_in_place(refined) {
                self.bindings.insert(a, cur);
                changed = true;
            }
        }
        changed
    }
}

impl<A: Address> StoreLike<A> for IntervalStore<A> {
    type D = Interval;

    fn bind_in_place(&mut self, a: A, d: Self::D) -> bool {
        if let Some(journal) = &mut self.journal {
            journal.join_at_in_place(a.clone(), d);
        }
        self.bindings.join_at_in_place(a, d)
    }

    fn replace(mut self, a: A, d: Self::D) -> Self {
        if let Some(journal) = &mut self.journal {
            journal.insert(a.clone(), d);
        }
        self.bindings.insert(a, d);
        self
    }

    fn fetch(&self, a: &A) -> Self::D {
        self.bindings.get(a).copied().unwrap_or(Interval::Empty)
    }

    fn fetch_ref(&self, a: &A) -> Option<&Self::D> {
        self.bindings.get(a)
    }

    fn contains(&self, a: &A) -> bool {
        self.bindings.get(a).is_some_and(|i| !i.is_bottom())
    }

    // Restriction filters the *bindings* only: an armed snapshot keeps its
    // journal intact, so a write that abstract GC later drops from the
    // branch store still reaches the narrowing image (a larger image can
    // only block tightening — sound).
    fn filter_store<F>(mut self, keep: F) -> Self
    where
        F: Fn(&A) -> bool,
    {
        self.bindings.retain(keep);
        self
    }

    fn restrict_to(mut self, addrs: &BTreeSet<A>) -> Self {
        self.bindings = self.bindings.restricted_to(addrs);
        self
    }

    fn addresses(&self) -> BTreeSet<A> {
        self.bindings.keys().cloned().collect()
    }

    fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn shared_spine_bytes(&self) -> usize {
        self.bindings.shared_spine_bytes()
    }
}

impl<A: Address> StoreDelta<A> for IntervalStore<A> {
    fn changed_addresses(&self, other: &Self) -> BTreeSet<A> {
        self.bindings.changed_keys(&other.bindings)
    }

    fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<A> {
        self.bindings.join_in_place_delta(other.bindings)
    }

    fn widen_in_place_delta(&mut self, other: Self, widen_at: &BTreeSet<A>) -> BTreeSet<A> {
        if widen_at.is_empty() {
            return self.bindings.join_in_place_delta(other.bindings);
        }
        let mut changed = BTreeSet::new();
        for (a, v) in other.bindings.iter() {
            if widen_at.contains(a) {
                let mut cur = self.bindings.get(a).copied().unwrap_or(Interval::Empty);
                if cur.widen_in_place(*v) {
                    self.bindings.insert(a.clone(), cur);
                    changed.insert(a.clone());
                }
            } else if self.bindings.join_at_in_place(a.clone(), *v) {
                changed.insert(a.clone());
            }
        }
        changed
    }

    fn arm_write_journal(&mut self) {
        self.journal = Some(PMap::new());
    }

    fn take_write_journal(&mut self) -> Option<Self> {
        self.journal.take().map(|journal| IntervalStore {
            bindings: journal,
            journal: None,
        })
    }
}

impl<A: Address> FromIterator<(A, Interval)> for IntervalStore<A> {
    fn from_iter<T: IntoIterator<Item = (A, Interval)>>(iter: T) -> Self {
        let mut store = IntervalStore::new();
        for (a, d) in iter {
            store.bind_in_place(a, d);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type S = IntervalStore<u8>;

    #[test]
    fn bind_is_a_weak_update() {
        let s = S::new()
            .bind(1, Interval::singleton(3))
            .bind(1, Interval::singleton(7));
        assert_eq!(s.fetch(&1), Interval::range(3, 7));
        assert_eq!(s.fetch(&9), Interval::Empty);
        assert!(s.contains(&1) && !s.contains(&9));
    }

    #[test]
    fn replace_is_a_strong_update() {
        let s = S::new()
            .bind(1, Interval::range(0, 9))
            .replace(1, Interval::singleton(4));
        assert_eq!(s.fetch(&1), Interval::singleton(4));
    }

    #[test]
    fn widen_delta_widens_only_designated_addresses() {
        let mut s = S::new()
            .bind(1, Interval::range(0, 1))
            .bind(2, Interval::range(0, 1));
        let delta: S = [(1u8, Interval::range(0, 2)), (2, Interval::range(0, 2))]
            .into_iter()
            .collect();
        let widen_at = [1u8].into_iter().collect();
        let changed = s.widen_in_place_delta(delta, &widen_at);
        assert_eq!(changed, [1u8, 2].into_iter().collect());
        // Address 1 widened its unstable bound away; address 2 only joined.
        assert_eq!(s.fetch(&1), Interval::at_least(0));
        assert_eq!(s.fetch(&2), Interval::range(0, 2));
    }

    #[test]
    fn widen_delta_with_no_points_is_the_join_delta() {
        let base = S::new().bind(1, Interval::range(0, 1));
        let delta: S = [(1u8, Interval::range(0, 2))].into_iter().collect();

        let mut widened = base.clone();
        let w_changed = widened.widen_in_place_delta(delta.clone(), &BTreeSet::new());
        let mut joined = base;
        let j_changed = joined.join_in_place_delta(delta);
        assert_eq!(widened, joined);
        assert_eq!(w_changed, j_changed);
    }

    #[test]
    fn narrowing_recovers_finite_bounds_pointwise() {
        let mut s = S::new()
            .bind(1, Interval::at_least(0))
            .bind(2, Interval::range(0, 5));
        let image: S = [(1u8, Interval::range(0, 10)), (2, Interval::range(0, 5))]
            .into_iter()
            .collect();
        assert!(s.narrow_in_place(image));
        assert_eq!(s.fetch(&1), Interval::range(0, 10));
        assert_eq!(s.fetch(&2), Interval::range(0, 5));
        assert_eq!(s.finite_bound_count(), 2);
    }

    #[test]
    fn journal_records_writes_not_diffs() {
        let mut s = S::new().bind(1, Interval::at_least(0));
        s.arm_write_journal();
        // A strong update that *reproduces* the current binding diffs as
        // unchanged but is a real producer contribution — the journal must
        // record it (the narrowing image's soundness depends on this).
        let mut s = s.replace(1, Interval::at_least(0));
        // Weak updates join into the journal entry exactly as they join
        // into the bindings.
        s.bind_in_place(2, Interval::singleton(3));
        s.bind_in_place(2, Interval::singleton(7));
        let journal = s.take_write_journal().expect("store was armed");
        assert_eq!(journal.fetch(&1), Interval::at_least(0));
        assert_eq!(journal.fetch(&2), Interval::range(3, 7));
        // Untouched addresses stay silent: silence means "no producer
        // wrote this", which narrow_in_place must not confuse with ⊥.
        assert!(!journal.contains(&3));
        // Taking disarms: a second take has nothing to report.
        assert!(s.take_write_journal().is_none());
    }

    #[test]
    fn take_without_arming_is_none() {
        let mut s = S::new().bind(1, Interval::singleton(0));
        assert!(s.take_write_journal().is_none());
    }

    #[test]
    fn journal_propagates_through_clone_and_branching() {
        let mut pre = S::new().bind(1, Interval::range(0, 9));
        pre.arm_write_journal();
        // Store-passing branches clone the armed snapshot; each branch's
        // journal accumulates independently after the split.
        let mut exit = pre.clone();
        let body = pre.replace(1, Interval::singleton(4));
        let exit_journal = exit.take_write_journal().expect("clone stays armed");
        assert!(!exit_journal.contains(&1), "pass-through wrote nothing");
        let mut body = body;
        let body_journal = body.take_write_journal().expect("branch stays armed");
        assert_eq!(body_journal.fetch(&1), Interval::singleton(4));
    }

    #[test]
    fn journal_survives_gc_restriction() {
        let mut s = S::new();
        s.arm_write_journal();
        let s = s
            .bind(1, Interval::singleton(2))
            .bind(2, Interval::singleton(5));
        // Abstract GC restricts the *bindings*; the journal keeps the
        // dropped write so it still reaches the narrowing image.
        let mut s = s.restrict_to(&[1u8].into_iter().collect());
        assert!(!s.contains(&2));
        let journal = s.take_write_journal().expect("restriction keeps the arm");
        assert_eq!(journal.fetch(&2), Interval::singleton(5));
    }

    #[test]
    fn identity_ignores_the_journal() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        let plain = S::new().bind(1, Interval::range(0, 3));
        let mut armed = plain.clone();
        armed.arm_write_journal();
        let armed = armed.replace(1, Interval::range(0, 3));
        // Stores live inside state-space keys: arming (and the journal
        // entries it accumulates) must be invisible to Eq/Ord/Hash.
        assert_eq!(plain, armed);
        assert_eq!(plain.cmp(&armed), std::cmp::Ordering::Equal);
        let digest = |s: &S| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&plain), digest(&armed));
    }

    proptest! {
        /// The widen-delta law: the result is an upper bound of both
        /// stores, and the reported addresses are exactly those whose
        /// binding changed.
        #[test]
        fn prop_widen_delta_is_upper_bound_with_exact_delta(
            // The vendored proptest has no signed-range strategy, so lows
            // are sampled as offsets and shifted into [-5, 5).
            xs in proptest::collection::vec((0u8..6, 0u64..10, 0u64..5), 0..10),
            ys in proptest::collection::vec((0u8..6, 0u64..10, 0u64..5), 0..10),
            points in proptest::collection::btree_set(0u8..6, 0..6),
        ) {
            let mk = |entries: &[(u8, u64, u64)]| -> S {
                entries
                    .iter()
                    .map(|&(a, lo, len)| {
                        let lo = lo as i64 - 5;
                        (a, Interval::range(lo, lo + len as i64))
                    })
                    .collect()
            };
            let s1 = mk(&xs);
            let s2 = mk(&ys);
            let mut widened = s1.clone();
            let changed = widened.widen_in_place_delta(s2.clone(), &points);
            prop_assert!(s1.leq(&widened));
            prop_assert!(s2.leq(&widened));
            for a in 0u8..6 {
                prop_assert_eq!(
                    changed.contains(&a),
                    widened.fetch(&a) != s1.fetch(&a),
                    "address {}", a
                );
            }
        }
    }
}
