//! The numeric abstract store: addresses bound to [`Interval`]s.
//!
//! [`BasicStore`](super::BasicStore) and
//! [`CountingStore`](super::CountingStore) have power-set co-domains, so
//! over any fixed program their height is finite and plain join-driven
//! fixpoint iteration terminates.  [`IntervalStore`] is the store the
//! engines' widening machinery exists for: its co-domain is the
//! infinite-height [`Interval`] lattice, so an address fed by a counting
//! loop grows forever under `⊔` and the engines must switch that
//! address's accumulation to `▽` ([`StoreDelta::widen_in_place_delta`])
//! to terminate.
//!
//! The representation mirrors `BasicStore`: a persistent [`PMap`] spine
//! (cloning is an `Arc` bump; a write copies one root-to-leaf path), with
//! the co-domain a `Copy` interval instead of a value set.

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::Address;
use crate::lattice::{Interval, Lattice, WidenLattice};
use crate::pmap::PMap;

use super::{StoreDelta, StoreLike};

/// A point-wise map from addresses to [`Interval`]s:
/// `Ŝtore = Âddr → Interval`.
///
/// `bind` is the weak update `σ ⊔ [â ↦ ι]`; `replace` is a strong update.
/// The store is a lattice point-wise, a [`WidenLattice`] point-wise (every
/// address is its own widening point), and a [`StoreDelta`] whose
/// [`StoreDelta::widen_in_place_delta`] actually widens — the override
/// that makes the fixpoint engines terminate on numeric domains.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IntervalStore<A: Ord> {
    bindings: PMap<A, Interval>,
}

impl<A: Address> IntervalStore<A> {
    /// Creates an empty store.
    pub fn new() -> Self {
        IntervalStore {
            bindings: PMap::new(),
        }
    }

    /// Iterates over the bindings, in the spine's deterministic (hash)
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &Interval)> {
        self.bindings.iter()
    }

    /// The number of addresses bound to an interval with at least one
    /// finite bound — the precision metric narrowing improves.
    pub fn finite_bound_count(&self) -> usize {
        self.bindings
            .values()
            .filter(|i| {
                i.bounds().is_some_and(|(lo, hi)| {
                    matches!(lo, crate::lattice::Lo::At(_))
                        || matches!(hi, crate::lattice::Hi::At(_))
                })
            })
            .count()
    }
}

impl<A: Address + fmt::Debug> fmt::Debug for IntervalStore<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.bindings.iter()).finish()
    }
}

impl<A: Address> Lattice for IntervalStore<A> {
    fn bottom() -> Self {
        IntervalStore::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.bindings.join_map_in_place(other.bindings);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.bindings.leq_map(&other.bindings)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.bindings.join_map_in_place(other.bindings)
    }

    fn is_bottom(&self) -> bool {
        self.bindings.is_bottom_map()
    }
}

impl<A: Address> WidenLattice for IntervalStore<A> {
    /// Point-wise widening: every address of `other` is treated as a
    /// widening point.
    fn widen_in_place(&mut self, other: Self) -> bool {
        let everywhere: BTreeSet<A> = other.bindings.keys().cloned().collect();
        !self.widen_in_place_delta(other, &everywhere).is_empty()
    }

    /// Point-wise narrowing of `self`'s bindings against `other`'s.
    ///
    /// Addresses `other` does not bind are left untouched: at the store
    /// level the narrowing image is assembled from change-restricted step
    /// contributions (see the engines' narrowing post-pass), so a missing
    /// binding means the image is *silent* about the address — every
    /// producer reproduced the current binding exactly — not that the
    /// address's value is `⊥`.
    fn narrow_in_place(&mut self, other: Self) -> bool {
        let mut changed = false;
        let addrs: Vec<A> = self.bindings.keys().cloned().collect();
        for a in addrs {
            let Some(refined) = other.bindings.get(&a).copied() else {
                continue;
            };
            let mut cur = *self.bindings.get(&a).expect("key just listed");
            if cur.narrow_in_place(refined) {
                self.bindings.insert(a, cur);
                changed = true;
            }
        }
        changed
    }
}

impl<A: Address> StoreLike<A> for IntervalStore<A> {
    type D = Interval;

    fn bind_in_place(&mut self, a: A, d: Self::D) -> bool {
        self.bindings.join_at_in_place(a, d)
    }

    fn replace(mut self, a: A, d: Self::D) -> Self {
        self.bindings.insert(a, d);
        self
    }

    fn fetch(&self, a: &A) -> Self::D {
        self.bindings.get(a).copied().unwrap_or(Interval::Empty)
    }

    fn fetch_ref(&self, a: &A) -> Option<&Self::D> {
        self.bindings.get(a)
    }

    fn contains(&self, a: &A) -> bool {
        self.bindings.get(a).is_some_and(|i| !i.is_bottom())
    }

    fn filter_store<F>(mut self, keep: F) -> Self
    where
        F: Fn(&A) -> bool,
    {
        self.bindings.retain(keep);
        self
    }

    fn restrict_to(mut self, addrs: &BTreeSet<A>) -> Self {
        self.bindings = self.bindings.restricted_to(addrs);
        self
    }

    fn addresses(&self) -> BTreeSet<A> {
        self.bindings.keys().cloned().collect()
    }

    fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn shared_spine_bytes(&self) -> usize {
        self.bindings.shared_spine_bytes()
    }
}

impl<A: Address> StoreDelta<A> for IntervalStore<A> {
    fn changed_addresses(&self, other: &Self) -> BTreeSet<A> {
        self.bindings.changed_keys(&other.bindings)
    }

    fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<A> {
        self.bindings.join_in_place_delta(other.bindings)
    }

    fn widen_in_place_delta(&mut self, other: Self, widen_at: &BTreeSet<A>) -> BTreeSet<A> {
        if widen_at.is_empty() {
            return self.bindings.join_in_place_delta(other.bindings);
        }
        let mut changed = BTreeSet::new();
        for (a, v) in other.bindings.iter() {
            if widen_at.contains(a) {
                let mut cur = self.bindings.get(a).copied().unwrap_or(Interval::Empty);
                if cur.widen_in_place(*v) {
                    self.bindings.insert(a.clone(), cur);
                    changed.insert(a.clone());
                }
            } else if self.bindings.join_at_in_place(a.clone(), *v) {
                changed.insert(a.clone());
            }
        }
        changed
    }
}

impl<A: Address> FromIterator<(A, Interval)> for IntervalStore<A> {
    fn from_iter<T: IntoIterator<Item = (A, Interval)>>(iter: T) -> Self {
        let mut store = IntervalStore::new();
        for (a, d) in iter {
            store.bind_in_place(a, d);
        }
        store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    type S = IntervalStore<u8>;

    #[test]
    fn bind_is_a_weak_update() {
        let s = S::new()
            .bind(1, Interval::singleton(3))
            .bind(1, Interval::singleton(7));
        assert_eq!(s.fetch(&1), Interval::range(3, 7));
        assert_eq!(s.fetch(&9), Interval::Empty);
        assert!(s.contains(&1) && !s.contains(&9));
    }

    #[test]
    fn replace_is_a_strong_update() {
        let s = S::new()
            .bind(1, Interval::range(0, 9))
            .replace(1, Interval::singleton(4));
        assert_eq!(s.fetch(&1), Interval::singleton(4));
    }

    #[test]
    fn widen_delta_widens_only_designated_addresses() {
        let mut s = S::new()
            .bind(1, Interval::range(0, 1))
            .bind(2, Interval::range(0, 1));
        let delta: S = [(1u8, Interval::range(0, 2)), (2, Interval::range(0, 2))]
            .into_iter()
            .collect();
        let widen_at = [1u8].into_iter().collect();
        let changed = s.widen_in_place_delta(delta, &widen_at);
        assert_eq!(changed, [1u8, 2].into_iter().collect());
        // Address 1 widened its unstable bound away; address 2 only joined.
        assert_eq!(s.fetch(&1), Interval::at_least(0));
        assert_eq!(s.fetch(&2), Interval::range(0, 2));
    }

    #[test]
    fn widen_delta_with_no_points_is_the_join_delta() {
        let base = S::new().bind(1, Interval::range(0, 1));
        let delta: S = [(1u8, Interval::range(0, 2))].into_iter().collect();

        let mut widened = base.clone();
        let w_changed = widened.widen_in_place_delta(delta.clone(), &BTreeSet::new());
        let mut joined = base;
        let j_changed = joined.join_in_place_delta(delta);
        assert_eq!(widened, joined);
        assert_eq!(w_changed, j_changed);
    }

    #[test]
    fn narrowing_recovers_finite_bounds_pointwise() {
        let mut s = S::new()
            .bind(1, Interval::at_least(0))
            .bind(2, Interval::range(0, 5));
        let image: S = [(1u8, Interval::range(0, 10)), (2, Interval::range(0, 5))]
            .into_iter()
            .collect();
        assert!(s.narrow_in_place(image));
        assert_eq!(s.fetch(&1), Interval::range(0, 10));
        assert_eq!(s.fetch(&2), Interval::range(0, 5));
        assert_eq!(s.finite_bound_count(), 2);
    }

    proptest! {
        /// The widen-delta law: the result is an upper bound of both
        /// stores, and the reported addresses are exactly those whose
        /// binding changed.
        #[test]
        fn prop_widen_delta_is_upper_bound_with_exact_delta(
            // The vendored proptest has no signed-range strategy, so lows
            // are sampled as offsets and shifted into [-5, 5).
            xs in proptest::collection::vec((0u8..6, 0u64..10, 0u64..5), 0..10),
            ys in proptest::collection::vec((0u8..6, 0u64..10, 0u64..5), 0..10),
            points in proptest::collection::btree_set(0u8..6, 0..6),
        ) {
            let mk = |entries: &[(u8, u64, u64)]| -> S {
                entries
                    .iter()
                    .map(|&(a, lo, len)| {
                        let lo = lo as i64 - 5;
                        (a, Interval::range(lo, lo + len as i64))
                    })
                    .collect()
            };
            let s1 = mk(&xs);
            let s2 = mk(&ys);
            let mut widened = s1.clone();
            let changed = widened.widen_in_place_delta(s2.clone(), &points);
            prop_assert!(s1.leq(&widened));
            prop_assert!(s2.leq(&widened));
            for a in 0u8..6 {
                prop_assert_eq!(
                    changed.contains(&a),
                    widened.fetch(&a) != s1.fetch(&a),
                    "address {}", a
                );
            }
        }
    }
}
