//! Abstract stores (paper §6.2) and abstract counting (§6.3).
//!
//! The store is the one component the systematic abstraction threads through
//! everything: cutting the recursion in the state-space, carrying abstract
//! values, and — depending on its representation — enabling abstract
//! counting, strong updates and garbage collection.  The paper makes the
//! analysis *store-generic* through the `StoreLike` class; this module
//! provides that trait plus the two store representations used in the
//! paper's experiments:
//!
//! * [`BasicStore`] — a point-wise map from addresses to sets of values;
//! * [`CountingStore`] — the same map additionally tracking an [`AbsNat`](crate::lattice::AbsNat)
//!   allocation count per address (the `Ĉount` component of §6.3), with
//!   [`Counter`] exposing the counts and sound strong updates.

mod basic;
mod counting;
mod interval;

pub use basic::BasicStore;
pub use counting::{Counter, CountingStore};
pub use interval::IntervalStore;

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::addr::Address;
use crate::lattice::Lattice;

/// The paper's `StoreLike a s d` class: an abstract store `s` mapping
/// addresses `a` to elements of a co-domain lattice `d`.
///
/// The co-domain is an associated type (the functional dependency `s → d`
/// of the Haskell original).  All operations are value-oriented — they
/// consume and return stores — because stores live inside analysis domains
/// that are themselves immutable lattice elements.
///
/// ```rust
/// use mai_core::store::{BasicStore, StoreLike};
/// use std::collections::BTreeSet;
///
/// let store: BasicStore<u32, &'static str> = BasicStore::empty_store();
/// let store = store.bind(1, ["closure-a"].into_iter().collect());
/// let store = store.bind(1, ["closure-b"].into_iter().collect());
/// let fetched: BTreeSet<&str> = store.fetch(&1);
/// assert_eq!(fetched.len(), 2); // weak update: both closures flow to address 1
/// ```
pub trait StoreLike<A: Address>: Lattice + Ord + Debug + Send + Sync + 'static {
    /// The co-domain of the store: what an address denotes.
    ///
    /// Both the store and its co-domain are `Send + Sync`: the sharded
    /// parallel engine ([`crate::engine::parallel`]) hands each worker a
    /// snapshot of the global store and collects per-shard delta stores
    /// across the sync barrier, so stores must be shareable across threads.
    /// Every store in the tree is already structurally thread-safe (the
    /// [`PMap`](crate::pmap) spine and [`CowSet`](crate::env::CowSet)
    /// values are `Arc`-shared).
    type D: Lattice + Ord + Clone + Debug + Send + Sync + 'static;

    /// The empty store `σ₀`.
    fn empty_store() -> Self {
        Self::bottom()
    }

    /// Weak update: joins `d` into the binding of `a`
    /// (the paper's `bind σ a d`).
    #[must_use]
    fn bind(mut self, a: A, d: Self::D) -> Self {
        self.bind_in_place(a, d);
        self
    }

    /// In-place weak update: joins `d` into the binding of `a` without
    /// consuming the store, reporting whether the store *observably* changed
    /// (same standard as [`StoreDelta`]: any per-address data counts, e.g. a
    /// [`CountingStore`] allocation-count bump with an unchanged value set
    /// still reports `true`).
    fn bind_in_place(&mut self, a: A, d: Self::D) -> bool;

    /// Strong update: replaces the binding of `a` with `d`
    /// (the paper's `replace σ a d`).
    ///
    /// Strong updates are only *sound* when the caller knows the abstract
    /// address stands for at most one concrete address — which is exactly
    /// the information a [`CountingStore`] provides.
    #[must_use]
    fn replace(self, a: A, d: Self::D) -> Self;

    /// Looks up the binding of `a`, returning the co-domain `⊥` for unbound
    /// addresses (the paper's `fetch σ a`).
    fn fetch(&self, a: &A) -> Self::D;

    /// Borrows the binding of `a` without materialising it, when the store
    /// representation can (`None` both for unbound addresses and for stores
    /// that cannot lend their bindings — callers fall back to
    /// [`StoreLike::fetch`]).  The garbage collector's reachability sweep
    /// visits every live address once per transition, so skipping the
    /// per-address co-domain clone matters.
    fn fetch_ref(&self, _a: &A) -> Option<&Self::D> {
        None
    }

    /// Restricts the store to the addresses satisfying `keep`
    /// (the paper's `filterStore`, used by abstract garbage collection).
    #[must_use]
    fn filter_store<F>(self, keep: F) -> Self
    where
        F: Fn(&A) -> bool;

    /// The store restricted to exactly the given addresses — semantically
    /// `filter_store(|a| addrs.contains(a))`, but representations with a
    /// persistent spine extract the k requested bindings by descent
    /// (O(k · log n)) instead of walking the whole spine.  The engines use
    /// this to cache a step's contribution restricted to its changed
    /// addresses.
    #[must_use]
    fn restrict_to(self, addrs: &BTreeSet<A>) -> Self {
        self.filter_store(|a| addrs.contains(a))
    }

    /// The set of addresses currently bound.  Used by the garbage
    /// collector's reachability sweep and by precision metrics.
    fn addresses(&self) -> BTreeSet<A>;

    /// Whether the address is currently bound to something other than `⊥`.
    fn contains(&self, a: &A) -> bool {
        !self.fetch(a).is_bottom()
    }

    /// The number of bound addresses.
    fn binding_count(&self) -> usize {
        self.addresses().len()
    }

    /// Approximate bytes of store structure this snapshot shares with
    /// *other live snapshots* (`Arc`-shared spine nodes with a reference
    /// count above one).  Stores without a persistent spine report 0.  The
    /// fixpoint engines sample this at the end of a run
    /// ([`EngineStats::store_bytes_shared`](crate::engine::EngineStats)) so
    /// that structural-sharing regressions are as observable as step/join
    /// regressions.
    fn shared_spine_bytes(&self) -> usize {
        0
    }
}

/// Materialises the elements bound at `a` through a projection, borrowing
/// the binding when the store can lend it and falling back to
/// [`StoreLike::fetch`] otherwise — `fetch_ref`'s `None` does **not** mean
/// "unbound" for an arbitrary store, it may also mean "cannot lend", so
/// every caller of `fetch_ref` needs this exact fallback.  Shared here so
/// the languages' direct-style transition functions cannot drift from the
/// lending contract.
pub fn fetch_filtered<A, S, X, T, P>(store: &S, a: &A, project: P) -> Vec<T>
where
    A: Address,
    S: StoreLike<A, D = BTreeSet<X>>,
    X: Ord + Clone + Debug + 'static,
    P: Fn(&X) -> Option<&T>,
    T: Clone,
{
    match store.fetch_ref(a) {
        Some(set) => set.iter().filter_map(|x| project(x).cloned()).collect(),
        None => store
            .fetch(a)
            .iter()
            .filter_map(|x| project(x).cloned())
            .collect(),
    }
}

/// Stores that can report *which addresses* differ between two snapshots —
/// the primitive the worklist engine's dependency invalidation
/// ([`crate::engine`]) is built on.
///
/// The contract is: `self` and `other` are observationally identical at
/// every address **not** in the returned set.  "Observationally" includes
/// any auxiliary per-address data the store carries (e.g. the abstract
/// counts of a [`CountingStore`]), not just the [`StoreLike::fetch`] value
/// set — a cached transition may be replayed only if *nothing* it could
/// have read at the address changed.  The diff is symmetric: an address
/// bound on either side but not the other (or bound to different contents)
/// is reported.
pub trait StoreDelta<A: Address>: StoreLike<A> {
    /// The addresses whose binding differs between `self` and `other`.
    fn changed_addresses(&self, other: &Self) -> BTreeSet<A>;

    /// In-place join that reports *which addresses grew*: grows `self` to
    /// `self ⊔ other` and returns every address whose binding observably
    /// changed (value set or auxiliary data such as counts).
    ///
    /// This is the incremental engine's accumulation primitive: folding a
    /// step's result store into the running global store yields the delta
    /// for dependency invalidation directly, with no snapshot clone and no
    /// after-the-fact [`StoreDelta::changed_addresses`] diff.  The returned
    /// set is exactly `joined.changed_addresses(old_self)` restricted to
    /// growth (a join can only grow), and the flag-free join law holds:
    /// the set is empty iff `other ⊑ old_self`.
    fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<A>;

    /// Like [`StoreDelta::join_in_place_delta`], but accumulating with the
    /// co-domain's *widening* at the addresses in `widen_at` (plain join
    /// everywhere else).  This is the engines' widening point: when a
    /// store's co-domain has infinite height (e.g.
    /// [`Interval`](crate::lattice::Interval)), an address that keeps
    /// growing round after round is designated a widening point and its
    /// accumulation switches from `⊔` to `▽`, so the per-address chain —
    /// and with it the fixpoint iteration — stabilises.
    ///
    /// The default ignores `widen_at` and joins: for finite-height
    /// co-domains (power-sets, counted power-sets) the join *is* a
    /// terminating widening, and the engines' behaviour is unchanged.
    /// Stores over infinite-height co-domains
    /// ([`IntervalStore`]) override it.
    fn widen_in_place_delta(&mut self, other: Self, widen_at: &BTreeSet<A>) -> BTreeSet<A> {
        let _ = widen_at;
        self.join_in_place_delta(other)
    }

    /// Arms write journaling on this store snapshot: from now on, every
    /// semantic write ([`StoreLike::bind_in_place`] / [`StoreLike::bind`]
    /// and [`StoreLike::replace`]) performed on this snapshot **or on any
    /// store derived from it** (by `clone`, branch threading, GC
    /// filtering) is recorded in a journal the derived store carries.
    ///
    /// The engines' narrowing post-pass arms the pre-store it hands to a
    /// re-stepped state so that each result branch reports exactly what
    /// that branch *wrote* — a store's value being unchanged after a step
    /// cannot distinguish "the branch did not write the address" from
    /// "the branch wrote exactly the current value", and the narrowing
    /// image must include the latter (see
    /// [`StoreDelta::take_write_journal`]).
    ///
    /// The default is a no-op: stores without journaling stay valid, and
    /// the narrowing pass falls back to a coarser (but still sound)
    /// image for them.  Accumulation folds
    /// ([`StoreDelta::join_in_place_delta`] /
    /// [`StoreDelta::widen_in_place_delta`]) are *not* writes and are
    /// never journaled.
    fn arm_write_journal(&mut self) {}

    /// Takes this snapshot's write journal, as a store binding **exactly
    /// the addresses written** since [`StoreDelta::arm_write_journal`],
    /// each to the written co-domain values (weak updates join into the
    /// journal entry; strong updates replace it, mirroring the writes
    /// themselves).  Returns `None` when the store does not journal (or
    /// was never armed); the journal is cleared by the take.
    ///
    /// This is the soundness primitive of the narrowing post-pass: the
    /// decreasing image at an address must be an upper bound of **every**
    /// producer's written contribution there, including a producer whose
    /// write reproduced the current binding exactly.  The journal reports
    /// such a write verbatim, where a value-level diff against the
    /// accumulator would silently drop it.
    fn take_write_journal(&mut self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_store_is_bottom_and_has_no_bindings() {
        let s: BasicStore<u8, u8> = BasicStore::empty_store();
        assert!(s.is_bottom());
        assert_eq!(s.binding_count(), 0);
        assert!(!s.contains(&3));
    }

    #[test]
    fn contains_reflects_bindings() {
        let s: BasicStore<u8, u8> = BasicStore::empty_store().bind(4, [9u8].into_iter().collect());
        assert!(s.contains(&4));
        assert!(!s.contains(&5));
        assert_eq!(s.binding_count(), 1);
    }
}
