//! The counting store: abstract counting layered on the store (paper §6.3).

use std::collections::BTreeSet;
use std::fmt;

use crate::addr::Address;
use crate::env::CowSet;
use crate::lattice::{AbsNat, Lattice};
use crate::pmap::PMap;

use super::StoreLike;

/// A store that additionally tracks, for every address, an [`AbsNat`]
/// abstract count of how many times it has been allocated/bound:
///
/// ```text
/// type CountingStore a d = a ⇀ (d, AbsNat)
/// ```
///
/// Because counts live inside the store, abstract counting requires *no*
/// change to the semantics or to the analysis logic: a `CountingStore` can
/// be plugged into the `StorePassing` monad wherever a
/// [`BasicStore`](super::BasicStore) was used, implicitly extending the
/// abstract state-space with the `Ĉount` component of §6.3.
///
/// Like [`BasicStore`](super::BasicStore), the binding spine is a
/// persistent [`PMap`] (clone = `Arc` bump, writes copy one trie path,
/// diffs/joins skip shared subtrees) and the per-address value sets are
/// copy-on-write [`CowSet`]s; each entry is the pair lattice
/// `(value set, count)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CountingStore<A: Ord, V: Ord> {
    bindings: PMap<A, (CowSet<V>, AbsNat)>,
}

impl<A: Address, V: Ord + Clone> CountingStore<A, V> {
    /// Creates an empty counting store.
    pub fn new() -> Self {
        CountingStore {
            bindings: PMap::new(),
        }
    }

    /// Iterates over `(address, values, count)` triples, in the spine's
    /// deterministic (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = (&A, &BTreeSet<V>, AbsNat)> {
        self.bindings
            .iter()
            .map(|(a, (vs, n))| (a, vs.as_set(), *n))
    }

    /// The number of addresses whose abstract count is exactly one — the
    /// addresses for which strong updates and must-alias facts are sound.
    pub fn single_count(&self) -> usize {
        self.bindings
            .values()
            .filter(|(_, n)| *n == AbsNat::One)
            .count()
    }

    /// The total number of `(address, value)` facts in the store.
    pub fn fact_count(&self) -> usize {
        self.bindings.values().map(|(vs, _)| vs.len()).sum()
    }
}

impl<A: Address + fmt::Debug, V: Ord + Clone + fmt::Debug> fmt::Debug for CountingStore<A, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.bindings.iter().map(|(a, (vs, n))| (a, (vs, n))))
            .finish()
    }
}

impl<A: Address, V: Ord + Clone> Lattice for CountingStore<A, V> {
    fn bottom() -> Self {
        CountingStore::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.join_in_place(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        // The `(value set, count)` entries are pair lattices; missing keys
        // read as ⊥ on either side.
        self.bindings.leq_map(&other.bindings)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.bindings.join_map_in_place(other.bindings)
    }

    fn is_bottom(&self) -> bool {
        self.bindings.is_bottom_map()
    }
}

/// Counted power-set co-domains have finite height over any fixed program
/// (the count component saturates at ∞), so the defaults (widen = join,
/// narrow = no-op) are a sound, terminating widening pair.
impl<A: Address, V: Ord + Clone> crate::lattice::WidenLattice for CountingStore<A, V> {}

impl<A, V> StoreLike<A> for CountingStore<A, V>
where
    A: Address,
    V: Ord + Clone + fmt::Debug + Send + Sync + 'static,
{
    type D = BTreeSet<V>;

    fn bind_in_place(&mut self, a: A, d: Self::D) -> bool {
        // σ ⊔ [â ↦ d],  μ ⊕ [â ↦ 1] — installed through the spine's
        // sharing-preserving upsert, so a saturated no-op bind (count
        // already ∞, values already present) copies nothing.
        self.bindings.upsert_with(a, |entry| match entry {
            Some((vs, n)) => {
                let mut joined = vs.clone();
                let grew = joined.join_in_place(d.into_iter().collect());
                let bumped = *n + AbsNat::One;
                let count_changed = bumped != *n;
                if grew || count_changed {
                    Some((joined, bumped))
                } else {
                    None
                }
            }
            // The count went 0 → 1, so the binding always changed.
            None => Some((d.into_iter().collect(), AbsNat::One)),
        })
    }

    fn replace(mut self, a: A, d: Self::D) -> Self {
        // Strong update of the value; the count is unchanged (the address
        // still corresponds to however many concrete allocations it did).
        let count = self
            .bindings
            .get(&a)
            .map(|(_, n)| *n)
            .unwrap_or(AbsNat::Zero);
        self.bindings.insert(a, (d.into_iter().collect(), count));
        self
    }

    fn fetch(&self, a: &A) -> Self::D {
        self.bindings
            .get(a)
            .map(|(vs, _)| vs.as_set().clone())
            .unwrap_or_default()
    }

    fn fetch_ref(&self, a: &A) -> Option<&Self::D> {
        self.bindings.get(a).map(|(vs, _)| vs.as_set())
    }

    fn filter_store<F>(mut self, keep: F) -> Self
    where
        F: Fn(&A) -> bool,
    {
        self.bindings.retain(keep);
        self
    }

    fn restrict_to(mut self, addrs: &BTreeSet<A>) -> Self {
        self.bindings = self.bindings.restricted_to(addrs);
        self
    }

    fn addresses(&self) -> BTreeSet<A> {
        self.bindings.keys().cloned().collect()
    }

    fn binding_count(&self) -> usize {
        self.bindings.len()
    }

    fn shared_spine_bytes(&self) -> usize {
        self.bindings.shared_spine_bytes()
    }
}

impl<A, V> super::StoreDelta<A> for CountingStore<A, V>
where
    A: Address,
    V: Ord + Clone + fmt::Debug + Send + Sync + 'static,
{
    fn changed_addresses(&self, other: &Self) -> BTreeSet<A> {
        // Counts are part of the observable binding: an address whose value
        // set is unchanged but whose count was bumped still counts as
        // changed.
        self.bindings.changed_keys(&other.bindings)
    }

    fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<A> {
        // The `(value set, count)` entries are pair lattices, so the spine
        // merge reports count-only growth too.
        self.bindings.join_in_place_delta(other.bindings)
    }
}

/// The paper's `ACounter` class: stores that can report how often an
/// address has been allocated.
///
/// Because the counter is parameterized over addresses it is independent of
/// any specific semantics and "can be used with any other semantics" —
/// which is exactly how the language crates use it.
pub trait Counter<A: Address>: StoreLike<A> {
    /// The abstract allocation count of `a` (the paper's `count σ a`).
    fn count(&self, a: &A) -> AbsNat;

    /// A *sound* update: strong (replacing) when the count certifies that
    /// `a` stands for at most one concrete address, weak (joining)
    /// otherwise.  This is the "dependent enhancement" of §6.3 that
    /// counting enables.
    #[must_use]
    fn update_sound(self, a: A, d: Self::D) -> Self {
        if self.count(&a).is_at_most_one() {
            self.replace(a, d)
        } else {
            self.bind(a, d)
        }
    }
}

impl<A, V> Counter<A> for CountingStore<A, V>
where
    A: Address,
    V: Ord + Clone + fmt::Debug + Send + Sync + 'static,
{
    fn count(&self, a: &A) -> AbsNat {
        self.bindings
            .get(a)
            .map(|(_, n)| *n)
            .unwrap_or(AbsNat::Zero)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    type S = CountingStore<u8, u8>;

    fn set(xs: &[u8]) -> BTreeSet<u8> {
        xs.iter().copied().collect()
    }

    #[test]
    fn counts_track_allocations() {
        let s = S::new();
        assert_eq!(s.count(&1), AbsNat::Zero);
        let s = s.bind(1, set(&[5]));
        assert_eq!(s.count(&1), AbsNat::One);
        let s = s.bind(1, set(&[6]));
        assert_eq!(s.count(&1), AbsNat::Many);
        assert_eq!(s.fetch(&1), set(&[5, 6]));
    }

    #[test]
    fn single_count_reports_must_alias_addresses() {
        let s = S::new()
            .bind(1, set(&[5]))
            .bind(2, set(&[6]))
            .bind(2, set(&[7]));
        assert_eq!(s.single_count(), 1);
        assert_eq!(s.fact_count(), 3);
    }

    #[test]
    fn sound_update_is_strong_for_singletons_weak_otherwise() {
        let once = S::new().bind(1, set(&[5]));
        let strongly = once.clone().update_sound(1, set(&[9]));
        assert_eq!(strongly.fetch(&1), set(&[9]));

        let twice = once.bind(1, set(&[6]));
        let weakly = twice.update_sound(1, set(&[9]));
        assert_eq!(weakly.fetch(&1), set(&[5, 6, 9]));
    }

    #[test]
    fn replace_keeps_the_count() {
        let s = S::new().bind(1, set(&[5])).bind(1, set(&[6]));
        let replaced = s.replace(1, set(&[7]));
        assert_eq!(replaced.fetch(&1), set(&[7]));
        assert_eq!(replaced.count(&1), AbsNat::Many);
    }

    #[test]
    fn join_joins_values_and_counts() {
        let a = S::new().bind(1, set(&[5]));
        let b = S::new().bind(1, set(&[6]));
        let j = a.clone().join(b.clone());
        assert_eq!(j.fetch(&1), set(&[5, 6]));
        // Join is a lattice join of counts (max), not abstract addition.
        assert_eq!(j.count(&1), AbsNat::One);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn filter_store_drops_counts_too() {
        let s = S::new().bind(1, set(&[5])).bind(2, set(&[6]));
        let s = s.filter_store(|a| *a == 1);
        assert_eq!(s.count(&2), AbsNat::Zero);
        assert_eq!(s.addresses(), [1u8].into_iter().collect());
    }

    #[test]
    fn saturated_binds_copy_nothing() {
        // Drive address 1 to (count = ∞, values ⊇ {5}); a further identical
        // bind is a no-op and must keep the spine allocation intact.
        let mut s = S::new().bind(1, set(&[5])).bind(1, set(&[5]));
        let snapshot = s.clone();
        assert!(!s.bind_in_place(1, set(&[5])));
        assert_eq!(s, snapshot);
        assert!(snapshot.shared_spine_bytes() > 0);
    }

    proptest! {
        #[test]
        fn prop_count_abstracts_number_of_binds(
            binds in proptest::collection::vec(0u8..4, 0..10)
        ) {
            let mut s = S::new();
            let mut concrete: BTreeMap<u8, usize> = BTreeMap::new();
            for a in binds {
                s = s.bind(a, set(&[a]));
                *concrete.entry(a).or_insert(0) += 1;
            }
            for (a, n) in concrete {
                prop_assert_eq!(s.count(&a), AbsNat::abstraction(n));
            }
        }

        #[test]
        fn prop_lattice_laws(
            xs in proptest::collection::vec((0u8..4, 0u8..4), 0..10),
            ys in proptest::collection::vec((0u8..4, 0u8..4), 0..10),
        ) {
            let mk = |items: Vec<(u8, u8)>| {
                items.into_iter().fold(S::new(), |s, (a, v)| s.bind(a, set(&[v])))
            };
            let a = mk(xs);
            let b = mk(ys);
            let j = a.clone().join(b.clone());
            prop_assert!(a.leq(&j));
            prop_assert!(b.leq(&j));
            prop_assert_eq!(a.clone().join(a.clone()), a);
        }

        #[test]
        fn prop_join_in_place_law_and_delta(
            xs in proptest::collection::vec((0u8..4, 0u8..4), 0..10),
            ys in proptest::collection::vec((0u8..4, 0u8..4), 0..10),
        ) {
            use crate::store::StoreDelta;
            let mk = |items: Vec<(u8, u8)>| {
                items.into_iter().fold(S::new(), |s, (a, v)| s.bind(a, set(&[v])))
            };
            let a = mk(xs);
            let b = mk(ys);

            let mut inplace = a.clone();
            let changed = inplace.join_in_place(b.clone());
            prop_assert_eq!(&inplace, &a.clone().join(b.clone()));
            prop_assert_eq!(changed, !b.leq(&a));

            // Count-only growth must show up in the delta: joining a store
            // whose counts are higher changes those addresses even when the
            // value sets coincide.
            let mut delta_store = a.clone();
            let delta = delta_store.join_in_place_delta(b.clone());
            prop_assert_eq!(&delta_store, &inplace);
            prop_assert_eq!(delta.is_empty(), !changed);
            for addr in 0u8..4 {
                let grew = !b.fetch(&addr).leq(&a.fetch(&addr))
                    || !b.count(&addr).leq(&a.count(&addr));
                prop_assert_eq!(delta.contains(&addr), grew, "address {}", addr);
            }
        }

        #[test]
        fn prop_bind_in_place_matches_bind(
            xs in proptest::collection::vec((0u8..4, 0u8..4), 0..10),
            a in 0u8..4,
            v in 0u8..4,
        ) {
            let mk = |items: Vec<(u8, u8)>| {
                items.into_iter().fold(S::new(), |s, (a, v)| s.bind(a, set(&[v])))
            };
            let s = mk(xs);
            let mut inplace = s.clone();
            let changed = inplace.bind_in_place(a, set(&[v]));
            prop_assert_eq!(&inplace, &s.clone().bind(a, set(&[v])));
            // A bind changes the binding unless the count was already
            // saturated *and* the value already present.
            let expected = !s.fetch(&a).contains(&v) || s.count(&a) != AbsNat::Many;
            prop_assert_eq!(changed, expected);
        }
    }
}
