//! Abstract garbage collection (paper §6.4).
//!
//! Abstract GC prunes store bindings that are unreachable from the current
//! state, exactly as an ordinary garbage collector would — the payoff being
//! a (often dramatic) precision improvement, because dead bindings no longer
//! pollute joins when abstract addresses are re-used.
//!
//! The machinery factors into three language-independent pieces:
//!
//! * [`Touches`] — "which addresses does this entity touch directly?"
//!   (the paper's `T̂`); language crates implement it for their values and
//!   partial states.
//! * [`reachable`] — the transitive closure of the touch relation through
//!   the store (the paper's `R̂`), provided once here.
//! * [`GcStrategy`] — the `GarbageCollector` class of the paper: a monadic
//!   action run after every transition.  [`NoGc`] is the default no-op; the
//!   language crates provide strategies that restrict the store to the
//!   reachable addresses (the paper's `Γ̂`).

use std::collections::BTreeSet;

use crate::addr::Address;
use crate::monad::{MonadFamily, Value};
use crate::store::StoreLike;

/// Entities that directly touch a set of addresses (the paper's `T̂`).
///
/// Typical implementers are abstract values (a closure touches the range of
/// its environment), machine states (a state touches whatever its control
/// expression's free variables map to) and continuations.
pub trait Touches<A: Ord> {
    /// The set of addresses touched directly by `self`.
    fn touches(&self) -> BTreeSet<A>;
}

impl<A: Ord, T: Touches<A>> Touches<A> for BTreeSet<T> {
    fn touches(&self) -> BTreeSet<A> {
        self.iter().flat_map(Touches::touches).collect()
    }
}

impl<A: Ord, T: Touches<A>> Touches<A> for Vec<T> {
    fn touches(&self) -> BTreeSet<A> {
        self.iter().flat_map(Touches::touches).collect()
    }
}

impl<A: Ord, T: Touches<A>> Touches<A> for Option<T> {
    fn touches(&self) -> BTreeSet<A> {
        self.iter().flat_map(Touches::touches).collect()
    }
}

impl<A: Ord, T: Touches<A>, U: Touches<A>> Touches<A> for (T, U) {
    fn touches(&self) -> BTreeSet<A> {
        let mut out = self.0.touches();
        out.extend(self.1.touches());
        out
    }
}

/// Computes the set of addresses reachable from `roots` by following the
/// abstract adjacency relation `â ;^σ̂ â′ ⟺ â′ ∈ T̂(σ̂(â))`
/// (the paper's `R̂`).
///
/// ```rust
/// use std::collections::BTreeSet;
/// use mai_core::gc::{reachable, Touches};
/// use mai_core::store::{BasicStore, StoreLike};
///
/// // A tiny "heap of pointers": each value is the address it points to.
/// #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
/// struct Ptr(u8);
/// impl Touches<u8> for Ptr {
///     fn touches(&self) -> BTreeSet<u8> { [self.0].into_iter().collect() }
/// }
///
/// let store: BasicStore<u8, Ptr> = BasicStore::new()
///     .bind(1, [Ptr(2)].into_iter().collect())
///     .bind(2, [Ptr(2)].into_iter().collect())
///     .bind(3, [Ptr(1)].into_iter().collect()); // unreachable from 1
/// let live = reachable([1u8].into_iter().collect(), &store);
/// assert_eq!(live, [1u8, 2].into_iter().collect());
/// ```
pub fn reachable<A, S>(roots: BTreeSet<A>, store: &S) -> BTreeSet<A>
where
    A: Address,
    S: StoreLike<A>,
    S::D: Touches<A>,
{
    let mut seen: BTreeSet<A> = BTreeSet::new();
    let mut frontier: Vec<A> = roots.into_iter().collect();
    while let Some(addr) = frontier.pop() {
        if !seen.insert(addr.clone()) {
            continue;
        }
        // Borrow the binding when the store can lend it — the sweep visits
        // every live address, so per-address co-domain clones add up.
        let touched = match store.fetch_ref(&addr) {
            Some(binding) => binding.touches(),
            None => store.fetch(&addr).touches(),
        };
        for next in touched {
            if !seen.contains(&next) {
                frontier.push(next);
            }
        }
    }
    seen
}

/// The paper's `GarbageCollector` class: a strategy object providing the
/// monadic `gc` action run after each transition.
///
/// Strategies are small, cloneable values (rather than blanket trait
/// implementations on the monad) so that language crates can provide their
/// own without running into coherence restrictions; they are woven into the
/// fixed-point computation by [`crate::collect::with_gc`].
pub trait GcStrategy<M: MonadFamily, Ps: Value>: Clone + 'static {
    /// The monadic garbage-collection action for the (already stepped)
    /// partial state `ps`.
    fn collect(&self, ps: &Ps) -> M::M<()>;
}

/// The default garbage-collection strategy: do nothing
/// (the paper's default `gc = return ()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NoGc;

impl<M: MonadFamily, Ps: Value> GcStrategy<M, Ps> for NoGc {
    fn collect(&self, _ps: &Ps) -> M::M<()> {
        M::pure(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::VecM;
    use crate::store::BasicStore;

    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
    struct Ptrs(Vec<u8>);

    impl Touches<u8> for Ptrs {
        fn touches(&self) -> BTreeSet<u8> {
            self.0.iter().copied().collect()
        }
    }

    fn store_from(edges: &[(u8, &[u8])]) -> BasicStore<u8, Ptrs> {
        edges.iter().fold(BasicStore::new(), |s, (a, targets)| {
            s.bind(*a, [Ptrs(targets.to_vec())].into_iter().collect())
        })
    }

    #[test]
    fn reachability_follows_chains() {
        let store = store_from(&[(1, &[2]), (2, &[3]), (3, &[]), (4, &[5]), (5, &[])]);
        assert_eq!(
            reachable([1u8].into_iter().collect(), &store),
            [1u8, 2, 3].into_iter().collect()
        );
    }

    #[test]
    fn reachability_handles_cycles() {
        let store = store_from(&[(1, &[2]), (2, &[1]), (3, &[3])]);
        assert_eq!(
            reachable([1u8].into_iter().collect(), &store),
            [1u8, 2].into_iter().collect()
        );
    }

    #[test]
    fn unbound_roots_are_still_reachable_themselves() {
        let store = store_from(&[]);
        assert_eq!(
            reachable([7u8].into_iter().collect(), &store),
            [7u8].into_iter().collect()
        );
    }

    #[test]
    fn empty_roots_reach_nothing() {
        let store = store_from(&[(1, &[2])]);
        assert!(reachable(BTreeSet::new(), &store).is_empty());
    }

    #[test]
    fn touches_lifts_through_containers() {
        let direct = Ptrs(vec![1, 2]);
        let set: BTreeSet<Ptrs> = [direct.clone()].into_iter().collect();
        let vec = vec![direct.clone()];
        let opt = Some(direct.clone());
        let pair = (direct, Ptrs(vec![9]));
        assert_eq!(Touches::<u8>::touches(&set), [1u8, 2].into_iter().collect());
        assert_eq!(Touches::<u8>::touches(&vec), [1u8, 2].into_iter().collect());
        assert_eq!(Touches::<u8>::touches(&opt), [1u8, 2].into_iter().collect());
        assert_eq!(
            Touches::<u8>::touches(&pair),
            [1u8, 2, 9].into_iter().collect()
        );
        assert!(Touches::<u8>::touches(&Option::<Ptrs>::None).is_empty());
    }

    #[test]
    fn no_gc_is_a_pure_no_op() {
        let m = <NoGc as GcStrategy<VecM, u8>>::collect(&NoGc, &5);
        assert_eq!(m, vec![()]);
    }
}
