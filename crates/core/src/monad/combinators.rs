//! Generic monadic combinators (`mapM`, `sequence`, `getsNDSet`, …).
//!
//! These are the handful of library functions the paper leans on to keep the
//! monadic semantics readable: `mapM` for allocating a list of addresses or
//! evaluating a list of arguments, `sequence` for issuing a list of store
//! writes, and `getsNDSet` (§5.3.2) — "the crux of handling non-determinism"
//! — for fanning a set-valued state observation out into monadic branches.

use std::collections::BTreeSet;

use super::{MonadFamily, MonadPlus, MonadState, Value};

/// Monadic map over a vector (Haskell's `mapM`), preserving order.
///
/// Effects are sequenced left-to-right; the result collects one output per
/// input.
///
/// ```rust
/// use mai_core::monad::{map_m, MonadFamily, VecM};
/// let out = map_m::<VecM, _, _, _>(|x: u8| vec![x, x + 10], vec![1, 2]);
/// assert_eq!(out, vec![vec![1, 2], vec![1, 12], vec![11, 2], vec![11, 12]]);
/// ```
pub fn map_m<M, A, B, F>(f: F, xs: Vec<A>) -> M::M<Vec<B>>
where
    M: MonadFamily,
    A: Value,
    B: Value,
    F: Fn(A) -> M::M<B> + 'static,
{
    let mut acc: M::M<Vec<B>> = M::pure(Vec::new());
    for x in xs {
        let mb: M::M<B> = f(x);
        acc = M::bind(acc, move |ys: Vec<B>| {
            let ys = ys.clone();
            M::bind(mb.clone(), move |b| {
                let mut out = ys.clone();
                out.push(b);
                M::pure(out)
            })
        });
    }
    acc
}

/// Sequences a vector of computations (Haskell's `sequence`).
pub fn sequence_m<M, A>(ms: Vec<M::M<A>>) -> M::M<Vec<A>>
where
    M: MonadFamily,
    A: Value,
{
    map_m::<M, M::M<A>, A, _>(|m| m, ms)
}

/// Monadic right fold (Haskell's `foldrM`).
pub fn foldr_m<M, A, B, F>(f: F, init: B, xs: Vec<A>) -> M::M<B>
where
    M: MonadFamily,
    A: Value,
    B: Value,
    F: Fn(A, B) -> M::M<B> + Clone + 'static,
{
    let mut acc: M::M<B> = M::pure(init);
    for x in xs.into_iter().rev() {
        let f = f.clone();
        acc = M::bind(acc, move |b| f(x.clone(), b));
    }
    acc
}

/// Flattens a nested computation (Haskell's `join`).
pub fn join_m<M, A>(mm: M::M<M::M<A>>) -> M::M<A>
where
    M: MonadFamily,
    A: Value,
{
    M::bind(mm, |m| m)
}

/// Conditional effect (Haskell's `when`).
pub fn when_m<M>(cond: bool, m: M::M<()>) -> M::M<()>
where
    M: MonadFamily,
{
    if cond {
        m
    } else {
        M::pure(())
    }
}

/// Non-deterministic sum of a collection of computations (Haskell's `msum`).
pub fn msum<M, A>(ms: Vec<M::M<A>>) -> M::M<A>
where
    M: MonadPlus,
    A: Value,
{
    let mut acc = M::mzero();
    for m in ms {
        acc = M::mplus(acc, m);
    }
    acc
}

/// The paper's `getsNDSet` (§5.3.2): observe the monad's state with a
/// set-valued projection and branch non-deterministically over the members
/// of the resulting set.
///
/// This single combinator is where abstract-store lookups become the
/// non-determinism of the abstract semantics.
///
/// ```rust
/// use std::collections::BTreeSet;
/// use mai_core::monad::{gets_nd_set, run_state_t, MonadFamily, StateT, VecM};
///
/// type M = StateT<BTreeSet<u8>, VecM>;
/// let m = gets_nd_set::<M, BTreeSet<u8>, u8, _>(|s| s.clone());
/// let state: BTreeSet<u8> = [3u8, 1, 2].into_iter().collect();
/// let results: Vec<u8> = run_state_t::<_, VecM, u8>(m, state).into_iter().map(|(a, _)| a).collect();
/// assert_eq!(results, vec![1, 2, 3]);
/// ```
pub fn gets_nd_set<M, S, A, F>(f: F) -> M::M<A>
where
    M: MonadPlus + MonadState<S>,
    S: Value,
    A: Value + Ord,
    F: Fn(&S) -> BTreeSet<A> + 'static,
{
    M::bind(M::get(), move |s| {
        let mut acc = M::mzero();
        for x in f(&s) {
            acc = M::mplus(acc, M::pure(x));
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::{run_state_t, IdM, MonadTrans, StateT, VecM};

    #[test]
    fn map_m_in_identity_is_plain_map() {
        let out = map_m::<IdM, u32, u32, _>(|x| x + 1, vec![1, 2, 3]);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn map_m_preserves_order_and_length_under_state() {
        type M = StateT<u32, VecM>;
        // Each element increments the shared counter and records its old value.
        let m = map_m::<M, u32, (u32, u32), _>(
            |x| {
                M::bind(<M as crate::monad::MonadState<u32>>::get(), move |c| {
                    M::then(
                        <M as crate::monad::MonadState<u32>>::put(c + 1),
                        M::pure((x, c)),
                    )
                })
            },
            vec![10, 20, 30],
        );
        let out = run_state_t::<u32, VecM, Vec<(u32, u32)>>(m, 0);
        assert_eq!(out, vec![(vec![(10, 0), (20, 1), (30, 2)], 3)]);
    }

    #[test]
    fn sequence_m_collects_branches() {
        let out = sequence_m::<VecM, u8>(vec![vec![1, 2], vec![3]]);
        assert_eq!(out, vec![vec![1, 3], vec![2, 3]]);
    }

    #[test]
    fn foldr_m_folds_right() {
        let out = foldr_m::<IdM, u32, Vec<u32>, _>(
            |x, mut acc| {
                acc.insert(0, x);
                acc
            },
            Vec::new(),
            vec![1, 2, 3],
        );
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn join_m_flattens() {
        let nested: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        assert_eq!(join_m::<VecM, u8>(nested), vec![1, 2, 3]);
    }

    #[test]
    fn when_m_runs_only_when_true() {
        type M = StateT<u32, VecM>;
        let bump = <M as crate::monad::MonadState<u32>>::modify(|s| s + 1);
        assert_eq!(
            run_state_t::<u32, VecM, ()>(when_m::<M>(true, bump.clone()), 0),
            vec![((), 1)]
        );
        assert_eq!(
            run_state_t::<u32, VecM, ()>(when_m::<M>(false, bump), 0),
            vec![((), 0)]
        );
    }

    #[test]
    fn msum_concatenates_alternatives() {
        let out = msum::<VecM, u8>(vec![vec![1], vec![], vec![2, 3]]);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn gets_nd_set_branches_over_the_set() {
        type M = StateT<BTreeSet<u8>, VecM>;
        let m = gets_nd_set::<M, BTreeSet<u8>, u8, _>(|s| s.iter().map(|x| x * 2).collect());
        let state: BTreeSet<u8> = [1u8, 2].into_iter().collect();
        let out = run_state_t::<BTreeSet<u8>, VecM, u8>(m, state.clone());
        assert_eq!(out, vec![(2, state.clone()), (4, state)]);
    }

    #[test]
    fn lift_then_gets_nd_set_matches_paper_usage() {
        // The paper accesses the store (inner layer) with `lift $ getsNDSet …`.
        type Inner = StateT<BTreeSet<u8>, VecM>;
        type Outer = StateT<u64, Inner>;
        let m =
            <Outer as MonadTrans>::lift(gets_nd_set::<Inner, BTreeSet<u8>, u8, _>(|s| s.clone()));
        let store: BTreeSet<u8> = [9u8, 7].into_iter().collect();
        let out = run_state_t::<BTreeSet<u8>, VecM, (u8, u64)>(
            run_state_t::<u64, Inner, u8>(m, 1),
            store.clone(),
        );
        assert_eq!(out, vec![((7, 1), store.clone()), ((9, 1), store)]);
    }
}
