//! The non-determinism (list) monad.

use super::{MonadFamily, MonadPlus, Value};

/// The list monad family: `M<A> = Vec<A>`.
///
/// This is the monad the paper uses to "capture, explain and throttle"
/// the non-determinism introduced by abstraction: looking up a variable in
/// an abstract store yields a *set* of abstract closures, and the semantics
/// branches over each of them.  Sitting at the bottom of the
/// [`StorePassing`](super::StorePassing) stack it turns the whole analysis
/// monad into a function producing a set of results.
///
/// The order of results follows the left-to-right order of `mplus`; callers
/// that need set semantics collect the results into a `BTreeSet` (as the
/// collecting-semantics domains in [`crate::collect`] do).
///
/// ```rust
/// use mai_core::monad::{MonadFamily, MonadPlus, VecM};
/// let pairs = VecM::bind(vec![1u8, 2], |x| VecM::bind(vec![10u8, 20], move |y| VecM::pure(x + y)));
/// assert_eq!(pairs, vec![11, 21, 12, 22]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VecM;

impl MonadFamily for VecM {
    type M<A: Value> = Vec<A>;

    fn pure<A: Value>(a: A) -> Self::M<A> {
        vec![a]
    }

    fn bind<A: Value, B: Value, F>(m: Self::M<A>, k: F) -> Self::M<B>
    where
        F: Fn(A) -> Self::M<B> + 'static,
    {
        m.into_iter().flat_map(k).collect()
    }
}

impl MonadPlus for VecM {
    fn mzero<A: Value>() -> Self::M<A> {
        Vec::new()
    }

    fn mplus<A: Value>(mut x: Self::M<A>, y: Self::M<A>) -> Self::M<A> {
        x.extend(y);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bind_is_flat_map() {
        let out = VecM::bind(vec![1u32, 2, 3], |x| vec![x, x * 10]);
        assert_eq!(out, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn mzero_annihilates_bind() {
        let out: Vec<u32> = VecM::bind(VecM::mzero::<u32>(), |x| VecM::pure(x + 1));
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn prop_left_identity(a in any::<u16>(), mult in any::<u16>()) {
            let k = move |x: u16| vec![x.wrapping_mul(mult), x.wrapping_add(1)];
            prop_assert_eq!(VecM::bind(VecM::pure(a), k), k(a));
        }

        #[test]
        fn prop_right_identity(xs in proptest::collection::vec(any::<u16>(), 0..16)) {
            prop_assert_eq!(VecM::bind(xs.clone(), VecM::pure), xs);
        }

        #[test]
        fn prop_associativity(xs in proptest::collection::vec(any::<u16>(), 0..8)) {
            let k = |x: u16| vec![x, x.wrapping_add(1)];
            let h = |x: u16| vec![x.wrapping_mul(2)];
            let lhs = VecM::bind(VecM::bind(xs.clone(), k), h);
            let rhs = VecM::bind(xs, move |a| VecM::bind(k(a), h));
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn prop_mplus_is_associative_with_mzero_unit(
            xs in proptest::collection::vec(any::<u16>(), 0..8),
            ys in proptest::collection::vec(any::<u16>(), 0..8),
            zs in proptest::collection::vec(any::<u16>(), 0..8),
        ) {
            let lhs = VecM::mplus(VecM::mplus(xs.clone(), ys.clone()), zs.clone());
            let rhs = VecM::mplus(xs.clone(), VecM::mplus(ys, zs));
            prop_assert_eq!(lhs, rhs);
            prop_assert_eq!(VecM::mplus(VecM::mzero(), xs.clone()), xs.clone());
            prop_assert_eq!(VecM::mplus(xs.clone(), VecM::mzero()), xs);
        }
    }
}
