//! The direct-style (allocation-free) step carrier.
//!
//! The paper's `StorePassing` monad is encoded in this crate as
//! reference-counted closures: a computation is an `Rc<dyn Fn(S) -> …>`,
//! and every [`MonadFamily::bind`](super::MonadFamily::bind) allocates a
//! fresh `Rc` wrapping the continuation.  That encoding is maximally
//! faithful to the Haskell original — computations are first-class, can be
//! re-run, and the non-determinism at the bottom of the stack re-invokes
//! continuations per branch — but it makes every transition of every
//! analysis pay one heap allocation *per bind* plus the closure-capture
//! clones those binds force.
//!
//! This module provides the second carrier the fixpoint engines can run
//! the very same semantics on: a **direct-style step monad** in which a
//! computation is not a closure but its *result* — the eagerly evaluated
//! vector of `(value, guts, store)` branches — and [`MonadStep::bind`] is
//! plain function composition: a `for` loop feeding each branch to a
//! monomorphized `FnMut` continuation that receives the branch's guts and
//! store context by value (the mutable threading the `Rc` encoding hides
//! inside its closures, made explicit).  No `Rc<dyn Fn>` is ever
//! allocated; the only allocation is the output vector itself, and with
//! the persistent [`PMap`](crate::pmap) spine the per-branch store is an
//! `Arc` bump away.
//!
//! The observable behaviour is identical by construction:
//!
//! ```text
//! run_store_passing(m, g, s)  ==  the StepM value of the same program
//! ```
//!
//! which the monad-law suite checks over `(result, guts, store)`
//! observations — the `Rc` carriers stay in the tree as the oracle the
//! direct carrier is differentially tested against, and each engine picks
//! its carrier per entry point (`analyse_*_worklist` runs the `Rc` oracle,
//! `analyse_*_direct` the direct fast path).

use std::marker::PhantomData;

use super::Value;

/// A direct-style computation producing `A`: the eagerly evaluated
/// branches, each carrying the guts and store it was produced on.  This is
/// the desugared `g -> s -> [((a, g), s)]` shape of the paper's
/// `StorePassing` (§5.3.1) with the function arrow already applied.
pub type StepM<A, G, S> = Vec<(A, G, S)>;

/// The direct-style counterpart of [`MonadFamily`](super::MonadFamily):
/// a monad whose computations are eagerly evaluated against an explicit
/// `(guts, store)` context instead of being built as closures.
///
/// `pure` takes the context it yields (there is no ambient state to read
/// it from), and `bind`'s continuation is an [`FnMut`] receiving each
/// branch's context **by value** — it is called once per branch, in order,
/// and never retained, so it monomorphizes to a plain function call.
///
/// # Laws
///
/// The monad laws hold over observable branch vectors (checked by the
/// property suite in `tests/monad_laws.rs` against the `Rc`-closure
/// oracle):
///
/// * left identity: `bind(pure(a, g, s), k) == k(a, g, s)`
/// * right identity: `bind(m, pure) == m`
/// * associativity: `bind(bind(m, k), h) == bind(m, |a, g, s|
///   bind(k(a, g, s), h))`
pub trait MonadStep {
    /// The outer state (the analysis guts: context/time).  `Send + Sync`
    /// so that direct-style branch vectors can be produced by the workers
    /// of the sharded parallel engine ([`crate::engine::parallel`]) and
    /// crossed back over its sync barrier.
    type Guts: Value + Send + Sync;

    /// The inner state (the store).  `Send + Sync` for the same reason;
    /// with the `Arc`-shared [`PMap`](crate::pmap) spine this is free.
    type Store: Value + Send + Sync;

    /// The type of computations producing values of type `A`.
    type M<A: Value>;

    /// The computation that yields `a` on the given context, unchanged.
    fn pure<A: Value>(a: A, guts: Self::Guts, store: Self::Store) -> Self::M<A>;

    /// Sequencing as plain function composition: feed every branch of `m`
    /// to `k` and concatenate the results.
    fn bind<A: Value, B: Value, K>(m: Self::M<A>, k: K) -> Self::M<B>
    where
        K: FnMut(A, Self::Guts, Self::Store) -> Self::M<B>;

    /// The failing computation (no branches).
    fn mzero<A: Value>() -> Self::M<A>;

    /// Non-deterministic choice: all branches of `x`, then all of `y`.
    fn mplus<A: Value>(x: Self::M<A>, y: Self::M<A>) -> Self::M<A>;

    /// Functorial map, derived from `bind`/`pure`.
    fn fmap<A: Value, B: Value, F>(m: Self::M<A>, mut f: F) -> Self::M<B>
    where
        F: FnMut(A) -> B,
    {
        Self::bind(m, move |a, g, s| Self::pure(f(a), g, s))
    }
}

/// The one direct-style carrier: computations are [`StepM`] vectors.
///
/// ```rust
/// use mai_core::monad::direct::{DirectStep, MonadStep};
///
/// type M = DirectStep<u32, u32>;
/// // get the store, double it, return the old value — one branch, no Rc.
/// let m = M::bind(M::pure((), 7, 100), |(), g, s| M::pure(s, g, s * 2));
/// assert_eq!(m, vec![(100, 7, 200)]);
/// ```
pub struct DirectStep<G, S>(PhantomData<(G, S)>);

impl<G: Value + Send + Sync, S: Value + Send + Sync> MonadStep for DirectStep<G, S> {
    type Guts = G;
    type Store = S;
    type M<A: Value> = StepM<A, G, S>;

    #[inline]
    fn pure<A: Value>(a: A, guts: G, store: S) -> StepM<A, G, S> {
        vec![(a, guts, store)]
    }

    #[inline]
    fn bind<A: Value, B: Value, K>(m: StepM<A, G, S>, mut k: K) -> StepM<B, G, S>
    where
        K: FnMut(A, G, S) -> StepM<B, G, S>,
    {
        // The common case is a single branch: avoid the concat entirely.
        let mut it = m.into_iter();
        let first = match it.next() {
            Some((a, g, s)) => k(a, g, s),
            None => return Vec::new(),
        };
        let mut out = first;
        for (a, g, s) in it {
            out.extend(k(a, g, s));
        }
        out
    }

    #[inline]
    fn mzero<A: Value>() -> StepM<A, G, S> {
        Vec::new()
    }

    #[inline]
    fn mplus<A: Value>(mut x: StepM<A, G, S>, y: StepM<A, G, S>) -> StepM<A, G, S> {
        x.extend(y);
        x
    }
}

/// Reshapes direct-style branches into the `[((a, g), s)]` form
/// [`run_store_passing`](super::run_store_passing) produces — the engines'
/// transition-function currency, and the shape the carrier-equivalence
/// tests compare on.
pub fn into_runs<A: Value, G: Value, S: Value>(m: StepM<A, G, S>) -> Vec<((A, G), S)> {
    m.into_iter().map(|(a, g, s)| ((a, g), s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::{
        run_store_passing, MonadFamily, MonadState, MonadTrans, StateT, StorePassing, VecM,
    };

    type G = u64;
    type S = u64;
    type D = DirectStep<G, S>;
    type Rc = StorePassing<G, S>;

    /// A sample program written against both carriers: tick the guts,
    /// branch on the store value, write back per branch.
    fn sample_rc() -> <Rc as MonadFamily>::M<u64> {
        let tick = <Rc as MonadState<G>>::modify(|t| t + 1);
        Rc::bind(tick, |_| {
            let fetched =
                <Rc as MonadTrans>::lift(crate::monad::gets_nd_set::<StateT<S, VecM>, S, u64, _>(
                    |s| [*s, *s + 10].into_iter().collect(),
                ));
            Rc::bind(fetched, |v| {
                let write = <Rc as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |s| s + v,
                ));
                Rc::bind(write, move |_| Rc::pure(v))
            })
        })
    }

    fn sample_direct(guts: G, store: S) -> StepM<u64, G, S> {
        let m = D::pure((), guts + 1, store);
        D::bind(m, |(), g, s| {
            let branches: StepM<u64, G, S> = [s, s + 10].into_iter().map(|v| (v, g, s)).collect();
            D::bind(branches, |v, g, s| D::pure(v, g, s + v))
        })
    }

    #[test]
    fn direct_carrier_matches_the_rc_oracle() {
        for (guts, store) in [(0u64, 5u64), (3, 0), (7, 100)] {
            let rc: Vec<((u64, G), S)> = run_store_passing(sample_rc(), guts, store);
            let direct = into_runs(sample_direct(guts, store));
            assert_eq!(rc, direct, "carriers diverged at ({guts}, {store})");
        }
    }

    #[test]
    fn bind_is_branch_concatenation_in_order() {
        let two = D::mplus(D::pure(1u8, 0, 0), D::pure(2u8, 0, 0));
        let m = D::bind(two, |v, g, s| {
            D::mplus(D::pure((v, 'a'), g, s), D::pure((v, 'b'), g, s))
        });
        let vals: Vec<(u8, char)> = m.into_iter().map(|(v, _, _)| v).collect();
        assert_eq!(vals, vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b')]);
    }

    #[test]
    fn monad_laws_hold_observationally() {
        let k = |x: u64, g: G, s: S| D::pure(x + s, g + 1, s);
        // Left identity.
        assert_eq!(D::bind(D::pure(3, 7, 9), k), k(3, 7, 9));
        // Right identity.
        let m = sample_direct(2, 4);
        assert_eq!(D::bind(m.clone(), D::pure), m);
        // Associativity.
        let h = |x: u64, g: G, s: S| D::mplus(D::pure(x, g, s), D::pure(x * 2, g, s + 1));
        let lhs = D::bind(D::bind(m.clone(), k), h);
        let rhs = D::bind(m, |a, g, s| D::bind(k(a, g, s), h));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn mzero_annihilates_and_mplus_is_union() {
        let none: StepM<u8, G, S> = D::mzero();
        assert!(D::bind(none.clone(), D::pure::<u8>).is_empty());
        let one = D::pure(1u8, 0, 0);
        assert_eq!(D::mplus(none.clone(), one.clone()), one);
        assert_eq!(D::mplus(one.clone(), none), one);
        assert_eq!(D::fmap(one, |v| v * 3), D::pure(3u8, 0, 0));
    }
}
