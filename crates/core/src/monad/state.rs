//! The plain state monad.

use std::rc::Rc;

use super::{MonadFamily, MonadState, Value};

/// The state monad family over a state type `S`: `M<A> = S -> (A, S)`.
///
/// This is the monad used to recover a *concrete* interpreter from the
/// monadically-parameterized semantics (paper §4).  The paper uses Haskell's
/// `IO` monad with `IORef`s as "the real heap"; here a deterministic state
/// monad threading an explicit heap plays the same role (see the
/// `mai-cps`/`mai-lambda`/`mai-fj` concrete interpreters), which preserves
/// the relevant behaviour: every allocation is fresh, lookups are exact and
/// updates are strong.
///
/// ```rust
/// use mai_core::monad::{run_state, MonadFamily, MonadState, StateM};
///
/// type Counter = StateM<u64>;
/// let m = Counter::bind(<Counter as MonadState<u64>>::get(), |n| {
///     Counter::then(<Counter as MonadState<u64>>::put(n + 1), Counter::pure(n))
/// });
/// assert_eq!(run_state(m, 41), (41, 42));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StateM<S>(std::marker::PhantomData<S>);

impl<S: Value> MonadFamily for StateM<S> {
    type M<A: Value> = Rc<dyn Fn(S) -> (A, S)>;

    fn pure<A: Value>(a: A) -> Self::M<A> {
        Rc::new(move |s| (a.clone(), s))
    }

    fn bind<A: Value, B: Value, F>(m: Self::M<A>, k: F) -> Self::M<B>
    where
        F: Fn(A) -> Self::M<B> + 'static,
    {
        Rc::new(move |s| {
            let (a, s1) = m(s);
            (k(a))(s1)
        })
    }
}

impl<S: Value> MonadState<S> for StateM<S> {
    fn get() -> Self::M<S> {
        Rc::new(|s: S| (s.clone(), s))
    }

    fn put(s: S) -> Self::M<()> {
        Rc::new(move |_old| ((), s.clone()))
    }

    fn modify<F>(f: F) -> Self::M<()>
    where
        F: Fn(S) -> S + 'static,
    {
        Rc::new(move |s| ((), f(s)))
    }

    fn gets<A: Value, F>(f: F) -> Self::M<A>
    where
        F: Fn(&S) -> A + 'static,
    {
        Rc::new(move |s| {
            let a = f(&s);
            (a, s)
        })
    }
}

/// Runs a [`StateM`] computation with an initial state, returning the result
/// and the final state.
pub fn run_state<S: Value, A: Value>(m: <StateM<S> as MonadFamily>::M<A>, s: S) -> (A, S) {
    m(s)
}

/// Runs a [`StateM`] computation and keeps only its result.
pub fn eval_state<S: Value, A: Value>(m: <StateM<S> as MonadFamily>::M<A>, s: S) -> A {
    m(s).0
}

/// Runs a [`StateM`] computation and keeps only the final state.
pub fn exec_state<S: Value, A: Value>(m: <StateM<S> as MonadFamily>::M<A>, s: S) -> S {
    m(s).1
}

#[cfg(test)]
mod tests {
    use super::*;

    type C = StateM<i64>;

    #[test]
    fn get_put_round_trip() {
        let m = C::bind(<C as MonadState<i64>>::get(), |n| {
            <C as MonadState<i64>>::put(n * 2)
        });
        assert_eq!(run_state(m, 21), ((), 42));
    }

    #[test]
    fn modify_and_gets() {
        let m = C::then(
            <C as MonadState<i64>>::modify(|n| n + 5),
            <C as MonadState<i64>>::gets(|n| n * 10),
        );
        assert_eq!(run_state(m, 1), (60, 6));
    }

    #[test]
    fn eval_and_exec_project_the_pair() {
        let m = C::then(<C as MonadState<i64>>::modify(|n| n + 1), C::pure("done"));
        assert_eq!(eval_state(m.clone(), 0), "done");
        assert_eq!(exec_state(m, 0), 1);
    }

    #[test]
    fn monadic_values_are_reusable() {
        // Rc-based encodings may be run several times with different states.
        let m = <C as MonadState<i64>>::gets(|n| n + 1);
        assert_eq!(run_state(m.clone(), 1).0, 2);
        assert_eq!(run_state(m, 10).0, 11);
    }

    #[test]
    fn state_monad_laws_observationally() {
        let k = |x: i64| <C as MonadState<i64>>::gets(move |s| s + x);
        let lhs = C::bind(C::pure(3), k);
        let rhs = k(3);
        assert_eq!(run_state(lhs, 100), run_state(rhs, 100));

        let m = <C as MonadState<i64>>::gets(|s| s * 2);
        let lhs = C::bind(m.clone(), C::pure);
        assert_eq!(run_state(lhs, 7), run_state(m, 7));
    }
}
