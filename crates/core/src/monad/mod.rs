//! The analysis monads.
//!
//! The paper expresses its semantic interfaces against an arbitrary Haskell
//! `Monad m`, and recovers specific interpreters and analyses by choosing a
//! concrete monad: the `IO` monad for the concrete interpreter, and the
//! `StorePassing s g = StateT g (StateT s [])` monad stack for the
//! collecting/abstract semantics.
//!
//! Rust has no higher-kinded types, but *generic associated types* express
//! the same `* -> *` abstraction: a [`MonadFamily`] is a (usually zero-sized)
//! marker type whose associated type constructor `M<A>` is the monad.  This
//! module provides:
//!
//! * [`MonadFamily`] — `return`/`pure` and `>>=`/`bind`, plus derived
//!   combinators.
//! * [`MonadPlus`] — non-deterministic choice (`mzero`/`mplus`), the
//!   mechanism by which abstraction-induced branching is "captured,
//!   explained and throttled entirely monadically" (paper §3.1).
//! * [`MonadState`] — access to a state component carried by the monad
//!   (the store, the time-stamp, abstract counters, …).
//! * [`MonadTrans`] — explicit `lift`ing through one transformer layer,
//!   exactly as the paper's `StorePassing` instances use Haskell's `lift`.
//! * Concrete families: [`IdM`], [`VecM`], [`StateM`], [`StateT`] and the
//!   assembled [`StorePassing`] stack.
//! * [`combinators`] — `map_m`, `sequence_m`, `gets_nd_set` and friends.
//!
//! ### Design notes (faithfulness vs. Rust) — two carriers
//!
//! Monadic values built from [`StateT`] are reference-counted closures
//! (`Rc<dyn Fn(S) -> …>`), so they can be run several times — which is
//! required because the non-determinism at the bottom of the stack re-runs
//! continuations once per branch.  Consequently all payload types carried by
//! a monad must implement [`Value`] (`Clone + 'static`); this corresponds to
//! the ubiquitous `(Ord a, Eq a)`-style constraints of the Haskell original
//! and is harmless for the finite machine states the framework manipulates.
//!
//! The closure encoding is the **oracle carrier**: maximally faithful, and
//! what `analyse_*`/`analyse_*_worklist` run.  Its cost is one `Rc`
//! allocation per `bind` plus the capture clones those binds force — which,
//! once store clones are `Arc` bumps ([`crate::pmap`]), dominates every
//! transition.  The [`direct`] module therefore provides a second,
//! **direct-style carrier** ([`direct::MonadStep`]/[`direct::DirectStep`]):
//! a computation is its eagerly evaluated `(value, guts, store)` branch
//! vector and `bind` is a monomorphized loop — plain function composition
//! over an explicit mutable context, no `Rc<dyn Fn>` anywhere.  The
//! language crates express `mnext` against both carriers; the engines
//! select one per entry point (`analyse_*_direct` is the fast path) and the
//! two are differentially tested against each other over observable
//! `(result, guts, store)` triples.  See the README's engine table for
//! when each carrier wins.

pub mod direct;

mod identity;
mod nondet;
mod state;
mod state_t;

pub mod combinators;

pub use combinators::{foldr_m, gets_nd_set, join_m, map_m, msum, sequence_m, when_m};
pub use direct::{DirectStep, MonadStep, StepM};
pub use identity::IdM;
pub use nondet::VecM;
pub use state::{eval_state, exec_state, run_state, StateM};
pub use state_t::{run_state_t, StateT};

/// A value that may be carried by an analysis monad.
///
/// This is a "trait alias" for `Clone + 'static`.  Every machine state,
/// environment, abstract value and address in the framework satisfies it.
pub trait Value: Clone + 'static {}

impl<T: Clone + 'static> Value for T {}

/// A family of monadic computations, encoded with a generic associated type.
///
/// A `MonadFamily` plays the role of Haskell's `Monad m` class; the family
/// itself is a marker type (e.g. [`VecM`] or [`StateT<S, N>`](StateT)) and
/// `Self::M<A>` is the type of computations producing an `A`.
///
/// # Laws
///
/// Implementations are expected to satisfy the monad laws up to observable
/// behaviour (verified by property tests in this crate for the provided
/// families):
///
/// * left identity: `bind(pure(a), k) ≡ k(a)`
/// * right identity: `bind(m, pure) ≡ m`
/// * associativity: `bind(bind(m, k), h) ≡ bind(m, |a| bind(k(a), h))`
///
/// ```rust
/// use mai_core::monad::{MonadFamily, VecM};
/// let m = VecM::pure(21u64);
/// let n = VecM::bind(m, |x| VecM::pure(x * 2));
/// assert_eq!(n, vec![42]);
/// ```
pub trait MonadFamily {
    /// The type of computations in this monad producing values of type `A`.
    type M<A: Value>: Clone + 'static;

    /// Haskell's `return` / `pure`: the computation that immediately yields
    /// `a` with no effect.
    fn pure<A: Value>(a: A) -> Self::M<A>;

    /// Haskell's `>>=`: sequence `m` with the continuation `k`.
    ///
    /// The continuation may be invoked zero, one or many times (many times
    /// in the presence of non-determinism), which is why it is a `Fn` and
    /// why monadic payloads must be [`Value`].
    fn bind<A: Value, B: Value, F>(m: Self::M<A>, k: F) -> Self::M<B>
    where
        F: Fn(A) -> Self::M<B> + 'static;

    /// Functorial map, derived from [`bind`](MonadFamily::bind) and
    /// [`pure`](MonadFamily::pure).
    fn fmap<A: Value, B: Value, F>(m: Self::M<A>, f: F) -> Self::M<B>
    where
        F: Fn(A) -> B + 'static,
    {
        Self::bind(m, move |a| Self::pure(f(a)))
    }

    /// Haskell's `>>`: sequence two computations, discarding the first
    /// result.
    fn then<A: Value, B: Value>(m: Self::M<A>, n: Self::M<B>) -> Self::M<B> {
        Self::bind(m, move |_| n.clone())
    }
}

/// Monads with non-deterministic choice (Haskell's `MonadPlus`).
///
/// In the paper, the non-determinism introduced by abstracting an
/// operational semantics (a variable may be bound to *several* abstract
/// closures) is threaded through `MonadPlus`; the analysis literally
/// enumerates branches with `mplus`.
///
/// ```rust
/// use mai_core::monad::{MonadFamily, MonadPlus, VecM};
/// let m: Vec<u8> = VecM::mplus(VecM::pure(1), VecM::mplus(VecM::mzero(), VecM::pure(2)));
/// assert_eq!(m, vec![1, 2]);
/// ```
pub trait MonadPlus: MonadFamily {
    /// The failing computation (no results).
    fn mzero<A: Value>() -> Self::M<A>;

    /// Non-deterministic choice between two computations.
    fn mplus<A: Value>(x: Self::M<A>, y: Self::M<A>) -> Self::M<A>;
}

/// Monads carrying a state component of type `S` (Haskell's `MonadState`).
///
/// The `StorePassing` stack implements `MonadState<G>` for its *outer* state
/// (the analysis "guts": the time-stamp / context); the inner store is
/// reached through [`MonadTrans::lift`], exactly as the paper's instances
/// do.
pub trait MonadState<S: Value>: MonadFamily {
    /// Yields the current state.
    fn get() -> Self::M<S>;

    /// Replaces the current state.
    fn put(s: S) -> Self::M<()>;

    /// Applies a function to the current state.
    fn modify<F>(f: F) -> Self::M<()>
    where
        F: Fn(S) -> S + 'static,
    {
        Self::bind(Self::get(), move |s| Self::put(f(s)))
    }

    /// Projects a value out of the current state.
    fn gets<A: Value, F>(f: F) -> Self::M<A>
    where
        F: Fn(&S) -> A + 'static,
    {
        Self::bind(Self::get(), move |s| Self::pure(f(&s)))
    }
}

/// A monad transformer: a family built on top of a `Base` family, with an
/// explicit `lift` (Haskell's `MonadTrans`).
pub trait MonadTrans: MonadFamily {
    /// The underlying monad this transformer wraps.
    type Base: MonadFamily;

    /// Lifts a computation of the base monad into the transformed monad.
    fn lift<A: Value>(m: <Self::Base as MonadFamily>::M<A>) -> Self::M<A>;
}

/// The paper's analysis monad (§5.3.1):
///
/// ```text
/// type StorePassing s g = StateT g (StateT s [])
/// ```
///
/// reading the stack "inside-out", a computation of type
/// `StorePassing<G, S>::M<A>` is a function `G -> S -> Vec<((A, G), S)>`:
/// given the analysis guts (time-stamp/context) and the store it produces a
/// *set* of results, each paired with an updated guts and store.
///
/// `G` is the "guts" (outer state: the context/time component), `S` is the
/// store.  Use [`run_store_passing`] to run a computation to this desugared
/// form.
pub type StorePassing<G, S> = StateT<G, StateT<S, VecM>>;

/// Runs a [`StorePassing`] computation, exposing the desugared
/// `g -> s -> Vec<((a, g), s)>` shape described in §5.3.1 of the paper.
///
/// ```rust
/// use mai_core::monad::{run_store_passing, MonadFamily, MonadState, StorePassing};
///
/// type M = StorePassing<u32, u32>;
/// let m = <M as MonadState<u32>>::modify(|t| t + 1);
/// let results = run_store_passing::<u32, u32, ()>(m, 7, 100);
/// assert_eq!(results, vec![(((), 8), 100)]);
/// ```
pub fn run_store_passing<G: Value, S: Value, A: Value>(
    m: <StorePassing<G, S> as MonadFamily>::M<A>,
    guts: G,
    store: S,
) -> Vec<((A, G), S)> {
    run_state_t::<S, VecM, (A, G)>(run_state_t::<G, StateT<S, VecM>, A>(m, guts), store)
}

#[cfg(test)]
mod tests {
    use super::*;

    type Sp = StorePassing<u64, u64>;

    #[test]
    fn store_passing_threads_both_states() {
        // Increment the guts, then (via lift) double the store.
        let m = Sp::bind(<Sp as MonadState<u64>>::modify(|t| t + 1), |_| {
            <Sp as MonadTrans>::lift(<StateT<u64, VecM> as MonadState<u64>>::modify(|s| s * 2))
        });
        let out = run_store_passing::<u64, u64, ()>(m, 1, 10);
        assert_eq!(out, vec![(((), 2), 20)]);
    }

    #[test]
    fn store_passing_nondeterminism_duplicates_state_threads() {
        // Two branches, each then increments the guts independently.
        let branches: <Sp as MonadFamily>::M<u64> = Sp::mplus(Sp::pure(10), Sp::pure(20));
        let m = Sp::bind(branches, |v| {
            Sp::bind(<Sp as MonadState<u64>>::modify(move |t| t + v), move |_| {
                Sp::pure(v)
            })
        });
        let out = run_store_passing::<u64, u64, u64>(m, 0, 0);
        assert_eq!(out, vec![((10, 10), 0), ((20, 20), 0)]);
    }

    #[test]
    fn then_discards_first_result() {
        let m = VecM::then(VecM::pure("ignored"), VecM::pure(5u8));
        assert_eq!(m, vec![5]);
    }

    #[test]
    fn fmap_maps_over_all_branches() {
        let m = VecM::fmap(vec![1u8, 2, 3], |x| x * 10);
        assert_eq!(m, vec![10, 20, 30]);
    }
}
