//! The identity monad: computations with no effect at all.

use super::{MonadFamily, Value};

/// The identity monad family: `M<A> = A`.
///
/// Useful as the base of a transformer stack when no non-determinism is
/// wanted (for instance a purely deterministic concrete interpreter), and as
/// the degenerate point of the spectrum of analyses the paper describes.
///
/// ```rust
/// use mai_core::monad::{IdM, MonadFamily};
/// let v = IdM::bind(IdM::pure(20), |x| IdM::pure(x + 2));
/// assert_eq!(v, 22);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdM;

impl MonadFamily for IdM {
    type M<A: Value> = A;

    fn pure<A: Value>(a: A) -> Self::M<A> {
        a
    }

    fn bind<A: Value, B: Value, F>(m: Self::M<A>, k: F) -> Self::M<B>
    where
        F: Fn(A) -> Self::M<B> + 'static,
    {
        k(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_just_application() {
        assert_eq!(IdM::pure(7u32), 7);
        assert_eq!(IdM::bind(7u32, |x| x + 1), 8);
        assert_eq!(IdM::fmap(7u32, |x| x * 2), 14);
    }

    #[test]
    fn identity_monad_laws() {
        let k = |x: u32| x.wrapping_mul(3);
        // left identity
        assert_eq!(IdM::bind(IdM::pure(5u32), move |x| IdM::pure(k(x))), k(5));
        // right identity
        assert_eq!(IdM::bind(11u32, IdM::pure), 11);
        // associativity
        let lhs = IdM::bind(IdM::bind(2u32, |x| x + 1), |y| y * 2);
        let rhs = IdM::bind(2u32, |x| IdM::bind(x + 1, |y| y * 2));
        assert_eq!(lhs, rhs);
    }
}
