//! The state monad *transformer*.

use std::marker::PhantomData;
use std::rc::Rc;

use super::{MonadFamily, MonadPlus, MonadState, MonadTrans, Value};

/// The state transformer `StateT<S, N>`: `M<A> = S -> N::M<(A, S)>`.
///
/// Stacking two of these over the non-determinism monad yields the paper's
/// analysis monad (§5.3.1):
///
/// ```text
/// type StorePassing s g = StateT g (StateT s [])
/// ```
///
/// The outer layer carries the analysis "guts" (time-stamps / contexts), the
/// inner layer carries the store, and the list at the bottom carries the
/// non-determinism of the abstract semantics.  Exactly as in the paper, the
/// outer layer's [`MonadState`] accesses the guts directly while the store
/// is reached with an explicit [`MonadTrans::lift`].
///
/// ```rust
/// use mai_core::monad::{run_state_t, MonadFamily, MonadState, StateT, VecM};
///
/// type M = StateT<u32, VecM>;
/// let m = <M as MonadState<u32>>::modify(|s| s + 1);
/// assert_eq!(run_state_t::<u32, VecM, ()>(m, 9), vec![((), 10)]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct StateT<S, N>(PhantomData<(S, N)>);

impl<S: Value, N: MonadFamily + 'static> MonadFamily for StateT<S, N> {
    type M<A: Value> = Rc<dyn Fn(S) -> N::M<(A, S)>>;

    fn pure<A: Value>(a: A) -> Self::M<A> {
        Rc::new(move |s| N::pure((a.clone(), s)))
    }

    fn bind<A: Value, B: Value, F>(m: Self::M<A>, k: F) -> Self::M<B>
    where
        F: Fn(A) -> Self::M<B> + 'static,
    {
        let k = Rc::new(k);
        Rc::new(move |s| {
            let k = Rc::clone(&k);
            N::bind(m(s), move |(a, s1)| (k(a))(s1))
        })
    }
}

impl<S: Value, N: MonadPlus + 'static> MonadPlus for StateT<S, N> {
    fn mzero<A: Value>() -> Self::M<A> {
        Rc::new(move |_s| N::mzero())
    }

    fn mplus<A: Value>(x: Self::M<A>, y: Self::M<A>) -> Self::M<A> {
        Rc::new(move |s: S| N::mplus(x(s.clone()), y(s)))
    }
}

impl<S: Value, N: MonadFamily + 'static> MonadState<S> for StateT<S, N> {
    fn get() -> Self::M<S> {
        Rc::new(|s: S| N::pure((s.clone(), s)))
    }

    fn put(s: S) -> Self::M<()> {
        Rc::new(move |_old| N::pure(((), s.clone())))
    }

    fn modify<F>(f: F) -> Self::M<()>
    where
        F: Fn(S) -> S + 'static,
    {
        Rc::new(move |s| N::pure(((), f(s))))
    }

    fn gets<A: Value, F>(f: F) -> Self::M<A>
    where
        F: Fn(&S) -> A + 'static,
    {
        Rc::new(move |s| {
            let a = f(&s);
            N::pure((a, s))
        })
    }
}

impl<S: Value, N: MonadFamily + 'static> MonadTrans for StateT<S, N> {
    type Base = N;

    fn lift<A: Value>(m: N::M<A>) -> Self::M<A> {
        Rc::new(move |s: S| {
            let s2 = s;
            N::bind(m.clone(), move |a| N::pure((a, s2.clone())))
        })
    }
}

/// Runs one [`StateT`] layer with an initial state, exposing the computation
/// of the underlying monad.
pub fn run_state_t<S: Value, N: MonadFamily + 'static, A: Value>(
    m: <StateT<S, N> as MonadFamily>::M<A>,
    s: S,
) -> N::M<(A, S)> {
    m(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::VecM;

    type M = StateT<u32, VecM>;

    #[test]
    fn state_layer_threads_through_nondeterminism() {
        // Branch first, then each branch bumps the state by its own value.
        let branches: <M as MonadFamily>::M<u32> = M::mplus(M::pure(1), M::pure(2));
        let m = M::bind(branches, |v| {
            M::then(
                <M as MonadState<u32>>::modify(move |s| s + v),
                M::pure(v * 100),
            )
        });
        assert_eq!(
            run_state_t::<u32, VecM, u32>(m, 0),
            vec![(100, 1), (200, 2)]
        );
    }

    #[test]
    fn lift_injects_base_nondeterminism() {
        let m = <M as MonadTrans>::lift(vec![7u32, 8]);
        assert_eq!(run_state_t::<u32, VecM, u32>(m, 3), vec![(7, 3), (8, 3)]);
    }

    #[test]
    fn mzero_produces_no_results() {
        let m: <M as MonadFamily>::M<u32> = M::mzero();
        assert!(run_state_t::<u32, VecM, u32>(m, 0).is_empty());
    }

    #[test]
    fn put_and_get_observe_each_other() {
        let m = M::then(
            <M as MonadState<u32>>::put(55),
            <M as MonadState<u32>>::get(),
        );
        assert_eq!(run_state_t::<u32, VecM, u32>(m, 0), vec![(55, 55)]);
    }

    #[test]
    fn monad_laws_observationally() {
        let k = |x: u32| <M as MonadState<u32>>::gets(move |s| s + x);
        let lhs = M::bind(M::pure(4), k);
        let rhs = k(4);
        assert_eq!(
            run_state_t::<u32, VecM, u32>(lhs, 10),
            run_state_t::<u32, VecM, u32>(rhs, 10)
        );

        let m = M::mplus(M::pure(1u32), M::pure(2));
        let lhs = M::bind(m.clone(), M::pure);
        assert_eq!(
            run_state_t::<u32, VecM, u32>(lhs, 0),
            run_state_t::<u32, VecM, u32>(m, 0)
        );
    }
}
