//! A small s-expression reader.
//!
//! The CPS and direct-style λ-calculus front ends use a Scheme-like concrete
//! syntax (`(λ (x k) (k x))`), so the core crate provides one shared,
//! well-tested s-expression layer: a tokenizer, a parser producing [`Sexp`]
//! trees, and a pretty-printer.

use std::error::Error;
use std::fmt;

/// An s-expression: an atom or a parenthesised list of s-expressions.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sexp {
    /// A bare token.
    Atom(String),
    /// A parenthesised sequence.
    List(Vec<Sexp>),
}

impl Sexp {
    /// Convenience constructor for atoms.
    pub fn atom(s: impl Into<String>) -> Self {
        Sexp::Atom(s.into())
    }

    /// Convenience constructor for lists.
    pub fn list(items: Vec<Sexp>) -> Self {
        Sexp::List(items)
    }

    /// The atom's text, if this is an atom.
    pub fn as_atom(&self) -> Option<&str> {
        match self {
            Sexp::Atom(s) => Some(s),
            Sexp::List(_) => None,
        }
    }

    /// The list's items, if this is a list.
    pub fn as_list(&self) -> Option<&[Sexp]> {
        match self {
            Sexp::Atom(_) => None,
            Sexp::List(items) => Some(items),
        }
    }
}

impl fmt::Display for Sexp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sexp::Atom(s) => write!(f, "{}", s),
            Sexp::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    write!(f, "{}", item)?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An error produced while reading s-expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseSexpError {
    /// A closing parenthesis with no matching opener.
    UnexpectedClose {
        /// Byte offset of the offending token.
        position: usize,
    },
    /// The input ended while a list was still open.
    UnexpectedEnd,
    /// Extra tokens after a complete s-expression (only reported by
    /// [`parse_one`]).
    TrailingTokens {
        /// Byte offset where the extra material starts.
        position: usize,
    },
    /// The input contained no s-expression at all (only reported by
    /// [`parse_one`]).
    Empty,
}

impl fmt::Display for ParseSexpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseSexpError::UnexpectedClose { position } => {
                write!(f, "unexpected ')' at byte {}", position)
            }
            ParseSexpError::UnexpectedEnd => write!(f, "unexpected end of input inside a list"),
            ParseSexpError::TrailingTokens { position } => {
                write!(f, "trailing tokens after expression at byte {}", position)
            }
            ParseSexpError::Empty => write!(f, "no expression found"),
        }
    }
}

impl Error for ParseSexpError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Open(usize),
    Close(usize),
    Atom(usize, String),
}

fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ';' => {
                // Comment until end of line.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' | '[' => {
                tokens.push(Token::Open(i));
                i += 1;
            }
            ')' | ']' => {
                tokens.push(Token::Close(i));
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            _ => {
                let start = i;
                let mut atom = String::new();
                while i < bytes.len()
                    && !bytes[i].is_whitespace()
                    && !matches!(bytes[i], '(' | ')' | '[' | ']' | ';')
                {
                    atom.push(bytes[i]);
                    i += 1;
                }
                tokens.push(Token::Atom(start, atom));
            }
        }
    }
    tokens
}

/// Parses every top-level s-expression in the input.
///
/// Comments start with `;` and run to the end of the line; square brackets
/// are accepted as synonyms for parentheses.
///
/// # Errors
///
/// Returns [`ParseSexpError`] on unbalanced parentheses.
///
/// ```rust
/// use mai_core::sexp::{parse_all, Sexp};
/// let forms = parse_all("(f x) y ; comment\n(g)").unwrap();
/// assert_eq!(forms.len(), 3);
/// assert_eq!(forms[1], Sexp::atom("y"));
/// ```
pub fn parse_all(input: &str) -> Result<Vec<Sexp>, ParseSexpError> {
    let tokens = tokenize(input);
    let mut stack: Vec<Vec<Sexp>> = vec![Vec::new()];
    for token in tokens {
        match token {
            Token::Open(_) => stack.push(Vec::new()),
            Token::Close(position) => {
                let finished = stack.pop().expect("stack never empty");
                match stack.last_mut() {
                    Some(parent) => parent.push(Sexp::List(finished)),
                    None => return Err(ParseSexpError::UnexpectedClose { position }),
                }
            }
            Token::Atom(_, text) => stack
                .last_mut()
                .expect("stack never empty")
                .push(Sexp::Atom(text)),
        }
    }
    if stack.len() != 1 {
        return Err(ParseSexpError::UnexpectedEnd);
    }
    Ok(stack.pop().expect("stack never empty"))
}

/// Parses exactly one s-expression, rejecting trailing material.
///
/// # Errors
///
/// Returns [`ParseSexpError`] on unbalanced parentheses, empty input, or
/// extra tokens after the first complete expression.
pub fn parse_one(input: &str) -> Result<Sexp, ParseSexpError> {
    let forms = parse_all(input)?;
    let mut iter = forms.into_iter();
    match (iter.next(), iter.next()) {
        (Some(form), None) => Ok(form),
        (Some(_), Some(_)) => Err(ParseSexpError::TrailingTokens { position: 0 }),
        (None, _) => Err(ParseSexpError::Empty),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_nested_lists() {
        let parsed = parse_one("(f (g x) y)").unwrap();
        assert_eq!(
            parsed,
            Sexp::list(vec![
                Sexp::atom("f"),
                Sexp::list(vec![Sexp::atom("g"), Sexp::atom("x")]),
                Sexp::atom("y"),
            ])
        );
    }

    #[test]
    fn square_brackets_are_parentheses() {
        assert_eq!(parse_one("[f x]").unwrap(), parse_one("(f x)").unwrap());
    }

    #[test]
    fn comments_are_ignored() {
        let parsed = parse_all("; a program\n(f x) ; trailing\n").unwrap();
        assert_eq!(parsed.len(), 1);
    }

    #[test]
    fn unbalanced_parens_are_rejected() {
        assert_eq!(parse_one("(f x"), Err(ParseSexpError::UnexpectedEnd));
        assert!(matches!(
            parse_one("f x)"),
            Err(ParseSexpError::TrailingTokens { .. })
                | Err(ParseSexpError::UnexpectedClose { .. })
        ));
        assert!(matches!(
            parse_all(")"),
            Err(ParseSexpError::UnexpectedClose { .. })
        ));
    }

    #[test]
    fn empty_input_is_rejected_by_parse_one() {
        assert_eq!(parse_one("  ; nothing here\n"), Err(ParseSexpError::Empty));
        assert!(parse_all("").unwrap().is_empty());
    }

    #[test]
    fn unicode_atoms_survive() {
        let parsed = parse_one("(λ (x) x)").unwrap();
        assert_eq!(parsed.as_list().unwrap()[0], Sexp::atom("λ"));
    }

    #[test]
    fn display_round_trips_simple_forms() {
        let text = "(f (g x) y)";
        let parsed = parse_one(text).unwrap();
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn error_messages_are_nonempty() {
        for err in [
            ParseSexpError::UnexpectedClose { position: 3 },
            ParseSexpError::UnexpectedEnd,
            ParseSexpError::TrailingTokens { position: 0 },
            ParseSexpError::Empty,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    fn arb_sexp() -> impl Strategy<Value = Sexp> {
        let leaf = "[a-z][a-z0-9]{0,5}".prop_map(Sexp::Atom);
        leaf.prop_recursive(4, 32, 5, |inner| {
            proptest::collection::vec(inner, 0..5).prop_map(Sexp::List)
        })
    }

    proptest! {
        #[test]
        fn prop_print_then_parse_round_trips(sexp in arb_sexp()) {
            let printed = sexp.to_string();
            let reparsed = parse_one(&printed).unwrap();
            prop_assert_eq!(reparsed, sexp);
        }
    }
}
