//! Structured engine telemetry: per-round traces, per-worker spans and
//! hot-spot attribution for the fixpoint ladder.
//!
//! `EngineStats` answers *how much* work a solve performed; this module
//! answers *where the wall-clock went*.  The engines thread a
//! [`TraceSink`] through their `_traced` entry points and report, per
//! solver round, the frontier size, the states stepped, the contribution
//! joins, the per-address delta width and the wall-clock split into a
//! *step* phase (transition functions running), a *join* phase (deltas
//! folded into the accumulated store) and — for the sharded parallel
//! driver — a *sync* phase (barrier/coordination overhead, the gap
//! between the slowest worker's busy time and the phase wall).  The
//! parallel driver additionally reports one [`WorkerSpan`] per worker per
//! round (shard occupancy, steal count, busy and barrier-wait time) and
//! one [`StealTrace`] per stolen chunk.
//!
//! ## Zero cost when off
//!
//! [`TraceSink`] is a monomorphized trait whose methods all have empty
//! default bodies, and every untraced engine entry point passes
//! [`NoopSink`] — so the compiler sees statically that the sink does
//! nothing and the event plumbing folds away.  Wall-clock sampling is
//! gated on [`TraceSink::enabled`] (via [`Stopwatch`]), so the untraced
//! path performs no `Instant::now` calls either.  Crucially, **no
//! deterministic work counter ever branches on the sink**: the
//! differential suite asserts byte-identical fixpoints and identical
//! [`EngineStats`](crate::engine::EngineStats) with tracing on and off.
//!
//! ## Lock-free worker buffers
//!
//! Parallel workers never share a sink.  Each worker records its span
//! into a private [`WorkerBuffer`] it owns exclusively for the duration
//! of a step phase (part of its per-phase outcome), and the coordinator
//! drains the buffers into the single sink at the join-on-sync barrier —
//! the same moment it installs the workers' step results, so tracing adds
//! no synchronisation whatsoever to the phase itself.
//!
//! ## Exporters
//!
//! [`TraceBuffer`] is the reference sink: it aggregates rounds, spans,
//! steals, per-state step cost and per-address join traffic, and renders
//!
//! * [`TraceBuffer::chrome_trace_json`] — Chrome trace-event JSON.  The
//!   timeline is reconstructed by *stacking* round phase durations (round
//!   `r+1` starts where round `r` ended), which keeps the export free of
//!   cross-thread clock synchronisation; load the file in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! * [`TraceBuffer::rounds_csv`] — a compact per-round CSV.
//! * [`TraceBuffer::profile_summary`] — the human-readable summary behind
//!   `mai-bench --profile`.

use std::fmt::Debug;
use std::fmt::Write as _;
use std::time::Instant;

use crate::engine::governor::{ExhaustReason, LadderRung};
use crate::hash::FxHashMap;
use crate::intern::StateId;

/// One solver round, with its wall-clock decomposed into phases.
///
/// Sequential engines report `sync_ns = 0`; the parallel driver reports
/// `step_ns` as the slowest worker's busy time and `sync_ns` as the rest
/// of the phase wall (barrier wake-up, shard publication, outcome
/// collection), so `step + join + sync` is the round's wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundTrace {
    /// 1-based round number.
    pub round: usize,
    /// States on the round's frontier (for the per-state engine: the BFS
    /// generation size; for Kleene iteration: the states re-stepped).
    pub frontier: usize,
    /// States actually stepped this round (differs from `frontier` on
    /// rebuild rounds, which re-step every known state).
    pub stepped: usize,
    /// Contribution joins folded this round.
    pub joins: usize,
    /// Addresses whose accumulated binding grew this round.
    pub delta_width: usize,
    /// Whether this was a non-monotone *rebuild* round.
    pub rebuild: bool,
    /// Nanoseconds spent running transition functions.
    pub step_ns: u64,
    /// Nanoseconds spent folding deltas into the accumulator.
    pub join_ns: u64,
    /// Nanoseconds of parallel coordination overhead (0 when sequential).
    pub sync_ns: u64,
}

impl RoundTrace {
    /// The round's total wall-clock in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.step_ns + self.join_ns + self.sync_ns
    }
}

/// One worker's activity within one parallel step phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSpan {
    /// The solver round the span belongs to.
    pub round: usize,
    /// Worker index (0-based).
    pub worker: usize,
    /// Pairs this worker stepped (own shard plus stolen chunks).
    pub processed: usize,
    /// Chunks this worker stole from other shards.
    pub steals: usize,
    /// Nanoseconds spent inside the phase body (stepping + claiming).
    pub busy_ns: u64,
    /// Nanoseconds the worker idled while the phase was still open —
    /// the barrier-wait share of the phase wall.
    pub wait_ns: u64,
}

/// One work-stealing event: `thief` claimed a chunk of `victim`'s shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealTrace {
    /// The solver round the steal happened in.
    pub round: usize,
    /// The worker that ran out of its own shard.
    pub thief: usize,
    /// The shard the chunk was taken from.
    pub victim: usize,
}

/// One worker epoch of the **elastic** parallel driver: between two
/// barriers a worker advances its private sub-frontier for up to `E`
/// epochs, and each one is reported as a span nested inside the worker's
/// busy window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochTrace {
    /// The solver (super-)round the epoch belongs to.
    pub round: usize,
    /// Worker index (0-based).
    pub worker: usize,
    /// 1-based epoch number within the round.
    pub epoch: usize,
    /// States stepped during this epoch.
    pub stepped: usize,
    /// Fresh states this epoch minted into the worker's next sub-frontier.
    pub fresh: usize,
    /// Whether the epoch detected a stale read (another shard published a
    /// newer epoch for an address this worker read) and forced the merge.
    pub stale_exit: bool,
    /// Nanoseconds spent inside the epoch body.
    pub busy_ns: u64,
}

/// One lazy merge of the elastic driver: the barrier at which per-shard
/// deltas accumulated over the round's epochs are folded into the global
/// store and the dependency index is re-seeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeTrace {
    /// The solver (super-)round the merge ended.
    pub round: usize,
    /// Entries installed at this merge (one per state stepped this round).
    pub entries: usize,
    /// Addresses whose accumulated binding grew at this merge.
    pub changed: usize,
    /// Whether any worker forced this merge through a stale read (as
    /// opposed to frontier drain or epoch-budget exhaustion).
    pub stale: bool,
    /// Nanoseconds the coordinator spent folding the deltas.
    pub merge_ns: u64,
}

/// A governance event of a governed solve: the budget fired, or a
/// degradation-ladder rung faulted.
///
/// The cancel-latency tests are built on these records: the `round`
/// of an [`GovernorTraceKind::Exhausted`] event is the number of
/// *completed* rounds when the budget was observed, so the distance
/// between the cancel request and the event bounds the observation
/// latency in rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorTrace {
    /// Rounds completed when the event was observed (sequential and
    /// barrier engines observe at round boundaries; for ladder events,
    /// the rung's rounds completed before it faulted is unknown, so 0).
    pub round: usize,
    /// What was observed.
    pub kind: GovernorTraceKind,
}

/// What a [`GovernorTrace`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GovernorTraceKind {
    /// The budget fired with this reason; the solve returned a partial.
    Exhausted(ExhaustReason),
    /// This degradation-ladder rung faulted (a worker panicked) and the
    /// solve fell to the next rung.
    RungFaulted(LadderRung),
}

/// A structured trace consumer, threaded through the engines' `_traced`
/// entry points.
///
/// Every method has an empty default body and the whole trait is
/// monomorphized, so the [`NoopSink`] the untraced entry points pass
/// compiles to nothing.  Implementations that record must override
/// [`TraceSink::enabled`] to return `true` — the engines use it to gate
/// clock sampling and label formatting (never counter updates).
pub trait TraceSink {
    /// Whether events will actually be recorded.  Engines skip
    /// `Instant::now` and `Debug`-label formatting when this is `false`.
    fn enabled(&self) -> bool {
        false
    }

    /// One solver round completed.
    fn round(&mut self, _event: RoundTrace) {}

    /// One worker's span within a parallel step phase.
    fn worker(&mut self, _span: WorkerSpan) {}

    /// One work-stealing event.
    fn steal(&mut self, _event: StealTrace) {}

    /// One worker epoch of the elastic driver.
    fn epoch(&mut self, _event: EpochTrace) {}

    /// One lazy merge of the elastic driver.
    fn merge(&mut self, _event: MergeTrace) {}

    /// One governance event: budget exhaustion observed, or a ladder
    /// rung faulted.
    fn governor(&mut self, _event: GovernorTrace) {}

    /// `ns` nanoseconds were spent stepping the state labelled `label`
    /// (cumulative attribution: called once per step of that state).
    fn state_cost(&mut self, _label: &str, _ns: u64) {}

    /// A folded delta touched the address labelled `label`; `widened` is
    /// whether the accumulated binding actually grew.
    fn join_traffic(&mut self, _label: &str, _widened: bool) {}
}

/// The do-nothing sink behind every untraced engine entry point.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// A nanosecond stopwatch that touches the clock only when armed —
/// the engines' way of keeping the tracing-off path free of
/// `Instant::now` calls.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts the stopwatch if `armed`, else returns an inert one.
    pub fn start(armed: bool) -> Self {
        Stopwatch(armed.then(Instant::now))
    }

    /// Nanoseconds since the start (or last lap); restarts the lap.
    /// 0 when inert.
    pub fn lap_ns(&mut self) -> u64 {
        match self.0 {
            Some(since) => {
                let now = Instant::now();
                let ns = now.duration_since(since).as_nanos() as u64;
                self.0 = Some(now);
                ns
            }
            None => 0,
        }
    }
}

/// A lock-free per-worker trace buffer: each parallel worker owns one
/// exclusively during a step phase (no sharing, no locks — it travels
/// with the worker's phase outcome) and the coordinator drains it into
/// the one sink at the join-on-sync barrier via
/// [`WorkerBuffer::drain_into`].
#[derive(Debug, Default)]
pub struct WorkerBuffer {
    /// Nanoseconds this worker spent inside the phase body.
    pub busy_ns: u64,
    /// Shard indices this worker stole a chunk from, one per steal.
    pub victims: Vec<usize>,
    /// Per-step cost records `(state id, ns)`.
    pub costs: Vec<(StateId, u64)>,
    /// Elastic-driver epochs this worker ran within the phase
    /// (`(epoch, stepped, fresh, stale_exit, busy_ns)`); empty for the
    /// barrier driver.
    pub epochs: Vec<(usize, usize, usize, bool, u64)>,
}

impl WorkerBuffer {
    /// Drains the buffer into `sink` as one [`WorkerSpan`] plus its
    /// [`StealTrace`]s and state-cost records, resolving ids to labels
    /// through `label` (only called here, after the phase, so workers
    /// never format).  `wall_ns` is the coordinator-observed phase wall;
    /// the span's wait time is `wall_ns − busy_ns`.
    pub fn drain_into<T: TraceSink>(
        self,
        round: usize,
        worker: usize,
        processed: usize,
        wall_ns: u64,
        sink: &mut T,
        mut label: impl FnMut(StateId) -> String,
    ) {
        sink.worker(WorkerSpan {
            round,
            worker,
            processed,
            steals: self.victims.len(),
            busy_ns: self.busy_ns,
            wait_ns: wall_ns.saturating_sub(self.busy_ns),
        });
        for victim in self.victims {
            sink.steal(StealTrace {
                round,
                thief: worker,
                victim,
            });
        }
        for (epoch, stepped, fresh, stale_exit, busy_ns) in self.epochs {
            sink.epoch(EpochTrace {
                round,
                worker,
                epoch,
                stepped,
                fresh,
                stale_exit,
                busy_ns,
            });
        }
        for (id, ns) in self.costs {
            sink.state_cost(&label(id), ns);
        }
    }
}

/// Renders a `Debug` value as a single-line label truncated to roughly
/// `max` characters — hot-spot attribution keys, not pretty-printing.
pub fn label_of<V: Debug>(value: &V, max: usize) -> String {
    let mut label = format!("{value:?}");
    if let Some((cut, _)) = label.char_indices().nth(max) {
        label.truncate(cut);
        label.push('…');
    }
    label
}

/// Cumulative step cost of one state across the solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotState {
    /// The state's (truncated `Debug`) label.
    pub label: String,
    /// How many times the state was stepped.
    pub steps: usize,
    /// Total nanoseconds spent stepping it.
    pub total_ns: u64,
}

/// Cumulative join traffic of one address across the solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotAddr {
    /// The address's (`Debug`) label.
    pub label: String,
    /// How many folded deltas bound the address.
    pub joins: usize,
    /// How many of those joins actually grew the accumulated binding.
    pub widenings: usize,
}

/// Wall-clock totals across all recorded rounds, by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTotals {
    /// Total nanoseconds in step phases.
    pub step_ns: u64,
    /// Total nanoseconds in join (fold) phases.
    pub join_ns: u64,
    /// Total nanoseconds of parallel coordination overhead.
    pub sync_ns: u64,
}

impl PhaseTotals {
    /// The summed wall-clock of all rounds, in nanoseconds.
    pub fn wall_ns(&self) -> u64 {
        self.step_ns + self.join_ns + self.sync_ns
    }
}

/// The reference [`TraceSink`]: records every event and aggregates the
/// hot-spot attribution, then exports Chrome trace JSON, per-round CSV
/// or a human-readable profile summary.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    /// Every recorded round, in order.
    pub rounds: Vec<RoundTrace>,
    /// Every recorded worker span, in arrival order.
    pub workers: Vec<WorkerSpan>,
    /// Every recorded steal event, in arrival order.
    pub steals: Vec<StealTrace>,
    /// Every recorded elastic worker epoch, in arrival order.
    pub epochs: Vec<EpochTrace>,
    /// Every recorded elastic merge, in arrival order.
    pub merges: Vec<MergeTrace>,
    /// Every recorded governance event, in arrival order.
    pub governor_events: Vec<GovernorTrace>,
    state_costs: FxHashMap<String, (usize, u64)>,
    join_counts: FxHashMap<String, (usize, usize)>,
}

impl TraceSink for TraceBuffer {
    fn enabled(&self) -> bool {
        true
    }

    fn round(&mut self, event: RoundTrace) {
        self.rounds.push(event);
    }

    fn worker(&mut self, span: WorkerSpan) {
        self.workers.push(span);
    }

    fn steal(&mut self, event: StealTrace) {
        self.steals.push(event);
    }

    fn epoch(&mut self, event: EpochTrace) {
        self.epochs.push(event);
    }

    fn merge(&mut self, event: MergeTrace) {
        self.merges.push(event);
    }

    fn governor(&mut self, event: GovernorTrace) {
        self.governor_events.push(event);
    }

    fn state_cost(&mut self, label: &str, ns: u64) {
        let (steps, total) = self.state_costs.entry(label.to_owned()).or_default();
        *steps += 1;
        *total += ns;
    }

    fn join_traffic(&mut self, label: &str, widened: bool) {
        let (joins, widenings) = self.join_counts.entry(label.to_owned()).or_default();
        *joins += 1;
        *widenings += usize::from(widened);
    }
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock totals across all recorded rounds, by phase.
    pub fn phase_totals(&self) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for r in &self.rounds {
            totals.step_ns += r.step_ns;
            totals.join_ns += r.join_ns;
            totals.sync_ns += r.sync_ns;
        }
        totals
    }

    /// The `k` states with the largest cumulative step cost, descending
    /// (ties broken by label, so the order is deterministic).
    pub fn top_states(&self, k: usize) -> Vec<HotState> {
        let mut all: Vec<HotState> = self
            .state_costs
            .iter()
            .map(|(label, &(steps, total_ns))| HotState {
                label: label.clone(),
                steps,
                total_ns,
            })
            .collect();
        all.sort_by(|a, b| {
            b.total_ns
                .cmp(&a.total_ns)
                .then_with(|| a.label.cmp(&b.label))
        });
        all.truncate(k);
        all
    }

    /// The `k` addresses with the most join traffic, descending (ties
    /// broken by widenings, then label).
    pub fn top_addresses(&self, k: usize) -> Vec<HotAddr> {
        let mut all: Vec<HotAddr> = self
            .join_counts
            .iter()
            .map(|(label, &(joins, widenings))| HotAddr {
                label: label.clone(),
                joins,
                widenings,
            })
            .collect();
        all.sort_by(|a, b| {
            b.joins
                .cmp(&a.joins)
                .then_with(|| b.widenings.cmp(&a.widenings))
                .then_with(|| a.label.cmp(&b.label))
        });
        all.truncate(k);
        all
    }

    /// Per-worker totals across all rounds: `(worker, processed, steals,
    /// busy_ns, wait_ns)`, sorted by worker index.
    pub fn worker_totals(&self) -> Vec<(usize, usize, usize, u64, u64)> {
        let mut by_worker: FxHashMap<usize, (usize, usize, u64, u64)> = FxHashMap::default();
        for span in &self.workers {
            let slot = by_worker.entry(span.worker).or_default();
            slot.0 += span.processed;
            slot.1 += span.steals;
            slot.2 += span.busy_ns;
            slot.3 += span.wait_ns;
        }
        let mut totals: Vec<_> = by_worker
            .into_iter()
            .map(|(w, (processed, steals, busy, wait))| (w, processed, steals, busy, wait))
            .collect();
        totals.sort_unstable();
        totals
    }

    /// Chrome trace-event JSON (the `traceEvents` object form) — open it
    /// in Perfetto or `chrome://tracing`.
    ///
    /// The timeline stacks round durations: round `r+1`'s step phase
    /// starts where round `r`'s sync phase ended, so no cross-thread
    /// clock synchronisation is needed.  Thread 0 is the driver (one
    /// `X` slice per phase per round); threads `w+1` carry worker `w`'s
    /// busy/wait slices inside the round's step window; steals are `i`
    /// instants on the thief's thread.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, event: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&event);
        };
        push(
            &mut out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"mai fixpoint engine\"}}"
                .to_owned(),
        );
        push(
            &mut out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"driver\"}}"
                .to_owned(),
        );
        let worker_ids: std::collections::BTreeSet<usize> =
            self.workers.iter().map(|s| s.worker).collect();
        for &w in &worker_ids {
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                     \"args\":{{\"name\":\"worker {}\"}}}}",
                    w + 1,
                    w
                ),
            );
        }
        let us = |ns: u64| format!("{:.3}", ns as f64 / 1000.0);
        let mut cursor_ns: u64 = 0;
        for r in &self.rounds {
            let step_start = cursor_ns;
            push(
                &mut out,
                format!(
                    "{{\"name\":\"round {} step\",\"cat\":\"step\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{\
                     \"round\":{},\"frontier\":{},\"stepped\":{},\"rebuild\":{}}}}}",
                    r.round,
                    us(step_start),
                    us(r.step_ns),
                    r.round,
                    r.frontier,
                    r.stepped,
                    r.rebuild
                ),
            );
            for span in self.workers.iter().filter(|s| s.round == r.round) {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"busy\",\"cat\":\"worker\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\
                         \"processed\":{},\"steals\":{}}}}}",
                        us(step_start),
                        us(span.busy_ns),
                        span.worker + 1,
                        span.processed,
                        span.steals
                    ),
                );
                if span.wait_ns > 0 {
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"barrier wait\",\"cat\":\"barrier\",\"ph\":\"X\",\
                             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{}}}}",
                            us(step_start + span.busy_ns),
                            us(span.wait_ns),
                            span.worker + 1
                        ),
                    );
                }
                // Elastic epochs nest inside the worker's busy slice,
                // stacked in epoch order.
                let mut epoch_cursor = step_start;
                for e in self
                    .epochs
                    .iter()
                    .filter(|e| e.round == r.round && e.worker == span.worker)
                {
                    push(
                        &mut out,
                        format!(
                            "{{\"name\":\"epoch {}\",\"cat\":\"epoch\",\"ph\":\"X\",\
                             \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\
                             \"stepped\":{},\"fresh\":{},\"stale_exit\":{}}}}}",
                            e.epoch,
                            us(epoch_cursor),
                            us(e.busy_ns),
                            e.worker + 1,
                            e.stepped,
                            e.fresh,
                            e.stale_exit
                        ),
                    );
                    epoch_cursor += e.busy_ns;
                }
            }
            for steal in self.steals.iter().filter(|s| s.round == r.round) {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"steal\",\"cat\":\"steal\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{},\"pid\":0,\"tid\":{},\"args\":{{\"victim\":{}}}}}",
                        us(step_start),
                        steal.thief + 1,
                        steal.victim
                    ),
                );
            }
            cursor_ns += r.step_ns;
            push(
                &mut out,
                format!(
                    "{{\"name\":\"round {} join\",\"cat\":\"join\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{\
                     \"joins\":{},\"delta_width\":{}}}}}",
                    r.round,
                    us(cursor_ns),
                    us(r.join_ns),
                    r.joins,
                    r.delta_width
                ),
            );
            // Elastic lazy merges nest inside the round's join slice.
            for m in self.merges.iter().filter(|m| m.round == r.round) {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"round {} merge\",\"cat\":\"merge\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{\
                         \"entries\":{},\"changed\":{},\"stale\":{}}}}}",
                        m.round,
                        us(cursor_ns),
                        us(m.merge_ns),
                        m.entries,
                        m.changed,
                        m.stale
                    ),
                );
            }
            cursor_ns += r.join_ns;
            if r.sync_ns > 0 {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"round {} sync\",\"cat\":\"sync\",\"ph\":\"X\",\
                         \"ts\":{},\"dur\":{},\"pid\":0,\"tid\":0,\"args\":{{}}}}",
                        r.round,
                        us(cursor_ns),
                        us(r.sync_ns)
                    ),
                );
                cursor_ns += r.sync_ns;
            }
        }
        // Governance events land as global instants at the end of the
        // reconstructed timeline (their round is in the args).
        for g in &self.governor_events {
            let (name, detail) = match g.kind {
                GovernorTraceKind::Exhausted(reason) => ("budget exhausted", reason.as_str()),
                GovernorTraceKind::RungFaulted(rung) => ("ladder fallback", rung.as_str()),
            };
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"governor\",\"ph\":\"i\",\"s\":\"g\",\
                     \"ts\":{},\"pid\":0,\"tid\":0,\"args\":{{\"round\":{},\"detail\":\"{detail}\"}}}}",
                    us(cursor_ns),
                    g.round,
                ),
            );
        }
        out.push_str("]}");
        out
    }

    /// A compact per-round CSV (microsecond durations).
    pub fn rounds_csv(&self) -> String {
        let mut out = String::from(
            "round,frontier,stepped,joins,delta_width,rebuild,step_us,join_us,sync_us\n",
        );
        for r in &self.rounds {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.3},{:.3},{:.3}",
                r.round,
                r.frontier,
                r.stepped,
                r.joins,
                r.delta_width,
                r.rebuild,
                r.step_ns as f64 / 1000.0,
                r.join_ns as f64 / 1000.0,
                r.sync_ns as f64 / 1000.0
            );
        }
        out
    }

    /// A human-readable profile: phase split, the costliest rounds, the
    /// per-worker totals and the top-`k` hot states and addresses.
    pub fn profile_summary(&self, k: usize) -> String {
        let totals = self.phase_totals();
        let wall = totals.wall_ns().max(1);
        let pct = |ns: u64| ns as f64 * 100.0 / wall as f64;
        let ms = |ns: u64| ns as f64 / 1e6;
        let rebuilds = self.rounds.iter().filter(|r| r.rebuild).count();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rounds={} (rebuilds={})  wall={:.3}ms  step={:.3}ms ({:.1}%)  join={:.3}ms ({:.1}%)  sync={:.3}ms ({:.1}%)",
            self.rounds.len(),
            rebuilds,
            ms(wall),
            ms(totals.step_ns),
            pct(totals.step_ns),
            ms(totals.join_ns),
            pct(totals.join_ns),
            ms(totals.sync_ns),
            pct(totals.sync_ns),
        );
        let mut costly: Vec<&RoundTrace> = self.rounds.iter().collect();
        costly.sort_by_key(|r| std::cmp::Reverse(r.wall_ns()));
        costly.truncate(k);
        if !costly.is_empty() {
            let _ = writeln!(out, "costliest rounds:");
            for r in costly {
                let _ = writeln!(
                    out,
                    "  round {:>4}: frontier={:<6} stepped={:<6} joins={:<6} delta={:<5} {}step={:.3}ms join={:.3}ms sync={:.3}ms",
                    r.round,
                    r.frontier,
                    r.stepped,
                    r.joins,
                    r.delta_width,
                    if r.rebuild { "REBUILD " } else { "" },
                    ms(r.step_ns),
                    ms(r.join_ns),
                    ms(r.sync_ns),
                );
            }
        }
        let workers = self.worker_totals();
        if !workers.is_empty() {
            let _ = writeln!(out, "workers:");
            for (w, processed, steals, busy, wait) in workers {
                let _ = writeln!(
                    out,
                    "  worker {w}: processed={processed:<6} steals={steals:<4} busy={:.3}ms wait={:.3}ms",
                    ms(busy),
                    ms(wait),
                );
            }
        }
        if !self.epochs.is_empty() {
            let stale = self.epochs.iter().filter(|e| e.stale_exit).count();
            let max_epoch = self.epochs.iter().map(|e| e.epoch).max().unwrap_or(0);
            let _ = writeln!(
                out,
                "elastic: {} worker-epochs (deepest {max_epoch}, {stale} stale exits) over {} merges",
                self.epochs.len(),
                self.merges.len(),
            );
        }
        if !self.governor_events.is_empty() {
            let _ = writeln!(out, "governance:");
            for g in &self.governor_events {
                let what = match g.kind {
                    GovernorTraceKind::Exhausted(reason) => {
                        format!("budget exhausted ({reason})")
                    }
                    GovernorTraceKind::RungFaulted(rung) => {
                        format!("ladder rung faulted ({rung})")
                    }
                };
                let _ = writeln!(out, "  after round {}: {what}", g.round);
            }
        }
        let hot_states = self.top_states(k);
        if !hot_states.is_empty() {
            let _ = writeln!(out, "hot states (by cumulative step cost):");
            for h in hot_states {
                let _ = writeln!(
                    out,
                    "  {:.3}ms over {:>4} steps  {}",
                    ms(h.total_ns),
                    h.steps,
                    h.label
                );
            }
        }
        let hot_addrs = self.top_addresses(k);
        if !hot_addrs.is_empty() {
            let _ = writeln!(out, "hot addresses (by join traffic):");
            for h in hot_addrs {
                let _ = writeln!(
                    out,
                    "  {:>5} joins ({:>4} widenings)  {}",
                    h.joins, h.widenings, h.label
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::InternKey;

    fn sample_buffer() -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.round(RoundTrace {
            round: 1,
            frontier: 1,
            stepped: 1,
            joins: 1,
            delta_width: 2,
            rebuild: false,
            step_ns: 1_000,
            join_ns: 500,
            sync_ns: 250,
        });
        buf.round(RoundTrace {
            round: 2,
            frontier: 3,
            stepped: 4,
            joins: 4,
            delta_width: 1,
            rebuild: true,
            step_ns: 2_000,
            join_ns: 1_000,
            sync_ns: 0,
        });
        buf.worker(WorkerSpan {
            round: 1,
            worker: 0,
            processed: 1,
            steals: 0,
            busy_ns: 900,
            wait_ns: 100,
        });
        buf.worker(WorkerSpan {
            round: 2,
            worker: 1,
            processed: 4,
            steals: 1,
            busy_ns: 1_800,
            wait_ns: 200,
        });
        buf.steal(StealTrace {
            round: 2,
            thief: 1,
            victim: 0,
        });
        buf.state_cost("St(1)", 700);
        buf.state_cost("St(1)", 300);
        buf.state_cost("St(2)", 400);
        buf.join_traffic("a0", true);
        buf.join_traffic("a0", false);
        buf.join_traffic("a1", true);
        buf
    }

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.round(RoundTrace::default());
        sink.worker(WorkerSpan::default());
        sink.state_cost("x", 1);
        sink.join_traffic("a", true);
    }

    #[test]
    fn stopwatch_is_inert_when_unarmed() {
        let mut inert = Stopwatch::start(false);
        assert_eq!(inert.lap_ns(), 0);
        let mut armed = Stopwatch::start(true);
        std::hint::black_box(0u64);
        let first = armed.lap_ns();
        let second = armed.lap_ns();
        // Laps restart: the second lap does not include the first.
        assert!(first + second >= second);
    }

    #[test]
    fn buffer_aggregates_costs_and_traffic() {
        let buf = sample_buffer();
        let totals = buf.phase_totals();
        assert_eq!(totals.step_ns, 3_000);
        assert_eq!(totals.join_ns, 1_500);
        assert_eq!(totals.sync_ns, 250);
        assert_eq!(totals.wall_ns(), 4_750);

        let hot = buf.top_states(10);
        assert_eq!(hot[0].label, "St(1)");
        assert_eq!(hot[0].steps, 2);
        assert_eq!(hot[0].total_ns, 1_000);
        assert_eq!(buf.top_states(1).len(), 1);

        let addrs = buf.top_addresses(10);
        assert_eq!(addrs[0].label, "a0");
        assert_eq!(addrs[0].joins, 2);
        assert_eq!(addrs[0].widenings, 1);

        let workers = buf.worker_totals();
        assert_eq!(workers, vec![(0, 1, 0, 900, 100), (1, 4, 1, 1_800, 200)]);
    }

    #[test]
    fn chrome_trace_contains_all_phases_and_spans() {
        let json = buf_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cat\":\"step\""));
        assert!(json.contains("\"cat\":\"join\""));
        assert!(json.contains("\"cat\":\"sync\""));
        assert!(json.contains("\"cat\":\"worker\""));
        assert!(json.contains("\"cat\":\"steal\""));
        assert!(json.contains("\"name\":\"worker 1\""));
    }

    fn buf_json() -> String {
        sample_buffer().chrome_trace_json()
    }

    #[test]
    fn csv_has_one_line_per_round() {
        let csv = sample_buffer().rounds_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("round,frontier"));
        assert!(lines[1].starts_with("1,1,1,1,2,false,"));
        assert!(lines[2].starts_with("2,3,4,4,1,true,"));
    }

    #[test]
    fn profile_summary_mentions_every_section() {
        let summary = sample_buffer().profile_summary(5);
        assert!(summary.contains("rounds=2 (rebuilds=1)"));
        assert!(summary.contains("costliest rounds"));
        assert!(summary.contains("workers:"));
        assert!(summary.contains("hot states"));
        assert!(summary.contains("hot addresses"));
        assert!(summary.contains("St(1)"));
    }

    #[test]
    fn labels_truncate_on_char_boundaries() {
        assert_eq!(label_of(&7u32, 16), "7");
        let long = label_of(&"αβγδεζηθικλμ", 4);
        assert!(long.ends_with('…'));
        assert!(long.chars().count() <= 5);
    }

    #[test]
    fn worker_buffer_drains_spans_steals_and_costs() {
        let buffer = WorkerBuffer {
            busy_ns: 800,
            victims: vec![2],
            costs: vec![(StateId::from_index(0), 500)],
            epochs: Vec::new(),
        };
        let mut sink = TraceBuffer::new();
        buffer.drain_into(3, 1, 5, 1_000, &mut sink, |id| format!("id{}", id.index()));
        assert_eq!(
            sink.workers,
            vec![WorkerSpan {
                round: 3,
                worker: 1,
                processed: 5,
                steals: 1,
                busy_ns: 800,
                wait_ns: 200,
            }]
        );
        assert_eq!(
            sink.steals,
            vec![StealTrace {
                round: 3,
                thief: 1,
                victim: 2,
            }]
        );
        assert_eq!(sink.top_states(1)[0].label, "id0");
    }

    #[test]
    fn elastic_epochs_and_merges_flow_through_buffer_and_exports() {
        let mut buf = sample_buffer();
        let worker_buf = WorkerBuffer {
            busy_ns: 900,
            victims: vec![],
            costs: vec![],
            epochs: vec![(1, 3, 2, false, 600), (2, 2, 0, true, 300)],
        };
        worker_buf.drain_into(1, 0, 5, 1_000, &mut buf, |_| String::new());
        buf.merge(MergeTrace {
            round: 1,
            entries: 5,
            changed: 2,
            stale: true,
            merge_ns: 400,
        });
        assert_eq!(buf.epochs.len(), 2);
        assert_eq!(
            buf.epochs[1],
            EpochTrace {
                round: 1,
                worker: 0,
                epoch: 2,
                stepped: 2,
                fresh: 0,
                stale_exit: true,
                busy_ns: 300,
            }
        );
        let json = buf.chrome_trace_json();
        assert!(json.contains("\"cat\":\"epoch\""));
        assert!(json.contains("\"cat\":\"merge\""));
        assert!(json.contains("\"stale_exit\":true"));
        let summary = buf.profile_summary(5);
        assert!(
            summary.contains("elastic: 2 worker-epochs (deepest 2, 1 stale exits) over 1 merges")
        );
    }
}
