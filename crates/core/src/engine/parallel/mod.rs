//! The work-stealing sharded parallel driver for the shared-store engine.
//!
//! The store-passing monad makes the global store the single serialization
//! point of the analysis; once PR 4 removed the last `Rc` from the fast
//! path (direct branch-vector carrier, `Arc`-shared [`PMap`](crate::pmap)
//! spine), nothing about a *round* of the id-indexed incremental engine
//! ([`DirectCollecting::explore_frontier_direct`](super::DirectCollecting))
//! is inherently sequential: every frontier pair is stepped against the
//! **same** pre-round store, and the per-pair contributions only meet in
//! the fold.  This module parallelises exactly that structure.
//!
//! ## The join-on-sync protocol
//!
//! The driver owns a **persistent pool** of worker threads (spawned once
//! per solve, coordinated by two spin-then-park barriers — no thread is
//! spawned per round).  A solver round is a bulk-synchronous step/sync
//! pair:
//!
//! 1. **Shard** — the round's frontier (a sorted `Vec` of [`StateId`]s) is
//!    split into one contiguous range per worker.  Each worker drains its
//!    shard through an atomic cursor; when its range is empty it
//!    **steals** a chunk of `StateId`s from the most-loaded remaining
//!    shard ([`EngineStats::steal_events`] counts these, and
//!    [`EngineStats::shard_imbalance`] records how uneven the final
//!    per-worker loads were).
//! 2. **Step** — each worker steps its claimed pairs against a snapshot of
//!    the global accumulated store (an `Arc` bump per step, exactly like
//!    the sequential engine), resolving and interning states through the
//!    lock-striped [`ShardedInterner`] and accumulating a private list of
//!    `(id, entry)` results, where each entry's store contribution is the
//!    *delta* restricted to the addresses the step changed.  Workers share
//!    the step function, the store snapshot, the interner and a read-only
//!    view of the memo cache — nothing else, so the only synchronisation
//!    inside a round is the interner's stripe locks.
//! 3. **Join on sync** — at the barrier the coordinator installs the fresh
//!    entries in the flat cache and the reverse dependency index, then
//!    folds every re-stepped contribution into the global accumulator with
//!    [`StoreDelta::join_in_place_delta`] in ascending id order (structural
//!    sharing preserved: one-sided delta subtrees are adopted by
//!    reference, exactly as in the sequential fold).  The per-address
//!    growth report falls out of the fold, and the next frontier is
//!    **re-seeded through the PR-3 reverse dependency index**: freshly
//!    interned ids plus every cached dependent of an address that grew.
//!
//! ## Why the fixpoint (and the work counters) match the sequential engine
//!
//! The sequential engine's exactness argument (see the `shared` sibling
//! module's docs) only needs each round to step
//! its whole frontier against one consistent iterate and to fold the
//! resulting deltas afterwards — it never relies on the *order* in which
//! the frontier is stepped.  The parallel driver preserves the round
//! structure bit-for-bit:
//!
//! * which pairs are stepped each round (the frontier) is a deterministic
//!   set — it depends only on the previous round's per-address growth and
//!   the dependency index, both of which are order-independent;
//! * store joins are commutative/associative, and the [`PMap`](crate::pmap)
//!   spine is canonical, so folding the same set of deltas in any order
//!   yields a byte-identical accumulator;
//! * `StateId`s minted by the sharded interner differ run-to-run in their
//!   numeric assignment, but the *set* of interned states is again
//!   deterministic, and ids never escape the engine (the domain is
//!   un-interned at the boundary).
//!
//! Monotonicity gives the rest: every contribution folded at a sync
//! barrier was computed against a store below the post-sync accumulator,
//! so re-running it later could only reproduce or grow it — the same §6.4
//! argument the sequential engine makes, which is also why the
//! non-monotone *rebuild* defence carries over unchanged (a shrinking
//! re-step triggers a full re-step of every cached pair against the same
//! pre-store, again sharded across the pool).
//!
//! Consequently `analyse_*_parallel` produces **byte-identical fixpoints
//! and identical deterministic work counters** (steps, joins, rounds,
//! widenings, re-enqueues, intern traffic) to `analyse_*_direct` at every
//! thread count — asserted across the committed differential matrix at
//! 1, 2 and 4 threads.  Only the timing-dependent gauges
//! (`steal_events`, `shard_imbalance`) and the physical-sharing sample
//! (`store_bytes_shared`, which depends on fold adoption order) may vary.

pub mod elastic;

use std::any::Any;
use std::collections::BTreeSet;
use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use crate::addr::HasInitial;
use crate::collect::SharedStoreDomain;
use crate::gc::Touches;
use crate::hash::FxHashMap;
use crate::intern::{InternKey, ShardedInterner, StateId};
use crate::monad::Value;
use crate::store::{StoreDelta, StoreLike};
use crate::telemetry::{
    label_of, GovernorTrace, GovernorTraceKind, NoopSink, RoundTrace, Stopwatch, TraceSink,
    WorkerBuffer,
};

use super::governor::{
    fault_point, Budget, CancelToken, EngineError, ExhaustReason, LadderReport, LadderRung,
    Outcome, SolveFrom,
};
use super::shared::{
    sorted_subset, step_entry, IdDependents, InternedCache, InternedEntry, SharedGovernedSolve,
    SharedResumeSeed, ADDR_LABEL_MAX, STATE_LABEL_MAX,
};
use super::{
    narrow_store_post_pass, DirectCollecting, EngineStats, ParallelCollecting, StateRoots, StepFn,
    WidenTracker,
};
use crate::lattice::WidenLattice;

/// The knob set of the parallel drivers: how many workers, and how many
/// *epochs* each worker may advance its private sub-frontier between two
/// sync barriers.
///
/// `epochs = 1` selects exactly the PR-5 **barrier** engine (every round
/// ends in a join-on-sync barrier; work counters deterministic at every
/// thread count).  `epochs > 1` selects the **elastic** engine
/// ([`elastic`]): workers run up to `epochs` epochs on self-discovered
/// work before the lazy merge, trading counter determinism (epoch/steal
/// timing varies run to run) for less barrier time — the fixpoint itself
/// stays byte-identical to the sequential direct engine either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads (clamped to ≥ 1 by the drivers).
    pub threads: usize,
    /// Maximum epochs between barriers (clamped to ≥ 1; 1 = barrier
    /// engine).
    pub epochs: usize,
}

impl ParallelConfig {
    /// The PR-5 barrier engine: one epoch per round.
    pub fn barrier(threads: usize) -> Self {
        ParallelConfig { threads, epochs: 1 }
    }

    /// The elastic engine with the given epoch budget.
    pub fn elastic(threads: usize, epochs: usize) -> Self {
        ParallelConfig { threads, epochs }
    }
}

/// A sense-reversing **hybrid** (spin-then-park) barrier for the round
/// protocol.
///
/// `std::sync::Barrier` parks every waiter on a condvar; waking `threads`
/// parked workers costs tens of microseconds each, which is the same
/// order as an entire solver round on the target workloads — measured, a
/// condvar-only pool left the first-awake worker draining whole frontiers
/// alone (`shard_imbalance ≈ frontier`).  Pure spinning is just as wrong
/// in the other direction: on a machine with fewer cores than parties
/// (including the single-CPU CI container) spinners burn the core the
/// working thread needs.  So waiters spin for a short bounded burst —
/// only when the host actually has more than one CPU — and then park on a
/// condvar with a timeout as a missed-wakeup backstop.
struct SpinBarrier {
    /// Parties that have arrived in the current generation.
    arrived: AtomicUsize,
    /// The generation counter; bumping it releases the waiters.
    generation: AtomicUsize,
    /// Total parties (workers + coordinator).
    parties: usize,
    /// How long to spin before parking (0 on single-CPU hosts).
    spins: u32,
    /// The parking lot for waiters that out-spun their budget.
    lock: Mutex<()>,
    condvar: std::sync::Condvar,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        let multicore = std::thread::available_parallelism()
            .map(|n| n.get() > 1)
            .unwrap_or(false);
        SpinBarrier {
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            parties,
            spins: if multicore { 1 << 12 } else { 0 },
            lock: Mutex::new(()),
            condvar: std::sync::Condvar::new(),
        }
    }

    /// Blocks until all parties have arrived.
    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count, release the generation, wake
            // any parked waiters (under the lock, so a waiter cannot check
            // the generation and park between the store and the notify).
            self.arrived.store(0, Ordering::Release);
            // Barrier locks tolerate poisoning: a worker that panicked
            // while holding (or racing for) the lock must not cascade into
            // a coordinator panic — the round protocol drains the pool and
            // surfaces the original payload instead.
            let _guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
            self.generation.store(generation + 1, Ordering::Release);
            self.condvar.notify_all();
        } else {
            for _ in 0..self.spins {
                if self.generation.load(Ordering::Acquire) != generation {
                    return;
                }
                std::hint::spin_loop();
            }
            let mut guard = self.lock.lock().unwrap_or_else(PoisonError::into_inner);
            while self.generation.load(Ordering::Acquire) == generation {
                // The timeout is a backstop only; the release path holds
                // the lock while bumping the generation, so wakeups are
                // not missable.
                let (g, _timeout) = self
                    .condvar
                    .wait_timeout(guard, std::time::Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
                guard = g;
            }
        }
    }
}

/// One step phase, as published to the worker pool: the ids to step (the
/// frontier, or the rebuild rest), a snapshot of the pre-round store, and
/// the shard claim state.
struct Phase<S> {
    /// The ids to step, sorted ascending.
    ids: Vec<StateId>,
    /// The pre-round store snapshot every step runs against.
    store: S,
    /// Per-shard claim cursors (monotone; a claim past the shard end is
    /// discarded, so concurrent owner/thief claims are race-free).
    cursors: Vec<AtomicUsize>,
    /// Per-shard exclusive end indices into `ids`.
    ends: Vec<usize>,
    /// How many consecutive ids one claim takes.
    chunk: usize,
    /// Whether workers should record into their trace buffers.  Purely an
    /// observability flag: no counter and no scheduling decision reads it.
    trace: bool,
    /// The governing budget's cancellation flag: workers poll it before
    /// each chunk claim and stop claiming once it is set, so cancel
    /// latency is bounded by one chunk of one phase.
    cancel: CancelToken,
}

/// One worker's output for a phase: the entries it computed, its per-shard
/// work stats, whether any re-step shrank, how many pairs it processed
/// (own shard plus stolen chunks), and — when the phase is traced — its
/// private lock-free [`WorkerBuffer`] for the coordinator to drain at the
/// barrier.
struct ShardOutcome<S, A> {
    worker: usize,
    entries: Vec<(StateId, InternedEntry<S, A>)>,
    stats: EngineStats,
    shrank: bool,
    processed: usize,
    trace: WorkerBuffer,
}

/// The body of one worker for one phase: claim chunks (own shard first,
/// then steal from the most-loaded shard), step each claimed pair against
/// the phase's store snapshot, and check re-steps for shrinkage against
/// the read-only cache view.
fn run_worker_phase<Ps, G, S, F>(
    me: usize,
    step: &F,
    phase: &Phase<S>,
    interner: &ShardedInterner<(Ps, G), StateId>,
    cache: &InternedCache<S, Ps::Addr>,
) -> ShardOutcome<S, Ps::Addr>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    let mut outcome = ShardOutcome {
        worker: me,
        entries: Vec::new(),
        stats: EngineStats::default(),
        shrank: false,
        processed: 0,
        trace: WorkerBuffer::default(),
    };
    let Phase {
        ids,
        store,
        cursors,
        ends,
        chunk,
        trace,
        cancel,
    } = phase;
    let mut busy_watch = Stopwatch::start(*trace);
    // Once our own shard is drained we stop touching its cursor: the
    // extra fetch_add per steal attempt would be pure cache-line traffic.
    let mut own_drained = false;
    loop {
        // Cooperative cancellation: stop claiming as soon as the token is
        // set.  Already-claimed chunks finish (their contributions are
        // sound and folded); unclaimed ids stay in the resume seed.
        if cancel.is_cancelled() {
            break;
        }
        // Claim from our own shard first; once drained, steal a chunk
        // from the most-loaded other shard.
        let mut claimed: Option<(usize, usize)> = None;
        if !own_drained {
            let own_start = cursors[me].fetch_add(*chunk, Ordering::Relaxed);
            if own_start < ends[me] {
                claimed = Some((own_start, ends[me]));
            } else {
                own_drained = true;
            }
        }
        if claimed.is_none() {
            loop {
                let victim = (0..cursors.len())
                    .filter(|&v| v != me)
                    .max_by_key(|&v| ends[v].saturating_sub(cursors[v].load(Ordering::Relaxed)));
                let Some(victim) = victim else { break };
                if ends[victim].saturating_sub(cursors[victim].load(Ordering::Relaxed)) == 0 {
                    break;
                }
                let start = cursors[victim].fetch_add(*chunk, Ordering::Relaxed);
                if start < ends[victim] {
                    outcome.stats.steal_events += 1;
                    if *trace {
                        outcome.trace.victims.push(victim);
                    }
                    claimed = Some((start, ends[victim]));
                    break;
                }
            }
            if claimed.is_none() {
                break;
            }
        }
        let Some((start, end)) = claimed else { break };
        for &id in &ids[start..(start + chunk).min(end)] {
            fault_point(me);
            outcome.stats.states_stepped += 1;
            outcome.stats.spine_clones += 1;
            outcome.processed += 1;
            let mut step_watch = Stopwatch::start(*trace);
            let (ps, guts) = interner.resolve_cloned(id);
            let entry = step_entry(step, ps, guts, store, |k| interner.intern(k));
            if *trace {
                // Raw `(id, ns)` only — labels are resolved by the
                // coordinator at the barrier, never on the hot path.
                outcome.trace.costs.push((id, step_watch.lap_ns()));
            }
            if let Some(old) = cache.get(id.index()).and_then(Option::as_ref) {
                outcome.stats.reenqueued += 1;
                // The same shrink detector as the sequential engine: a
                // re-step that loses a successor abandons the fast path.
                outcome.shrank |= !sorted_subset(&old.successors, &entry.successors);
            }
            outcome.entries.push((id, entry));
        }
    }
    outcome.trace.busy_ns = busy_watch.lap_ns();
    outcome
}

/// Installs a phase's freshly computed entries into the flat cache and the
/// reverse dependency index (replacing any previous entry), exactly as the
/// sequential `step_and_cache_interned` does — just after the barrier
/// instead of during the step.
fn install_entries<S, A>(
    results: Vec<(StateId, InternedEntry<S, A>)>,
    id_bound: usize,
    cache: &mut InternedCache<S, A>,
    dependents: &mut IdDependents<A>,
) where
    A: Clone + Eq + Hash,
{
    if cache.len() < id_bound {
        cache.resize_with(id_bound, || None);
    }
    for (id, entry) in results {
        let slot = &mut cache[id.index()];
        if let Some(old) = slot.take() {
            for a in &old.deps {
                if let Some(ids) = dependents.get_mut(a) {
                    ids.remove(&id);
                }
            }
        }
        for a in &entry.deps {
            dependents.entry(a.clone()).or_default().insert(id);
        }
        *slot = Some(entry);
    }
}

/// The governed barrier-parallel solver — the one implementation behind
/// both the classic and the governed entry points.
///
/// Returns `Err` with the *original* panic payload when a worker (or the
/// coordinator's inline singleton path) panicked: the pool is always
/// drained and shut down first, so the caller decides whether to re-raise
/// it (classic entry points) or convert it to a clean
/// [`EngineError::WorkerPanicked`] (governed entry points).
pub(crate) fn solve_parallel_governed<Ps, G, S, F, T>(
    step: &F,
    from: SolveFrom<Ps, SharedResumeSeed<Ps, G, S>>,
    threads: usize,
    budget: &Budget,
    sink: &mut T,
) -> Result<SharedGovernedSolve<Ps, G, S>, Box<dyn Any + Send>>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync + std::fmt::Debug,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    let threads = threads.max(1);
    let armed = sink.enabled();
    let mut stats = EngineStats::default();
    // Coordinator-only widening bookkeeping: points are selected (and ▽
    // applied) exclusively at the join-on-sync fold, so the round
    // structure — and with it the widened fixpoint — matches the
    // sequential direct engine's at every thread count.
    let mut widen: WidenTracker<Ps::Addr> = WidenTracker::new(&budget.widen);
    // The lock-striped hash-consing table, shared by all workers.
    let interner: ShardedInterner<(Ps, G), StateId> = ShardedInterner::new();
    // The flat memo cache, behind a RwLock: workers hold read locks
    // during a phase (for the shrink check), the coordinator write-locks
    // between barriers to install entries.  Never contended — the
    // barriers separate the two access modes in time.
    let cache_lock: RwLock<InternedCache<S, Ps::Addr>> = RwLock::new(Vec::new());
    // Coordinator-only state: the reverse dependency index, the global
    // accumulated store, and the sorted list of every id minted before
    // the current round (the "known" set the rebuild defence re-steps).
    let mut dependents: IdDependents<Ps::Addr> = FxHashMap::default();
    let mut known_ids: Vec<StateId> = Vec::new();

    // Fresh solves start from the injected initial pair and a bottom
    // store; resumed solves re-intern every carried pair (all of them
    // form the first frontier, re-stepped once to rebuild the memo
    // cache and dependency index the partial run discarded) and start
    // from the carried store.
    let (mut store, initial_frontier): (S, BTreeSet<StateId>) = match from {
        SolveFrom::Fresh(initial) => {
            let initial_id = interner.intern((initial, G::initial()));
            known_ids.push(initial_id);
            (S::bottom(), [initial_id].into_iter().collect())
        }
        SolveFrom::Resume(seed) => {
            for pair in seed.states {
                known_ids.push(interner.intern(pair));
            }
            (seed.store, known_ids.iter().copied().collect())
        }
    };

    // The pool protocol: the coordinator publishes a `Phase` (or `None`
    // to shut down) and releases the start barrier; workers run the
    // phase, deposit their outcomes, and meet it at the done barrier.
    let phase_slot: RwLock<Option<Phase<S>>> = RwLock::new(None);
    let outcomes: Mutex<Vec<ShardOutcome<S, Ps::Addr>>> = Mutex::new(Vec::new());
    // Panic payloads from workers: a worker that panics (a panicking
    // user step function, say) must still arrive at the done barrier,
    // or the coordinator would wait on it forever — so the panic is
    // caught, parked here, and surfaced to the coordinator right
    // after the barrier.  Lock accesses on this path tolerate
    // poisoning (a poisoned mutex here must not turn into a second,
    // barrier-skipping panic).
    let worker_panics: Mutex<Vec<Box<dyn std::any::Any + Send>>> = Mutex::new(Vec::new());
    let start_barrier = SpinBarrier::new(threads + 1);
    let done_barrier = SpinBarrier::new(threads + 1);

    let solve = std::thread::scope(|scope| {
        for me in 0..threads {
            let interner = &interner;
            let cache_lock = &cache_lock;
            let phase_slot = &phase_slot;
            let outcomes = &outcomes;
            let start_barrier = &start_barrier;
            let done_barrier = &done_barrier;
            let worker_panics = &worker_panics;
            scope.spawn(move || loop {
                start_barrier.wait();
                let keep_going = catch_unwind(AssertUnwindSafe(|| {
                    let guard = phase_slot.read().unwrap_or_else(PoisonError::into_inner);
                    let Some(phase) = guard.as_ref() else {
                        return false;
                    };
                    let cache = cache_lock.read().unwrap_or_else(PoisonError::into_inner);
                    let outcome = run_worker_phase(me, step, phase, interner, &cache);
                    drop(cache);
                    outcomes
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(outcome);
                    true
                }));
                match keep_going {
                    Ok(true) => done_barrier.wait(),
                    Ok(false) => return,
                    Err(payload) => {
                        worker_panics
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(payload);
                        done_barrier.wait();
                    }
                }
            });
        }

        // Publishes one step phase to the pool and collects the merged
        // outcomes (entries + per-shard stats + shrink flag), draining
        // each worker's trace buffer into the sink at the barrier.
        // Returns `(shrank, wall_ns, max_busy_ns)`: the coordinator-
        // observed phase wall and the slowest worker's busy time, the
        // raw material of the step/sync decomposition (both 0 when the
        // sink is disarmed).
        let run_phase = |ids: Vec<StateId>,
                         store: &S,
                         stats: &mut EngineStats,
                         results: &mut Vec<(StateId, InternedEntry<S, Ps::Addr>)>,
                         round: usize,
                         sink: &mut T|
         -> (bool, u64, u64) {
            // A singleton (or empty) phase has no parallelism by
            // definition: step it inline on the coordinator and spare
            // the pool a wake/park cycle.  Deterministic counters are
            // unaffected — the work is identical, there is just no
            // sync traffic for it.
            if ids.len() <= 1 {
                let phase = Phase {
                    ends: vec![ids.len()],
                    ids,
                    store: store.clone(),
                    cursors: vec![AtomicUsize::new(0)],
                    chunk: 1,
                    trace: armed,
                    cancel: budget.cancel.clone(),
                };
                let cache = cache_lock.read().unwrap_or_else(PoisonError::into_inner);
                let outcome = run_worker_phase(0, step, &phase, &interner, &cache);
                drop(cache);
                stats.merge(&outcome.stats);
                let busy = outcome.trace.busy_ns;
                if armed {
                    // The inline path *is* worker 0 for this phase; its
                    // wall is its busy time (no barrier to wait on).
                    outcome.trace.drain_into(
                        round,
                        outcome.worker,
                        outcome.processed,
                        busy,
                        sink,
                        |id| label_of(&interner.resolve_cloned(id).0, STATE_LABEL_MAX),
                    );
                }
                results.extend(outcome.entries);
                return (outcome.shrank, busy, busy);
            }
            let ends: Vec<usize> = (1..=threads).map(|t| t * ids.len() / threads).collect();
            let cursors: Vec<AtomicUsize> = (0..threads)
                .map(|t| AtomicUsize::new(t * ids.len() / threads))
                .collect();
            let chunk = (ids.len() / (threads * 8)).max(1);
            *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = Some(Phase {
                ids,
                store: store.clone(),
                cursors,
                ends,
                chunk,
                trace: armed,
                cancel: budget.cancel.clone(),
            });
            let mut wall_watch = Stopwatch::start(armed);
            start_barrier.wait();
            done_barrier.wait();
            let wall_ns = wall_watch.lap_ns();
            // Drop the store snapshot promptly (it holds spine refs).
            *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = None;
            // A worker panicked mid-phase: every worker still reached
            // the barrier (panics are caught and parked), so the pool
            // is quiescent — re-raise on the coordinator, whose own
            // catch-and-shutdown path below unwinds the solve.
            if let Some(payload) = worker_panics
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop()
            {
                resume_unwind(payload);
            }
            let mut shrank = false;
            let mut max_busy_ns = 0u64;
            let (mut max_processed, mut min_processed) = (0usize, usize::MAX);
            for outcome in
                std::mem::take(&mut *outcomes.lock().unwrap_or_else(PoisonError::into_inner))
            {
                shrank |= outcome.shrank;
                max_processed = max_processed.max(outcome.processed);
                min_processed = min_processed.min(outcome.processed);
                max_busy_ns = max_busy_ns.max(outcome.trace.busy_ns);
                stats.merge(&outcome.stats);
                if armed {
                    outcome.trace.drain_into(
                        round,
                        outcome.worker,
                        outcome.processed,
                        wall_ns,
                        sink,
                        |id| label_of(&interner.resolve_cloned(id).0, STATE_LABEL_MAX),
                    );
                }
                results.extend(outcome.entries);
            }
            stats.shard_imbalance = stats
                .shard_imbalance
                .max(max_processed - min_processed.min(max_processed));
            (shrank, wall_ns, max_busy_ns)
        };

        let solve = catch_unwind(AssertUnwindSafe(|| {
            let mut frontier: BTreeSet<StateId> = initial_frontier;
            let mut exhausted: Option<ExhaustReason> = None;
            while !frontier.is_empty() {
                // The budget is consulted once per sync round, on the
                // coordinator; mid-phase, only the cancel token is
                // polled (by the workers, between chunk claims).
                if let Some(reason) = budget.exhausted(stats.iterations, stats.states_stepped) {
                    sink.governor(GovernorTrace {
                        round: stats.iterations,
                        kind: GovernorTraceKind::Exhausted(reason),
                    });
                    exhausted = Some(reason);
                    break;
                }
                stats.iterations += 1;
                stats.sync_rounds += 1;
                let known = known_ids.len();
                let marks = interner.watermarks();

                // Step phase: the whole frontier against the same pre-store.
                let frontier_vec: Vec<StateId> = frontier.iter().copied().collect();
                let frontier_len = frontier_vec.len();
                let mut stepped_this_round = frontier_len;
                let mut results: Vec<(StateId, InternedEntry<S, Ps::Addr>)> = Vec::new();
                let round = stats.iterations;
                let (shrank, mut wall_ns, mut busy_ns) = run_phase(
                    frontier_vec.clone(),
                    &store,
                    &mut stats,
                    &mut results,
                    round,
                    sink,
                );

                // Rebuild round (same defence as the sequential engine): a
                // contribution shrank, so re-step *every* known pair
                // against the same pre-store — again sharded — and fold
                // all of them.
                let fold_ids: Vec<StateId> = if shrank {
                    stats.rebuild_rounds += 1;
                    stats.peak_frontier = stats.peak_frontier.max(known);
                    let rest: Vec<StateId> = known_ids
                        .iter()
                        .copied()
                        .filter(|id| !frontier.contains(id))
                        .collect();
                    stepped_this_round += rest.len();
                    // Further shrinkage is immaterial: the whole round is
                    // already being recomputed from scratch.
                    let (_, rebuild_wall, rebuild_busy) =
                        run_phase(rest, &store, &mut stats, &mut results, round, sink);
                    wall_ns += rebuild_wall;
                    busy_ns += rebuild_busy;
                    known_ids.clone()
                } else {
                    stats.peak_frontier = stats.peak_frontier.max(frontier.len());
                    // Everything off the frontier is served from the
                    // accumulated domain without being visited at all.
                    stats.cache_hits += known - frontier.len();
                    frontier_vec
                };

                // Join on sync: install the entries, then fold only the
                // re-stepped contributions — and only their store *deltas*
                // — in ascending id order, with the per-address growth
                // report falling straight out of the in-place join.
                let mut join_watch = Stopwatch::start(armed);
                let mut cache = cache_lock.write().unwrap_or_else(PoisonError::into_inner);
                install_entries(results, interner.id_bound(), &mut cache, &mut dependents);
                let mut changed_addrs: BTreeSet<Ps::Addr> = BTreeSet::new();
                for &id in &fold_ids {
                    // A missing entry is only possible when cancellation
                    // stopped the workers mid-phase: the unstepped pair
                    // stays in the resume seed and is re-stepped on
                    // resume, so skipping its fold loses nothing.
                    let Some(entry) = cache[id.index()].as_ref() else {
                        debug_assert!(budget.cancel.is_cancelled());
                        continue;
                    };
                    stats.store_joins += 1;
                    stats.spine_clones += 1;
                    if armed {
                        // Attribute join traffic per address: every
                        // address the delta binds is one join record,
                        // widened when the fold reports it grew.
                        let bound = entry.delta.addresses();
                        let changed =
                            store.widen_in_place_delta(entry.delta.clone(), widen.points());
                        for a in &bound {
                            sink.join_traffic(&label_of(a, ADDR_LABEL_MAX), changed.contains(a));
                        }
                        changed_addrs.extend(changed);
                    } else {
                        changed_addrs.extend(
                            store.widen_in_place_delta(entry.delta.clone(), widen.points()),
                        );
                    }
                }
                drop(cache);
                let (joined, widened) = widen.classify(&changed_addrs);
                stats.store_joins_applied += joined;
                stats.widen_applied += widened;
                widen.record(&changed_addrs);
                stats.store_bytes_shared = stats.store_bytes_shared.max(store.shared_spine_bytes());
                // The round's phase split: the slowest worker's busy
                // time is the step share, the coordinator's fold is the
                // join share, and whatever remains of the phase walls is
                // barrier/coordination overhead — the sync share.
                sink.round(RoundTrace {
                    round: stats.iterations,
                    frontier: frontier_len,
                    stepped: stepped_this_round,
                    joins: fold_ids.len(),
                    delta_width: changed_addrs.len(),
                    rebuild: shrank,
                    step_ns: busy_ns,
                    join_ns: join_watch.lap_ns(),
                    sync_ns: wall_ns.saturating_sub(busy_ns),
                });

                // Next frontier: freshly discovered pairs (ids minted
                // during this round have no cached outcome yet) plus every
                // cached dependent of an address that grew — the reverse
                // dependency index re-seeding.
                let fresh = interner.fresh_since(&marks);
                known_ids.extend(fresh.iter().copied());
                let mut next: BTreeSet<StateId> = fresh.into_iter().collect();
                for a in &changed_addrs {
                    if let Some(ids) = dependents.get(a) {
                        next.extend(ids.iter().copied());
                    }
                }
                frontier = next;
            }
            exhausted
        }));

        // Shut the pool down: a `None` phase is the stop signal.
        // This runs on the panic path too — otherwise the scope's
        // implicit join would wait forever on workers parked at the
        // start barrier — and only *then* is the panic surfaced.
        *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = None;
        start_barrier.wait();
        solve
    });

    // A worker (or the coordinator's inline path) panicked: the pool
    // is already drained and joined, so hand the payload back for the
    // caller to re-raise or convert.
    let exhausted = solve?;

    stats.intern_hits = interner.hits();
    stats.intern_misses = interner.misses();
    stats.distinct_states = interner.len();
    stats.stripe_acquisitions = interner.stripe_acquisitions();
    // Un-intern only here, at the boundary: the structural domain is
    // assembled once, from the interner's value table.
    let states: BTreeSet<(Ps, G)> = interner
        .entries_cloned()
        .into_iter()
        .map(|(_, value)| value)
        .collect();
    let outcome = match exhausted {
        None => {
            // Decreasing pass after stabilization (coordinator-only, on
            // the final pair): pure function of (states, store), so the
            // narrowed fixpoint is byte-identical to the sequential
            // engines' at every thread count.
            if budget.widen.enabled && budget.widen.narrow_passes > 0 {
                narrow_store_post_pass(
                    &states,
                    &mut store,
                    step,
                    budget.widen.narrow_passes,
                    budget,
                );
            }
            Outcome::Complete(SharedStoreDomain::from_parts(states, store))
        }
        Some(reason) => {
            let resume_seed = Box::new(SharedResumeSeed {
                states: states.iter().cloned().collect(),
                store: store.clone(),
            });
            Outcome::Exhausted {
                partial: SharedStoreDomain::from_parts(states, store),
                reason,
                resume_seed,
            }
        }
    };
    Ok((outcome, stats))
}

impl<Ps, G, S> ParallelCollecting<Ps, G, S> for SharedStoreDomain<Ps, G, S>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
{
    type Seed = SharedResumeSeed<Ps, G, S>;

    fn explore_frontier_parallel_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        threads: usize,
        budget: &Budget,
        sink: &mut T,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        solve_parallel_governed(step, from, threads, budget, sink)
            .map_err(|payload| EngineError::worker_panicked(payload.as_ref()))
    }

    fn explore_frontier_elastic_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        config: ParallelConfig,
        budget: &Budget,
        sink: &mut T,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        elastic::solve_elastic_governed(step, from, config, budget, sink)
            .map_err(|payload| EngineError::worker_panicked(payload.as_ref()))
    }

    fn explore_frontier_parallel_traced<F, T>(
        step: &F,
        initial: Ps,
        threads: usize,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        // The classic entry point re-raises the original panic payload, so
        // a panicking user step function propagates exactly as it would
        // out of the sequential engines.
        match solve_parallel_governed(
            step,
            SolveFrom::Fresh(initial),
            threads,
            &Budget::unlimited(),
            sink,
        ) {
            Ok((outcome, stats)) => (outcome.into_complete(), stats),
            Err(payload) => resume_unwind(payload),
        }
    }

    fn explore_frontier_elastic_traced<F, T>(
        step: &F,
        initial: Ps,
        config: ParallelConfig,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        match elastic::solve_elastic_governed(
            step,
            SolveFrom::Fresh(initial),
            config,
            &Budget::unlimited(),
            sink,
        ) {
            Ok((outcome, stats)) => (outcome.into_complete(), stats),
            Err(payload) => resume_unwind(payload),
        }
    }
}

/// The `(outcome, stats, report)` triple the degradation ladder returns.
pub type LadderSolve<Ps, G, S> = (
    Outcome<SharedStoreDomain<Ps, G, S>, SharedResumeSeed<Ps, G, S>>,
    EngineStats,
    LadderReport,
);

/// [`explore_frontier_ladder_traced`] without a sink.
pub fn explore_frontier_ladder<Ps, G, S, F>(
    step: &F,
    initial: Ps,
    config: ParallelConfig,
    budget: &Budget,
) -> LadderSolve<Ps, G, S>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync + std::fmt::Debug,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    explore_frontier_ladder_traced(step, initial, config, budget, &mut NoopSink)
}

/// The degradation ladder: elastic → barrier → sequential-direct.
///
/// Tries the requested parallel driver first (elastic when
/// `config.epochs > 1`, otherwise straight to barrier); when a rung fails
/// with [`EngineError::WorkerPanicked`] the fault is recorded, a
/// [`GovernorTraceKind::RungFaulted`] event is emitted, and the next rung
/// runs the *same* solve from scratch.  The last rung is the sequential
/// direct engine, which shares no pool and never consults the fault plan,
/// so a faulted parallel solve still returns the byte-identical fixpoint
/// (every rung computes the same least fixpoint by the engine-equivalence
/// ladder).  The returned [`LadderReport`] says which rung answered and
/// what the faulted rungs reported.
pub fn explore_frontier_ladder_traced<Ps, G, S, F, T>(
    step: &F,
    initial: Ps,
    config: ParallelConfig,
    budget: &Budget,
    sink: &mut T,
) -> LadderSolve<Ps, G, S>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync + std::fmt::Debug,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    let mut faults: Vec<(LadderRung, EngineError)> = Vec::new();
    if config.epochs > 1 {
        match SharedStoreDomain::explore_frontier_elastic_governed_traced(
            step,
            SolveFrom::Fresh(initial.clone()),
            config,
            budget,
            sink,
        ) {
            Ok((outcome, stats)) => {
                let report = LadderReport {
                    rung: LadderRung::Elastic,
                    faults,
                };
                return (outcome, stats, report);
            }
            Err(error) => {
                sink.governor(GovernorTrace {
                    round: 0,
                    kind: GovernorTraceKind::RungFaulted(LadderRung::Elastic),
                });
                faults.push((LadderRung::Elastic, error));
            }
        }
    }
    match SharedStoreDomain::explore_frontier_parallel_governed_traced(
        step,
        SolveFrom::Fresh(initial.clone()),
        config.threads,
        budget,
        sink,
    ) {
        Ok((outcome, stats)) => {
            let report = LadderReport {
                rung: LadderRung::Barrier,
                faults,
            };
            return (outcome, stats, report);
        }
        Err(error) => {
            sink.governor(GovernorTrace {
                round: 0,
                kind: GovernorTraceKind::RungFaulted(LadderRung::Barrier),
            });
            faults.push((LadderRung::Barrier, error));
        }
    }
    // The last rung cannot fault: the sequential direct engine runs no
    // pool and never consults the fault plan.
    let (outcome, stats) =
        <SharedStoreDomain<Ps, G, S> as DirectCollecting<Ps, G, S>>::explore_frontier_governed_traced(
            step,
            SolveFrom::Fresh(initial),
            budget,
            sink,
        );
    let report = LadderReport {
        rung: LadderRung::SequentialDirect,
        faults,
    };
    (outcome, stats, report)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::super::{DirectCollecting, FrontierCollecting};
    use super::*;
    use crate::monad::{
        gets_nd_set, run_store_passing, MonadFamily, MonadPlus, MonadState, MonadTrans, StateT,
        StorePassing, VecM,
    };
    use crate::store::BasicStore;

    /// A heap value that is itself an address (a one-cell pointer).
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub(crate) struct Ptr(pub(crate) u8);

    impl Touches<u8> for Ptr {
        fn touches(&self) -> BTreeSet<u8> {
            [self.0].into_iter().collect()
        }
    }

    /// The same read/write toy chain as the sequential engine's tests:
    /// state 1 reads cell 0, state 4 writes it.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub(crate) struct St(pub(crate) u32);

    impl StateRoots for St {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 1 {
                [0u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    pub(crate) type G = u64;
    pub(crate) type S = BasicStore<u8, Ptr>;
    type M = StorePassing<G, S>;
    pub(crate) type Dom = SharedStoreDomain<St, G, S>;

    fn step(st: St) -> <M as MonadFamily>::M<St> {
        let n = st.0;
        match n {
            1 => {
                let fetched = <M as MonadTrans>::lift(gets_nd_set::<StateT<S, VecM>, S, Ptr, _>(
                    move |store| store.fetch(&0u8),
                ));
                let via_heap = M::bind(fetched, move |ptr| M::pure(St(ptr.0 as u32 + 1)));
                M::mplus(M::pure(St(2)), via_heap)
            }
            4 => {
                let write = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |store: S| store.bind(0u8, [Ptr(9)].into_iter().collect()),
                ));
                M::bind(write, move |_| M::pure(St(5)))
            }
            n if n >= 6 => M::pure(st),
            _ => M::pure(St(n + 1)),
        }
    }

    pub(crate) fn direct_step(ps: St, g: G, s: S) -> Vec<((St, G), S)> {
        run_store_passing(step(ps), g, s)
    }

    #[test]
    fn parallel_matches_sequential_fixpoint_and_work_counters() {
        let (sequential, seq_stats) =
            <Dom as DirectCollecting<St, G, S>>::explore_frontier_direct(&direct_step, St(0));
        for threads in [1usize, 2, 4] {
            let (parallel, par_stats) =
                <Dom as ParallelCollecting<St, G, S>>::explore_frontier_parallel(
                    &direct_step,
                    St(0),
                    threads,
                );
            assert_eq!(
                parallel, sequential,
                "fixpoint diverged at {threads} threads"
            );
            // Every deterministic work counter must agree with the
            // sequential direct engine; only the timing gauges and the
            // fold-order-dependent sharing sample may differ.
            assert_eq!(par_stats.iterations, seq_stats.iterations);
            assert_eq!(par_stats.states_stepped, seq_stats.states_stepped);
            assert_eq!(par_stats.cache_hits, seq_stats.cache_hits);
            assert_eq!(par_stats.reenqueued, seq_stats.reenqueued);
            assert_eq!(par_stats.store_joins_applied, seq_stats.store_joins_applied);
            assert_eq!(par_stats.widen_applied, seq_stats.widen_applied);
            assert_eq!(par_stats.widen_applied, 0);
            assert_eq!(par_stats.store_joins, seq_stats.store_joins);
            assert_eq!(par_stats.rebuild_rounds, seq_stats.rebuild_rounds);
            assert_eq!(par_stats.peak_frontier, seq_stats.peak_frontier);
            assert_eq!(par_stats.intern_hits, seq_stats.intern_hits);
            assert_eq!(par_stats.intern_misses, seq_stats.intern_misses);
            assert_eq!(par_stats.distinct_states, seq_stats.distinct_states);
            assert_eq!(par_stats.spine_clones, seq_stats.spine_clones);
            // The parallel driver reports its sync barriers; the
            // sequential engine has none.
            assert_eq!(par_stats.sync_rounds, par_stats.iterations);
            assert_eq!(seq_stats.sync_rounds, 0);
        }
    }

    /// A panicking step function must *propagate* out of the solve (like
    /// the sequential engines), not deadlock the pool: the worker's panic
    /// is caught, carried over the done barrier, re-raised on the
    /// coordinator, and the pool is shut down before the scope joins.
    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let poisoned_step = |ps: St, g: G, s: S| {
            if ps.0 == 3 {
                panic!("boom at state 3");
            }
            direct_step(ps, g, s)
        };
        for threads in [1usize, 2, 4] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                <Dom as ParallelCollecting<St, G, S>>::explore_frontier_parallel(
                    &poisoned_step,
                    St(0),
                    threads,
                )
            }));
            let payload = caught.expect_err("the step panic must propagate");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(message.contains("boom"), "unexpected payload: {message}");
        }
    }

    /// The non-monotone machine of the sequential tests: the rebuild
    /// defence must fire — and still agree with Kleene — in parallel.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub(crate) struct NmSt(pub(crate) u32);

    impl StateRoots for NmSt {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 0 {
                [9u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    pub(crate) fn nonmonotone_step(st: NmSt) -> <StorePassing<G, S> as MonadFamily>::M<NmSt> {
        type M = StorePassing<G, S>;
        match st.0 {
            0 => {
                let peeked = <M as MonadTrans>::lift(gets_nd_set::<StateT<S, VecM>, S, Ptr, _>(
                    move |store| {
                        if store.fetch(&9u8).is_empty() {
                            [Ptr(7)].into_iter().collect()
                        } else {
                            BTreeSet::new()
                        }
                    },
                ));
                let extra = M::bind(peeked, move |ptr| M::pure(NmSt(ptr.0 as u32 + 1)));
                M::mplus(M::pure(NmSt(1)), extra)
            }
            1 => M::pure(NmSt(2)),
            2 => {
                let write = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |store: S| store.bind(9u8, [Ptr(3)].into_iter().collect()),
                ));
                M::bind(write, move |_| M::pure(NmSt(3)))
            }
            _ => M::pure(st),
        }
    }

    #[test]
    fn parallel_rebuild_round_matches_sequential() {
        type NmDom = SharedStoreDomain<NmSt, G, S>;
        let nm_direct = |ps: NmSt, g: G, s: S| run_store_passing(nonmonotone_step(ps), g, s);
        let (sequential, seq_stats) =
            <NmDom as DirectCollecting<NmSt, G, S>>::explore_frontier_direct(&nm_direct, NmSt(0));
        assert!(seq_stats.rebuild_rounds > 0, "oracle must rebuild");
        for threads in [1usize, 3] {
            let (parallel, par_stats) =
                <NmDom as ParallelCollecting<NmSt, G, S>>::explore_frontier_parallel(
                    &nm_direct,
                    NmSt(0),
                    threads,
                );
            assert_eq!(parallel, sequential);
            assert_eq!(par_stats.rebuild_rounds, seq_stats.rebuild_rounds);
            assert_eq!(par_stats.states_stepped, seq_stats.states_stepped);
            assert_eq!(par_stats.store_joins, seq_stats.store_joins);
        }
        // And both agree with the Rc-carrier oracle engine.
        let (oracle, _) = <NmDom as FrontierCollecting<StorePassing<G, S>, NmSt>>::explore_frontier(
            &nonmonotone_step,
            NmSt(0),
        );
        assert_eq!(oracle, sequential);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let (domain, stats) = <Dom as ParallelCollecting<St, G, S>>::explore_frontier_parallel(
            &direct_step,
            St(0),
            0,
        );
        let (sequential, _) =
            <Dom as DirectCollecting<St, G, S>>::explore_frontier_direct(&direct_step, St(0));
        assert_eq!(domain, sequential);
        assert_eq!(stats.steal_events, 0, "one worker has nobody to steal from");
    }
}
