//! The **barrier-elastic** sharded parallel driver: epoch-based lazy
//! shard merging on top of the PR-5 pool.
//!
//! The barrier engine ([`super`]) synchronises every round: workers step
//! the frontier against one store snapshot, then *everyone* meets at the
//! join-on-sync barrier where the coordinator folds the per-shard deltas.
//! When consecutive rounds touch disjoint address sets — the lanes-shaped
//! `kcfa_worst_case_scaled` family is the committed example — that
//! barrier is pure coordination cost: each worker's next work item is a
//! state *it just minted itself*, and nothing it reads was written by
//! another shard.
//!
//! This driver lets workers keep going.  Between two barriers each worker
//! advances a private **sub-frontier** for up to
//! [`ParallelConfig::epochs`] *epochs*:
//!
//! * epoch 1 steps the worker's slice of the published frontier (always
//!   to completion — this is what guarantees global progress per round);
//! * the ids a worker's own `intern_fresh` calls *mint* form its next
//!   epoch's sub-frontier (a state interned first by this worker is
//!   stepped by this worker — sub-frontiers stay disjoint by
//!   construction);
//! * every step runs against the worker's private **view**: the round's
//!   store snapshot joined with the worker's own accumulated deltas, so
//!   chains advance within a single round instead of one barrier per
//!   link.
//!
//! ## The staleness argument
//!
//! A worker never sees another shard's epoch deltas until the merge, so a
//! step may read a *stale* binding.  That is safe, for the reason the
//! ROADMAP asks to be made explicit:
//!
//! 1. **Every view is bounded**: `snapshot ⊑ view ⊑ snapshot ⊔ (all
//!    round deltas) = next snapshot ⊑ final store`.  For the
//!    effectively-monotone step functions of the analyses (more store ⇒
//!    more flows), stepping against a smaller store can only *miss*
//!    successors/bindings, never invent wrong ones — and extra steps
//!    against a larger view are harmless for the same reason.
//! 2. **Missed deltas re-enqueue the reader.**  Each installed entry
//!    records the addresses its step read (`deps`), and the merge folds
//!    *every* delta produced this round, reporting exactly the addresses
//!    that grew.  A stale reader's address is in that changed set, so the
//!    reverse dependency index re-seeds the reader into the next
//!    frontier, where it re-steps against a store that *includes* the
//!    missed delta.  Fixpoint iteration then converges exactly as the
//!    sequential engine does.
//! 3. **Staleness is also bounded eagerly**: each shard owns the
//!    addresses that hash to it and bumps a per-shard atomic **epoch
//!    counter** whenever an epoch produced a delta.  A worker that reads
//!    an address whose owner has published a newer epoch than the
//!    worker's phase-start snapshot stops elastic progression and
//!    requests the merge ([`EngineStats::stale_merges`]), so shards
//!    racing on the same addresses degrade gracefully towards the
//!    barrier engine instead of piling up re-work.
//!
//! The consequence, and the contract the differential suite pins: the
//! **fixpoint is byte-identical to the sequential direct engine**, while
//! the *work counters* (steps, epochs, memo traffic) are
//! timing-dependent — an elastic run may legitimately step a state more
//! (or fewer) times than the barrier engine.  Only fixpoint equality is
//! asserted; never step-count parity.  `epochs = 1` delegates to the
//! barrier engine, counters and all.
//!
//! Non-monotone steps keep the PR-2 defence: a re-step whose successor
//! set shrinks aborts elastic progression immediately and triggers a
//! single-epoch *rebuild* phase that re-steps every known state against
//! the same pre-store, exactly as the barrier engine does.
//!
//! ## Per-worker intern memos
//!
//! Every `resolve_cloned`/`intern` in the barrier engine's hot loop takes
//! a stripe mutex on the shared [`ShardedInterner`].  Elastic workers
//! front it with a private [`WorkerInternCache`] that persists across
//! phases, so re-touched states are resolved and re-interned without any
//! lock; the hit/miss counters surface as
//! `EngineStats::worker_cache_hits/misses` and the remaining stripe
//! traffic as [`EngineStats::stripe_acquisitions`].

use std::any::Any;
use std::collections::BTreeSet;
use std::hash::Hash;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};

use crate::addr::HasInitial;
use crate::collect::SharedStoreDomain;
use crate::gc::Touches;
use crate::hash::{fx_hash_of, FxHashMap};
use crate::intern::{
    InternKey, ShardedInterner, StateId, WorkerInternCache, WORKER_CACHE_CAPACITY,
};
use crate::monad::Value;
use crate::store::{StoreDelta, StoreLike};
use crate::telemetry::{
    label_of, GovernorTrace, GovernorTraceKind, MergeTrace, RoundTrace, Stopwatch, TraceSink,
    WorkerBuffer,
};

use super::super::governor::{fault_point, Budget, CancelToken, ExhaustReason, Outcome, SolveFrom};
use super::super::shared::{
    sorted_subset, step_entry, IdDependents, InternedCache, InternedEntry, SharedGovernedSolve,
    SharedResumeSeed, ADDR_LABEL_MAX, STATE_LABEL_MAX,
};
#[cfg(test)]
use super::super::ParallelCollecting;
use super::super::{narrow_store_post_pass, EngineStats, StateRoots, StepFn, WidenTracker};
use super::{install_entries, solve_parallel_governed, ParallelConfig, SpinBarrier};
use crate::lattice::WidenLattice;

/// The shard that *owns* an address: the publisher of its epoch counter.
/// A pure function of the address, so every worker agrees without
/// coordination.
#[inline]
fn owner_of<A: Hash>(addr: &A, shards: usize) -> usize {
    (fx_hash_of(addr) as usize) % shards
}

/// One elastic phase, as published to the worker pool: per-worker
/// sub-frontier slices (no stealing — elastic shard ownership is what
/// keeps sub-frontiers disjoint), the round's store snapshot, and the
/// epoch budget (1 for rebuild phases).
struct ElasticPhase<S> {
    /// Per-worker initial sub-frontiers (disjoint, ascending ids).
    shards: Vec<Vec<StateId>>,
    /// The pre-round store snapshot every view starts from.
    store: S,
    /// Maximum epochs a worker may run before the merge.
    epochs: usize,
    /// Whether workers should record into their trace buffers.
    trace: bool,
    /// The governing budget's cancellation flag: polled inside
    /// interruptible epochs (epoch 1 always completes — that is the
    /// progress guarantee), so cancel latency is bounded by one epoch.
    cancel: CancelToken,
}

/// One worker's output for an elastic phase.  `unstepped` carries the
/// fresh ids the worker minted but did not step before exiting (epoch
/// budget, stale read, or merge request) — the coordinator seeds them
/// into the next round's frontier.
struct ElasticOutcome<S, A> {
    worker: usize,
    entries: Vec<(StateId, InternedEntry<S, A>)>,
    stats: EngineStats,
    shrank: bool,
    processed: usize,
    unstepped: Vec<StateId>,
    trace: WorkerBuffer,
}

/// The body of one worker for one elastic phase: run up to `phase.epochs`
/// epochs over the private sub-frontier, stepping against the private
/// view, minting the next epoch from own-fresh ids, and exiting early on
/// drain, stale read, shrink, or a merge request from another shard.
#[allow(clippy::too_many_arguments)]
fn run_elastic_worker_phase<Ps, G, S, F>(
    me: usize,
    step: &F,
    phase: &ElasticPhase<S>,
    interner: &ShardedInterner<(Ps, G), StateId>,
    cache: &InternedCache<S, Ps::Addr>,
    shard_epochs: &[AtomicUsize],
    merge_requested: &AtomicBool,
    memo: &mut WorkerInternCache<(Ps, G), StateId>,
) -> ElasticOutcome<S, Ps::Addr>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    let mut outcome = ElasticOutcome {
        worker: me,
        entries: Vec::new(),
        stats: EngineStats::default(),
        shrank: false,
        processed: 0,
        unstepped: Vec::new(),
        trace: WorkerBuffer::default(),
    };
    let trace = phase.trace;
    let shards = shard_epochs.len();
    // Single-epoch phases (rebuild rounds, and the `epochs = 1` knob
    // before it delegates) skip the elastic machinery entirely: no view
    // folding, no staleness detection, no publication.
    let multi_epoch = phase.epochs > 1;
    let mut busy_watch = Stopwatch::start(trace);
    // The phase-start snapshot of every shard's published epoch: a read
    // of an address whose owner has moved past this is a stale read.
    let epoch_base: Vec<usize> = shard_epochs
        .iter()
        .map(|e| e.load(Ordering::Acquire))
        .collect();
    // The private view: the round snapshot plus this worker's own folded
    // deltas.  One whole-store clone per phase (spine-shared, so cheap).
    let mut view: Option<S> = multi_epoch.then(|| phase.store.clone());
    let mut frontier: Vec<StateId> = phase.shards[me].clone();
    let mut stale = false;
    let mut epoch = 0usize;
    loop {
        epoch += 1;
        outcome.stats.epochs_run += 1;
        let mut epoch_watch = Stopwatch::start(trace);
        let mut fresh: Vec<StateId> = Vec::new();
        let mut epoch_changed = false;
        let stepped_before = outcome.processed;
        // Epoch 1 always runs to completion: every published frontier id
        // is stepped every round, which is what guarantees the solve
        // makes progress no matter how eagerly other shards request
        // merges.  Later epochs are best-effort and yield promptly.
        let interruptible = epoch > 1;
        let mut cut = frontier.len();
        for (i, &id) in frontier.iter().enumerate() {
            if interruptible
                && (stale || merge_requested.load(Ordering::Relaxed) || phase.cancel.is_cancelled())
            {
                cut = i;
                break;
            }
            fault_point(me);
            outcome.stats.states_stepped += 1;
            outcome.stats.spine_clones += 1;
            outcome.processed += 1;
            let mut step_watch = Stopwatch::start(trace);
            let (ps, guts) = memo.resolve_cloned(interner, id);
            let base = view.as_ref().unwrap_or(&phase.store);
            let entry = step_entry(step, ps, guts, base, |k| {
                let (sid, minted) = memo.intern_fresh(interner, k);
                if minted {
                    fresh.push(sid);
                }
                sid
            });
            if trace {
                outcome.trace.costs.push((id, step_watch.lap_ns()));
            }
            if let Some(old) = cache.get(id.index()).and_then(Option::as_ref) {
                outcome.stats.reenqueued += 1;
                if !sorted_subset(&old.successors, &entry.successors) {
                    // Non-monotone re-step: abandon elastic progression
                    // at once — the coordinator will run a rebuild phase
                    // from the unmerged pre-store.
                    outcome.shrank = true;
                    stale = true;
                }
            }
            if multi_epoch {
                // Staleness: did this step read an address whose owner
                // shard has published since our snapshot?  (Our own
                // shard's writes are in the view already.)
                for a in &entry.deps {
                    let owner = owner_of(a, shards);
                    if owner != me
                        && shard_epochs[owner].load(Ordering::Acquire) > epoch_base[owner]
                    {
                        stale = true;
                    }
                }
                // Fold our own delta into the private view so our chains
                // advance within this round.
                outcome.stats.spine_clones += 1;
                let changed = view
                    .as_mut()
                    .expect("multi-epoch phase has a view")
                    .join_in_place_delta(entry.delta.clone());
                epoch_changed |= !changed.is_empty();
            }
            outcome.entries.push((id, entry));
        }
        // Publish before recording/exiting: other shards reading our
        // addresses must see that our accumulated delta grew this epoch.
        if epoch_changed {
            shard_epochs[me].fetch_add(1, Ordering::Release);
        }
        if trace {
            outcome.trace.epochs.push((
                epoch,
                outcome.processed - stepped_before,
                fresh.len(),
                stale,
                epoch_watch.lap_ns(),
            ));
        }
        if cut < frontier.len() {
            // Interrupted mid-epoch: park the rest (all fresh-minted this
            // phase, so they have no entries yet) for the next frontier.
            outcome.unstepped.extend_from_slice(&frontier[cut..]);
            outcome.unstepped.extend(fresh);
            break;
        }
        if stale {
            outcome.stats.stale_merges += 1;
            merge_requested.store(true, Ordering::Release);
            outcome.unstepped.extend(fresh);
            break;
        }
        if fresh.is_empty() {
            // Sub-frontier drained: our only possible next work comes
            // from the dependency-index re-seed, which needs the merge.
            if multi_epoch && outcome.processed > 0 {
                merge_requested.store(true, Ordering::Release);
            }
            break;
        }
        if epoch == phase.epochs
            || merge_requested.load(Ordering::Acquire)
            || phase.cancel.is_cancelled()
        {
            outcome.unstepped.extend(fresh);
            break;
        }
        frontier = fresh;
    }
    outcome.trace.busy_ns = busy_watch.lap_ns();
    outcome
}

/// The governed elastic solve: the one implementation behind both the
/// classic and the governed elastic entry points (see
/// [`ParallelCollecting::explore_frontier_elastic_traced`]).
///
/// Returns `Err` with the original panic payload when a worker panicked;
/// the pool is always drained and shut down first.
pub(super) fn solve_elastic_governed<Ps, G, S, F, T>(
    step: &F,
    from: SolveFrom<Ps, SharedResumeSeed<Ps, G, S>>,
    config: ParallelConfig,
    budget: &Budget,
    sink: &mut T,
) -> Result<SharedGovernedSolve<Ps, G, S>, Box<dyn Any + Send>>
where
    Ps: Value + Ord + Hash + StateRoots + Send + Sync + std::fmt::Debug,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial + Send + Sync,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    let threads = config.threads.max(1);
    let epochs = config.epochs.max(1);
    if epochs == 1 {
        // One epoch per round *is* the barrier protocol — delegate so the
        // knob is exactly equivalent (work counters included).
        return solve_parallel_governed(step, from, threads, budget, sink);
    }
    let armed = sink.enabled();
    let mut stats = EngineStats::default();
    // Widening bookkeeping lives only at the coordinator's lazy merge:
    // worker views fold their own deltas with the plain join (an epoch is
    // bounded, so elastic progression cannot diverge between merges), and
    // points are selected from merge-round growth.  Point selection is
    // therefore timing-dependent here — which is why `widen_applied` is
    // exempt from cross-engine gating for this driver — and so, in
    // general, is the widened post-fixpoint itself: merge timing feeds the
    // tracker different growth counts, so different addresses can cross
    // the threshold and widen, and `▽` is not monotone in where it is
    // applied.  Every outcome is a sound post-fixpoint of the same
    // semantics (termination needs only *some* eventually-widened
    // accumulation per unstable address), but byte-identity with the
    // sequential engines is a per-workload property, not a driver
    // guarantee: it holds when every point-selection schedule saturates
    // the same bounds (e.g. the E16 counting loop, whose single cell
    // widens its unstable upper bound to +∞ under any schedule), and the
    // bench harness asserts elastic parity only on such workloads.
    let mut widen: WidenTracker<Ps::Addr> = WidenTracker::new(&budget.widen);
    let interner: ShardedInterner<(Ps, G), StateId> = ShardedInterner::new();
    let cache_lock: RwLock<InternedCache<S, Ps::Addr>> = RwLock::new(Vec::new());
    let mut dependents: IdDependents<Ps::Addr> = FxHashMap::default();
    let mut known_ids: Vec<StateId> = Vec::new();

    // Fresh solves inject the initial pair; resumed solves re-intern the
    // carried pairs (the whole set forms the first frontier) and start
    // from the carried store — see the barrier engine for the argument.
    let (mut store, initial_frontier): (S, BTreeSet<StateId>) = match from {
        SolveFrom::Fresh(initial) => {
            let initial_id = interner.intern((initial, G::initial()));
            known_ids.push(initial_id);
            (S::bottom(), [initial_id].into_iter().collect())
        }
        SolveFrom::Resume(seed) => {
            for pair in seed.states {
                known_ids.push(interner.intern(pair));
            }
            (seed.store, known_ids.iter().copied().collect())
        }
    };

    // Per-shard published epoch counters and the cooperative merge flag —
    // the only coordination the elastic step phase has.
    let shard_epochs: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let merge_requested = AtomicBool::new(false);

    let phase_slot: RwLock<Option<ElasticPhase<S>>> = RwLock::new(None);
    let outcomes: Mutex<Vec<ElasticOutcome<S, Ps::Addr>>> = Mutex::new(Vec::new());
    let worker_panics: Mutex<Vec<Box<dyn std::any::Any + Send>>> = Mutex::new(Vec::new());
    let start_barrier = SpinBarrier::new(threads + 1);
    let done_barrier = SpinBarrier::new(threads + 1);

    // The coordinator's own memo, for the inline singleton-phase path.
    let mut inline_memo: WorkerInternCache<(Ps, G), StateId> =
        WorkerInternCache::new(WORKER_CACHE_CAPACITY);

    let solve = std::thread::scope(|scope| {
        for me in 0..threads {
            let interner = &interner;
            let cache_lock = &cache_lock;
            let phase_slot = &phase_slot;
            let outcomes = &outcomes;
            let start_barrier = &start_barrier;
            let done_barrier = &done_barrier;
            let worker_panics = &worker_panics;
            let shard_epochs = &shard_epochs;
            let merge_requested = &merge_requested;
            scope.spawn(move || {
                // The worker's memo persists across phases: the hot
                // states of round r are usually re-touched in round r+1.
                let mut memo: WorkerInternCache<(Ps, G), StateId> =
                    WorkerInternCache::new(WORKER_CACHE_CAPACITY);
                loop {
                    start_barrier.wait();
                    let keep_going = catch_unwind(AssertUnwindSafe(|| {
                        let guard = phase_slot.read().unwrap_or_else(PoisonError::into_inner);
                        let Some(phase) = guard.as_ref() else {
                            return false;
                        };
                        let cache = cache_lock.read().unwrap_or_else(PoisonError::into_inner);
                        let mut outcome = run_elastic_worker_phase(
                            me,
                            step,
                            phase,
                            interner,
                            &cache,
                            shard_epochs,
                            merge_requested,
                            &mut memo,
                        );
                        drop(cache);
                        let (hits, misses) = memo.take_counters();
                        outcome.stats.worker_cache_hits = hits;
                        outcome.stats.worker_cache_misses = misses;
                        outcomes
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .push(outcome);
                        true
                    }));
                    match keep_going {
                        Ok(true) => done_barrier.wait(),
                        Ok(false) => return,
                        Err(payload) => {
                            worker_panics
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .push(payload);
                            done_barrier.wait();
                        }
                    }
                }
            });
        }

        // Publishes one elastic phase (step or rebuild, selected by the
        // epoch budget) and collects the merged outcomes.  Returns
        // `(shrank, wall_ns, max_busy_ns)`.
        let mut run_phase = |ids: Vec<StateId>,
                             store: &S,
                             phase_epochs: usize,
                             stats: &mut EngineStats,
                             results: &mut Vec<(StateId, InternedEntry<S, Ps::Addr>)>,
                             unstepped: &mut Vec<StateId>,
                             round: usize,
                             sink: &mut T|
         -> (bool, u64, u64) {
            merge_requested.store(false, Ordering::Release);
            // A singleton (or empty) frontier still benefits from
            // elasticity — the epoch loop chases the chain inline on the
            // coordinator without waking the pool at all.
            if ids.len() <= 1 {
                let phase = ElasticPhase {
                    shards: {
                        let mut shards = vec![Vec::new(); threads];
                        shards[0] = ids;
                        shards
                    },
                    store: store.clone(),
                    epochs: phase_epochs,
                    trace: armed,
                    cancel: budget.cancel.clone(),
                };
                let cache = cache_lock.read().unwrap_or_else(PoisonError::into_inner);
                let mut outcome = run_elastic_worker_phase(
                    0,
                    step,
                    &phase,
                    &interner,
                    &cache,
                    &shard_epochs,
                    &merge_requested,
                    &mut inline_memo,
                );
                drop(cache);
                let (hits, misses) = inline_memo.take_counters();
                outcome.stats.worker_cache_hits = hits;
                outcome.stats.worker_cache_misses = misses;
                stats.merge(&outcome.stats);
                let busy = outcome.trace.busy_ns;
                if armed {
                    outcome.trace.drain_into(
                        round,
                        outcome.worker,
                        outcome.processed,
                        busy,
                        sink,
                        |id| label_of(&interner.resolve_cloned(id).0, STATE_LABEL_MAX),
                    );
                }
                results.extend(outcome.entries);
                unstepped.extend(outcome.unstepped);
                return (outcome.shrank, busy, busy);
            }
            let len = ids.len();
            let shards: Vec<Vec<StateId>> = (0..threads)
                .map(|t| ids[t * len / threads..(t + 1) * len / threads].to_vec())
                .collect();
            *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = Some(ElasticPhase {
                shards,
                store: store.clone(),
                epochs: phase_epochs,
                trace: armed,
                cancel: budget.cancel.clone(),
            });
            let mut wall_watch = Stopwatch::start(armed);
            start_barrier.wait();
            done_barrier.wait();
            let wall_ns = wall_watch.lap_ns();
            *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = None;
            if let Some(payload) = worker_panics
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop()
            {
                resume_unwind(payload);
            }
            let mut shrank = false;
            let mut max_busy_ns = 0u64;
            let (mut max_processed, mut min_processed) = (0usize, usize::MAX);
            for outcome in
                std::mem::take(&mut *outcomes.lock().unwrap_or_else(PoisonError::into_inner))
            {
                shrank |= outcome.shrank;
                max_processed = max_processed.max(outcome.processed);
                min_processed = min_processed.min(outcome.processed);
                max_busy_ns = max_busy_ns.max(outcome.trace.busy_ns);
                stats.merge(&outcome.stats);
                if armed {
                    outcome.trace.drain_into(
                        round,
                        outcome.worker,
                        outcome.processed,
                        wall_ns,
                        sink,
                        |id| label_of(&interner.resolve_cloned(id).0, STATE_LABEL_MAX),
                    );
                }
                results.extend(outcome.entries);
                unstepped.extend(outcome.unstepped);
            }
            stats.shard_imbalance = stats
                .shard_imbalance
                .max(max_processed - min_processed.min(max_processed));
            (shrank, wall_ns, max_busy_ns)
        };

        let solve = catch_unwind(AssertUnwindSafe(|| {
            let mut frontier: BTreeSet<StateId> = initial_frontier;
            let mut exhausted: Option<ExhaustReason> = None;
            while !frontier.is_empty() {
                // Budget boundary: once per merge round, on the
                // coordinator; mid-round, only the cancel token is polled
                // (by the workers, inside interruptible epochs).
                if let Some(reason) = budget.exhausted(stats.iterations, stats.states_stepped) {
                    sink.governor(GovernorTrace {
                        round: stats.iterations,
                        kind: GovernorTraceKind::Exhausted(reason),
                    });
                    exhausted = Some(reason);
                    break;
                }
                stats.iterations += 1;
                stats.sync_rounds += 1;
                let known = known_ids.len();
                let marks = interner.watermarks();
                let stale_before = stats.stale_merges;

                let frontier_vec: Vec<StateId> = frontier.iter().copied().collect();
                let frontier_len = frontier_vec.len();
                let mut results: Vec<(StateId, InternedEntry<S, Ps::Addr>)> = Vec::new();
                let mut unstepped: Vec<StateId> = Vec::new();
                let round = stats.iterations;
                let (shrank, mut wall_ns, mut busy_ns) = run_phase(
                    frontier_vec,
                    &store,
                    epochs,
                    &mut stats,
                    &mut results,
                    &mut unstepped,
                    round,
                    sink,
                );
                let mut stepped_this_round = results.len();

                // Rebuild defence: a re-step shrank somewhere in the
                // elastic phase, so recompute *everything* stepped so far
                // — every known id plus every id this round touched —
                // against the same unmerged pre-store, in one plain
                // barrier-style epoch.  Install replaces the elastic
                // entries wholesale, exactly like the sequential rebuild.
                if shrank {
                    stats.rebuild_rounds += 1;
                    let mut rebuild_ids: BTreeSet<StateId> = known_ids.iter().copied().collect();
                    rebuild_ids.extend(results.iter().map(|(id, _)| *id));
                    stats.peak_frontier = stats.peak_frontier.max(rebuild_ids.len());
                    stepped_this_round += rebuild_ids.len();
                    let (_, rebuild_wall, rebuild_busy) = run_phase(
                        rebuild_ids.into_iter().collect(),
                        &store,
                        1,
                        &mut stats,
                        &mut results,
                        &mut unstepped,
                        round,
                        sink,
                    );
                    wall_ns += rebuild_wall;
                    busy_ns += rebuild_busy;
                } else {
                    stats.peak_frontier = stats.peak_frontier.max(frontier.len());
                    stats.cache_hits += known - frontier.len();
                }

                // The lazy merge: install every entry this round produced
                // (for a duplicated id the later phase's entry wins),
                // then fold each touched id's delta once, ascending.
                let mut fold_ids: Vec<StateId> = results.iter().map(|(id, _)| *id).collect();
                fold_ids.sort_unstable();
                fold_ids.dedup();
                let mut join_watch = Stopwatch::start(armed);
                let mut cache = cache_lock.write().unwrap_or_else(PoisonError::into_inner);
                install_entries(results, interner.id_bound(), &mut cache, &mut dependents);
                let mut changed_addrs: BTreeSet<Ps::Addr> = BTreeSet::new();
                for &id in &fold_ids {
                    let entry = cache[id.index()].as_ref().expect("fold of an unstepped id");
                    stats.store_joins += 1;
                    stats.spine_clones += 1;
                    if armed {
                        let bound = entry.delta.addresses();
                        let changed =
                            store.widen_in_place_delta(entry.delta.clone(), widen.points());
                        for a in &bound {
                            sink.join_traffic(&label_of(a, ADDR_LABEL_MAX), changed.contains(a));
                        }
                        changed_addrs.extend(changed);
                    } else {
                        changed_addrs.extend(
                            store.widen_in_place_delta(entry.delta.clone(), widen.points()),
                        );
                    }
                }
                // Next frontier, part 1: fresh ids nobody stepped (the
                // parked `unstepped` ids, plus any minted by a rebuild
                // phase) — precisely the fresh ids with no entry.
                let fresh = interner.fresh_since(&marks);
                known_ids.extend(fresh.iter().copied());
                let mut next: BTreeSet<StateId> = unstepped.into_iter().collect();
                for id in fresh {
                    if cache.get(id.index()).and_then(Option::as_ref).is_none() {
                        next.insert(id);
                    }
                }
                drop(cache);
                let join_ns = join_watch.lap_ns();
                let (joined, widened) = widen.classify(&changed_addrs);
                stats.store_joins_applied += joined;
                stats.widen_applied += widened;
                widen.record(&changed_addrs);
                stats.store_bytes_shared = stats.store_bytes_shared.max(store.shared_spine_bytes());
                sink.round(RoundTrace {
                    round,
                    frontier: frontier_len,
                    stepped: stepped_this_round,
                    joins: fold_ids.len(),
                    delta_width: changed_addrs.len(),
                    rebuild: shrank,
                    step_ns: busy_ns,
                    join_ns,
                    sync_ns: wall_ns.saturating_sub(busy_ns),
                });
                sink.merge(MergeTrace {
                    round,
                    entries: fold_ids.len(),
                    changed: changed_addrs.len(),
                    stale: stats.stale_merges > stale_before,
                    merge_ns: join_ns,
                });
                // Next frontier, part 2: the dependency-index re-seed —
                // this is where a stale reader gets its second chance.
                for a in &changed_addrs {
                    if let Some(ids) = dependents.get(a) {
                        next.extend(ids.iter().copied());
                    }
                }
                frontier = next;
            }
            exhausted
        }));

        *phase_slot.write().unwrap_or_else(PoisonError::into_inner) = None;
        start_barrier.wait();
        solve
    });

    // A worker panicked: the pool is drained and joined — hand the
    // payload back for the caller to re-raise or convert.
    let exhausted = solve?;

    stats.intern_hits = interner.hits();
    stats.intern_misses = interner.misses();
    stats.distinct_states = interner.len();
    stats.stripe_acquisitions = interner.stripe_acquisitions();
    let states: BTreeSet<(Ps, G)> = interner
        .entries_cloned()
        .into_iter()
        .map(|(_, value)| value)
        .collect();
    let outcome = match exhausted {
        None => {
            // The decreasing pass runs on the final (states, store) pair
            // only — the *refinement* is engine-independent, but the pair
            // it refines is whatever the elastic ascent widened to, which
            // timing-dependent point selection can make differ from the
            // sequential engines' (see the widening comment at the top of
            // this solve).
            if budget.widen.enabled && budget.widen.narrow_passes > 0 {
                narrow_store_post_pass(
                    &states,
                    &mut store,
                    step,
                    budget.widen.narrow_passes,
                    budget,
                );
            }
            Outcome::Complete(SharedStoreDomain::from_parts(states, store))
        }
        Some(reason) => {
            let resume_seed = Box::new(SharedResumeSeed {
                states: states.iter().cloned().collect(),
                store: store.clone(),
            });
            Outcome::Exhausted {
                partial: SharedStoreDomain::from_parts(states, store),
                reason,
                resume_seed,
            }
        }
    };
    Ok((outcome, stats))
}

#[cfg(test)]
mod tests {
    use super::super::super::DirectCollecting;
    use super::super::tests::{direct_step, nonmonotone_step, Dom, NmSt, St, G, S};
    use super::*;
    use crate::monad::run_store_passing;
    use crate::telemetry::TraceBuffer;

    const EPOCH_GRID: [usize; 3] = [1, 2, 8];
    const THREAD_GRID: [usize; 3] = [1, 2, 4];

    #[test]
    fn elastic_matches_sequential_fixpoint_across_the_grid() {
        let (sequential, seq_stats) =
            <Dom as DirectCollecting<St, G, S>>::explore_frontier_direct(&direct_step, St(0));
        for threads in THREAD_GRID {
            for epochs in EPOCH_GRID {
                let (elastic, stats) =
                    <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic(
                        &direct_step,
                        St(0),
                        ParallelConfig { threads, epochs },
                    );
                assert_eq!(
                    elastic, sequential,
                    "fixpoint diverged at {threads} threads, {epochs} epochs"
                );
                // Fixpoint-level invariants only: elastic step counts are
                // legitimately timing-dependent, so no step-count parity.
                assert_eq!(stats.distinct_states, seq_stats.distinct_states);
                assert_eq!(stats.sync_rounds, stats.iterations);
                assert!(stats.states_stepped >= seq_stats.distinct_states);
                if epochs > 1 {
                    assert!(stats.epochs_run >= stats.iterations);
                    assert!(
                        stats.worker_cache_hits + stats.worker_cache_misses > 0,
                        "the worker memo must see traffic"
                    );
                }
            }
        }
    }

    #[test]
    fn one_epoch_is_exactly_the_barrier_engine() {
        for threads in THREAD_GRID {
            let (barrier, barrier_stats) =
                <Dom as ParallelCollecting<St, G, S>>::explore_frontier_parallel(
                    &direct_step,
                    St(0),
                    threads,
                );
            let (elastic, elastic_stats) =
                <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic(
                    &direct_step,
                    St(0),
                    ParallelConfig { threads, epochs: 1 },
                );
            assert_eq!(elastic, barrier);
            // Full delegation: even the timing-dependent counters come
            // from the same code path (modulo steal/stripe timing).
            assert_eq!(elastic_stats.iterations, barrier_stats.iterations);
            assert_eq!(elastic_stats.states_stepped, barrier_stats.states_stepped);
            assert_eq!(elastic_stats.epochs_run, 0);
            assert_eq!(elastic_stats.worker_cache_hits, 0);
        }
    }

    #[test]
    fn elastic_rebuild_defence_matches_sequential() {
        type NmDom = SharedStoreDomain<NmSt, G, S>;
        let nm_direct = |ps: NmSt, g: G, s: S| run_store_passing(nonmonotone_step(ps), g, s);
        let (sequential, seq_stats) =
            <NmDom as DirectCollecting<NmSt, G, S>>::explore_frontier_direct(&nm_direct, NmSt(0));
        assert!(seq_stats.rebuild_rounds > 0, "oracle must rebuild");
        for threads in [1usize, 3] {
            for epochs in [2usize, 8] {
                let (elastic, stats) =
                    <NmDom as ParallelCollecting<NmSt, G, S>>::explore_frontier_elastic(
                        &nm_direct,
                        NmSt(0),
                        ParallelConfig { threads, epochs },
                    );
                assert_eq!(
                    elastic, sequential,
                    "rebuild diverged at {threads} threads, {epochs} epochs"
                );
                assert!(stats.rebuild_rounds > 0);
            }
        }
    }

    #[test]
    fn elastic_worker_panic_propagates() {
        let poisoned_step = |ps: St, g: G, s: S| {
            if ps.0 == 3 {
                panic!("boom at state 3");
            }
            direct_step(ps, g, s)
        };
        for threads in [1usize, 2, 4] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic(
                    &poisoned_step,
                    St(0),
                    ParallelConfig { threads, epochs: 4 },
                )
            }));
            let payload = caught.expect_err("the step panic must propagate");
            let message = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert!(message.contains("boom"), "unexpected payload: {message}");
        }
    }

    #[test]
    fn zero_config_clamps_to_one_thread_one_epoch() {
        let (domain, _) = <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic(
            &direct_step,
            St(0),
            ParallelConfig {
                threads: 0,
                epochs: 0,
            },
        );
        let (sequential, _) =
            <Dom as DirectCollecting<St, G, S>>::explore_frontier_direct(&direct_step, St(0));
        assert_eq!(domain, sequential);
    }

    #[test]
    fn traced_elastic_records_epochs_and_merges() {
        let mut buf = TraceBuffer::new();
        let (traced, traced_stats) =
            <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic_traced(
                &direct_step,
                St(0),
                ParallelConfig {
                    threads: 2,
                    epochs: 4,
                },
                &mut buf,
            );
        let (untraced, untraced_stats) =
            <Dom as ParallelCollecting<St, G, S>>::explore_frontier_elastic(
                &direct_step,
                St(0),
                ParallelConfig {
                    threads: 2,
                    epochs: 4,
                },
            );
        // Tracing must never change the fixpoint; counters may differ
        // (epoch timing), but the round structure is sink-independent at
        // the fixpoint level.
        assert_eq!(traced, untraced);
        assert_eq!(traced_stats.distinct_states, untraced_stats.distinct_states);
        assert_eq!(buf.rounds.len(), traced_stats.iterations);
        assert_eq!(buf.merges.len(), traced_stats.iterations);
        assert_eq!(
            buf.epochs.len(),
            traced_stats.epochs_run,
            "one epoch trace per epoch run"
        );
        assert!(buf.epochs.iter().all(|e| e.epoch >= 1 && e.epoch <= 4));
        let json = buf.chrome_trace_json();
        assert!(json.contains("\"cat\":\"epoch\""));
        assert!(json.contains("\"cat\":\"merge\""));
    }
}
