//! Engine governance: budgets, cooperative cancellation, clean worker
//! failure, and (behind the `fault-inject` feature) deterministic fault
//! injection for the parallel drivers.
//!
//! Every engine in the ladder is *governed*: the solver loop consults a
//! [`Budget`] at each round boundary (sequential engines) or
//! barrier/epoch boundary (parallel drivers) and, instead of running
//! open-loop until the fixpoint, returns an [`Outcome`] that is either
//! `Complete` or `Exhausted` with a *resumable partial*.  The ungoverned
//! entry points are thin wrappers passing [`Budget::unlimited`], whose
//! checks cost one branch and one relaxed atomic load per round and
//! never touch the clock — so governed-off runs are byte-identical to
//! the pre-governor engines in both fixpoints and work counters (the
//! differential suite enforces this).
//!
//! ## Resumption
//!
//! An `Exhausted` outcome carries a [`ResumeSeed`]: the full state set
//! and accumulated store of the partial.  Re-seeding a fresh run from it
//! re-steps every known state once — rebuilding the dependency index the
//! partial run discarded — and then proceeds normally.  Because the
//! collecting semantics only ever *grows* (states accumulate, stores
//! join monotonically), the resumed run reaches exactly the least
//! fixpoint a one-shot run reaches; only wall-clock and work counters
//! differ.
//!
//! ## Worker panics
//!
//! Parallel workers run each phase under `catch_unwind`.  A panicking
//! worker parks its payload, still reaches the phase barrier (so the
//! pool never deadlocks), and the coordinator shuts the pool down
//! cleanly and reports [`EngineError::WorkerPanicked`].  The governed
//! parallel entry points surface that as an `Err`; the classic entry
//! points re-raise the original payload to preserve panic-propagation
//! semantics.  [`explore_frontier_ladder_traced`] degrades
//! elastic → barrier → sequential-direct, so a faulted parallel solve
//! still returns the byte-identical fixpoint.
//!
//! [`explore_frontier_ladder_traced`]: crate::engine::explore_frontier_ladder_traced

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cloneable cooperative cancellation flag.
///
/// Cancellation is *requested* with [`CancelToken::cancel`] (from any
/// thread) and *observed* by the engines at round boundaries and by
/// parallel workers between claims/epochs — latency is bounded by one
/// round (sequential) or one epoch (elastic), which the traced
/// cancellation tests assert from the telemetry slices.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation.  Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Why a governed solve stopped short of the fixpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExhaustReason {
    /// The budget's [`CancelToken`] was cancelled.
    Cancelled,
    /// The budget's deadline passed.
    DeadlineExpired,
    /// The solver ran `max_rounds` rounds without converging.
    RoundBudget,
    /// The solver performed `max_steps` state steps without converging.
    StepBudget,
}

impl ExhaustReason {
    /// A stable lower-case identifier (used in bench reports and traces).
    pub fn as_str(self) -> &'static str {
        match self {
            ExhaustReason::Cancelled => "cancelled",
            ExhaustReason::DeadlineExpired => "deadline",
            ExhaustReason::RoundBudget => "rounds",
            ExhaustReason::StepBudget => "steps",
        }
    }
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The widening policy of a governed solve: when (if ever) an engine
/// switches an address's store accumulation from join `⊔` to widening
/// `▽`, and how many narrowing passes follow stabilisation.
///
/// Widening lives on the [`Budget`] because both answer the same
/// question — "how do we keep this solve finite?" — but they stay
/// *distinguishable* in the outcome: a budget that runs out yields
/// [`Outcome::Exhausted`] with an [`ExhaustReason`] (a truncated
/// under-approximation), while widening-forced convergence yields
/// [`Outcome::Complete`] (a sound over-approximation, with
/// [`EngineStats::widen_applied`](crate::engine::EngineStats::widen_applied)
/// recording that widening fired).
///
/// The default is [`WidenPolicy::off`]: every engine behaves
/// byte-identically to its pre-widening self.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WidenPolicy {
    /// Whether widening is enabled at all.
    pub enabled: bool,
    /// How many times an address's binding may *grow* under plain join
    /// before the address becomes a widening point (the classic
    /// "widening delay": small values terminate faster, larger values
    /// keep more precision on chains that would have stabilised anyway).
    pub growth_threshold: usize,
    /// How many descending (narrowing) passes to run after the widened
    /// ascent stabilises.  Narrowing is an engine-independent post-pass
    /// over the final accumulator, so it cannot break cross-engine
    /// byte-identity.  The pass honours the budget's wall-clock bounds
    /// ([`Budget::interrupted`]): a deadline or cancellation stops the
    /// refinement between state re-steps, returning the (sound, merely
    /// less precise) store narrowed so far — the outcome stays
    /// `Complete`, because the widened ascent already converged.
    pub narrow_passes: usize,
}

impl WidenPolicy {
    /// No widening: infinite-height domains may diverge (pair with a
    /// step/round budget to get a clean [`ExhaustReason`] instead).
    pub fn off() -> Self {
        WidenPolicy {
            enabled: false,
            growth_threshold: 0,
            narrow_passes: 0,
        }
    }

    /// Widen an address once its binding has grown `growth_threshold`
    /// times, with two narrowing passes after stabilisation.
    pub fn after_growths(growth_threshold: usize) -> Self {
        WidenPolicy {
            enabled: true,
            growth_threshold,
            narrow_passes: 2,
        }
    }

    /// Overrides the number of post-stabilisation narrowing passes.
    pub fn with_narrow_passes(mut self, narrow_passes: usize) -> Self {
        self.narrow_passes = narrow_passes;
        self
    }
}

impl Default for WidenPolicy {
    fn default() -> Self {
        WidenPolicy::off()
    }
}

/// Resource bounds for a governed solve.
///
/// All limits default to *unlimited*; [`Budget::exhausted`] is the one
/// round-boundary check every engine performs.  The check order is
/// cancel → deadline → rounds → steps, so a cancelled-and-over-budget
/// run deterministically reports [`ExhaustReason::Cancelled`].  The
/// clock is only consulted when a deadline is actually set, keeping the
/// unlimited path free of `Instant::now` calls.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Stop after this many state steps (checked at round boundaries,
    /// so a round may overshoot by its frontier size).
    pub max_steps: Option<usize>,
    /// Stop after this many solver rounds.
    pub max_rounds: Option<usize>,
    /// Stop once `Instant::now()` passes this point.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Widening policy for infinite-height store co-domains.
    pub widen: WidenPolicy,
}

impl Budget {
    /// A budget with no limits: the governed engines behave exactly like
    /// their classic open-loop counterparts.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bounds the number of state steps.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Bounds the number of solver rounds.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_deadline(Instant::now() + timeout)
    }

    /// Attaches a cancellation token (keep a clone to cancel with).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Sets the widening policy.
    pub fn with_widening(mut self, widen: WidenPolicy) -> Self {
        self.widen = widen;
        self
    }

    /// Whether no limit is set and the token is still un-cancelled
    /// clean, i.e. `exhausted` can only ever return `None`.
    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none()
            && self.max_rounds.is_none()
            && self.deadline.is_none()
            && !self.cancel.is_cancelled()
    }

    /// The wall-clock half of [`Budget::exhausted`]: cancellation and
    /// deadline only, independent of the work counters.
    ///
    /// This is the check the narrowing post-pass polls between state
    /// re-steps, so a governed solve with a deadline or a
    /// [`CancelToken`] cannot overrun its bound inside the refinement
    /// sweep.  The round/step budgets deliberately do *not* gate the
    /// pass: the widened store is already a sound `Complete` result, the
    /// pass's steps are not counted in
    /// [`EngineStats`](crate::engine::EngineStats) (they are refinement,
    /// not solve work), and a count-gated pass would truncate differently
    /// across engines whose step counts legitimately differ (elastic vs.
    /// sequential), breaking the cross-engine byte-identity of the
    /// narrowed store.
    #[inline]
    pub fn interrupted(&self) -> Option<ExhaustReason> {
        if self.cancel.is_cancelled() {
            return Some(ExhaustReason::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ExhaustReason::DeadlineExpired);
            }
        }
        None
    }

    /// The round-boundary check: given the rounds completed and state
    /// steps performed so far, should the solve stop, and why?
    #[inline]
    pub fn exhausted(&self, rounds: usize, steps: usize) -> Option<ExhaustReason> {
        if let Some(reason) = self.interrupted() {
            return Some(reason);
        }
        if let Some(max_rounds) = self.max_rounds {
            if rounds >= max_rounds {
                return Some(ExhaustReason::RoundBudget);
            }
        }
        if let Some(max_steps) = self.max_steps {
            if steps >= max_steps {
                return Some(ExhaustReason::StepBudget);
            }
        }
        None
    }
}

/// What a partial solve needs to continue: the states discovered so far
/// and the accumulated store.  Re-seeding steps every carried state once
/// (rebuilding the dependency index) and then converges normally onto
/// the same least fixpoint as a one-shot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeSeed<K, S> {
    /// Every state the partial run discovered, in discovery order.
    pub states: Vec<K>,
    /// The accumulated (partial) store.
    pub store: S,
}

/// Where a governed solve starts: fresh from an initial state, or
/// continued from the [`ResumeSeed`] of a prior `Exhausted` outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveFrom<Ps, Seed> {
    /// Start a fresh solve from this initial state.
    Fresh(Ps),
    /// Continue from a prior partial's resume seed.
    Resume(Seed),
}

/// The result of a governed solve: the fixpoint, or a resumable partial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<Fp, Seed> {
    /// The solve converged; the value is the least fixpoint.
    Complete(Fp),
    /// The budget ran out first.  `partial` under-approximates the
    /// fixpoint; `resume_seed` continues the solve.
    Exhausted {
        /// The sound-so-far partial result.
        partial: Fp,
        /// Which limit fired.
        reason: ExhaustReason,
        /// Seed for a continuation run.
        resume_seed: Box<Seed>,
    },
}

impl<Fp, Seed> Outcome<Fp, Seed> {
    /// Whether the solve converged.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete(_))
    }

    /// The (possibly partial) result value.
    pub fn value(&self) -> &Fp {
        match self {
            Outcome::Complete(value) => value,
            Outcome::Exhausted { partial, .. } => partial,
        }
    }

    /// Consumes the outcome, returning the (possibly partial) value.
    pub fn into_value(self) -> Fp {
        match self {
            Outcome::Complete(value) => value,
            Outcome::Exhausted { partial, .. } => partial,
        }
    }

    /// Unwraps a `Complete` outcome.
    ///
    /// # Panics
    /// If the solve exhausted its budget — only call this when the
    /// budget is [`Budget::unlimited`].
    #[track_caller]
    pub fn into_complete(self) -> Fp {
        match self {
            Outcome::Complete(value) => value,
            Outcome::Exhausted { reason, .. } => {
                panic!("solve exhausted its budget ({reason}) where completion was guaranteed")
            }
        }
    }

    /// The exhaustion reason, if the budget fired.
    pub fn exhaust_reason(&self) -> Option<ExhaustReason> {
        match self {
            Outcome::Complete(_) => None,
            Outcome::Exhausted { reason, .. } => Some(*reason),
        }
    }

    /// Maps the result value, preserving the outcome shape.
    pub fn map<Fp2>(self, f: impl FnOnce(Fp) -> Fp2) -> Outcome<Fp2, Seed> {
        match self {
            Outcome::Complete(value) => Outcome::Complete(f(value)),
            Outcome::Exhausted {
                partial,
                reason,
                resume_seed,
            } => Outcome::Exhausted {
                partial: f(partial),
                reason,
                resume_seed,
            },
        }
    }
}

/// A clean engine failure: the machinery (not the analysis) went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A parallel worker panicked mid-phase.  The pool was drained and
    /// shut down cleanly; no fixpoint was produced.
    WorkerPanicked {
        /// The panic message, when it was a string payload.
        message: String,
    },
}

impl EngineError {
    /// Builds a `WorkerPanicked` from a caught panic payload, extracting
    /// the message when the payload is a `&str` or `String`.
    pub fn worker_panicked(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_owned()
        };
        EngineError::WorkerPanicked { message }
    }

    /// The human-readable failure message.
    pub fn message(&self) -> &str {
        match self {
            EngineError::WorkerPanicked { message } => message,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::WorkerPanicked { message } => {
                write!(f, "parallel worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Which rung of the degradation ladder produced the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// The barrier-elastic parallel driver succeeded.
    Elastic,
    /// Elastic faulted; the plain barrier driver succeeded.
    Barrier,
    /// Both parallel drivers faulted; the sequential direct engine
    /// (which never consults the fault plan) produced the result.
    SequentialDirect,
}

impl LadderRung {
    /// A stable lower-case identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            LadderRung::Elastic => "elastic",
            LadderRung::Barrier => "barrier",
            LadderRung::SequentialDirect => "sequential-direct",
        }
    }
}

impl fmt::Display for LadderRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a degradation-ladder solve went: which rung answered and what
/// the faulted rungs reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LadderReport {
    /// The rung that produced the returned outcome.
    pub rung: LadderRung,
    /// Errors from the rungs that faulted, in descent order.
    pub faults: Vec<(LadderRung, EngineError)>,
}

impl LadderReport {
    /// Whether any rung faulted before one answered.
    pub fn degraded(&self) -> bool {
        !self.faults.is_empty()
    }
}

/// Deterministic fault injection for the parallel drivers.
///
/// A `FaultPlan` maps `(worker, nth-step)` points to actions: each
/// worker counts the states it steps (its own deterministic counter),
/// and when worker `w` is about to perform its `n`-th step and the plan
/// holds a fault at `(w, n)`, the action fires — a forced panic
/// (exercising containment and the ladder) or a delay (exercising
/// slow-worker interleavings).  Counting is per *worker index*, not per
/// state, so plans stay meaningful across programs.
///
/// Plans only take effect under the `fault-inject` feature via
/// `FaultPlan::install` (only compiled with the feature, hence no
/// intra-doc link); without the feature the hook the workers call
/// is an empty inline function and the plan is inert data.  The
/// coordinator's inline singleton path acts as worker 0, so worker-0
/// faults fire there too — still contained by the solve-level
/// `catch_unwind`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The fault points, in no particular order.
    pub faults: Vec<FaultSpec>,
}

/// One fault point of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Worker index the fault targets.
    pub worker: usize,
    /// Fires just before the worker's `nth_step`-th step (0-based).
    pub nth_step: usize,
    /// What happens at the fault point.
    pub action: FaultAction,
}

/// The action at a fault point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a deterministic message.
    Panic,
    /// Sleep for the given duration, then continue normally.
    Delay(Duration),
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a forced panic just before `worker`'s `nth_step`-th step.
    pub fn panic_at(mut self, worker: usize, nth_step: usize) -> Self {
        self.faults.push(FaultSpec {
            worker,
            nth_step,
            action: FaultAction::Panic,
        });
        self
    }

    /// Adds a delay of `millis` just before `worker`'s `nth_step`-th step.
    pub fn delay_at(mut self, worker: usize, nth_step: usize, millis: u64) -> Self {
        self.faults.push(FaultSpec {
            worker,
            nth_step,
            action: FaultAction::Delay(Duration::from_millis(millis)),
        });
        self
    }
}

#[cfg(feature = "fault-inject")]
mod injection {
    use super::{FaultAction, FaultPlan};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex, MutexGuard, PoisonError, RwLock};

    /// Serializes concurrently-installing tests: only one plan can be
    /// active at a time, and `install` blocks until the previous
    /// [`FaultGuard`] drops.
    static SERIAL: Mutex<()> = Mutex::new(());
    static INSTALLED: RwLock<Option<Installed>> = RwLock::new(None);

    struct Installed {
        faults: Vec<super::FaultSpec>,
        /// One deterministic step counter per worker index the plan
        /// mentions (workers beyond the plan are not counted).
        counters: Vec<AtomicUsize>,
    }

    /// Keeps a [`FaultPlan`] active; dropping it uninstalls the plan.
    pub struct FaultGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *INSTALLED.write().unwrap_or_else(PoisonError::into_inner) = None;
        }
    }

    impl FaultPlan {
        /// Installs the plan globally for the parallel drivers.  Blocks
        /// until any previously-installed plan's guard drops (plans are
        /// process-global, so concurrent tests serialize here).
        pub fn install(self) -> FaultGuard {
            let serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
            let workers = self.faults.iter().map(|f| f.worker + 1).max().unwrap_or(0);
            let counters = (0..workers).map(|_| AtomicUsize::new(0)).collect();
            *INSTALLED.write().unwrap_or_else(PoisonError::into_inner) = Some(Installed {
                faults: self.faults,
                counters,
            });
            FaultGuard { _serial: serial }
        }
    }

    /// The worker-side hook: counts `worker`'s step and fires any fault
    /// registered at this `(worker, nth-step)` point.
    pub(crate) fn fault_point(worker: usize) {
        let installed = INSTALLED.read().unwrap_or_else(PoisonError::into_inner);
        let Some(plan) = installed.as_ref() else {
            return;
        };
        let Some(counter) = plan.counters.get(worker) else {
            return;
        };
        let nth = counter.fetch_add(1, Ordering::Relaxed);
        for fault in &plan.faults {
            if fault.worker == worker && fault.nth_step == nth {
                match fault.action {
                    FaultAction::Panic => {
                        panic!("injected fault: worker {worker} panicked at step {nth}")
                    }
                    FaultAction::Delay(duration) => std::thread::sleep(duration),
                }
            }
        }
    }
}

#[cfg(feature = "fault-inject")]
pub use injection::FaultGuard;

#[cfg(feature = "fault-inject")]
pub(crate) use injection::fault_point;

/// The worker-side fault hook compiles to nothing without the
/// `fault-inject` feature.
#[cfg(not(feature = "fault-inject"))]
#[inline(always)]
pub(crate) fn fault_point(_worker: usize) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let budget = Budget::unlimited();
        assert!(budget.is_unlimited());
        assert_eq!(budget.exhausted(usize::MAX, usize::MAX), None);
    }

    #[test]
    fn round_and_step_limits_fire_at_their_boundaries() {
        let rounds = Budget::unlimited().with_max_rounds(3);
        assert_eq!(rounds.exhausted(2, 1_000_000), None);
        assert_eq!(rounds.exhausted(3, 0), Some(ExhaustReason::RoundBudget));
        let steps = Budget::unlimited().with_max_steps(10);
        assert_eq!(steps.exhausted(1_000_000, 9), None);
        assert_eq!(steps.exhausted(0, 10), Some(ExhaustReason::StepBudget));
    }

    #[test]
    fn cancellation_wins_over_other_limits() {
        let token = CancelToken::new();
        let budget = Budget::unlimited()
            .with_max_rounds(0)
            .with_cancel(token.clone());
        assert_eq!(budget.exhausted(5, 5), Some(ExhaustReason::RoundBudget));
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(budget.exhausted(5, 5), Some(ExhaustReason::Cancelled));
        assert!(!budget.is_unlimited());
    }

    #[test]
    fn expired_deadline_fires() {
        let budget = Budget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        assert_eq!(budget.exhausted(0, 0), Some(ExhaustReason::DeadlineExpired));
    }

    #[test]
    fn outcome_accessors_and_map() {
        let complete: Outcome<u32, ()> = Outcome::Complete(7);
        assert!(complete.is_complete());
        assert_eq!(*complete.value(), 7);
        assert_eq!(complete.clone().into_complete(), 7);
        assert_eq!(complete.map(|v| v + 1).into_value(), 8);

        let exhausted: Outcome<u32, &'static str> = Outcome::Exhausted {
            partial: 3,
            reason: ExhaustReason::StepBudget,
            resume_seed: Box::new("seed"),
        };
        assert!(!exhausted.is_complete());
        assert_eq!(exhausted.exhaust_reason(), Some(ExhaustReason::StepBudget));
        assert_eq!(exhausted.into_value(), 3);
    }

    #[test]
    #[should_panic(expected = "exhausted its budget (steps)")]
    fn into_complete_panics_on_exhaustion() {
        let exhausted: Outcome<u32, ()> = Outcome::Exhausted {
            partial: 0,
            reason: ExhaustReason::StepBudget,
            resume_seed: Box::new(()),
        };
        let _ = exhausted.into_complete();
    }

    #[test]
    fn engine_error_extracts_panic_messages() {
        let boxed: Box<dyn std::any::Any + Send> = Box::new("boom");
        let err = EngineError::worker_panicked(boxed.as_ref());
        assert_eq!(err.message(), "boom");
        assert!(err.to_string().contains("worker panicked: boom"));
        let boxed: Box<dyn std::any::Any + Send> = Box::new(String::from("kaput"));
        assert_eq!(
            EngineError::worker_panicked(boxed.as_ref()).message(),
            "kaput"
        );
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u8);
        assert_eq!(
            EngineError::worker_panicked(boxed.as_ref()).message(),
            "<non-string panic payload>"
        );
    }

    #[test]
    fn fault_plan_builders_accumulate_specs() {
        let plan = FaultPlan::new().panic_at(1, 3).delay_at(0, 2, 5);
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(
            plan.faults[0],
            FaultSpec {
                worker: 1,
                nth_step: 3,
                action: FaultAction::Panic
            }
        );
        assert_eq!(
            plan.faults[1],
            FaultSpec {
                worker: 0,
                nth_step: 2,
                action: FaultAction::Delay(Duration::from_millis(5))
            }
        );
    }
}
