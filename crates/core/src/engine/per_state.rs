//! Frontier reachability for the heap-cloning domain.
//!
//! In [`PerStateDomain`] every element is a closed `((state, guts), store)`
//! triple: stepping it consults nothing outside the triple itself, so the
//! least fixed point of `inject ⊔ applyStep` is plain transitive closure.
//! Kleene iteration recomputes the successors of *every* triple on *every*
//! pass; the worklist steps each triple exactly once.
//!
//! The seen-set is a hash-consing [`Interner`]: every triple is assigned a
//! dense [`StateId`] on first sight, so the membership test that used to be
//! a `BTreeSet` insert — a deep structural `Ord` walk over the state, the
//! guts *and* the cloned store, per comparison, per tree level — becomes
//! one deep hash plus (usually) one equality check, and the worklist is a
//! queue of plain `u32`s.  The domain itself is assembled once at the end,
//! from the interner's value table.  Because every triple is stepped
//! exactly once, the incremental, structural and rescanning solvers all
//! coincide here ([`FrontierCollecting::explore_frontier_rescan`] and
//! [`FrontierCollecting::explore_frontier_structural`] keep their
//! defaults).
//!
//! ## Infinite-height co-domains
//!
//! The shared-store engines' widening points
//! ([`WidenPolicy`](super::governor::WidenPolicy)) have no analogue here:
//! a widening point is an *address of one accumulated store*, but this
//! domain clones the store into every triple, so a counting loop over an
//! infinite-height co-domain (an
//! [`IntervalStore`](crate::store::IntervalStore) address fed by `n + 1`)
//! mints a **fresh, distinct triple per iteration** — there is nothing to
//! widen without collapsing triples that the domain's very definition
//! keeps apart.  On such domains this driver does not terminate; run it
//! under a [`Budget`] (the governed solve exhausts cleanly with a resume
//! seed) or switch to the shared-store domain, whose engines terminate by
//! widening.  The differential suite pins both behaviours.

use std::collections::VecDeque;
use std::hash::Hash;

use crate::addr::HasInitial;
use crate::collect::PerStateDomain;
use crate::intern::{InternKey, Interner, StateId};
use crate::lattice::Lattice;
use crate::monad::{run_store_passing, MonadFamily, StorePassing, Value};
use crate::telemetry::{label_of, RoundTrace, Stopwatch, TraceSink};

use super::governor::{Budget, Outcome, ResumeSeed, SolveFrom};
use super::shared::STATE_LABEL_MAX;
use super::{DirectCollecting, EngineStats, FrontierCollecting, StepFn};
use crate::telemetry::{GovernorTrace, GovernorTraceKind};

impl<Ps, G, S> FrontierCollecting<StorePassing<G, S>, Ps> for PerStateDomain<Ps, G, S>
where
    Ps: Value + Ord + Hash,
    G: Value + Ord + Hash + HasInitial,
    S: Value + Ord + Hash + Lattice,
{
    fn explore_frontier_traced<F, T>(step: &F, initial: Ps, sink: &mut T) -> (Self, EngineStats)
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps> + Sync,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        // Run the Rc-closure carrier through the carrier-neutral solver.
        let direct = |ps: Ps, g: G, s: S| run_store_passing(step(ps), g, s);
        <Self as DirectCollecting<Ps, G, S>>::explore_frontier_direct_traced(&direct, initial, sink)
    }
}

impl<Ps, G, S> DirectCollecting<Ps, G, S> for PerStateDomain<Ps, G, S>
where
    Ps: Value + Ord + Hash,
    G: Value + Ord + Hash + HasInitial,
    S: Value + Ord + Hash + Lattice,
{
    type Seed = ResumeSeed<((Ps, G), S), ()>;

    fn explore_frontier_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        budget: &Budget,
        sink: &mut T,
    ) -> (Outcome<Self, Self::Seed>, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        let armed = sink.enabled();
        let mut stats = EngineStats::default();
        // The interner is the seen-set: a triple's first intern is its
        // discovery, and the id doubles as the worklist entry.
        let mut interner: Interner<((Ps, G), S), StateId> = Interner::new();
        let mut frontier: VecDeque<StateId> = VecDeque::new();

        match from {
            SolveFrom::Fresh(initial) => {
                let injected = ((initial, G::initial()), S::bottom());
                frontier.push_back(interner.intern(injected));
                stats.store_joins += 1;
            }
            SolveFrom::Resume(seed) => {
                // Re-seed with every carried triple: the closed units need
                // no dependency rebuild, just one re-step each to recover
                // the successors the partial run had not yet enqueued.
                for triple in seed.states {
                    let id = interner.intern(triple);
                    frontier.push_back(id);
                    stats.store_joins += 1;
                }
            }
        }
        stats.peak_frontier = frontier.len();

        // The FIFO has no round structure of its own, so the trace groups
        // pops into BFS *generations*: the initial triple is generation 1,
        // everything it discovers is generation 2, and so on — the
        // per-state analogue of a frontier round.  The budget is checked
        // at generation boundaries.
        let mut round = 0usize;
        let mut generation_size = frontier.len();
        let mut generation_left = generation_size;
        let mut generation_joins = 0usize;
        let mut generation_watch = Stopwatch::start(armed);

        let mut exhausted = budget.exhausted(0, 0);
        if let Some(reason) = exhausted {
            sink.governor(GovernorTrace {
                round: 0,
                kind: GovernorTraceKind::Exhausted(reason),
            });
        }
        while exhausted.is_none() {
            let Some(id) = frontier.pop_front() else {
                break;
            };
            stats.iterations += 1;
            stats.states_stepped += 1;
            // The triple clone out of the interner is the step's store
            // clone (an Arc bump on the persistent spine).
            stats.spine_clones += 1;
            let ((ps, guts), store) = interner.resolve(id).clone();
            let label = armed.then(|| label_of(&ps, STATE_LABEL_MAX));
            let mut step_watch = Stopwatch::start(armed);
            for successor in step.step(ps, guts, store) {
                let known = interner.len();
                let succ_id = interner.intern(successor);
                if succ_id.index() >= known {
                    stats.store_joins += 1;
                    generation_joins += 1;
                    frontier.push_back(succ_id);
                }
            }
            if let Some(label) = label {
                sink.state_cost(&label, step_watch.lap_ns());
            }
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());
            generation_left -= 1;
            if generation_left == 0 {
                round += 1;
                sink.round(RoundTrace {
                    round,
                    frontier: generation_size,
                    stepped: generation_size,
                    joins: generation_joins,
                    delta_width: 0,
                    rebuild: false,
                    step_ns: generation_watch.lap_ns(),
                    join_ns: 0,
                    sync_ns: 0,
                });
                generation_size = frontier.len();
                generation_left = generation_size;
                generation_joins = 0;
                if let Some(reason) = budget.exhausted(round, stats.states_stepped) {
                    sink.governor(GovernorTrace {
                        round,
                        kind: GovernorTraceKind::Exhausted(reason),
                    });
                    exhausted = Some(reason);
                }
            }
        }

        stats.intern_hits = interner.hits();
        stats.intern_misses = interner.misses();
        stats.distinct_states = interner.len();
        let domain = PerStateDomain::from_elements(interner.values().iter().cloned());
        match exhausted {
            None => (Outcome::Complete(domain), stats),
            Some(reason) => {
                let resume_seed = Box::new(ResumeSeed {
                    states: interner.values().to_vec(),
                    store: (),
                });
                (
                    Outcome::Exhausted {
                        partial: domain,
                        reason,
                        resume_seed,
                    },
                    stats,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::explore_fp;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, VecM};
    use std::collections::BTreeSet;

    type G = u64;
    type S = BTreeSet<u32>;
    type M = StorePassing<G, S>;

    fn step(n: u32) -> <M as MonadFamily>::M<u32> {
        if n >= 6 {
            return M::pure(n);
        }
        let record = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |mut s: S| {
                s.insert(n);
                s
            },
        ));
        M::bind(record, move |_| M::mplus(M::pure(n + 1), M::pure(n + 3)))
    }

    #[test]
    fn worklist_equals_kleene_on_a_branching_toy_machine() {
        let kleene: PerStateDomain<u32, G, S> = explore_fp::<M, u32, _, _>(step, 0);
        let (worklist, stats) =
            <PerStateDomain<u32, G, S> as FrontierCollecting<M, u32>>::explore_frontier(&step, 0);
        assert_eq!(worklist, kleene);
        // Each of the triples was stepped exactly once.
        assert_eq!(stats.states_stepped, worklist.len());
        assert_eq!(stats.iterations, stats.states_stepped);
        assert!(stats.peak_frontier >= 1);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.store_joins_applied, 0);
        assert_eq!(stats.widen_applied, 0);
        // The interner is the seen-set: one miss per distinct triple, one
        // hit per re-derived duplicate.
        assert_eq!(stats.distinct_states, worklist.len());
        assert_eq!(stats.intern_misses, worklist.len());
    }

    #[test]
    fn worklist_steps_fewer_states_than_kleene_resteps() {
        use std::cell::Cell;
        use std::rc::Rc;

        // Count how many times Kleene iteration invokes the step function.
        let kleene_steps = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&kleene_steps);
        let counted = move |n: u32| {
            counter.set(counter.get() + 1);
            step(n)
        };
        let _: PerStateDomain<u32, G, S> = explore_fp::<M, u32, _, _>(counted, 0);

        let (_, stats) =
            <PerStateDomain<u32, G, S> as FrontierCollecting<M, u32>>::explore_frontier(&step, 0);
        assert!(
            stats.states_stepped < kleene_steps.get(),
            "worklist stepped {} states, Kleene {}",
            stats.states_stepped,
            kleene_steps.get()
        );
    }
}
