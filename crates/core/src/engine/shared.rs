//! Dependency-invalidating solver for the shared-store domain.
//!
//! With a single widened store (§6.5) a `(state, guts)` pair is *not* a
//! closed unit: its successors depend on the global store, which other
//! states keep widening.  Naive Kleene iteration handles this by re-stepping
//! every pair every round.  This engine replays the *same* iterate sequence
//! but memoises each pair's step outcome together with the set of addresses
//! the transition may have read — the [`reachable`] closure of the pair's
//! [`StateRoots`], the very set abstract GC proves sufficient — and replays
//! the cached outcome verbatim unless one of those addresses changed since.
//!
//! Store changes are tracked per address and per round ("epochs") through
//! [`StoreDelta::changed_addresses`]; a cached entry recorded at version `v`
//! is invalidated exactly when some address in its read set changed at a
//! version `> v`.  Because a transition is a pure function of the state,
//! the guts and the store *restricted to its read set* (the §6.4 garbage
//! collection argument), substituting a valid cached outcome is
//! observationally identical to re-running the step — so the engine's
//! iterates, termination point and final fixpoint coincide with
//! [`explore_fp`](crate::collect::explore_fp)'s, including for GC'd step
//! functions and counting stores.
//!
//! ## Cost model
//!
//! What the cache eliminates is *step execution* — running the monadic
//! transition (the dominant cost: environment/closure manipulation,
//! non-deterministic fan-out, store reads and writes).  Each round still
//! re-joins every cached contribution into the next iterate, so a round
//! costs O(|states| × store-join) even when almost everything is cached.
//! That re-join cannot be maintained incrementally in general: lattice
//! joins are not invertible, and under abstract GC a re-stepped state's
//! contribution *replaces* its old one rather than growing it, so removing
//! the stale contribution from a running join is impossible without
//! recomputing it.  An incremental mode for the join-monotone (GC-free)
//! configurations is future work (see ROADMAP).

use std::collections::{BTreeMap, BTreeSet};

use crate::addr::HasInitial;
use crate::collect::SharedStoreDomain;
use crate::gc::{reachable, Touches};
use crate::lattice::Lattice;
use crate::monad::{run_store_passing, MonadFamily, StorePassing, Value};
use crate::store::{StoreDelta, StoreLike};

use super::{EngineStats, FrontierCollecting, StateRoots};

/// The memoised outcome of stepping one `(state, guts)` pair.
struct CacheEntry<Ps, G, S, A> {
    /// The successor pairs the step produced.
    successors: BTreeSet<(Ps, G)>,
    /// The join of the per-branch result stores.
    store: S,
    /// Every address the transition may have read:
    ///
    /// * the reachable closure of the pair's roots in the pre-store (what
    ///   the semantics may `fetch`),
    /// * the closure of each successor's roots in that branch's result
    ///   store (which bounds what the result store copied out of the
    ///   pre-store), and
    /// * every address the step visibly wrote — `bind` *reads* the written
    ///   address's current binding (it joins values and, in a counting
    ///   store, increments the count on top of it), so a write target is a
    ///   read dependency too.
    deps: BTreeSet<A>,
    /// The store version this entry was computed against.
    version: usize,
}

/// The memo table of the shared-store engine, keyed by `(state, guts)`.
type StepCache<Ps, G, S, A> = BTreeMap<(Ps, G), CacheEntry<Ps, G, S, A>>;

impl<Ps, G, S> FrontierCollecting<StorePassing<G, S>, Ps> for SharedStoreDomain<Ps, G, S>
where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord + HasInitial,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
{
    fn explore_frontier<F>(step: &F, initial: Ps) -> (Self, EngineStats)
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps>,
    {
        let mut stats = EngineStats::default();
        let mut cache: StepCache<Ps, G, S, Ps::Addr> = BTreeMap::new();
        // For every address: the last store version at which its binding
        // changed.  Addresses never seen changing are absent.
        let mut last_changed: BTreeMap<Ps::Addr, usize> = BTreeMap::new();
        let mut version = 0usize;
        let mut current: Self = Lattice::bottom();

        loop {
            stats.iterations += 1;
            // One Kleene iterate: next = inject(initial) ⊔ applyStep(current),
            // with applyStep evaluated through the memo cache.
            let mut next_states: BTreeSet<(Ps, G)> =
                [(initial.clone(), G::initial())].into_iter().collect();
            let mut next_store = S::bottom();
            let mut fresh_this_round = 0usize;

            for key in current.states().iter() {
                // One lookup decides both the cache verdict and whether an
                // invalidation is a re-enqueue of a previously-stepped pair.
                let valid = match cache.get(key) {
                    Some(entry)
                        if entry
                            .deps
                            .iter()
                            .all(|a| last_changed.get(a).is_none_or(|&c| c <= entry.version)) =>
                    {
                        stats.cache_hits += 1;
                        true
                    }
                    Some(_) => {
                        stats.reenqueued += 1;
                        false
                    }
                    None => false,
                };
                if !valid {
                    fresh_this_round += 1;
                    stats.states_stepped += 1;
                    let (ps, guts) = key;
                    let mut successors = BTreeSet::new();
                    let mut out_store = S::bottom();
                    let mut deps = reachable(ps.state_roots(), current.store());
                    for ((ps2, g2), s2) in
                        run_store_passing(step(ps.clone()), guts.clone(), current.store().clone())
                    {
                        deps.extend(reachable(ps2.state_roots(), &s2));
                        // Write targets are read dependencies (see the
                        // CacheEntry docs); keep only the addresses the
                        // result still binds — an address a GC'd step
                        // filtered away no longer influences the outcome,
                        // and it can only become relevant again through a
                        // change at an address that *is* in the closure.
                        let result_addrs = s2.addresses();
                        deps.extend(
                            s2.changed_addresses(current.store())
                                .into_iter()
                                .filter(|a| result_addrs.contains(a)),
                        );
                        successors.insert((ps2, g2));
                        out_store = out_store.join(s2);
                    }
                    cache.insert(
                        key.clone(),
                        CacheEntry {
                            successors,
                            store: out_store,
                            deps,
                            version,
                        },
                    );
                }
                let entry = &cache[key];
                next_states.extend(entry.successors.iter().cloned());
                next_store = next_store.join(entry.store.clone());
            }

            stats.peak_frontier = stats.peak_frontier.max(fresh_this_round);

            let next = SharedStoreDomain::from_parts(next_states, next_store);
            if next.leq(&current) {
                return (current, stats);
            }
            let changed = next.store().changed_addresses(current.store());
            stats.store_widenings += changed.len();
            version += 1;
            for addr in changed {
                last_changed.insert(addr, version);
            }
            current = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::explore_fp;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, VecM};

    /// A heap value that is itself an address (a one-cell pointer).
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct Ptr(u8);

    impl Touches<u8> for Ptr {
        fn touches(&self) -> BTreeSet<u8> {
            [self.0].into_iter().collect()
        }
    }

    /// Toy machine states are small numbers marching down a chain
    /// `0 → 1 → … → 6`.  Only state 1 *reads* the shared cell 0 and only
    /// state 4 *writes* it, so the engine should serve most of the chain
    /// from its cache across rounds, and re-enqueue state 1 exactly when
    /// state 4's write lands.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    struct St(u32);

    impl StateRoots for St {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 1 {
                [0u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    type G = u64;
    type S = crate::store::BasicStore<u8, Ptr>;
    type M = StorePassing<G, S>;

    fn step(st: St) -> <M as MonadFamily>::M<St> {
        let n = st.0;
        match n {
            1 => {
                // Reads cell 0: one successor per stored pointer, plus the
                // unconditional next chain state.
                let fetched =
                    <M as MonadTrans>::lift(
                        crate::monad::gets_nd_set::<StateT<S, VecM>, S, Ptr, _>(move |store| {
                            store.fetch(&0u8)
                        }),
                    );
                let via_heap = M::bind(fetched, move |ptr| M::pure(St(ptr.0 as u32 + 1)));
                M::mplus(M::pure(St(2)), via_heap)
            }
            4 => {
                // Writes cell 0, widening what state 1 can observe.
                let write = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |store: S| store.bind(0u8, [Ptr(9)].into_iter().collect()),
                ));
                M::bind(write, move |_| M::pure(St(5)))
            }
            n if n >= 6 => M::pure(st),
            _ => M::pure(St(n + 1)),
        }
    }

    #[test]
    fn worklist_equals_kleene_and_serves_from_cache() {
        let kleene: SharedStoreDomain<St, G, S> = explore_fp::<M, St, _, _>(step, St(0));
        let (worklist, stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            );
        assert_eq!(worklist, kleene);
        assert!(stats.cache_hits > 0, "expected cache hits: {stats}");
        assert!(stats.store_widenings > 0);
        assert!(stats.iterations > 1);
    }

    #[test]
    fn worklist_steps_strictly_fewer_states_than_kleene() {
        use std::cell::Cell;
        use std::rc::Rc;

        let kleene_steps = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&kleene_steps);
        let counted = move |st: St| {
            counter.set(counter.get() + 1);
            step(st)
        };
        let _: SharedStoreDomain<St, G, S> = explore_fp::<M, St, _, _>(counted, St(0));

        let (_, stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            );
        assert!(
            stats.states_stepped < kleene_steps.get(),
            "worklist stepped {} states, Kleene {}",
            stats.states_stepped,
            kleene_steps.get()
        );
    }

    #[test]
    fn invalidation_is_observable_when_states_share_cells() {
        let (_, stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            );
        // The toy machine's states write into each other's read cells, so at
        // least one previously-stepped state must have been re-enqueued.
        assert!(stats.reenqueued > 0, "expected re-enqueues: {stats}");
    }
}
