//! Incremental, dependency-invalidating solvers for the shared-store domain.
//!
//! With a single widened store (§6.5) a `(state, guts)` pair is *not* a
//! closed unit: its successors depend on the global store, which other
//! states keep widening.  Naive Kleene iteration handles this by re-stepping
//! every pair every round.  The PR-1 engine memoised each pair's step
//! outcome together with the set of addresses the transition may have read —
//! the [`reachable`] closure of the pair's [`StateRoots`], the very set
//! abstract GC proves sufficient — and replayed cached outcomes verbatim,
//! but still re-joined every cached contribution each round.  The PR-2
//! engine ([`FrontierCollecting::explore_frontier_structural`]) removed that
//! per-round full scan: it maintains **one running accumulated domain** and,
//! per round,
//!
//! 1. steps only the *frontier* — states with no cached outcome (newly
//!    discovered) plus states invalidated through a reverse dependency
//!    index (address → dependent states) by the previous round's
//!    per-address store deltas;
//! 2. folds only those re-stepped contributions into the running domain
//!    with the change-tracking, delta-reporting in-place joins of the
//!    lattice layer ([`Lattice::join_in_place`],
//!    [`StoreDelta::join_in_place_delta`]), obtaining the next round's
//!    invalidations directly from the fold — no snapshot clone, no
//!    whole-store diff, no whole-domain `==`.
//!
//! A round therefore costs O(|frontier| × store-join) — but every one of
//! the PR-2 engine's tables was keyed by the *full state structure*: each
//! `BTreeMap<(Ps, G), …>` lookup paid a deep `Ord` walk over the whole
//! state (environment, continuation, context), the reverse dependency index
//! stored a deep clone of every dependent state per address, and every
//! frontier round cloned states wholesale.  Once joins are O(frontier),
//! that state identity work dominates the run.
//!
//! This module's default solver ([`FrontierCollecting::explore_frontier`])
//! is the **id-indexed** engine: a hash-consing [`Interner`] maps every
//! distinct `(state, guts)` pair to a dense [`StateId`] the moment it is
//! produced, so clone and equality become O(1) and each engine table
//! becomes a flat `Vec` indexed by the id (step cache) or a small id-set
//! (frontier, reverse dependency index).  States are deeply hashed exactly
//! once — on intern — and un-interned back to structural values only at the
//! language boundary, when the final [`SharedStoreDomain`] is assembled.
//! The frontier/fold strategy (and therefore the round structure, the
//! rebuild defence and the computed fixpoint) is exactly the PR-2 engine's.
//!
//! ## Why folding only the frontier is exact
//!
//! The accumulated domain only ever grows, and every cached contribution
//! was folded into it the round it was computed.  A non-frontier state's
//! cached contribution is therefore already below the running domain, and —
//! because none of its read dependencies changed since (else it would be on
//! the frontier) — re-running its transition would reproduce that cached
//! contribution exactly (the §6.4 garbage-collection argument: a transition
//! is a pure function of the state, the guts and the store restricted to
//! its read set).  So `current ⊔ f(current)`, the accumulated Kleene
//! iterate computed by [`explore_fp`](crate::collect::explore_fp), equals
//! `current ⊔ (inject ⊔ Σ frontier contributions)` — the fold the engines
//! perform.  As defence in depth, whenever a re-stepped contribution
//! *shrank* — evidence the step function is not monotone on the current
//! iterate, which no well-behaved configuration of this framework
//! exhibits (GC'd contributions shrink only relative to *other* states'
//! stores, not across rounds), but a hand-written semantics could — the
//! engines abandon the fast path for that round: they re-step **every**
//! cached pair against the same pre-store and fold all of the fresh
//! contributions, making the round literally the accumulated Kleene
//! iterate `current ⊔ f(current)` with no reliance on cached outcomes at
//! all ([`EngineStats::rebuild_rounds`] counts these rounds; the engine's
//! unit tests force one with a deliberately non-monotone machine).
//!
//! Three observationally equivalent solvers are exposed, newest first:
//!
//! * [`FrontierCollecting::explore_frontier`] — id-indexed incremental
//!   accumulator (this PR; the default behind `analyse_*_worklist`);
//! * [`FrontierCollecting::explore_frontier_structural`] — the PR-2
//!   structural-key incremental accumulator, the E10 baseline;
//! * [`FrontierCollecting::explore_frontier_rescan`] — the PR-1 rescanning
//!   solver (full contribution re-join per round), the E9 baseline.
//!
//! All three remain differential-testing oracles for one another, with
//! [`explore_fp`](crate::collect::explore_fp) as the ground truth.

use std::collections::{BTreeMap, BTreeSet};
use std::hash::Hash;

use crate::addr::HasInitial;
use crate::collect::{Collecting, SharedStoreDomain};
use crate::gc::{reachable, Touches};
use crate::hash::{FxHashMap, FxHashSet};
use crate::intern::{InternKey, Interner, StateId};
use crate::lattice::Lattice;
use crate::monad::{run_store_passing, MonadFamily, StorePassing, Value};
use crate::store::{StoreDelta, StoreLike};
use crate::telemetry::{label_of, RoundTrace, Stopwatch, TraceSink};

use super::governor::{Budget, Outcome, ResumeSeed, SolveFrom};
use super::{
    narrow_store_post_pass, DirectCollecting, EngineStats, FrontierCollecting, StateRoots, StepFn,
    WidenTracker,
};
use crate::lattice::WidenLattice;
use crate::telemetry::{GovernorTrace, GovernorTraceKind};

/// The resume seed of every shared-store engine: the `(state, guts)`
/// pairs discovered so far plus the accumulated store.
pub type SharedResumeSeed<Ps, G, S> = ResumeSeed<(Ps, G), S>;

/// The `(outcome, stats)` pair every governed shared-store solve returns.
pub type SharedGovernedSolve<Ps, G, S> = (
    Outcome<SharedStoreDomain<Ps, G, S>, SharedResumeSeed<Ps, G, S>>,
    EngineStats,
);

/// How many characters of a state's `Debug` rendering become its hot-spot
/// attribution label.
pub(super) const STATE_LABEL_MAX: usize = 96;

/// How many characters of an address's `Debug` rendering become its
/// join-traffic attribution label.
pub(super) const ADDR_LABEL_MAX: usize = 64;

/// The memoised outcome of stepping one `(state, guts)` pair, in the
/// structural (PR-1/PR-2) engines.
struct CacheEntry<Ps, G, S, A> {
    /// The successor pairs the step produced.
    successors: BTreeSet<(Ps, G)>,
    /// The join of the per-branch result stores.
    store: S,
    /// Every address the transition may have read:
    ///
    /// * the reachable closure of the pair's roots in the pre-store (what
    ///   the semantics may `fetch`),
    /// * the closure of each successor's roots in that branch's result
    ///   store (which bounds what the result store copied out of the
    ///   pre-store), and
    /// * every address the step visibly wrote — `bind` *reads* the written
    ///   address's current binding (it joins values and, in a counting
    ///   store, increments the count on top of it), so a write target is a
    ///   read dependency too.
    deps: BTreeSet<A>,
}

/// The memo table of the structural shared-store engines, keyed by
/// `(state, guts)`.
type StepCache<Ps, G, S, A> = BTreeMap<(Ps, G), CacheEntry<Ps, G, S, A>>;

/// The reverse dependency index of the structural incremental engine: for
/// every address, the cached pairs whose outcome may depend on it.
type Dependents<Ps, G, A> = BTreeMap<A, BTreeSet<(Ps, G)>>;

/// The memoised outcome of stepping one interned pair, in the id-indexed
/// engine: same content as [`CacheEntry`], except that successors are dense
/// ids, the table itself is a flat `Vec` indexed by [`StateId`] — and the
/// store contribution is kept as a *delta*.
///
/// A step's raw result store is the whole threaded store plus its writes,
/// so caching (and folding) it verbatim costs O(|store|) per contribution —
/// the structural engines pay exactly that.  Because the accumulated store
/// only ever grows and every binding the step merely passed through is
/// already below it, folding only the bindings the step *changed* relative
/// to its pre-store joins to the identical result; the delta is typically a
/// handful of addresses.
pub(super) struct InternedEntry<S, A> {
    /// The successor ids the step produced (sorted, deduplicated).
    pub(super) successors: Vec<StateId>,
    /// The join of the per-branch result stores, restricted to the
    /// addresses the step changed relative to its pre-store.
    pub(super) delta: S,
    /// Every address the transition may have read (see [`CacheEntry::deps`];
    /// sorted, deduplicated).
    pub(super) deps: Vec<A>,
}

/// The flat memo table of the id-indexed engine (`None` = not yet stepped).
pub(super) type InternedCache<S, A> = Vec<Option<InternedEntry<S, A>>>;

/// The reverse dependency index of the id-indexed engine.
pub(super) type IdDependents<A> = FxHashMap<A, FxHashSet<StateId>>;

/// Steps `key`, installs the outcome in the cache and the reverse
/// dependency index (replacing any previous entry), updates the step/
/// re-enqueue counters, and reports whether the fresh contribution *shrank*
/// relative to the cached one — the signal that the step function is not
/// monotone on this round's iterate and the fast path must be abandoned.
fn step_and_cache<Ps, G, S, F>(
    step: &F,
    key: &(Ps, G),
    store: &S,
    cache: &mut StepCache<Ps, G, S, Ps::Addr>,
    dependents: &mut Dependents<Ps, G, Ps::Addr>,
    stats: &mut EngineStats,
) -> bool
where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    stats.states_stepped += 1;
    stats.spine_clones += 1;
    let entry = step_pair(step, key, store);
    let mut shrank = false;
    if let Some(old) = cache.get(key) {
        stats.reenqueued += 1;
        shrank = !(old.successors.is_subset(&entry.successors) && old.store.leq(&entry.store));
        for a in &old.deps {
            if let Some(keys) = dependents.get_mut(a) {
                keys.remove(key);
            }
        }
    }
    for a in &entry.deps {
        dependents.entry(a.clone()).or_default().insert(key.clone());
    }
    cache.insert(key.clone(), entry);
    shrank
}

/// Executes one monadic step of `key` against `store`, packaging the
/// successors, the joined result store and the read-dependency set.
fn step_pair<Ps, G, S, F>(step: &F, key: &(Ps, G), store: &S) -> CacheEntry<Ps, G, S, Ps::Addr>
where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    let (ps, guts) = key;
    let mut successors = BTreeSet::new();
    let mut out_store = S::bottom();
    let mut deps = reachable(ps.state_roots(), store);
    for ((ps2, g2), s2) in step.step(ps.clone(), guts.clone(), store.clone()) {
        deps.extend(reachable(ps2.state_roots(), &s2));
        // Write targets are read dependencies (see the CacheEntry docs);
        // keep only the addresses the result still binds — an address a
        // GC'd step filtered away no longer influences the outcome, and it
        // can only become relevant again through a change at an address
        // that *is* in the closure.
        let result_addrs = s2.addresses();
        deps.extend(
            s2.changed_addresses(store)
                .into_iter()
                .filter(|a| result_addrs.contains(a)),
        );
        successors.insert((ps2, g2));
        out_store.join_in_place(s2);
    }
    CacheEntry {
        successors,
        store: out_store,
        deps,
    }
}

/// Executes one monadic step of an already-resolved `(state, guts)` pair
/// against `store`, interning every successor through the supplied closure
/// (successor discovery *is* the intern miss) and packaging the id-level
/// cache entry.  The intern sink is abstract so the same stepping core
/// serves the sequential engine (a `&mut` [`Interner`]) and the parallel
/// engine (a shared [`ShardedInterner`](crate::intern::ShardedInterner)).
pub(super) fn step_entry<Ps, G, S, F, IN>(
    step: &F,
    ps: Ps,
    guts: G,
    store: &S,
    mut intern: IN,
) -> InternedEntry<S, Ps::Addr>
where
    Ps: Value + Ord + Hash + StateRoots,
    G: Value + Ord + Hash,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    IN: FnMut((Ps, G)) -> StateId,
{
    let mut deps = reachable(ps.state_roots(), store);
    let mut successors: Vec<StateId> = Vec::new();
    let mut delta = S::bottom();
    for ((ps2, g2), s2) in step.step(ps, guts, store.clone()) {
        // Same write-targets-are-reads rule as `step_pair`, probing the
        // handful of changed addresses directly instead of materialising
        // the full address set of the result store.  While probing, watch
        // for *drops* — changed addresses the result no longer binds.
        let changed = s2.changed_addresses(store);
        let mut dropped = false;
        for a in &changed {
            if s2.contains(a) {
                deps.insert(a.clone());
            } else {
                dropped = true;
            }
        }
        // A branch that dropped nothing is a pure weak update: its delta is
        // confined to its write targets (all registered above) and its
        // successors are a function of its fetches (all inside the
        // pre-state closure), so the entry cannot be perturbed through any
        // other address and the successor-side closure is redundant.  A
        // branch that *did* drop bindings ran abstract GC, and whether a
        // write target stays dropped depends on reachability through the
        // whole result store — so there, like the structural engines, the
        // closure of the successor's roots joins the read set.
        if dropped {
            deps.extend(reachable(ps2.state_roots(), &s2));
        }
        successors.push(intern((ps2, g2)));
        // Keep only what the branch changed: every other binding of `s2`
        // was copied out of the pre-store and is already below the
        // accumulated store the entry will be folded into.  `restrict_to`
        // extracts the handful of changed bindings by descent instead of
        // walking the whole spine.
        delta.join_in_place(s2.restrict_to(&changed));
    }
    successors.sort_unstable();
    successors.dedup();
    InternedEntry {
        successors,
        delta,
        deps: deps.into_iter().collect(),
    }
}

/// Whether the sorted id slice `old` is a subset of the sorted id slice
/// `new` (the successor half of the monotonicity check, on ids).
pub(super) fn sorted_subset(old: &[StateId], new: &[StateId]) -> bool {
    let mut it = new.iter();
    'outer: for o in old {
        for n in it.by_ref() {
            match n.cmp(o) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// The id-indexed analogue of [`step_and_cache`]: steps `id`, installs the
/// outcome in the flat cache and the id-level reverse dependency index, and
/// reports whether the fresh contribution shrank.
fn step_and_cache_interned<Ps, G, S, F>(
    step: &F,
    id: StateId,
    store: &S,
    interner: &mut Interner<(Ps, G), StateId>,
    cache: &mut InternedCache<S, Ps::Addr>,
    dependents: &mut IdDependents<Ps::Addr>,
    stats: &mut EngineStats,
) -> bool
where
    Ps: Value + Ord + Hash + StateRoots,
    Ps::Addr: Hash,
    G: Value + Ord + Hash,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    stats.states_stepped += 1;
    stats.spine_clones += 1;
    let (ps, guts) = interner.resolve(id).clone();
    let entry = step_entry(step, ps, guts, store, |k| interner.intern(k));
    // Interning the successors may have minted fresh ids; keep the flat
    // cache as long as the id space.
    if cache.len() < interner.len() {
        cache.resize_with(interner.len(), || None);
    }
    let slot = &mut cache[id.index()];
    let mut shrank = false;
    if let Some(old) = slot.as_ref() {
        stats.reenqueued += 1;
        // The non-monotonicity detector, on ids: a re-step that loses a
        // successor.  The structural engine additionally compares full
        // result stores, but with delta entries the store half is vacuous —
        // the old delta was folded into the accumulated store the round it
        // was computed, so it is below every later pre-store by
        // construction.  A shrinking store contribution therefore cannot
        // un-grow the accumulator; what it *can* do is drop a successor,
        // which is exactly what this check watches.
        shrank = !sorted_subset(&old.successors, &entry.successors);
        for a in &old.deps {
            if let Some(ids) = dependents.get_mut(a) {
                ids.remove(&id);
            }
        }
    }
    for a in &entry.deps {
        dependents.entry(a.clone()).or_default().insert(id);
    }
    *slot = Some(entry);
    shrank
}

impl<Ps, G, S> FrontierCollecting<StorePassing<G, S>, Ps> for SharedStoreDomain<Ps, G, S>
where
    Ps: Value + Ord + Hash + StateRoots,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
{
    fn explore_frontier_traced<F, T>(step: &F, initial: Ps, sink: &mut T) -> (Self, EngineStats)
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps> + Sync,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        // Run the Rc-closure carrier through the carrier-neutral solver:
        // desugar each monadic step with `run_store_passing`.
        let direct = |ps: Ps, g: G, s: S| run_store_passing(step(ps), g, s);
        <Self as DirectCollecting<Ps, G, S>>::explore_frontier_direct_traced(&direct, initial, sink)
    }

    fn explore_frontier_structural_traced<F, T>(
        step: &F,
        initial: Ps,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps> + Sync,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        let direct = |ps: Ps, g: G, s: S| run_store_passing(step(ps), g, s);
        let (outcome, stats) = explore_structural_governed_stats(
            &direct,
            SolveFrom::Fresh(initial),
            &Budget::unlimited(),
            sink,
        );
        (outcome.into_complete(), stats)
    }

    fn explore_frontier_rescan_traced<F, T>(
        step: &F,
        initial: Ps,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps> + Sync,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        let direct = |ps: Ps, g: G, s: S| run_store_passing(step(ps), g, s);
        let (outcome, stats) = explore_rescan_governed_stats(
            &direct,
            SolveFrom::Fresh(initial),
            &Budget::unlimited(),
            sink,
        );
        (outcome.into_complete(), stats)
    }
}

impl<Ps, G, S> DirectCollecting<Ps, G, S> for SharedStoreDomain<Ps, G, S>
where
    Ps: Value + Ord + Hash + StateRoots,
    Ps::Addr: Hash,
    G: Value + Ord + Hash + HasInitial,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
{
    type Seed = SharedResumeSeed<Ps, G, S>;

    fn explore_frontier_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        budget: &Budget,
        sink: &mut T,
    ) -> (Outcome<Self, Self::Seed>, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: std::fmt::Debug,
    {
        // One flag gates every telemetry side channel: clock samples and
        // label formatting happen only when a real sink listens, and no
        // counter below ever consults it — tracing cannot perturb the
        // solve.
        let armed = sink.enabled();
        let mut stats = EngineStats::default();
        // Per-address growth bookkeeping for the budget's widening policy:
        // decides which addresses the fold accumulates with ▽ instead of ⊔.
        // Inert (empty point set, so the widened fold *is* the join fold)
        // whenever widening is off.
        let mut widen: WidenTracker<Ps::Addr> = WidenTracker::new(&budget.widen);
        // The hash-consing table: every distinct (state, guts) pair gets a
        // dense StateId on first sight.  The interner doubles as the
        // seen-set and, at the end, as the domain's state set.
        let mut interner: Interner<(Ps, G), StateId> = Interner::new();
        // The flat memo table and the id-level reverse dependency index.
        let mut cache: InternedCache<S, Ps::Addr> = Vec::new();
        let mut dependents: IdDependents<Ps::Addr> = FxHashMap::default();
        // The running accumulated store (the states half of the running
        // domain is the interner itself).  A resumed solve re-steps every
        // carried state once — rebuilding the dependency index the
        // partial run discarded — and then converges normally.
        let mut store: S;
        let mut frontier: BTreeSet<StateId>;
        match from {
            SolveFrom::Fresh(initial) => {
                store = S::bottom();
                let initial_id = interner.intern((initial, G::initial()));
                frontier = [initial_id].into_iter().collect();
            }
            SolveFrom::Resume(seed) => {
                store = seed.store;
                frontier = seed
                    .states
                    .into_iter()
                    .map(|key| interner.intern(key))
                    .collect();
            }
        }

        let mut exhausted = None;
        while !frontier.is_empty() {
            // The round-boundary governance check: one branch and one
            // relaxed atomic load for an unlimited budget, no clock.
            if let Some(reason) = budget.exhausted(stats.iterations, stats.states_stepped) {
                sink.governor(GovernorTrace {
                    round: stats.iterations,
                    kind: GovernorTraceKind::Exhausted(reason),
                });
                exhausted = Some(reason);
                break;
            }
            stats.iterations += 1;
            // Ids below this watermark were known when the round began;
            // everything interned during the round is a fresh discovery.
            let known = interner.len();
            let frontier_len = frontier.len();
            let mut stepped_this_round = frontier_len;
            let mut phase_watch = Stopwatch::start(armed);

            // Step phase: every frontier pair against the same pre-store
            // (the folds below land only after the whole frontier was
            // stepped, so the round sees one consistent iterate).
            let mut shrank = false;
            for &id in &frontier {
                let mut step_watch = Stopwatch::start(armed);
                shrank |= step_and_cache_interned(
                    step,
                    id,
                    &store,
                    &mut interner,
                    &mut cache,
                    &mut dependents,
                    &mut stats,
                );
                if armed {
                    let ns = step_watch.lap_ns();
                    let label = label_of(&interner.resolve(id).0, STATE_LABEL_MAX);
                    sink.state_cost(&label, ns);
                }
            }

            // Rebuild round: a contribution shrank, so the step function is
            // not monotone on this iterate and the fast path's
            // dependency-validity argument is off the table.  Re-step
            // *every* cached pair against the same pre-store and fold all
            // of the fresh contributions — the round becomes literally the
            // accumulated Kleene iterate `current ⊔ f(current)`, with no
            // reliance on cached outcomes at all.
            let fold_ids: Vec<StateId> = if shrank {
                stats.rebuild_rounds += 1;
                stats.peak_frontier = stats.peak_frontier.max(known);
                let rest: Vec<StateId> = (0..known)
                    .map(StateId::from_index)
                    .filter(|id| !frontier.contains(id))
                    .collect();
                stepped_this_round += rest.len();
                for &id in &rest {
                    // Further shrinkage is immaterial: the whole round is
                    // already being recomputed from scratch.
                    step_and_cache_interned(
                        step,
                        id,
                        &store,
                        &mut interner,
                        &mut cache,
                        &mut dependents,
                        &mut stats,
                    );
                }
                (0..known).map(StateId::from_index).collect()
            } else {
                stats.peak_frontier = stats.peak_frontier.max(frontier.len());
                // Everything off the frontier is served from the
                // accumulated domain without being visited at all.
                stats.cache_hits += known - frontier.len();
                frontier.iter().copied().collect()
            };

            let step_ns = phase_watch.lap_ns();

            // Fold phase: only the re-stepped contributions — and only
            // their store *deltas* — with the per-address growth report
            // falling straight out of the in-place join.
            let mut changed_addrs: BTreeSet<Ps::Addr> = BTreeSet::new();
            for &id in &fold_ids {
                let entry = cache[id.index()].as_ref().expect("fold of an unstepped id");
                stats.store_joins += 1;
                stats.spine_clones += 1;
                if armed {
                    // Join-traffic attribution: which addresses this
                    // contribution bound, and which of them actually grew.
                    let bound = entry.delta.addresses();
                    let changed = store.widen_in_place_delta(entry.delta.clone(), widen.points());
                    for a in &bound {
                        sink.join_traffic(&label_of(a, ADDR_LABEL_MAX), changed.contains(a));
                    }
                    changed_addrs.extend(changed);
                } else {
                    changed_addrs
                        .extend(store.widen_in_place_delta(entry.delta.clone(), widen.points()));
                }
            }
            let (joined, widened) = widen.classify(&changed_addrs);
            stats.store_joins_applied += joined;
            stats.widen_applied += widened;
            widen.record(&changed_addrs);
            // Sample spine sharing while this round's delta adoptions are
            // still live in the cache (peak over rounds).
            stats.store_bytes_shared = stats.store_bytes_shared.max(store.shared_spine_bytes());
            sink.round(RoundTrace {
                round: stats.iterations,
                frontier: frontier_len,
                stepped: stepped_this_round,
                joins: fold_ids.len(),
                delta_width: changed_addrs.len(),
                rebuild: shrank,
                step_ns,
                join_ns: phase_watch.lap_ns(),
                sync_ns: 0,
            });

            // Next frontier: freshly discovered pairs (ids minted during
            // this round have no cached outcome yet) plus every cached
            // dependent of an address that grew.
            let mut next: BTreeSet<StateId> =
                (known..interner.len()).map(StateId::from_index).collect();
            for a in &changed_addrs {
                if let Some(ids) = dependents.get(a) {
                    next.extend(ids.iter().copied());
                }
            }
            frontier = next;
        }

        stats.intern_hits = interner.hits();
        stats.intern_misses = interner.misses();
        stats.distinct_states = interner.len();
        // Un-intern only here, at the boundary: the structural domain is
        // assembled once, from the interner's value table.
        let states: BTreeSet<(Ps, G)> = interner.values().iter().cloned().collect();
        match exhausted {
            None => {
                // The decreasing pass: only after a *complete* widened
                // solve (an exhausted partial is not a post-fixpoint, so
                // narrowing it would not be meaningful).
                if budget.widen.enabled && budget.widen.narrow_passes > 0 {
                    narrow_store_post_pass(
                        &states,
                        &mut store,
                        step,
                        budget.widen.narrow_passes,
                        budget,
                    );
                }
                (
                    Outcome::Complete(SharedStoreDomain::from_parts(states, store)),
                    stats,
                )
            }
            Some(reason) => {
                let resume_seed = Box::new(ResumeSeed {
                    states: interner.values().to_vec(),
                    store: store.clone(),
                });
                (
                    Outcome::Exhausted {
                        partial: SharedStoreDomain::from_parts(states, store),
                        reason,
                        resume_seed,
                    },
                    stats,
                )
            }
        }
    }
}

/// The PR-2 *structural-key* incremental accumulator over the
/// carrier-neutral step shape (see
/// [`FrontierCollecting::explore_frontier_structural`]), in governed
/// form: the [`Budget`] is consulted at every round boundary, and an
/// `Exhausted` outcome carries a [`SharedResumeSeed`] any shared-store
/// engine can continue from.
pub fn explore_structural_governed_stats<Ps, G, S, F, T>(
    step: &F,
    from: SolveFrom<Ps, SharedResumeSeed<Ps, G, S>>,
    budget: &Budget,
    sink: &mut T,
) -> SharedGovernedSolve<Ps, G, S>
where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord + HasInitial,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    let armed = sink.enabled();
    let mut stats = EngineStats::default();
    let mut widen: WidenTracker<Ps::Addr> = WidenTracker::new(&budget.widen);
    let mut cache: StepCache<Ps, G, S, Ps::Addr> = BTreeMap::new();
    // The reverse dependency index: for every address, the cached pairs
    // whose outcome may depend on it.  Maintained alongside the cache so
    // a store delta invalidates exactly its dependents — no per-round
    // scan of all states.
    let mut dependents: BTreeMap<Ps::Addr, BTreeSet<(Ps, G)>> = BTreeMap::new();
    // The running accumulated domain: inject(initial) for a fresh solve,
    // the carried partial for a resumed one (every carried state goes
    // back on the frontier to rebuild the dependency index).
    let mut current: SharedStoreDomain<Ps, G, S> = match from {
        SolveFrom::Fresh(initial) => Collecting::<StorePassing<G, S>, Ps>::inject(initial),
        SolveFrom::Resume(seed) => {
            SharedStoreDomain::from_parts(seed.states.into_iter().collect(), seed.store)
        }
    };
    let mut frontier: BTreeSet<(Ps, G)> = current.states().clone();

    let mut exhausted = None;
    while !frontier.is_empty() {
        if let Some(reason) = budget.exhausted(stats.iterations, stats.states_stepped) {
            sink.governor(GovernorTrace {
                round: stats.iterations,
                kind: GovernorTraceKind::Exhausted(reason),
            });
            exhausted = Some(reason);
            break;
        }
        stats.iterations += 1;
        let frontier_len = frontier.len();
        let mut stepped_this_round = frontier_len;
        let mut phase_watch = Stopwatch::start(armed);

        // Step phase: every frontier pair against the same pre-store
        // (the folds below land only after the whole frontier was
        // stepped, so the round sees one consistent iterate).
        let mut shrank = false;
        for key in &frontier {
            shrank |= step_and_cache(
                step,
                key,
                current.store(),
                &mut cache,
                &mut dependents,
                &mut stats,
            );
        }

        // Rebuild round: see `explore_frontier` — identical defence,
        // structural keys.
        let fold_keys: Vec<(Ps, G)> = if shrank {
            stats.rebuild_rounds += 1;
            stats.peak_frontier = stats.peak_frontier.max(current.len());
            let rest: Vec<(Ps, G)> = current
                .states()
                .iter()
                .filter(|key| !frontier.contains(*key))
                .cloned()
                .collect();
            stepped_this_round += rest.len();
            for key in &rest {
                // Further shrinkage is immaterial: the whole round is
                // already being recomputed from scratch.
                step_and_cache(
                    step,
                    key,
                    current.store(),
                    &mut cache,
                    &mut dependents,
                    &mut stats,
                );
            }
            current.states().iter().cloned().collect()
        } else {
            stats.peak_frontier = stats.peak_frontier.max(frontier.len());
            // Everything off the frontier is served from the
            // accumulated domain without being visited at all.
            stats.cache_hits += current.len() - frontier.len();
            frontier.iter().cloned().collect()
        };
        let step_ns = phase_watch.lap_ns();
        let mut changed_addrs: BTreeSet<Ps::Addr> = BTreeSet::new();
        let mut discovered: Vec<(Ps, G)> = Vec::new();
        for key in &fold_keys {
            let entry = &cache[key];
            stats.store_joins += 1;
            stats.spine_clones += 1;
            for succ in &entry.successors {
                if current.insert_state(succ.clone()) {
                    discovered.push(succ.clone());
                }
            }
            changed_addrs.extend(
                current
                    .store_mut()
                    .widen_in_place_delta(entry.store.clone(), widen.points()),
            );
        }
        let (joined, widened) = widen.classify(&changed_addrs);
        stats.store_joins_applied += joined;
        stats.widen_applied += widened;
        widen.record(&changed_addrs);
        stats.store_bytes_shared = stats
            .store_bytes_shared
            .max(current.store().shared_spine_bytes());
        sink.round(RoundTrace {
            round: stats.iterations,
            frontier: frontier_len,
            stepped: stepped_this_round,
            joins: fold_keys.len(),
            delta_width: changed_addrs.len(),
            rebuild: shrank,
            step_ns,
            join_ns: phase_watch.lap_ns(),
            sync_ns: 0,
        });

        // Next frontier: freshly discovered pairs (no cached outcome
        // yet) plus every cached dependent of an address that grew.
        let mut next: BTreeSet<(Ps, G)> = discovered.into_iter().collect();
        for a in &changed_addrs {
            if let Some(keys) = dependents.get(a) {
                next.extend(keys.iter().cloned());
            }
        }
        frontier = next;
    }

    if exhausted.is_none() && budget.widen.enabled && budget.widen.narrow_passes > 0 {
        let states = current.states().clone();
        narrow_store_post_pass(
            &states,
            current.store_mut(),
            step,
            budget.widen.narrow_passes,
            budget,
        );
    }
    let outcome = governed_outcome(current, exhausted);
    (outcome, stats)
}

/// Packages a shared-store solve's result: `Complete` when the frontier
/// drained, `Exhausted` (with the partial's states and store as the
/// resume seed) when the budget fired first.
fn governed_outcome<Ps, G, S>(
    domain: SharedStoreDomain<Ps, G, S>,
    exhausted: Option<super::governor::ExhaustReason>,
) -> Outcome<SharedStoreDomain<Ps, G, S>, SharedResumeSeed<Ps, G, S>>
where
    Ps: Value + Ord,
    G: Value + Ord,
    S: Value + Lattice,
{
    match exhausted {
        None => Outcome::Complete(domain),
        Some(reason) => {
            let resume_seed = Box::new(ResumeSeed {
                states: domain.states().iter().cloned().collect(),
                store: domain.store().clone(),
            });
            Outcome::Exhausted {
                partial: domain,
                reason,
                resume_seed,
            }
        }
    }
}

/// The PR-1 *rescanning* solver over the carrier-neutral step shape (see
/// [`FrontierCollecting::explore_frontier_rescan`]), in governed form:
/// the [`Budget`] is consulted before every Kleene pass.
pub fn explore_rescan_governed_stats<Ps, G, S, F, T>(
    step: &F,
    from: SolveFrom<Ps, SharedResumeSeed<Ps, G, S>>,
    budget: &Budget,
    sink: &mut T,
) -> SharedGovernedSolve<Ps, G, S>
where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord + HasInitial,
    S: StoreLike<Ps::Addr> + StoreDelta<Ps::Addr> + WidenLattice + Value,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    let armed = sink.enabled();
    let mut stats = EngineStats::default();
    let mut widen: WidenTracker<Ps::Addr> = WidenTracker::new(&budget.widen);
    let mut cache: StepCache<Ps, G, S, Ps::Addr> = BTreeMap::new();
    // For every address: the last store version at which its binding
    // changed.  Addresses never seen changing are absent.
    let mut last_changed: BTreeMap<Ps::Addr, usize> = BTreeMap::new();
    let mut versions: BTreeMap<(Ps, G), usize> = BTreeMap::new();
    let mut version = 0usize;
    // A resumed solve's iterate starts at the carried partial (which
    // already contains the injected initial state), so the per-pass
    // inject is only needed on the fresh path.
    let (mut current, inject): (SharedStoreDomain<Ps, G, S>, Option<Ps>) = match from {
        SolveFrom::Fresh(initial) => (Lattice::bottom(), Some(initial)),
        SolveFrom::Resume(seed) => (
            SharedStoreDomain::from_parts(seed.states.into_iter().collect(), seed.store),
            None,
        ),
    };

    loop {
        if let Some(reason) = budget.exhausted(stats.iterations, stats.states_stepped) {
            sink.governor(GovernorTrace {
                round: stats.iterations,
                kind: GovernorTraceKind::Exhausted(reason),
            });
            let outcome = governed_outcome(current, Some(reason));
            return (outcome, stats);
        }
        stats.iterations += 1;
        let mut phase_watch = Stopwatch::start(armed);
        // One Kleene iterate: next = inject(initial) ⊔ applyStep(current),
        // with applyStep evaluated through the memo cache.
        let mut next: SharedStoreDomain<Ps, G, S> = match &inject {
            Some(initial) => Collecting::<StorePassing<G, S>, Ps>::inject(initial.clone()),
            None => Lattice::bottom(),
        };
        let mut fresh_this_round = 0usize;

        for key in current.states().iter() {
            // One lookup decides both the cache verdict and whether an
            // invalidation is a re-enqueue of a previously-stepped pair.
            let valid = match cache.get(key) {
                Some(entry)
                    if entry
                        .deps
                        .iter()
                        .all(|a| last_changed.get(a).is_none_or(|&c| c <= versions[key])) =>
                {
                    stats.cache_hits += 1;
                    true
                }
                Some(_) => {
                    stats.reenqueued += 1;
                    false
                }
                None => false,
            };
            if !valid {
                fresh_this_round += 1;
                stats.states_stepped += 1;
                stats.spine_clones += 1;
                cache.insert(key.clone(), step_pair(step, key, current.store()));
                versions.insert(key.clone(), version);
            }
            let entry = &cache[key];
            stats.store_joins += 1;
            stats.spine_clones += 1;
            next.join_in_place(SharedStoreDomain::from_parts(
                entry.successors.clone(),
                entry.store.clone(),
            ));
        }

        stats.peak_frontier = stats.peak_frontier.max(fresh_this_round);

        let step_ns = phase_watch.lap_ns();
        let scanned = current.len();
        let (grew, changed) = if budget.widen.enabled {
            // Widened accumulation: fold the states half and the store
            // half separately so the store can widen at the tracker's
            // points.  The fold's reported delta — the addresses that
            // actually changed under ⊔/▽ — drives the invalidation index
            // and the growth counters.
            let mut grew = false;
            for key in next.states().clone() {
                grew |= current.insert_state(key);
            }
            let delta = current
                .store_mut()
                .widen_in_place_delta(next.store().clone(), widen.points());
            let (joined, widened) = widen.classify(&delta);
            stats.store_joins_applied += joined;
            stats.widen_applied += widened;
            widen.record(&delta);
            grew |= !delta.is_empty();
            (grew, delta)
        } else {
            let changed = next.store().changed_addresses(current.store());
            (current.join_in_place(next), changed)
        };
        sink.round(RoundTrace {
            round: stats.iterations,
            frontier: fresh_this_round,
            stepped: fresh_this_round,
            joins: scanned,
            delta_width: changed.len(),
            rebuild: false,
            step_ns,
            join_ns: phase_watch.lap_ns(),
            sync_ns: 0,
        });
        if !grew {
            if budget.widen.enabled && budget.widen.narrow_passes > 0 {
                let states = current.states().clone();
                narrow_store_post_pass(
                    &states,
                    current.store_mut(),
                    step,
                    budget.widen.narrow_passes,
                    budget,
                );
            }
            return (Outcome::Complete(current), stats);
        }
        stats.store_bytes_shared = stats
            .store_bytes_shared
            .max(current.store().shared_spine_bytes());
        if !budget.widen.enabled {
            stats.store_joins_applied += changed.len();
        }
        version += 1;
        for addr in changed {
            last_changed.insert(addr, version);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::explore_fp;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, VecM};

    /// A heap value that is itself an address (a one-cell pointer).
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Ptr(u8);

    impl Touches<u8> for Ptr {
        fn touches(&self) -> BTreeSet<u8> {
            [self.0].into_iter().collect()
        }
    }

    /// Toy machine states are small numbers marching down a chain
    /// `0 → 1 → … → 6`.  Only state 1 *reads* the shared cell 0 and only
    /// state 4 *writes* it, so the engine should leave most of the chain
    /// untouched across rounds, and re-enqueue state 1 exactly when
    /// state 4's write lands.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct St(u32);

    impl StateRoots for St {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 1 {
                [0u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    type G = u64;
    type S = crate::store::BasicStore<u8, Ptr>;
    type M = StorePassing<G, S>;

    fn step(st: St) -> <M as MonadFamily>::M<St> {
        let n = st.0;
        match n {
            1 => {
                // Reads cell 0: one successor per stored pointer, plus the
                // unconditional next chain state.
                let fetched =
                    <M as MonadTrans>::lift(
                        crate::monad::gets_nd_set::<StateT<S, VecM>, S, Ptr, _>(move |store| {
                            store.fetch(&0u8)
                        }),
                    );
                let via_heap = M::bind(fetched, move |ptr| M::pure(St(ptr.0 as u32 + 1)));
                M::mplus(M::pure(St(2)), via_heap)
            }
            4 => {
                // Writes cell 0, widening what state 1 can observe.
                let write = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |store: S| store.bind(0u8, [Ptr(9)].into_iter().collect()),
                ));
                M::bind(write, move |_| M::pure(St(5)))
            }
            n if n >= 6 => M::pure(st),
            _ => M::pure(St(n + 1)),
        }
    }

    #[test]
    fn sorted_subset_matches_set_semantics() {
        let ids = |xs: &[usize]| -> Vec<StateId> {
            xs.iter().copied().map(StateId::from_index).collect()
        };
        assert!(sorted_subset(&ids(&[]), &ids(&[])));
        assert!(sorted_subset(&ids(&[]), &ids(&[1, 2])));
        assert!(sorted_subset(&ids(&[1]), &ids(&[0, 1, 2])));
        assert!(sorted_subset(&ids(&[0, 2]), &ids(&[0, 1, 2])));
        assert!(!sorted_subset(&ids(&[3]), &ids(&[0, 1, 2])));
        assert!(!sorted_subset(&ids(&[0, 3]), &ids(&[0, 1, 2])));
        assert!(!sorted_subset(&ids(&[1]), &ids(&[])));
    }

    #[test]
    fn interned_equals_kleene_structural_and_rescan() {
        let kleene: SharedStoreDomain<St, G, S> = explore_fp::<M, St, _, _>(step, St(0));
        let (interned, stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            );
        let (structural, structural_stats) = <SharedStoreDomain<St, G, S> as FrontierCollecting<
            M,
            St,
        >>::explore_frontier_structural(&step, St(0));
        let (rescan, rescan_stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier_rescan(
                &step,
                St(0),
            );
        assert_eq!(interned, kleene);
        assert_eq!(structural, kleene);
        assert_eq!(rescan, kleene);
        assert!(stats.cache_hits > 0, "expected cache hits: {stats}");
        assert!(stats.store_joins_applied > 0);
        assert_eq!(stats.widen_applied, 0);
        assert!(stats.iterations > 1);
        // The id-indexed engine never does more logical work than the
        // structural engine — and may do strictly less: its delta-shaped
        // cache entries need tighter read sets (no successor closures on
        // drop-free branches), so fewer store growths re-enqueue it.
        assert!(stats.iterations <= structural_stats.iterations);
        assert!(stats.states_stepped <= structural_stats.states_stepped);
        assert!(stats.store_joins <= structural_stats.store_joins);
        assert_eq!(
            stats.store_joins_applied,
            structural_stats.store_joins_applied
        );
        // Both incremental engines fold strictly fewer contributions than
        // the rescanning engine re-joins.
        assert!(
            stats.store_joins < rescan_stats.store_joins,
            "interned folded {} joins, rescan {}",
            stats.store_joins,
            rescan_stats.store_joins
        );
        // On this GC-free machine every round stays on the fast path, so
        // joins == steps (one fold per re-stepped pair).
        assert_eq!(stats.rebuild_rounds, 0);
        assert_eq!(stats.store_joins, stats.states_stepped);
        // Intern accounting: every distinct pair interned once; each step
        // re-interns its successors, so hits dominate after round one.
        assert_eq!(stats.distinct_states, interned.len());
        assert_eq!(stats.intern_misses, stats.distinct_states);
        assert!(stats.intern_hits > 0);
        assert!(stats.intern_hit_rate() > 0.0);
        // The structural engine does not intern at all.
        assert_eq!(structural_stats.intern_misses, 0);
    }

    #[test]
    fn worklist_steps_strictly_fewer_states_than_kleene() {
        use std::cell::Cell;
        use std::rc::Rc;

        let kleene_steps = Rc::new(Cell::new(0usize));
        let counter = Rc::clone(&kleene_steps);
        let counted = move |st: St| {
            counter.set(counter.get() + 1);
            step(st)
        };
        let _: SharedStoreDomain<St, G, S> = explore_fp::<M, St, _, _>(counted, St(0));

        let (_, stats) =
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            );
        assert!(
            stats.states_stepped < kleene_steps.get(),
            "worklist stepped {} states, Kleene {}",
            stats.states_stepped,
            kleene_steps.get()
        );
    }

    /// A state whose roots point at the cell the non-monotone machine
    /// inspects (cell 9 for state 0, so its dependency is registered).
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct NmSt(u32);

    impl StateRoots for NmSt {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 0 {
                [9u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    /// A deliberately *non-monotone* machine: state 0 emits an extra
    /// successor only while cell 9 is still empty, and state 2 later writes
    /// that cell.  Re-stepping state 0 after the write shrinks its successor
    /// set, which no configuration of the framework's own semantics does —
    /// exactly the situation the rebuild round exists for.
    fn nonmonotone_step(st: NmSt) -> <StorePassing<G, S> as MonadFamily>::M<NmSt> {
        type M = StorePassing<G, S>;
        match st.0 {
            0 => {
                let peeked =
                    <M as MonadTrans>::lift(
                        crate::monad::gets_nd_set::<StateT<S, VecM>, S, Ptr, _>(move |store| {
                            if store.fetch(&9u8).is_empty() {
                                [Ptr(7)].into_iter().collect()
                            } else {
                                BTreeSet::new()
                            }
                        }),
                    );
                let extra = M::bind(peeked, move |ptr| M::pure(NmSt(ptr.0 as u32 + 1)));
                M::mplus(M::pure(NmSt(1)), extra)
            }
            1 => M::pure(NmSt(2)),
            2 => {
                let write = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |store: S| store.bind(9u8, [Ptr(3)].into_iter().collect()),
                ));
                M::bind(write, move |_| M::pure(NmSt(3)))
            }
            _ => M::pure(st),
        }
    }

    #[test]
    fn nonmonotone_contributions_trigger_a_real_rebuild_round() {
        let kleene: SharedStoreDomain<NmSt, G, S> =
            explore_fp::<StorePassing<G, S>, NmSt, _, _>(nonmonotone_step, NmSt(0));
        let (interned, stats) = <SharedStoreDomain<NmSt, G, S> as FrontierCollecting<
            StorePassing<G, S>,
            NmSt,
        >>::explore_frontier(&nonmonotone_step, NmSt(0));
        let (structural, structural_stats) = <SharedStoreDomain<NmSt, G, S> as FrontierCollecting<
            StorePassing<G, S>,
            NmSt,
        >>::explore_frontier_structural(&nonmonotone_step, NmSt(0));
        let (rescan, _) = <SharedStoreDomain<NmSt, G, S> as FrontierCollecting<
            StorePassing<G, S>,
            NmSt,
        >>::explore_frontier_rescan(&nonmonotone_step, NmSt(0));

        // The write to cell 9 invalidates state 0, whose re-step *shrinks*
        // its successor set — both incremental engines must leave the fast
        // path…
        assert!(
            stats.rebuild_rounds > 0,
            "expected a rebuild round: {stats}"
        );
        assert!(structural_stats.rebuild_rounds > 0);
        // …and still agree bit-for-bit with the accumulated Kleene iterate
        // and the rescanning engine.
        assert_eq!(interned, kleene);
        assert_eq!(structural, kleene);
        assert_eq!(rescan, kleene);
        // The shrunken-away successor (state 8, reached through Ptr(7))
        // stays in the accumulated domain: cumulative semantics never
        // un-discovers a state.
        assert!(interned.states().iter().any(|(ps, _)| ps.0 == 8));
    }

    /// States of the narrowing-soundness machine below.  States 1 and 2
    /// both read cell 0, so both are re-enqueued as the loop widens it.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct NarrowSt(u32);

    impl StateRoots for NarrowSt {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            if self.0 == 1 || self.0 == 2 {
                [0u8].into_iter().collect()
            } else {
                BTreeSet::new()
            }
        }
    }

    /// Regression test: the narrowing post-pass must treat a strong update
    /// that *reproduces* the widened binding as a producer contribution.
    ///
    /// The machine is
    ///
    /// ```text
    /// 0: x := 0                        → {1, 2, 3}
    /// 1: x := x + 1                    → {1, 4}   (unbounded loop; widens
    ///                                              cell 0 to [0,+∞))
    /// 2: y := x                        → {4}      (strong-updates cell 1 to
    ///                                              exactly [0,+∞))
    /// 3: y := [0,5]                    → {4}
    /// 4: halt
    /// ```
    ///
    /// Cell 1's sound binding is `[0,+∞) ⊔ [0,5] = [0,+∞)`: the copier at
    /// state 2 really can deposit any value `x` takes.  An image built from
    /// each branch's *changed* addresses drops the copier (its write equals
    /// the accumulated binding, so nothing diffs), sees only state 3's
    /// `[0,5]`, and narrows cell 1 to the unsound `[0,5]`.  The write
    /// journal records both strong updates, keeping the image at `[0,+∞)`.
    #[test]
    fn narrowing_keeps_reproducing_strong_updates_in_the_image() {
        use super::super::governor::WidenPolicy;
        use crate::lattice::Interval;
        use crate::store::IntervalStore;

        type IS = IntervalStore<u8>;
        let step = |ps: NarrowSt, g: u64, s: IS| -> Vec<((NarrowSt, u64), IS)> {
            match ps.0 {
                0 => {
                    let s = s.bind(0u8, Interval::singleton(0));
                    vec![
                        ((NarrowSt(1), g), s.clone()),
                        ((NarrowSt(2), g), s.clone()),
                        ((NarrowSt(3), g), s),
                    ]
                }
                1 => {
                    let x = s.fetch(&0u8);
                    let incremented = x + Interval::singleton(1);
                    vec![
                        ((NarrowSt(4), g), s.clone()),
                        ((NarrowSt(1), g), s.replace(0u8, incremented)),
                    ]
                }
                2 => {
                    let x = s.fetch(&0u8);
                    vec![((NarrowSt(4), g), s.replace(1u8, x))]
                }
                3 => vec![((NarrowSt(4), g), s.replace(1u8, Interval::range(0, 5)))],
                _ => vec![((ps, g), s)],
            }
        };

        let budget = Budget::unlimited().with_widening(WidenPolicy::after_growths(3));
        let (outcome, _) =
            <SharedStoreDomain<NarrowSt, u64, IS> as DirectCollecting<NarrowSt, u64, IS>>::
                explore_frontier_governed(&step, SolveFrom::Fresh(NarrowSt(0)), &budget);
        let fixpoint = outcome.into_complete();

        // The loop cell widens to [0,+∞) and narrowing cannot tighten it
        // (the loop really is unbounded).
        assert_eq!(fixpoint.store().fetch(&0u8), Interval::at_least(0));
        // The copied cell must stay [0,+∞): the reproducing strong update
        // at state 2 is a real producer even though it never diffs.
        assert_eq!(fixpoint.store().fetch(&1u8), Interval::at_least(0));
    }

    #[test]
    fn invalidation_is_observable_when_states_share_cells() {
        for (_, stats) in [
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier(
                &step,
                St(0),
            ),
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier_structural(
                &step,
                St(0),
            ),
            <SharedStoreDomain<St, G, S> as FrontierCollecting<M, St>>::explore_frontier_rescan(
                &step,
                St(0),
            ),
        ] {
            // The toy machine's states write into each other's read cells,
            // so at least one previously-stepped state must have been
            // re-enqueued by every engine.
            assert!(stats.reenqueued > 0, "expected re-enqueues: {stats}");
        }
    }
}
