//! The frontier-driven worklist fixpoint engine.
//!
//! The paper's `Collecting` interface (§5.2) deliberately decouples the
//! monadic transition function `mnext` from the *global* fixed-point
//! strategy that drives it — but the only strategy the paper (and the
//! [`explore_fp`](crate::collect::explore_fp) driver) provides is naive
//! Kleene iteration: every pass re-steps **every** state accumulated so
//! far, making the overall analysis quadratic in the number of discovered
//! states even though each state's successors almost never change.
//!
//! This module exploits the same decoupling in the other direction, the way
//! *Abstracting Definitional Interpreters* (Darais et al.) exploits its
//! caching fixpoint: a domain that implements [`FrontierCollecting`] can be
//! solved by [`explore_worklist`], which only re-steps states whose inputs
//! may actually have changed.
//!
//! Two solving strategies are provided, one per analysis domain:
//!
//! * **Per-state stores** ([`PerStateDomain`](crate::collect::PerStateDomain),
//!   §5.3.3): a `((state, guts), store)` triple is a *closed* unit — its
//!   successors depend on nothing else — so the engine is plain frontier
//!   reachability over triples: a seen-set plus a FIFO worklist, each triple
//!   stepped exactly once.
//! * **Shared (widened) store**
//!   ([`SharedStoreDomain`](crate::collect::SharedStoreDomain), §6.5): a
//!   `(state, guts)` pair reads the single global store, so a pair's
//!   successors can change when the store is widened.  The engine is an
//!   **incremental accumulator**: it maintains one running domain, steps
//!   only the frontier (new pairs, plus pairs invalidated through a reverse
//!   dependency index over the addresses their transition may read — the
//!   [`reachable`] closure of their [`StateRoots`],
//!   the same root set abstract GC uses), and folds only those re-stepped
//!   contributions back in with the change-tracking in-place joins of the
//!   lattice layer.  Per-address store deltas fall out of the fold
//!   ([`StoreDelta::join_in_place_delta`](crate::store::StoreDelta)), so a
//!   round costs O(|frontier| × store-join) — the PR-1 engine's remaining
//!   O(|states| × store-join) per-round re-join is gone.  That PR-1
//!   *rescanning* solver is retained as
//!   [`FrontierCollecting::explore_frontier_rescan`] for differential
//!   testing and as the E9 benchmark baseline.
//!
//! All strategies compute *exactly* the fixpoint
//! [`explore_fp`](crate::collect::explore_fp) computes — see the
//! shared-store solver's module docs for why folding only the frontier is
//! exact — so the Kleene driver remains usable as a reference oracle (and
//! is asserted equal across the test corpus).  The engines additionally report
//! [`EngineStats`] so experiment harnesses can quantify the work saved.
//!
//! ## Choosing a driver
//!
//! Use [`explore_worklist`] (or the language crates' `analyse_*_worklist`
//! entry points) whenever the analysis is the bottleneck: on worklist-hard
//! workloads such as `kcfa_worst_case` the engine steps a small fraction of
//! the states Kleene iteration re-steps.  Use
//! [`explore_fp`](crate::collect::explore_fp) when you want the paper's
//! literal algorithm, a second opinion in a differential test, or a domain
//! that implements only [`Collecting`].

pub mod governor;
pub mod parallel;
mod per_state;
mod shared;

#[cfg(feature = "fault-inject")]
pub use governor::FaultGuard;
pub use governor::{
    Budget, CancelToken, EngineError, ExhaustReason, FaultAction, FaultPlan, FaultSpec,
    LadderReport, LadderRung, Outcome, ResumeSeed, SolveFrom, WidenPolicy,
};
pub use parallel::{explore_frontier_ladder, explore_frontier_ladder_traced, ParallelConfig};
pub use shared::{
    explore_rescan_governed_stats, explore_structural_governed_stats, SharedResumeSeed,
};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::addr::Address;
use crate::collect::Collecting;
use crate::gc::{reachable, Touches};
use crate::lattice::WidenLattice;
use crate::monad::{MonadFamily, Value};
use crate::store::StoreLike;
use crate::telemetry::{NoopSink, TraceSink};

/// Instrumentation gathered by a worklist run (for the experiment harness
/// and for asserting that the engine does strictly less work than Kleene
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Worklist pops (per-state engine) or solver rounds (shared-store
    /// engine).
    pub iterations: usize,
    /// How many times the monadic step function was actually executed.
    pub states_stepped: usize,
    /// Steps whose cached contribution was reused instead of being
    /// re-executed: per round, the states *not* on the frontier.  The
    /// incremental engine does not even visit them on fast-path rounds
    /// (rebuild rounds re-execute everything, so they contribute no hits);
    /// the rescan engine replays them from its memo table.
    pub cache_hits: usize,
    /// Previously-stepped states that were re-enqueued because an address
    /// they read was widened (shared-store engine only).
    pub reenqueued: usize,
    /// Address-level store-growth events: how many `(round, address)`
    /// pairs saw the global store change under the accumulating fold
    /// (shared-store engine only).  Counts *join* growth — see
    /// [`EngineStats::widen_applied`] for true widening applications; the
    /// two were one counter (`store_widenings`) before real widening
    /// existed, and conflating them would make the taxonomy lie.
    pub store_joins_applied: usize,
    /// True widening applications: how many `(round, address)` pairs were
    /// accumulated with the co-domain's `▽` instead of `⊔` because the
    /// address had been designated a widening point by the budget's
    /// [`WidenPolicy`].  0 whenever
    /// widening is off (the default).  Deterministic for the sequential
    /// engines; timing-dependent for the elastic driver (which widens at
    /// lazy-merge boundaries), so `--check-regress` gates it only for
    /// sequential engines.
    pub widen_applied: usize,
    /// Contribution joins folded into the running (or rebuilt) domain: the
    /// per-round cost the incremental engine drops from O(|states|) to
    /// O(|frontier|).  For the per-state engine, successful domain inserts.
    pub store_joins: usize,
    /// Rounds of the incremental shared-store engine that re-stepped and
    /// re-folded *every* cached pair because a re-stepped contribution
    /// shrank — evidence of a non-monotone step function.  0 for every
    /// configuration of this framework (including abstract GC, whose
    /// contributions stay monotone across rounds); a hand-written
    /// non-monotone semantics triggers it.
    pub rebuild_rounds: usize,
    /// The largest observed frontier: for the per-state engine, the peak
    /// worklist (queue) length; for the round-based shared-store engine,
    /// the largest number of states actually stepped in a single round
    /// (cached states are not part of a round's frontier).
    pub peak_frontier: usize,
    /// Intern-table lookups that found an existing id (id-indexed engines
    /// only): how often a step produced an already-known state, i.e. how
    /// much deep hashing/cloning the hash-consing layer amortised away.
    pub intern_hits: usize,
    /// Intern-table lookups that allocated a fresh id (id-indexed engines
    /// only).  Always equals [`EngineStats::distinct_states`].
    pub intern_misses: usize,
    /// Distinct interned states: `(state, guts)` pairs for the shared-store
    /// engine, `((state, guts), store)` triples for the per-state engine.
    pub distinct_states: usize,
    /// Distinct environments among the fixpoint's states.  The engines are
    /// language-generic and cannot see environments, so this is filled in
    /// at the language boundary (the `distinct_env_count` helpers of the
    /// language crates, used by the E10 experiment rows); 0 when nothing
    /// filled it.
    pub distinct_envs: usize,
    /// Whole-store spine clones the solver performed: one per step (the
    /// pre-store handed to the transition function) plus one per cached
    /// contribution folded into the accumulator.  With the persistent
    /// [`PMap`](crate::pmap) spine each clone is an `Arc` bump, but the
    /// *count* is a deterministic work measure — a growing count means the
    /// engine started re-stepping or re-folding work it had stopped doing,
    /// so `mai-bench --check-regress` gates on it like on steps and joins.
    pub spine_clones: usize,
    /// The peak, over solver rounds, of the approximate bytes of the
    /// accumulated store's spine shared (`Arc` strong count > 1) with the
    /// solver's cached deltas — sampled after each round's fold phase via
    /// [`StoreLike::shared_spine_bytes`](crate::store::StoreLike), while
    /// the adoptions that fold performed are still live.  0 for stores
    /// without a persistent spine and for the per-state engine (which has
    /// no single accumulated store).  Deterministic for a deterministic
    /// run; `--check-regress` treats a *drop* as a structural-sharing
    /// regression.
    pub store_bytes_shared: usize,
    /// Join-on-sync barriers the sharded parallel engine crossed: one per
    /// solver round (the step phase of a round ends at the barrier where
    /// per-shard deltas are joined into the global accumulator).  Equals
    /// [`EngineStats::iterations`] for a parallel run and 0 for every
    /// sequential engine; deterministic, so `mai-bench --check-regress`
    /// gates on it like on the other work counters.
    pub sync_rounds: usize,
    /// Frontier chunks a parallel worker claimed from *another* worker's
    /// shard after draining its own.  A load-balance observability gauge:
    /// genuinely timing-dependent (two runs of the same workload may steal
    /// differently), so it is reported but **not** gated by
    /// `--check-regress`.
    pub steal_events: usize,
    /// The peak, over sync rounds, of the spread (max − min) of states
    /// actually processed per worker within one round — how unbalanced the
    /// shards were *after* stealing.  Timing-dependent like
    /// [`EngineStats::steal_events`]; reported, not gated.
    pub shard_imbalance: usize,
    /// Worker-epochs the **elastic** parallel engine ran: each worker
    /// counts one per epoch it started between two barriers (so a barrier
    /// run reports 0 and an elastic run reports ≥ its stepped-shard
    /// count).  Timing-dependent (workers cut epochs short when another
    /// shard requests a merge); reported, never gated.
    pub epochs_run: usize,
    /// Merges the elastic engine forced because a step read an address
    /// whose owning shard had published a newer epoch — the *staleness*
    /// detections of the lazy-merge protocol.  Timing-dependent; reported,
    /// never gated.
    pub stale_merges: usize,
    /// Lookups (either direction) served by a worker-private
    /// [`WorkerInternCache`](crate::intern::WorkerInternCache) without
    /// touching the shared interner.  Timing-dependent in elastic runs;
    /// reported, never gated.
    pub worker_cache_hits: usize,
    /// Worker-cache lookups that fell through to the shared
    /// [`ShardedInterner`](crate::intern::ShardedInterner).
    /// Timing-dependent; reported, never gated.
    pub worker_cache_misses: usize,
    /// Hot-path stripe-mutex acquisitions on the shared interner
    /// ([`ShardedInterner::stripe_acquisitions`](crate::intern::ShardedInterner::stripe_acquisitions))
    /// — the contention gauge the worker cache drives down.  0 for sequential
    /// engines; reported, never gated (traced runs resolve extra labels).
    pub stripe_acquisitions: usize,
}

impl EngineStats {
    /// Joins two stat records: additive *work* counters (steps, joins,
    /// hits, re-enqueues, widenings, spine clones, intern traffic, rounds,
    /// steal events) are summed; *gauge* counters (peaks: frontier, shared
    /// bytes, shard imbalance; totals: distinct states/envs) take the
    /// maximum.  This is how the parallel engine folds per-shard stats into
    /// the run's record at each sync barrier — worker records carry only
    /// per-shard work, the coordinator's record carries the round
    /// structure, and `merge` is associative and commutative on that
    /// split, so the merged result is independent of worker order.
    pub fn merge(&mut self, other: &EngineStats) {
        self.iterations += other.iterations;
        self.states_stepped += other.states_stepped;
        self.cache_hits += other.cache_hits;
        self.reenqueued += other.reenqueued;
        self.store_joins_applied += other.store_joins_applied;
        self.widen_applied += other.widen_applied;
        self.store_joins += other.store_joins;
        self.rebuild_rounds += other.rebuild_rounds;
        self.peak_frontier = self.peak_frontier.max(other.peak_frontier);
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.distinct_states = self.distinct_states.max(other.distinct_states);
        self.distinct_envs = self.distinct_envs.max(other.distinct_envs);
        self.spine_clones += other.spine_clones;
        self.store_bytes_shared = self.store_bytes_shared.max(other.store_bytes_shared);
        self.sync_rounds += other.sync_rounds;
        self.steal_events += other.steal_events;
        self.shard_imbalance = self.shard_imbalance.max(other.shard_imbalance);
        self.epochs_run += other.epochs_run;
        self.stale_merges += other.stale_merges;
        self.worker_cache_hits += other.worker_cache_hits;
        self.worker_cache_misses += other.worker_cache_misses;
        self.stripe_acquisitions += other.stripe_acquisitions;
    }

    /// Average contribution joins per solver round — the E9 headline metric
    /// (O(|frontier|) for the incremental engine, O(|states|) for the
    /// rescanning engine and naive Kleene iteration).
    pub fn joins_per_round(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.store_joins as f64 / self.iterations as f64
        }
    }

    /// Fraction of intern lookups served by an existing id — the E10
    /// headline metric for the hash-consing layer (how much state identity
    /// work became O(1)).  0 when the run did not intern (structural
    /// engines).
    pub fn intern_hit_rate(&self) -> f64 {
        let total = self.intern_hits + self.intern_misses;
        if total == 0 {
            0.0
        } else {
            self.intern_hits as f64 / total as f64
        }
    }

    /// Fraction of worker-cache lookups served without a stripe lock —
    /// the E14 headline metric for the per-worker intern memo.  0 when no
    /// worker cache ran (sequential and barrier engines).
    pub fn worker_cache_hit_rate(&self) -> f64 {
        let total = self.worker_cache_hits + self.worker_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.worker_cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iters={} stepped={} hits={} reenq={} addr-joins={} widened={} joins={} rebuilds={} \
             peak={} intern={}/{} distinct={} clones={} shared-bytes={} syncs={} steals={} \
             imbalance={} epochs={} stale={} memo={}/{} stripe-locks={}",
            self.iterations,
            self.states_stepped,
            self.cache_hits,
            self.reenqueued,
            self.store_joins_applied,
            self.widen_applied,
            self.store_joins,
            self.rebuild_rounds,
            self.peak_frontier,
            self.intern_hits,
            self.intern_misses,
            self.distinct_states,
            self.spine_clones,
            self.store_bytes_shared,
            self.sync_rounds,
            self.steal_events,
            self.shard_imbalance,
            self.epochs_run,
            self.stale_merges,
            self.worker_cache_hits,
            self.worker_cache_misses,
            self.stripe_acquisitions
        )
    }
}

/// States that can report the addresses their next transition may read,
/// as a set of *roots* to be closed over the store.
///
/// This is the engine-facing view of the language crates'
/// [`Touches`] instances: the address type becomes an
/// associated type so that the shared-store engine can name it without an
/// unconstrained type parameter.  The contract is the one abstract garbage
/// collection (§6.4) already relies on: a transition from `self` may only
/// fetch addresses inside `reachable(self.state_roots(), store)`.
pub trait StateRoots {
    /// The address type this state touches.
    type Addr: Address;

    /// The root addresses of the state (typically its `touches()` set).
    fn state_roots(&self) -> BTreeSet<Self::Addr>;
}

/// The engines' carrier-neutral view of a transition function: the
/// desugared `g -> s -> [((state, g), s)]` shape of the `StorePassing`
/// monad (paper §5.3.1), as a plain function.
///
/// Two producers exist:
///
/// * `run_store_passing ∘ mnext` — the **`Rc`-closure oracle carrier**
///   (every `Fn(Ps, G, S) -> Vec<((Ps, G), S)>` closure implements this
///   trait, so wrapping a monadic step is one line);
/// * the language crates' `mnext_direct` — the **direct-style carrier**
///   ([`crate::monad::direct`]), which evaluates the same semantics with
///   `bind` as plain function composition and no `Rc<dyn Fn>` allocation
///   per bind.
///
/// The solvers are written once against this trait and therefore compute
/// identical fixpoints (and identical work counters) on either carrier;
/// only the per-step constant factor differs.
///
/// Step functions are `Sync`: the sharded parallel engine
/// ([`parallel`]) shares one step function across all of its workers, and
/// every producer in the tree (plain `fn`s, the `with_state_gc` wrapper,
/// the `run_store_passing` desugaring closure) is stateless, so the bound
/// costs nothing and keeps the solver carrier- *and* strategy-neutral.
pub trait StepFn<Ps, G, S>: Sync {
    /// Steps one `(state, guts, store)` configuration to its successor
    /// branches.
    fn step(&self, ps: Ps, guts: G, store: S) -> Vec<((Ps, G), S)>;
}

impl<F, Ps, G, S> StepFn<Ps, G, S> for F
where
    F: Fn(Ps, G, S) -> Vec<((Ps, G), S)> + Sync,
{
    fn step(&self, ps: Ps, guts: G, store: S) -> Vec<((Ps, G), S)> {
        self(ps, guts, store)
    }
}

/// Wraps a direct-style step function so that every produced branch is
/// followed by abstract garbage collection: the branch's store is
/// restricted to the addresses reachable from the successor state's roots
/// (the paper's `STEP-GC` rule of §6.4, on the direct carrier).
///
/// This is the direct-style counterpart of
/// [`with_gc`](crate::collect::with_gc) specialised to the one strategy
/// every language crate uses — restrict-to-reachable from the stepped
/// state's [`StateRoots`] — so the languages' `analyse_*_gc_direct` entry
/// points need no per-language GC plumbing.
pub fn with_state_gc<Ps, G, S, F>(step: F) -> impl Fn(Ps, G, S) -> Vec<((Ps, G), S)>
where
    Ps: StateRoots,
    S: StoreLike<Ps::Addr>,
    S::D: Touches<Ps::Addr>,
    F: StepFn<Ps, G, S>,
{
    move |ps: Ps, guts: G, store: S| {
        step.step(ps, guts, store)
            .into_iter()
            .map(|((ps2, g2), s2)| {
                let live = reachable(ps2.state_roots(), &s2);
                let s2 = s2.filter_store(|a| live.contains(a));
                ((ps2, g2), s2)
            })
            .collect()
    }
}

/// Per-address growth bookkeeping behind the budget's [`WidenPolicy`]:
/// decides, round by round, **where** the shared-store engines accumulate
/// with the co-domain's widening `▽` instead of plain join `⊔`.
///
/// The policy is the classical delayed-widening discipline, made
/// address-local: every address starts as a join point; each fold that
/// grows it counts one growth; once an address has grown strictly more
/// than [`WidenPolicy::growth_threshold`] times it is designated a
/// *widening point* and every later fold widens it
/// ([`StoreDelta::widen_in_place_delta`](crate::store::StoreDelta)).
/// Termination: each address joins at most `threshold + 1` times before
/// switching to `▽`, and the co-domain guarantees every `▽`-chain
/// stabilises in finitely many steps, so the per-address chain — and with
/// it the store half of the fixpoint iteration — is finite.
///
/// A tracker built from a disabled policy never designates a point, and
/// [`StoreDelta::widen_in_place_delta`](crate::store::StoreDelta) with an
/// empty point set *is* `join_in_place_delta`, so engines call the widened
/// fold unconditionally and stay byte-identical to the pre-widening
/// engines whenever widening is off (the default).
pub(crate) struct WidenTracker<A: Address> {
    enabled: bool,
    threshold: usize,
    growths: BTreeMap<A, usize>,
    points: BTreeSet<A>,
}

impl<A: Address> WidenTracker<A> {
    pub(crate) fn new(policy: &WidenPolicy) -> Self {
        WidenTracker {
            enabled: policy.enabled,
            threshold: policy.growth_threshold,
            growths: BTreeMap::new(),
            points: BTreeSet::new(),
        }
    }

    /// The current widening points (always empty when widening is off).
    pub(crate) fn points(&self) -> &BTreeSet<A> {
        &self.points
    }

    /// Splits a fold's changed-address set into `(joined, widened)` counts
    /// against the points that were in force *during* that fold — call
    /// before [`WidenTracker::record`].
    pub(crate) fn classify(&self, changed: &BTreeSet<A>) -> (usize, usize) {
        if self.points.is_empty() {
            return (changed.len(), 0);
        }
        let widened = changed.iter().filter(|a| self.points.contains(*a)).count();
        (changed.len() - widened, widened)
    }

    /// Records one growth for every changed address; addresses past the
    /// threshold become widening points for all subsequent folds.
    pub(crate) fn record(&mut self, changed: &BTreeSet<A>) {
        if !self.enabled {
            return;
        }
        for a in changed {
            let n = self.growths.entry(a.clone()).or_insert(0);
            *n += 1;
            if *n > self.threshold {
                self.points.insert(a.clone());
            }
        }
    }
}

/// The decreasing half of the widening/narrowing pair, run as an
/// engine-independent post-pass once a widened solve has stabilised:
/// `σ_{k+1} = σ_k △ F(σ_k)`, where `F(σ)` is the join of every discovered
/// state's step image over `σ` — each pass can only tighten bounds the
/// widening over-shot (`▽` loses a bound to ±∞; if the semantics actually
/// caps the value, one image sweep recovers the cap), and the pass stops
/// as soon as an iterate refines nothing, or after `passes` sweeps.
///
/// The image is assembled from what each branch actually **wrote**: the
/// pre-store handed to a re-stepped state is armed for write journaling
/// ([`StoreDelta::arm_write_journal`](crate::store::StoreDelta)), and each
/// result branch's journal — exactly the addresses it bound or replaced,
/// with the written values — is joined into the image.  This meets the
/// contract the store-level narrow needs: `image(a)`, when present, is an
/// upper bound of *every* producer's contribution at `a`, and a silent
/// address is one **no producer wrote**, so leaving it untouched is sound.
/// A value-level diff against the accumulator cannot provide this — a
/// branch that writes exactly the current binding (say `x := y` with
/// `y = [0,+∞)`) diffs as unchanged, and dropping it from the image would
/// let another branch's tighter write (`x := [0,5]`) narrow the address
/// below values that genuinely flow there.  A store that does not journal
/// falls back to contributing its whole branch store — inflationary (a
/// store-passing branch threads the accumulator through, so nothing
/// tightens), but sound; only journaling stores recover precision.
///
/// The pass is a pure function of the *final* `(states, store)` pair and
/// the step function — no engine round structure enters it — so every
/// engine that converged to the same widened fixpoint narrows to the same
/// store, preserving the cross-engine byte-identity contract.  Its step
/// executions are deliberately **not** counted in [`EngineStats`]: the
/// work-counter invariants (`store_joins == states_stepped` on fast-path
/// runs, parallel-vs-sequential counter equality) describe the solve, and
/// the refinement sweep is not part of the solve.  For the same reason the
/// budget's round/step limits do not gate the sweep — but its *wall-clock*
/// bounds do: [`Budget::interrupted`] is polled between state re-steps,
/// and a deadline or cancellation abandons the refinement early.  That is
/// safe — the widened store is already a sound `Complete` result, and
/// every completed `σ_{k+1} = σ_k △ F(σ_k)` iterate (the only thing an
/// abort can skip) only refines it further.
pub(crate) fn narrow_store_post_pass<Ps, G, S, F>(
    states: &BTreeSet<(Ps, G)>,
    store: &mut S,
    step: &F,
    passes: usize,
    budget: &Budget,
) where
    Ps: Value + Ord + StateRoots,
    G: Value + Ord,
    S: crate::store::StoreDelta<Ps::Addr> + WidenLattice,
    F: StepFn<Ps, G, S>,
{
    for _ in 0..passes {
        let mut image = S::bottom();
        for (ps, g) in states.iter() {
            if budget.interrupted().is_some() {
                return;
            }
            let mut pre = store.clone();
            pre.arm_write_journal();
            for ((_, _), mut s2) in step.step(ps.clone(), g.clone(), pre) {
                match s2.take_write_journal() {
                    Some(written) => image.join_in_place(written),
                    None => image.join_in_place(s2),
                };
            }
        }
        if !store.narrow_in_place(image) {
            break;
        }
    }
}

/// Analysis domains solvable directly from a desugared [`StepFn`] — the
/// carrier-selecting face of the engines.  [`FrontierCollecting`] methods
/// wrap their `Rc`-closure step into a [`StepFn`] and delegate here, so
/// both carriers run byte-identical solver code.
///
/// The *governed* solver is the one implementation: the classic
/// `explore_frontier_direct*` entry points are default wrappers passing
/// [`Budget::unlimited`] and unwrapping the guaranteed-`Complete`
/// outcome, so governed-off runs are byte-identical (fixpoint *and*
/// work counters) to the pre-governor engines by construction.
pub trait DirectCollecting<Ps, G, S>: Sized {
    /// What an `Exhausted` partial carries to continue the solve — see
    /// [`ResumeSeed`].
    type Seed;

    /// The governed frontier-driven solve: starts fresh or from a resume
    /// seed, consults `budget` at every round boundary, and reports
    /// either the fixpoint or a resumable partial.
    fn explore_frontier_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        budget: &Budget,
        sink: &mut T,
    ) -> (Outcome<Self, Self::Seed>, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug;

    /// [`Self::explore_frontier_governed_traced`] without a sink.
    fn explore_frontier_governed<F>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        budget: &Budget,
    ) -> (Outcome<Self, Self::Seed>, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_governed_traced(step, from, budget, &mut NoopSink)
    }

    /// Solves `lfp (λX. inject(initial) ⊔ applyStep(step, X))` with the
    /// default frontier-driven engine, from a direct-style step function.
    fn explore_frontier_direct<F>(step: &F, initial: Ps) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_direct_traced(step, initial, &mut NoopSink)
    }

    /// [`Self::explore_frontier_direct`] with a
    /// [`TraceSink`] observing the solve:
    /// one [`RoundTrace`](crate::telemetry::RoundTrace) per round plus
    /// per-state step-cost and per-address join-traffic attribution.
    /// Identical fixpoint and identical [`EngineStats`] at every sink —
    /// tracing never feeds back into the solve.
    fn explore_frontier_direct_traced<F, T>(
        step: &F,
        initial: Ps,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug,
    {
        let (outcome, stats) = Self::explore_frontier_governed_traced(
            step,
            SolveFrom::Fresh(initial),
            &Budget::unlimited(),
            sink,
        );
        (outcome.into_complete(), stats)
    }
}

/// Computes the collecting semantics with the worklist engine from a
/// direct-style step function — the carrier-selected counterpart of
/// [`explore_worklist_stats`].
pub fn explore_worklist_direct_stats<Ps, G, S, Fp, F>(step: F, initial: Ps) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: DirectCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
{
    Fp::explore_frontier_direct(&step, initial)
}

/// [`explore_worklist_direct_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_direct_traced_stats<Ps, G, S, Fp, F, T>(
    step: F,
    initial: Ps,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: DirectCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    Fp::explore_frontier_direct_traced(&step, initial, sink)
}

/// Analysis domains solvable by the **sharded parallel** driver
/// ([`parallel`]): the same direct-style [`StepFn`] shape as
/// [`DirectCollecting`], with the frontier split across worker threads and
/// per-shard store deltas joined at a sync barrier each round.
///
/// Implementations must compute the same fixpoint
/// [`DirectCollecting::explore_frontier_direct`] computes for the same
/// step function, at every thread count — the sequential direct engine is
/// the determinism oracle the differential suite pins this to.
pub trait ParallelCollecting<Ps, G, S>: Sized {
    /// What an `Exhausted` partial carries to continue the solve — see
    /// [`ResumeSeed`].
    type Seed;

    /// The governed barrier-parallel solve: budget checked at every sync
    /// barrier, workers polling the budget's [`CancelToken`] between
    /// claims, and worker panics surfaced as a clean
    /// [`EngineError::WorkerPanicked`] (the pool is drained and shut
    /// down; nothing deadlocks).
    fn explore_frontier_parallel_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        threads: usize,
        budget: &Budget,
        sink: &mut T,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug;

    /// [`Self::explore_frontier_parallel_governed_traced`] without a sink.
    fn explore_frontier_parallel_governed<F>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        threads: usize,
        budget: &Budget,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_parallel_governed_traced(step, from, threads, budget, &mut NoopSink)
    }

    /// The governed barrier-elastic solve: budget checked at every
    /// barrier, workers additionally polling the [`CancelToken`] inside
    /// interruptible epochs so cancel latency is bounded by one epoch.
    fn explore_frontier_elastic_governed_traced<F, T>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        config: ParallelConfig,
        budget: &Budget,
        sink: &mut T,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug;

    /// [`Self::explore_frontier_elastic_governed_traced`] without a sink.
    fn explore_frontier_elastic_governed<F>(
        step: &F,
        from: SolveFrom<Ps, Self::Seed>,
        config: ParallelConfig,
        budget: &Budget,
    ) -> Result<(Outcome<Self, Self::Seed>, EngineStats), EngineError>
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_elastic_governed_traced(step, from, config, budget, &mut NoopSink)
    }

    /// Solves `lfp (λX. inject(initial) ⊔ applyStep(step, X))` with the
    /// work-stealing sharded driver on `threads` worker threads
    /// (`threads = 1` degenerates to a sequential run of the same
    /// protocol, useful as a sanity baseline).
    fn explore_frontier_parallel<F>(step: &F, initial: Ps, threads: usize) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_parallel_traced(step, initial, threads, &mut NoopSink)
    }

    /// [`Self::explore_frontier_parallel`] with a
    /// [`TraceSink`] observing the solve:
    /// per-round phase timings plus one
    /// [`WorkerSpan`](crate::telemetry::WorkerSpan) per worker per round
    /// and one [`StealTrace`](crate::telemetry::StealTrace) per stolen
    /// chunk.  Workers record into private lock-free buffers drained by
    /// the coordinator at the sync barrier, so tracing adds no
    /// synchronisation to the step phase; fixpoints and deterministic
    /// counters are identical at every sink.
    fn explore_frontier_parallel_traced<F, T>(
        step: &F,
        initial: Ps,
        threads: usize,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug;

    /// Solves the same fixpoint with the **barrier-elastic** driver
    /// ([`parallel::elastic`]): workers advance independent sub-frontiers
    /// for up to [`ParallelConfig::epochs`] epochs between barriers,
    /// merging per-shard deltas lazily.  `epochs = 1` is exactly the
    /// barrier engine.  The fixpoint is byte-identical to the direct
    /// engine's at every configuration; the *work counters* of an elastic
    /// run (steps, epochs, memo traffic) are timing-dependent and must
    /// not be gated — only the fixpoint is deterministic.
    fn explore_frontier_elastic<F>(
        step: &F,
        initial: Ps,
        config: ParallelConfig,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        Ps: fmt::Debug,
    {
        Self::explore_frontier_elastic_traced(step, initial, config, &mut NoopSink)
    }

    /// [`Self::explore_frontier_elastic`] with a [`TraceSink`] observing
    /// the solve: the barrier-engine records plus one
    /// [`EpochTrace`](crate::telemetry::EpochTrace) per worker epoch and
    /// one [`MergeTrace`](crate::telemetry::MergeTrace) per lazy merge.
    fn explore_frontier_elastic_traced<F, T>(
        step: &F,
        initial: Ps,
        config: ParallelConfig,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: StepFn<Ps, G, S>,
        T: TraceSink,
        Ps: fmt::Debug;
}

/// Computes the collecting semantics with the sharded parallel engine from
/// a direct-style step function — the thread-count-selecting counterpart
/// of [`explore_worklist_direct_stats`].
pub fn explore_worklist_parallel_stats<Ps, G, S, Fp, F>(
    step: F,
    initial: Ps,
    threads: usize,
) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: ParallelCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
{
    Fp::explore_frontier_parallel(&step, initial, threads)
}

/// [`explore_worklist_parallel_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_parallel_traced_stats<Ps, G, S, Fp, F, T>(
    step: F,
    initial: Ps,
    threads: usize,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: ParallelCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    Fp::explore_frontier_parallel_traced(&step, initial, threads, sink)
}

/// Computes the collecting semantics with the barrier-elastic engine from
/// a direct-style step function — the [`ParallelConfig`]-selecting
/// counterpart of [`explore_worklist_parallel_stats`].
pub fn explore_worklist_elastic_stats<Ps, G, S, Fp, F>(
    step: F,
    initial: Ps,
    config: ParallelConfig,
) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: ParallelCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
{
    Fp::explore_frontier_elastic(&step, initial, config)
}

/// [`explore_worklist_elastic_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_elastic_traced_stats<Ps, G, S, Fp, F, T>(
    step: F,
    initial: Ps,
    config: ParallelConfig,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    Ps: fmt::Debug,
    Fp: ParallelCollecting<Ps, G, S>,
    F: StepFn<Ps, G, S>,
    T: TraceSink,
{
    Fp::explore_frontier_elastic_traced(&step, initial, config, sink)
}

/// Analysis domains that can be solved by a frontier-driven worklist engine
/// instead of naive Kleene iteration.
///
/// Implementations must compute the same fixpoint
/// [`explore_fp`](crate::collect::explore_fp) computes for the same step
/// function; the difference is purely operational (how much work is
/// re-done).  This is the engine-side extension of the paper's `Collecting`
/// class — the third degree of freedom of `runAnalysis` (the fixed-point
/// strategy), made swappable.
pub trait FrontierCollecting<M: MonadFamily, A: Value>: Collecting<M, A> {
    /// Solves `lfp (λX. inject(initial) ⊔ applyStep(step, X))` with a
    /// frontier-driven worklist, returning the fixpoint and the work
    /// statistics.
    ///
    /// This is the *incremental accumulator*: the solver maintains one
    /// running domain and folds in only the contributions of re-stepped
    /// states, so a round costs O(|frontier| × store-join) instead of the
    /// O(|states| × store-join) the rescanning engine pays.
    fn explore_frontier<F>(step: &F, initial: A) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        A: fmt::Debug,
    {
        Self::explore_frontier_traced(step, initial, &mut NoopSink)
    }

    /// [`Self::explore_frontier`] with a
    /// [`TraceSink`] observing the solve.
    /// Identical fixpoint and identical [`EngineStats`] at every sink.
    fn explore_frontier_traced<F, T>(step: &F, initial: A, sink: &mut T) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        T: TraceSink,
        A: fmt::Debug;

    /// The PR-1 *rescanning* solver: memoises step outcomes the same way,
    /// but rebuilds the iterate by re-joining **every** cached contribution
    /// each round.  Computes the identical fixpoint; kept as the
    /// differential-testing oracle and the baseline the E9 benchmarks
    /// measure the incremental accumulator against.  Domains whose
    /// [`Self::explore_frontier`] already steps each state exactly once
    /// (the per-state domain) use it unchanged.
    fn explore_frontier_rescan<F>(step: &F, initial: A) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        A: fmt::Debug,
    {
        Self::explore_frontier_rescan_traced(step, initial, &mut NoopSink)
    }

    /// [`Self::explore_frontier_rescan`] with a
    /// [`TraceSink`] observing the solve.
    fn explore_frontier_rescan_traced<F, T>(
        step: &F,
        initial: A,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        T: TraceSink,
        A: fmt::Debug,
    {
        Self::explore_frontier_traced(step, initial, sink)
    }

    /// The PR-2 *structural-key* incremental accumulator: the same
    /// frontier/fold strategy as [`Self::explore_frontier`], but with every
    /// engine table keyed by the full `(state, guts)` structure — `BTreeMap`
    /// lookups paying a deep `Ord` walk per comparison, frontier, successor
    /// and dependency sets deep-cloning states.  Computes the identical
    /// fixpoint; kept as a differential-testing oracle and the baseline the
    /// E10 benchmarks measure the id-indexed engine against.  Domains whose
    /// [`Self::explore_frontier`] never had a structural-key incarnation
    /// (the per-state domain) use it unchanged.
    fn explore_frontier_structural<F>(step: &F, initial: A) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        A: fmt::Debug,
    {
        Self::explore_frontier_structural_traced(step, initial, &mut NoopSink)
    }

    /// [`Self::explore_frontier_structural`] with a
    /// [`TraceSink`] observing the solve.
    fn explore_frontier_structural_traced<F, T>(
        step: &F,
        initial: A,
        sink: &mut T,
    ) -> (Self, EngineStats)
    where
        F: Fn(A) -> M::M<A> + Sync,
        T: TraceSink,
        A: fmt::Debug,
    {
        Self::explore_frontier_traced(step, initial, sink)
    }
}

/// Computes the collecting semantics with the worklist engine — the drop-in
/// counterpart of [`explore_fp`](crate::collect::explore_fp).
pub fn explore_worklist<M, A, Fp, F>(step: F, initial: A) -> Fp
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
{
    Fp::explore_frontier(&step, initial).0
}

/// Like [`explore_worklist`], additionally returning the [`EngineStats`]
/// describing how much work the run performed.
pub fn explore_worklist_stats<M, A, Fp, F>(step: F, initial: A) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
{
    Fp::explore_frontier(&step, initial)
}

/// [`explore_worklist_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_traced_stats<M, A, Fp, F, T>(
    step: F,
    initial: A,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
    T: TraceSink,
{
    Fp::explore_frontier_traced(&step, initial, sink)
}

/// Solves with the PR-1 *rescanning* worklist engine
/// ([`FrontierCollecting::explore_frontier_rescan`]): same fixpoint, but
/// every round re-joins every cached contribution.  Exposed for
/// differential testing and for the E9 incremental-vs-rescan benchmarks.
pub fn explore_worklist_rescan_stats<M, A, Fp, F>(step: F, initial: A) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
{
    Fp::explore_frontier_rescan(&step, initial)
}

/// [`explore_worklist_rescan_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_rescan_traced_stats<M, A, Fp, F, T>(
    step: F,
    initial: A,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
    T: TraceSink,
{
    Fp::explore_frontier_rescan_traced(&step, initial, sink)
}

/// Solves with the PR-2 *structural-key* incremental engine
/// ([`FrontierCollecting::explore_frontier_structural`]): same fixpoint and
/// same frontier strategy as [`explore_worklist_stats`], but state identity
/// is structural (deep `Ord`/clone) instead of id-indexed.  Exposed for
/// differential testing and as the baseline of the E10
/// interned-vs-incremental benchmarks.
pub fn explore_worklist_structural_stats<M, A, Fp, F>(step: F, initial: A) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
{
    Fp::explore_frontier_structural(&step, initial)
}

/// [`explore_worklist_structural_stats`] with a
/// [`TraceSink`] observing the solve.
pub fn explore_worklist_structural_traced_stats<M, A, Fp, F, T>(
    step: F,
    initial: A,
    sink: &mut T,
) -> (Fp, EngineStats)
where
    M: MonadFamily,
    A: Value + fmt::Debug,
    Fp: FrontierCollecting<M, A>,
    F: Fn(A) -> M::M<A> + Sync,
    T: TraceSink,
{
    Fp::explore_frontier_structural_traced(&step, initial, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{explore_fp, PerStateDomain, SharedStoreDomain};
    use crate::lattice::Lattice;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, StorePassing, VecM};
    use crate::store::{BasicStore, StoreLike};
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    /// A pointer-shaped heap value for the randomized machines.
    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct Ptr(u8);

    impl crate::gc::Touches<u8> for Ptr {
        fn touches(&self) -> BTreeSet<u8> {
            [self.0].into_iter().collect()
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct St(u8);

    impl StateRoots for St {
        type Addr = u8;

        fn state_roots(&self) -> BTreeSet<u8> {
            [self.0 % 4].into_iter().collect()
        }
    }

    type S = BasicStore<u8, Ptr>;
    type M = StorePassing<u64, S>;

    /// A family of small randomized machines over 16 states and 4 heap
    /// cells: the `table` entry for state `n` encodes its successor offsets
    /// and whether it reads or writes its cell.
    fn table_step(table: Vec<u8>) -> impl Fn(St) -> <M as crate::monad::MonadFamily>::M<St> {
        move |st: St| {
            let n = st.0;
            let code = *table.get(n as usize % table.len().max(1)).unwrap_or(&0);
            let next = St((n + 1 + code % 3) % 16);
            match code % 4 {
                // Plain jump.
                0 => M::pure(next),
                // Branching jump.
                1 => M::mplus(M::pure(next), M::pure(St((n + 7) % 16))),
                // Write the state's cell.
                2 => {
                    let cell = n % 4;
                    let write = <M as MonadTrans>::lift(
                        <StateT<S, VecM> as MonadState<S>>::modify(move |store: S| {
                            store.bind(cell, [Ptr((code + 1) % 4)].into_iter().collect())
                        }),
                    );
                    M::bind(write, move |_| M::pure(next.clone()))
                }
                // Read the state's cell and follow the stored pointers.
                _ => {
                    let cell = n % 4;
                    let fetched = <M as MonadTrans>::lift(crate::monad::gets_nd_set::<
                        StateT<S, VecM>,
                        S,
                        Ptr,
                        _,
                    >(move |store| {
                        store.fetch(&cell)
                    }));
                    let via_heap = M::bind(fetched, move |ptr| M::pure(St((ptr.0 + 8) % 16)));
                    M::mplus(M::pure(next), via_heap)
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_shared_worklist_equals_kleene_on_random_machines(
            table in proptest::collection::vec(0u8..12, 1..16)
        ) {
            let step = table_step(table);
            let kleene: SharedStoreDomain<St, u64, S> =
                explore_fp::<M, St, _, _>(&step, St(0));
            let (worklist, stats): (SharedStoreDomain<St, u64, S>, _) =
                explore_worklist_stats::<M, St, _, _>(&step, St(0));
            prop_assert_eq!(&worklist, &kleene);
            // …and so does the PR-1 rescanning solver.
            let (rescan, rescan_stats): (SharedStoreDomain<St, u64, S>, _) =
                explore_worklist_rescan_stats::<M, St, _, _>(&step, St(0));
            prop_assert_eq!(&rescan, &kleene);
            // The result is a genuine fixpoint of the Kleene functional.
            type Domain = SharedStoreDomain<St, u64, S>;
            let again = <Domain as crate::collect::Collecting<M, St>>::apply_step(&step, &worklist)
                .join(<Domain as crate::collect::Collecting<M, St>>::inject(St(0)));
            prop_assert!(again.leq(&worklist));
            // Stats sanity: every state pair was stepped at least once.
            prop_assert!(stats.states_stepped >= worklist.len());
            prop_assert_eq!(stats.states_stepped - stats.reenqueued, worklist.len());
            // These machines are GC-free, so every round stays on the
            // monotone fast path: one contribution fold per stepped pair,
            // never more than the rescanning engine's full re-joins.
            prop_assert_eq!(stats.rebuild_rounds, 0);
            prop_assert_eq!(stats.store_joins, stats.states_stepped);
            prop_assert!(stats.store_joins <= rescan_stats.store_joins);
        }

        #[test]
        fn prop_per_state_worklist_equals_kleene_on_random_machines(
            table in proptest::collection::vec(0u8..12, 1..16)
        ) {
            let step = table_step(table);
            let kleene: PerStateDomain<St, u64, S> =
                explore_fp::<M, St, _, _>(&step, St(0));
            let (worklist, stats): (PerStateDomain<St, u64, S>, _) =
                explore_worklist_stats::<M, St, _, _>(&step, St(0));
            prop_assert_eq!(&worklist, &kleene);
            // Frontier reachability steps every triple exactly once.
            prop_assert_eq!(stats.states_stepped, worklist.len());
        }
    }
}
