//! The heap-cloning analysis domain: every state carries its own store
//! (paper §5.3.3).

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::addr::HasInitial;
use crate::lattice::Lattice;
use crate::monad::{run_store_passing, MonadFamily, StorePassing, Value};

use super::Collecting;

/// The analysis domain `P(((PΣ, g), s))`: a set of partial states, each
/// paired with its own guts (`g`) and its own store (`s`).
///
/// This is the domain the abstracted abstract machine produces by default —
/// "heap cloning" in the classification of the paper's §6.5 — maximally
/// precise with respect to store flows, but potentially exponential in the
/// program size.
///
/// `Ps` is the language's partial-state type, `G` the analysis guts
/// (context/time) and `S` the store.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PerStateDomain<Ps: Ord, G: Ord, S: Ord> {
    elements: BTreeSet<((Ps, G), S)>,
}

impl<Ps: Ord, G: Ord, S: Ord> Default for PerStateDomain<Ps, G, S> {
    fn default() -> Self {
        PerStateDomain {
            elements: BTreeSet::new(),
        }
    }
}

impl<Ps: Ord + Clone, G: Ord + Clone, S: Ord + Clone> PerStateDomain<Ps, G, S> {
    /// Creates an empty domain.
    pub fn new() -> Self {
        Self::default()
    }

    /// The set of `((state, guts), store)` triples explored so far.
    pub fn elements(&self) -> &BTreeSet<((Ps, G), S)> {
        &self.elements
    }

    /// Iterates over the explored triples.
    pub fn iter(&self) -> impl Iterator<Item = &((Ps, G), S)> {
        self.elements.iter()
    }

    /// How many `((state, guts), store)` triples have been explored — the
    /// "reachable configurations" size metric used by the benchmarks.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether no configuration has been explored.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The set of distinct partial states, ignoring guts and stores — the
    /// "reachable program points" precision metric.
    pub fn distinct_states(&self) -> BTreeSet<Ps> {
        self.elements
            .iter()
            .map(|((ps, _), _)| ps.clone())
            .collect()
    }

    /// Builds a domain directly from triples (useful in tests and for the
    /// Galois connection with the shared-store domain).
    pub fn from_elements<I: IntoIterator<Item = ((Ps, G), S)>>(iter: I) -> Self {
        PerStateDomain {
            elements: iter.into_iter().collect(),
        }
    }

    /// Adds one configuration in place, reporting whether it was new — the
    /// accumulation primitive the frontier engine drives its worklist off.
    pub fn insert(&mut self, element: ((Ps, G), S)) -> bool {
        self.elements.insert(element)
    }

    /// The covering ("Hoare") preorder: every configuration of `self` is
    /// dominated by a configuration of `other` with the same state and guts
    /// but a possibly larger store.
    ///
    /// This is the order with respect to which the shared-store widening of
    /// §6.5 is extensive (`X` is covered by `γ(α(X))`), and it is coarser
    /// than the plain subset order used for fixed-point detection.
    pub fn covered_by(&self, other: &Self) -> bool
    where
        S: Lattice,
    {
        self.elements.iter().all(|((ps, g), s)| {
            other
                .elements
                .iter()
                .any(|((ps2, g2), s2)| ps == ps2 && g == g2 && s.leq(s2))
        })
    }
}

impl<Ps, G, S> Debug for PerStateDomain<Ps, G, S>
where
    Ps: Ord + Debug,
    G: Ord + Debug,
    S: Ord + Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PerStateDomain")
            .field("elements", &self.elements)
            .finish()
    }
}

impl<Ps, G, S> Lattice for PerStateDomain<Ps, G, S>
where
    Ps: Ord + Clone,
    G: Ord + Clone,
    S: Ord + Clone,
{
    fn bottom() -> Self {
        Self::default()
    }

    fn join(mut self, other: Self) -> Self {
        self.elements.extend(other.elements);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.elements.is_subset(&other.elements)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.elements.join_in_place(other.elements)
    }

    fn is_bottom(&self) -> bool {
        self.elements.is_empty()
    }
}

impl<Ps, G, S> Collecting<StorePassing<G, S>, Ps> for PerStateDomain<Ps, G, S>
where
    Ps: Value + Ord,
    G: Value + Ord + HasInitial,
    S: Value + Ord + Lattice,
{
    fn inject(ps: Ps) -> Self {
        PerStateDomain {
            elements: [((ps, G::initial()), S::bottom())].into_iter().collect(),
        }
    }

    fn apply_step<F>(step: &F, fp: &Self) -> Self
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps>,
    {
        let mut out = BTreeSet::new();
        for ((ps, guts), store) in &fp.elements {
            let computation = step(ps.clone());
            for result in run_store_passing(computation, guts.clone(), store.clone()) {
                out.insert(result);
            }
        }
        PerStateDomain { elements: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, VecM};

    type G = u64;
    type S = BTreeSet<u32>;
    type M = StorePassing<G, S>;

    /// A toy step function over "states" that are just numbers: each step
    /// bumps the guts, records the state in the store, and branches.
    fn step(n: u32) -> <M as MonadFamily>::M<u32> {
        if n >= 4 {
            return M::pure(n);
        }
        let record = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |mut s: S| {
                s.insert(n);
                s
            },
        ));
        let bump = <M as MonadState<G>>::modify(|g| g + 1);
        M::bind(record, move |_| {
            let bump = bump.clone();
            M::bind(bump, move |_| M::mplus(M::pure(n + 1), M::pure(n + 2)))
        })
    }

    #[test]
    fn inject_seeds_initial_guts_and_bottom_store() {
        let d: PerStateDomain<u32, G, S> = Collecting::<M, u32>::inject(7);
        assert_eq!(d.len(), 1);
        let ((ps, g), s) = d.iter().next().unwrap().clone();
        assert_eq!(ps, 7);
        assert_eq!(g, 0);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_step_fans_out_over_branches_with_cloned_stores() {
        let d: PerStateDomain<u32, G, S> = Collecting::<M, u32>::inject(0);
        let next = PerStateDomain::apply_step(&step, &d);
        // From 0 we branch to 1 and 2, each carrying its own store {0}.
        assert_eq!(next.len(), 2);
        for ((ps, g), s) in next.iter() {
            assert!(*ps == 1 || *ps == 2);
            assert_eq!(*g, 1);
            assert_eq!(s.clone(), [0u32].into_iter().collect());
        }
    }

    #[test]
    fn explore_fp_terminates_and_clones_heaps() {
        let result: PerStateDomain<u32, G, S> = super::super::explore_fp::<M, u32, _, _>(step, 0);
        // Final states 4 and 5 are reached along several different paths,
        // each with its own store — heap cloning keeps them apart.
        let finals: BTreeSet<S> = result
            .iter()
            .filter(|((ps, _), _)| *ps >= 4)
            .map(|(_, s)| s.clone())
            .collect();
        assert!(finals.len() > 1, "expected distinct per-path stores");
        assert!(result.distinct_states().contains(&4));
        assert!(result.distinct_states().contains(&5));
    }

    #[test]
    fn insert_and_join_in_place_track_growth() {
        let mut d: PerStateDomain<u32, G, S> = PerStateDomain::new();
        assert!(d.is_bottom());
        assert!(d.insert(((1, 0), BTreeSet::new())));
        assert!(!d.insert(((1, 0), BTreeSet::new())));
        let other: PerStateDomain<u32, G, S> =
            PerStateDomain::from_elements([((2, 0), BTreeSet::new())]);
        let mut acc = d.clone();
        assert!(acc.join_in_place(other.clone()));
        assert_eq!(acc, d.clone().join(other.clone()));
        assert!(!acc.join_in_place(other));
        assert!(!acc.is_bottom());
    }

    #[test]
    fn lattice_structure_is_set_union() {
        let a: PerStateDomain<u32, G, S> =
            PerStateDomain::from_elements([((1, 0), BTreeSet::new())]);
        let b: PerStateDomain<u32, G, S> =
            PerStateDomain::from_elements([((2, 0), BTreeSet::new())]);
        let j = a.clone().join(b.clone());
        assert_eq!(j.len(), 2);
        assert!(a.leq(&j) && b.leq(&j));
        assert!(PerStateDomain::<u32, G, S>::bottom().is_empty());
    }
}
