//! The collecting-semantics fixed point (paper §5.2, §5.3.3, §6.5).
//!
//! The paper's key engineering move is to *decouple* the monadic transition
//! function (`mnext`) from the monotone fixed-point computation that drives
//! it.  The interface between the two is the `Collecting` class:
//!
//! ```text
//! class Collecting m a fp | fp → a, fp → m where
//!   applyStep :: (a → m a) → fp → fp
//!   inject    :: a → fp
//! ```
//!
//! Different instances of `Collecting` realise different *global* analysis
//! strategies over the *same* semantics: per-state stores ("heap cloning"),
//! a single shared (widened) store, garbage-collected transitions, and so
//! on.  This module provides:
//!
//! * the [`Collecting`] trait and the generic drivers [`explore_fp`] /
//!   [`run_analysis`],
//! * [`PerStateDomain`] — the heap-cloning domain `P(((PΣ, g), s))` of
//!   §5.3.3,
//! * [`SharedStoreDomain`] — the widened domain `(P((PΣ, g)), s)` of §6.5,
//!   related to the former by an explicit Galois connection,
//! * [`with_gc`] — weaving a [`GcStrategy`] into a
//!   step function (§6.4).

mod per_state;
mod shared;

pub use per_state::PerStateDomain;
pub use shared::SharedStoreDomain;

use crate::engine::governor::{Budget, Outcome};
use crate::gc::GcStrategy;
use crate::lattice::{
    kleene_it, kleene_it_bounded, kleene_it_widened, narrow_it, KleeneOutcome, Lattice,
    WidenLattice,
};
use crate::monad::{MonadFamily, Value};
use crate::telemetry::{RoundTrace, Stopwatch, TraceSink};

/// The paper's `Collecting` class: an analysis domain `Self` (`fp`) that
/// knows how to inject an initial program state and how to push every state
/// it contains through a monadic step function.
pub trait Collecting<M: MonadFamily, A: Value>: Lattice {
    /// Wraps an initial (partial) state into the analysis domain
    /// (the paper's `inject`).
    fn inject(a: A) -> Self;

    /// Runs the monadic step function from every state in the domain and
    /// collects the results (the paper's `applyStep`).
    fn apply_step<F>(step: &F, fp: &Self) -> Self
    where
        F: Fn(A) -> M::M<A>;
}

/// Computes the collecting semantics as the least fixed point
/// `lfp (λX. inject(c) ⊔ applyStep(step, X))` by Kleene iteration
/// (the paper's `exploreFP`).
pub fn explore_fp<M, A, Fp, F>(step: F, initial: A) -> Fp
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
{
    kleene_it(|fp: &Fp| Fp::inject(initial.clone()).join(Fp::apply_step(&step, fp)))
}

/// [`explore_fp`] with a [`TraceSink`]: the same Kleene iteration, with
/// one [`RoundTrace`] per pass recording how many states the pass
/// re-stepped (for Kleene iteration the frontier *is* every accumulated
/// state) and the pass's wall-clock split into the `applyStep` evaluation
/// (`step_ns`) and the iterate join (`join_ns`).
///
/// Computes exactly the fixpoint [`explore_fp`] computes; the step
/// counter is a `Cell` bump per transition, only present on this traced
/// entry point, so the untraced driver is untouched.
pub fn explore_fp_traced<M, A, Fp, F, T>(step: F, initial: A, sink: &mut T) -> Fp
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
    T: TraceSink,
{
    let stepped = std::cell::Cell::new(0usize);
    let counted = |a: A| {
        stepped.set(stepped.get() + 1);
        step(a)
    };
    let armed = sink.enabled();
    let mut current = Fp::bottom();
    let mut round = 0usize;
    loop {
        round += 1;
        stepped.set(0);
        let mut watch = Stopwatch::start(armed);
        let next = Fp::inject(initial.clone()).join(Fp::apply_step(&counted, &current));
        let step_ns = watch.lap_ns();
        let grew = current.join_in_place(next);
        sink.round(RoundTrace {
            round,
            frontier: stepped.get(),
            stepped: stepped.get(),
            joins: 1,
            delta_width: 0,
            rebuild: false,
            step_ns,
            join_ns: watch.lap_ns(),
            sync_ns: 0,
        });
        if !grew {
            return current;
        }
    }
}

/// Governed [`explore_fp`]: the same Kleene iteration, consulting
/// `budget` before every pass.  Rounds are Kleene passes; steps are
/// individual state transitions (counted through the step function, the
/// same `Cell` bump [`explore_fp_traced`] uses).  Returns the outcome
/// and the number of passes performed.
///
/// An `Exhausted` outcome's resume seed is the accumulated iterate;
/// [`explore_fp_resume`] continues the ascent from it and reaches the
/// identical least fixed point a one-shot run reaches.
pub fn explore_fp_governed<M, A, Fp, F>(
    step: F,
    initial: A,
    budget: &Budget,
) -> (Outcome<Fp, Fp>, usize)
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
{
    explore_fp_resume(step, initial, Fp::bottom(), budget)
}

/// Continues a governed exploration from a previously-returned resume
/// seed (or any sound under-approximation of the fixpoint).
pub fn explore_fp_resume<M, A, Fp, F>(
    step: F,
    initial: A,
    seed: Fp,
    budget: &Budget,
) -> (Outcome<Fp, Fp>, usize)
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
{
    let steps = std::cell::Cell::new(0usize);
    let counted = |a: A| {
        steps.set(steps.get() + 1);
        step(a)
    };
    let mut current = seed;
    let mut rounds = 0usize;
    loop {
        if let Some(reason) = budget.exhausted(rounds, steps.get()) {
            let resume_seed = Box::new(current.clone());
            return (
                Outcome::Exhausted {
                    partial: current,
                    reason,
                    resume_seed,
                },
                rounds,
            );
        }
        let next = Fp::inject(initial.clone()).join(Fp::apply_step(&counted, &current));
        if !current.join_in_place(next) {
            return (Outcome::Complete(current), rounds);
        }
        rounds += 1;
    }
}

/// Like [`explore_fp`], but gives up after `max_iterations` Kleene steps.
///
/// Useful for analysis configurations whose domains have unbounded height
/// (for example the fresh-address concrete collecting semantics of §5.3 on
/// a non-terminating program).
pub fn explore_fp_bounded<M, A, Fp, F>(
    step: F,
    initial: A,
    max_iterations: usize,
) -> KleeneOutcome<Fp>
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
{
    kleene_it_bounded(
        |fp: &Fp| Fp::inject(initial.clone()).join(Fp::apply_step(&step, fp)),
        max_iterations,
    )
}

/// Widened [`explore_fp`]: the naive Kleene oracle for analysis domains of
/// **infinite height**, such as [`SharedStoreDomain`] over an
/// [`IntervalStore`](crate::store::IntervalStore) co-domain.
///
/// Ascends by plain join for `delay` rounds, then switches the
/// accumulation point to [`WidenLattice::widen_in_place`]
/// ([`kleene_it_widened`]) so the chain provably stabilises, and finally
/// walks precision back with up to `narrow_passes` descending rounds
/// ([`narrow_it`]).  This whole-domain widening is *coarser* than the
/// engines' per-address widening points — it widens every address from
/// round `delay` on — so its result is an upper bound of theirs, not a
/// byte-identity oracle; it is the reference for *termination* and
/// soundness, the differential role [`explore_fp`] plays on finite-height
/// domains.
pub fn explore_fp_widened<M, A, Fp, F>(
    step: F,
    initial: A,
    delay: usize,
    narrow_passes: usize,
) -> Fp
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A> + WidenLattice,
    F: Fn(A) -> M::M<A>,
{
    let functional = |fp: &Fp| Fp::inject(initial.clone()).join(Fp::apply_step(&step, fp));
    let post = kleene_it_widened(functional, delay);
    narrow_it(post, functional, narrow_passes)
}

/// The paper's `runAnalysis`, generalised over the injected state: runs the
/// analysis determined by the chosen monad `M`, semantic step function
/// `step` and analysis domain `Fp`.
///
/// The three degrees of freedom the paper lists at the end of §5.2 are the
/// three type parameters here: the monad `M`, the semantics behind `step`,
/// and the lattice/fixed-point pair `Fp`.
pub fn run_analysis<M, A, Fp, F>(step: F, initial: A) -> Fp
where
    M: MonadFamily,
    A: Value,
    Fp: Collecting<M, A>,
    F: Fn(A) -> M::M<A>,
{
    explore_fp::<M, A, Fp, F>(step, initial)
}

/// Wraps a step function so that every transition is followed by the
/// garbage-collection action of `strategy` (the paper's `STEP-GC` rule,
/// woven into `applyStep` in §6.4).
///
/// The returned closure can be passed to [`explore_fp`] / [`run_analysis`]
/// in place of the bare step function.
pub fn with_gc<M, Ps, F, G>(step: F, strategy: G) -> impl Fn(Ps) -> M::M<Ps>
where
    M: MonadFamily,
    Ps: Value,
    F: Fn(Ps) -> M::M<Ps>,
    G: GcStrategy<M, Ps>,
{
    move |ps: Ps| {
        let strategy = strategy.clone();
        M::bind(step(ps), move |stepped: Ps| {
            let keep = stepped.clone();
            M::bind(strategy.collect(&stepped), move |_| M::pure(keep.clone()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gc::NoGc;
    use crate::monad::{MonadPlus, VecM};
    use std::collections::BTreeSet;

    /// A miniature "analysis domain": just the set of reached numbers, with
    /// the list monad as the analysis monad (no store, no guts).
    #[derive(Debug, Clone, PartialEq, Eq, Default)]
    struct Reached(BTreeSet<u32>);

    impl Lattice for Reached {
        fn bottom() -> Self {
            Reached(BTreeSet::new())
        }

        fn join(mut self, other: Self) -> Self {
            self.0.extend(other.0);
            self
        }

        fn leq(&self, other: &Self) -> bool {
            self.0.is_subset(&other.0)
        }
    }

    impl Collecting<VecM, u32> for Reached {
        fn inject(a: u32) -> Self {
            Reached([a].into_iter().collect())
        }

        fn apply_step<F>(step: &F, fp: &Self) -> Self
        where
            F: Fn(u32) -> Vec<u32>,
        {
            Reached(fp.0.iter().flat_map(|n| step(*n)).collect())
        }
    }

    fn collatz_ish(n: u32) -> Vec<u32> {
        // A branching transition bounded to keep the domain finite.
        if n >= 20 {
            VecM::mzero()
        } else {
            VecM::mplus(VecM::pure(n + 3), VecM::pure(n + 5))
        }
    }

    #[test]
    fn explore_fp_reaches_the_closure() {
        let result: Reached = explore_fp::<VecM, u32, Reached, _>(collatz_ish, 0);
        assert!(result.0.contains(&0));
        assert!(result.0.contains(&3));
        assert!(result.0.contains(&5));
        assert!(result.0.contains(&8));
        // Everything reached is generated by +3/+5 steps from 0 below the cap.
        assert!(result.0.iter().all(|n| *n <= 24));
        // And the result is a fixed point: stepping it again adds nothing new.
        let again = Reached::apply_step(&collatz_ish, &result).join(Reached::inject(0));
        assert!(again.leq(&result));
    }

    #[test]
    fn run_analysis_is_explore_fp() {
        let a: Reached = run_analysis::<VecM, u32, Reached, _>(collatz_ish, 0);
        let b: Reached = explore_fp::<VecM, u32, Reached, _>(collatz_ish, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn bounded_exploration_converges_on_finite_domains() {
        let out = explore_fp_bounded::<VecM, u32, Reached, _>(collatz_ish, 0, 100);
        assert!(out.converged());
    }

    #[test]
    fn bounded_exploration_detects_divergence() {
        let unbounded = |n: u32| VecM::pure(n + 1);
        let out = explore_fp_bounded::<VecM, u32, Reached, _>(unbounded, 0, 10);
        assert!(!out.converged());
    }

    #[test]
    fn governed_unlimited_matches_explore_fp() {
        let one_shot: Reached = explore_fp::<VecM, u32, Reached, _>(collatz_ish, 0);
        let (outcome, _) =
            explore_fp_governed::<VecM, u32, Reached, _>(collatz_ish, 0, &Budget::unlimited());
        assert_eq!(outcome.into_complete(), one_shot);
    }

    #[test]
    fn governed_exploration_resumes_to_one_shot_fixpoint() {
        let one_shot: Reached = explore_fp::<VecM, u32, Reached, _>(collatz_ish, 0);
        let budget = Budget::unlimited().with_max_rounds(2);
        let (outcome, rounds) =
            explore_fp_governed::<VecM, u32, Reached, _>(collatz_ish, 0, &budget);
        assert_eq!(rounds, 2);
        let Outcome::Exhausted { resume_seed, .. } = outcome else {
            panic!("two rounds cannot close the collatz-ish domain");
        };
        let (resumed, _) = explore_fp_resume::<VecM, u32, Reached, _>(
            collatz_ish,
            0,
            *resume_seed,
            &Budget::unlimited(),
        );
        assert_eq!(resumed.into_complete(), one_shot);
    }

    #[test]
    fn governed_step_budget_fires() {
        let unbounded = |n: u32| VecM::pure(n + 1);
        let budget = Budget::unlimited().with_max_steps(25);
        let (outcome, _) = explore_fp_governed::<VecM, u32, Reached, _>(unbounded, 0, &budget);
        assert_eq!(
            outcome.exhaust_reason(),
            Some(crate::engine::governor::ExhaustReason::StepBudget)
        );
    }

    #[test]
    fn with_gc_using_no_gc_changes_nothing() {
        let plain: Reached = explore_fp::<VecM, u32, Reached, _>(collatz_ish, 0);
        let wrapped: Reached =
            explore_fp::<VecM, u32, Reached, _>(with_gc::<VecM, u32, _, _>(collatz_ish, NoGc), 0);
        assert_eq!(plain, wrapped);
    }
}
