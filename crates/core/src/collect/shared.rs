//! The shared-store (single-threaded, widened) analysis domain
//! (paper §6.5 and §8.2).

use std::collections::BTreeSet;
use std::fmt::Debug;

use crate::addr::HasInitial;
use crate::lattice::{GaloisConnection, Lattice};
use crate::monad::{MonadFamily, StorePassing, Value};

use super::{Collecting, PerStateDomain};

/// The widened analysis domain `P((PΣ, g)) × s`: a set of partial states
/// (with their guts) sharing **one** global store.
///
/// This is Shivers' single-threaded store, obtained from the heap-cloning
/// domain through the Galois connection of the paper's equation (3):
///
/// ```text
/// ⟨P(Σ̂ₜ × Ŝtore), ⊆⟩ ⇄ ⟨P(Σ̂ₜ) × Ŝtore, ⊆⟩
/// ```
///
/// `α` joins all per-state stores into one; `γ` spreads the shared store
/// back over every state.  `apply_step` is literally
/// `alpha ∘ applyStep' ∘ gamma`, re-using the per-state domain's step — the
/// same definition the paper gives.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SharedStoreDomain<Ps: Ord, G: Ord, S> {
    states: BTreeSet<(Ps, G)>,
    store: S,
}

impl<Ps, G, S> SharedStoreDomain<Ps, G, S>
where
    Ps: Ord + Clone,
    G: Ord + Clone,
    S: Lattice,
{
    /// Creates a domain from parts.
    pub fn from_parts(states: BTreeSet<(Ps, G)>, store: S) -> Self {
        SharedStoreDomain { states, store }
    }

    /// The set of `(state, guts)` pairs explored so far.
    pub fn states(&self) -> &BTreeSet<(Ps, G)> {
        &self.states
    }

    /// The single widened store shared by every state.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// How many `(state, guts)` pairs have been explored.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether no state has been explored.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The set of distinct partial states, ignoring guts.
    pub fn distinct_states(&self) -> BTreeSet<Ps> {
        self.states.iter().map(|(ps, _)| ps.clone()).collect()
    }

    /// Adds one `(state, guts)` pair in place, reporting whether it was new.
    ///
    /// Together with [`Self::store_mut`] this is how the incremental engine
    /// maintains the running accumulated domain without rebuilding it.
    pub(crate) fn insert_state(&mut self, key: (Ps, G)) -> bool {
        self.states.insert(key)
    }

    /// Mutable access to the shared store, for the incremental engine's
    /// in-place widening (`join_in_place_delta`).  Crate-private: arbitrary
    /// mutation could shrink the store, which no lattice operation may do.
    pub(crate) fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }
}

impl<Ps, G, S> Debug for SharedStoreDomain<Ps, G, S>
where
    Ps: Ord + Debug,
    G: Ord + Debug,
    S: Debug,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedStoreDomain")
            .field("states", &self.states)
            .field("store", &self.store)
            .finish()
    }
}

impl<Ps, G, S> Default for SharedStoreDomain<Ps, G, S>
where
    Ps: Ord,
    G: Ord,
    S: Lattice,
{
    fn default() -> Self {
        SharedStoreDomain {
            states: BTreeSet::new(),
            store: S::bottom(),
        }
    }
}

impl<Ps, G, S> Lattice for SharedStoreDomain<Ps, G, S>
where
    Ps: Ord + Clone,
    G: Ord + Clone,
    S: Lattice,
{
    fn bottom() -> Self {
        Self::default()
    }

    fn join(mut self, other: Self) -> Self {
        self.states.extend(other.states);
        SharedStoreDomain {
            states: self.states,
            store: self.store.join(other.store),
        }
    }

    fn leq(&self, other: &Self) -> bool {
        self.states.is_subset(&other.states) && self.store.leq(&other.store)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.states.join_in_place(other.states) | self.store.join_in_place(other.store)
    }

    fn is_bottom(&self) -> bool {
        self.states.is_empty() && self.store.is_bottom()
    }
}

/// Widening lifts component-wise: the state set is a finite-height
/// power-set over any fixed program (join suffices), the store widens.
/// This is what lets the naive Kleene oracle
/// ([`explore_fp_widened`](crate::collect::explore_fp_widened)) terminate
/// on infinite-height co-domains and stay a differential reference for
/// the widened engines.
impl<Ps, G, S> crate::lattice::WidenLattice for SharedStoreDomain<Ps, G, S>
where
    Ps: Ord + Clone,
    G: Ord + Clone,
    S: crate::lattice::WidenLattice,
{
    fn widen_in_place(&mut self, other: Self) -> bool {
        self.states.join_in_place(other.states) | self.store.widen_in_place(other.store)
    }

    fn narrow_in_place(&mut self, other: Self) -> bool {
        self.store.narrow_in_place(other.store)
    }
}

/// The Galois connection of equation (3): `alpha` merges per-state stores,
/// `gamma` spreads the shared store over every state.
impl<Ps, G, S> GaloisConnection<PerStateDomain<Ps, G, S>> for SharedStoreDomain<Ps, G, S>
where
    Ps: Ord + Clone,
    G: Ord + Clone,
    S: Lattice + Ord,
{
    fn alpha(concrete: PerStateDomain<Ps, G, S>) -> Self {
        let mut states = BTreeSet::new();
        let mut store = S::bottom();
        for ((ps, g), s) in concrete.elements().iter().cloned() {
            states.insert((ps, g));
            store = store.join(s);
        }
        SharedStoreDomain { states, store }
    }

    fn gamma(&self) -> PerStateDomain<Ps, G, S> {
        PerStateDomain::from_elements(
            self.states
                .iter()
                .cloned()
                .map(|(ps, g)| ((ps, g), self.store.clone())),
        )
    }
}

impl<Ps, G, S> Collecting<StorePassing<G, S>, Ps> for SharedStoreDomain<Ps, G, S>
where
    Ps: Value + Ord,
    G: Value + Ord + HasInitial,
    S: Value + Ord + Lattice,
{
    fn inject(ps: Ps) -> Self {
        SharedStoreDomain {
            states: [(ps, G::initial())].into_iter().collect(),
            store: S::bottom(),
        }
    }

    fn apply_step<F>(step: &F, fp: &Self) -> Self
    where
        F: Fn(Ps) -> <StorePassing<G, S> as MonadFamily>::M<Ps>,
    {
        // applyStep = alpha ∘ applyStep' ∘ gamma   (paper §6.5 / §8.2)
        Self::alpha(PerStateDomain::apply_step(step, &fp.gamma()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monad::{MonadPlus, MonadState, MonadTrans, StateT, VecM};

    type G = u64;
    type S = BTreeSet<u32>;
    type M = StorePassing<G, S>;

    fn step(n: u32) -> <M as MonadFamily>::M<u32> {
        if n >= 4 {
            return M::pure(n);
        }
        let record = <M as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
            move |mut s: S| {
                s.insert(n);
                s
            },
        ));
        M::bind(record, move |_| M::mplus(M::pure(n + 1), M::pure(n + 2)))
    }

    #[test]
    fn alpha_gamma_form_a_galois_connection() {
        let per_state: PerStateDomain<u32, G, S> = PerStateDomain::from_elements([
            ((1, 0), [10u32].into_iter().collect()),
            ((2, 0), [20u32].into_iter().collect()),
        ]);
        let shared = SharedStoreDomain::alpha(per_state.clone());
        // α merges the stores…
        assert_eq!(shared.store(), &[10u32, 20].into_iter().collect());
        // …extensiveness holds with respect to the covering preorder (every
        // configuration is dominated by one carrying the widened store)…
        assert!(per_state.covered_by(&shared.gamma()));
        // …and α ∘ γ is reductive (here in fact the identity).
        assert!(SharedStoreDomain::alpha(shared.gamma()).leq(&shared));
    }

    #[test]
    fn gamma_spreads_the_store_over_all_states() {
        let shared: SharedStoreDomain<u32, G, S> = SharedStoreDomain::from_parts(
            [(1, 0), (2, 0)].into_iter().collect(),
            [7u32].into_iter().collect(),
        );
        let per_state = shared.gamma();
        assert_eq!(per_state.len(), 2);
        for (_, s) in per_state.iter() {
            assert_eq!(s.clone(), [7u32].into_iter().collect());
        }
    }

    #[test]
    fn widened_analysis_overapproximates_the_cloning_analysis() {
        let cloned: PerStateDomain<u32, G, S> = super::super::explore_fp::<M, u32, _, _>(step, 0);
        let shared: SharedStoreDomain<u32, G, S> =
            super::super::explore_fp::<M, u32, _, _>(step, 0);
        // Soundness of widening: α(lfp cloned) ⊑ lfp shared.
        assert!(SharedStoreDomain::alpha(cloned).leq(&shared));
        // And the widened result uses a single store containing every write.
        assert_eq!(shared.store(), &[0u32, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn widening_collapses_distinct_stores_into_one() {
        let cloned: PerStateDomain<u32, G, S> = super::super::explore_fp::<M, u32, _, _>(step, 0);
        let shared: SharedStoreDomain<u32, G, S> =
            super::super::explore_fp::<M, u32, _, _>(step, 0);
        let distinct_cloned_stores: BTreeSet<S> = cloned.iter().map(|(_, s)| s.clone()).collect();
        assert!(distinct_cloned_stores.len() > 1);
        // The widened domain carries exactly one store by construction, and
        // it is an upper bound of every per-state store.
        for s in distinct_cloned_stores {
            assert!(s.leq(shared.store()));
        }
    }

    #[test]
    fn join_in_place_agrees_with_join_and_tracks_change() {
        let a: SharedStoreDomain<u32, G, S> = SharedStoreDomain::from_parts(
            [(1, 0)].into_iter().collect(),
            [7u32].into_iter().collect(),
        );
        let b: SharedStoreDomain<u32, G, S> = SharedStoreDomain::from_parts(
            [(2, 0)].into_iter().collect(),
            [9u32].into_iter().collect(),
        );
        let mut acc = a.clone();
        assert!(acc.join_in_place(b.clone()));
        assert_eq!(acc, a.clone().join(b.clone()));
        // Re-joining something already absorbed reports no growth.
        assert!(!acc.join_in_place(b));
        assert!(!acc.join_in_place(a));
        assert!(SharedStoreDomain::<u32, G, S>::bottom().is_bottom());
        assert!(!acc.is_bottom());
    }

    #[test]
    fn lattice_and_default_are_consistent() {
        let bot = SharedStoreDomain::<u32, G, S>::bottom();
        assert!(bot.is_empty());
        assert!(bot.store().is_empty());
        let injected: SharedStoreDomain<u32, G, S> = Collecting::<M, u32>::inject(3);
        assert!(bot.leq(&injected));
        assert_eq!(injected.distinct_states(), [3u32].into_iter().collect());
        assert_eq!(injected.len(), 1);
    }
}
