//! Shared, copy-on-write finite maps for environments.
//!
//! Machine states carry environments (`Var ⇀ Addr`) inside closures,
//! continuation frames and the states themselves, and the monadic step
//! functions clone them constantly — every `bind` continuation captures its
//! environment by value, every successor state embeds one.  With a plain
//! `BTreeMap` each of those clones is a deep copy; profiling the shared
//! store engines shows environment cloning dominating state construction.
//!
//! [`CowMap`] keeps the `BTreeMap` API the language crates use but wraps
//! the map in an [`Arc`]: cloning is a reference-count bump, and the first
//! mutation through a shared handle copies the underlying map once
//! (`Arc::make_mut`).  Comparisons and equality keep their structural
//! semantics with a pointer-identity fast path — two handles to the same
//! allocation are equal without walking the map, which is the common case
//! once states are hash-consed ([`crate::intern`]).

use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::hash::fx_hash_of;

/// An `Arc`-backed copy-on-write map with `BTreeMap` semantics.
///
/// ```rust
/// use mai_core::env::CowMap;
///
/// let mut base: CowMap<&'static str, u32> = CowMap::new();
/// base.insert("x", 1);
/// let shared = base.clone();          // O(1): bumps a reference count
/// let mut extended = shared.clone();
/// extended.insert("y", 2);            // copies the map once, here
/// assert_eq!(base, shared);
/// assert_eq!(shared.get(&"y"), None);
/// assert_eq!(extended.get(&"y"), Some(&2));
/// ```
///
/// The map also carries a lazily **precomputed content hash**: hashing a
/// `CowMap` walks the bindings at most once per allocation and feeds the
/// cached 64-bit digest to the caller's hasher thereafter — which is what
/// makes hash-consing whole machine states ([`crate::intern`]) O(1) in the
/// environment once the environment has been hashed anywhere before.
pub struct CowMap<K: Ord, V>(Arc<CowInner<K, V>>);

struct CowInner<K: Ord, V> {
    map: BTreeMap<K, V>,
    /// The cached Fx content hash of `map`, computed on first use and
    /// cleared by every mutation.
    hash: OnceLock<u64>,
}

impl<K: Ord + Clone, V: Clone> Clone for CowInner<K, V> {
    fn clone(&self) -> Self {
        CowInner {
            map: self.map.clone(),
            // The clone has identical content, so the cached digest (if
            // any) remains valid; mutators clear it after `Arc::make_mut`.
            hash: self.hash.clone(),
        }
    }
}

impl<K: Ord, V> CowMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        CowMap(Arc::new(CowInner {
            map: BTreeMap::new(),
            hash: OnceLock::new(),
        }))
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.0.map.get(key)
    }

    /// Whether the key is bound.
    pub fn contains_key(&self, key: &K) -> bool {
        self.0.map.contains_key(key)
    }

    /// The number of bindings.
    pub fn len(&self) -> usize {
        self.0.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.0.map.is_empty()
    }

    /// Iterates over the bindings in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.0.map.iter()
    }

    /// Iterates over the keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.0.map.keys()
    }

    /// Iterates over the values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, K, V> {
        self.0.map.values()
    }

    /// Whether two handles share the same underlying allocation (an O(1)
    /// witness of structural equality; the converse need not hold).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<K: Ord + Clone, V: Clone> CowMap<K, V> {
    /// Inserts a binding, copying the underlying map first if this handle
    /// shares it with others.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let inner = Arc::make_mut(&mut self.0);
        inner.hash = OnceLock::new();
        inner.map.insert(key, value)
    }

    /// Removes a binding, copying the underlying map first if shared.
    /// Returns the removed value, if any; an absent key never copies.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if !self.0.map.contains_key(key) {
            return None;
        }
        let inner = Arc::make_mut(&mut self.0);
        inner.hash = OnceLock::new();
        inner.map.remove(key)
    }

    /// A new map extending `self` with one binding (`self` is unchanged).
    #[must_use]
    pub fn updated(&self, key: K, value: V) -> Self {
        let mut next = self.clone();
        next.insert(key, value);
        next
    }
}

impl<K: Ord, V> Default for CowMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> Clone for CowMap<K, V> {
    fn clone(&self) -> Self {
        CowMap(Arc::clone(&self.0))
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for CowMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.map.fmt(f)
    }
}

impl<K: Ord + PartialEq, V: PartialEq> PartialEq for CowMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0.map == other.0.map
    }
}

impl<K: Ord + Eq, V: Eq> Eq for CowMap<K, V> {}

impl<K: Ord, V: PartialOrd> PartialOrd for CowMap<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        if Arc::ptr_eq(&self.0, &other.0) {
            return Some(std::cmp::Ordering::Equal);
        }
        self.0.map.partial_cmp(&other.0.map)
    }
}

impl<K: Ord, V: Ord> Ord for CowMap<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.map.cmp(&other.0.map)
    }
}

impl<K: Ord + Hash, V: Hash> Hash for CowMap<K, V> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Compute the content digest once per allocation and replay it:
        // structurally equal maps produce the same digest, so this stays
        // consistent with the structural `PartialEq`.
        let digest = *self.0.hash.get_or_init(|| fx_hash_of(&self.0.map));
        state.write_u64(digest);
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for CowMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        CowMap(Arc::new(CowInner {
            map: iter.into_iter().collect(),
            hash: OnceLock::new(),
        }))
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a CowMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.map.iter()
    }
}

impl<K: Ord + Clone, V: Clone> Extend<(K, V)> for CowMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        let inner = Arc::make_mut(&mut self.0);
        inner.hash = OnceLock::new();
        inner.map.extend(iter);
    }
}

/// An `Arc`-backed copy-on-write set with `BTreeSet` semantics — the
/// value-set counterpart of [`CowMap`], used by the stores so that cloning
/// a store shares every per-address value set and diffing two stores
/// short-circuits on pointer identity for every set a step merely carried
/// along.
///
/// ```rust
/// use mai_core::env::CowSet;
/// use mai_core::lattice::Lattice;
///
/// let a: CowSet<u32> = [1, 2].into_iter().collect();
/// let b = a.clone();                    // O(1)
/// assert!(a.ptr_eq(&b));
/// let grown = a.clone().join([3].into_iter().collect());
/// assert!(a.leq(&grown) && !grown.leq(&a));
/// ```
pub struct CowSet<T: Ord>(Arc<std::collections::BTreeSet<T>>);

impl<T: Ord> CowSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        CowSet(Arc::new(std::collections::BTreeSet::new()))
    }

    /// Whether the element is present.
    pub fn contains(&self, value: &T) -> bool {
        self.0.contains(value)
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the elements in order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, T> {
        self.0.iter()
    }

    /// A view of the underlying set.
    pub fn as_set(&self) -> &std::collections::BTreeSet<T> {
        &self.0
    }

    /// Whether two handles share the same underlying allocation (an O(1)
    /// witness of structural equality; the converse need not hold).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl<T: Ord + Clone> CowSet<T> {
    /// Inserts an element, copying the underlying set first if this handle
    /// shares it with others.  Returns whether the element was new; a
    /// present element never copies.
    pub fn insert(&mut self, value: T) -> bool {
        if self.0.contains(&value) {
            return false;
        }
        Arc::make_mut(&mut self.0).insert(value)
    }

    /// The underlying set, cloned (shared handles) or moved out (unique).
    pub fn into_set(self) -> std::collections::BTreeSet<T> {
        Arc::try_unwrap(self.0).unwrap_or_else(|shared| (*shared).clone())
    }
}

impl<T: Ord> Default for CowSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> Clone for CowSet<T> {
    fn clone(&self) -> Self {
        CowSet(Arc::clone(&self.0))
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for CowSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Ord> PartialEq for CowSet<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl<T: Ord> Eq for CowSet<T> {}

impl<T: Ord> PartialOrd for CowSet<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for CowSet<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl<T: Ord + Hash> Hash for CowSet<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl<T: Ord> FromIterator<T> for CowSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        CowSet(Arc::new(iter.into_iter().collect()))
    }
}

impl<'a, T: Ord> IntoIterator for &'a CowSet<T> {
    type Item = &'a T;
    type IntoIter = std::collections::btree_set::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl<T: Ord + Clone> crate::lattice::Lattice for CowSet<T> {
    fn bottom() -> Self {
        Self::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.join_in_place(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        // Shared allocations are equal, hence comparable, without a walk.
        Arc::ptr_eq(&self.0, &other.0) || self.0.is_subset(&other.0)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        if Arc::ptr_eq(&self.0, &other.0) {
            return false;
        }
        if self.0.is_empty() {
            // Adopt the other allocation wholesale; report growth iff it
            // was non-empty.
            let grew = !other.0.is_empty();
            self.0 = other.0;
            return grew;
        }
        let mut grew = false;
        for v in other.into_set() {
            grew |= self.insert(v);
        }
        grew
    }

    fn is_bottom(&self) -> bool {
        self.0.is_empty()
    }
}

// Power-sets over a program's finite value space: the default widening
// (join) terminates, so the finite-height defaults apply.
impl<T: Ord + Clone> crate::lattice::WidenLattice for CowSet<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::fx_hash_of;
    use crate::lattice::Lattice;

    #[test]
    fn clone_is_shared_until_mutated() {
        let mut a: CowMap<u8, u8> = CowMap::new();
        a.insert(1, 10);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let mut c = b.clone();
        c.insert(2, 20);
        assert!(!a.ptr_eq(&c));
        assert_eq!(a.len(), 1);
        assert_eq!(c.len(), 2);
        // The original handles still share.
        assert!(a.ptr_eq(&b));
    }

    #[test]
    fn equality_and_order_are_structural() {
        let a: CowMap<u8, u8> = [(1, 10), (2, 20)].into_iter().collect();
        let b: CowMap<u8, u8> = [(2, 20), (1, 10)].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Equal);
        let c: CowMap<u8, u8> = [(1, 10), (3, 30)].into_iter().collect();
        assert_ne!(a, c);
        assert_eq!(a.cmp(&c), std::cmp::Ordering::Less);
        // Hash agrees with structural equality.
        assert_eq!(fx_hash_of(&a), fx_hash_of(&b));
    }

    #[test]
    fn mutating_one_handle_never_disturbs_the_other() {
        let base: CowMap<&'static str, u32> = [("x", 1)].into_iter().collect();
        let mut ext = base.clone();
        ext.insert("y", 2);
        assert_eq!(base.get(&"y"), None);
        assert_eq!(ext.get(&"y"), Some(&2));
        assert_eq!(ext.updated("z", 3).len(), 3);
        assert_eq!(ext.len(), 2);
        let mut rm = ext.clone();
        assert_eq!(rm.remove(&"missing"), None);
        assert!(rm.ptr_eq(&ext), "removing an absent key must not copy");
        assert_eq!(rm.remove(&"x"), Some(1));
        assert_eq!(ext.get(&"x"), Some(&1));
    }

    #[test]
    fn cached_hash_is_invalidated_by_mutation() {
        let mut m: CowMap<u8, u8> = [(1, 10)].into_iter().collect();
        let h1 = fx_hash_of(&m);
        m.insert(2, 20);
        let h2 = fx_hash_of(&m);
        assert_ne!(h1, h2, "mutation must refresh the cached digest");
        // Equal maps built separately agree, shared or not.
        let rebuilt: CowMap<u8, u8> = [(2, 20), (1, 10)].into_iter().collect();
        assert_eq!(fx_hash_of(&m), fx_hash_of(&rebuilt));
        m.remove(&2);
        assert_eq!(
            fx_hash_of(&m),
            fx_hash_of(&[(1u8, 10u8)].into_iter().collect::<CowMap<_, _>>())
        );
        let mut ext = m.clone();
        ext.extend([(3, 30)]);
        assert_ne!(fx_hash_of(&ext), fx_hash_of(&m));
    }

    #[test]
    fn cow_set_shares_and_joins_like_a_power_set() {
        let a: CowSet<u8> = [1, 2].into_iter().collect();
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a, b);
        assert!(a.leq(&b));
        // Join with sharing short-circuit reports no growth.
        let mut acc = a.clone();
        assert!(!acc.join_in_place(b.clone()));
        // Genuine growth copies once and reports it.
        assert!(acc.join_in_place([3].into_iter().collect()));
        assert!(!a.contains(&3) && acc.contains(&3));
        assert_eq!(acc.len(), 3);
        assert_eq!(a.clone().join([3].into_iter().collect()), acc);
        // Bottom adoption: joining into an empty set adopts the allocation.
        let mut bot: CowSet<u8> = CowSet::bottom();
        assert!(bot.is_bottom());
        assert!(bot.join_in_place(a.clone()));
        assert!(bot.ptr_eq(&a));
        // Structural semantics everywhere.
        let rebuilt: CowSet<u8> = [2, 1].into_iter().collect();
        assert_eq!(a, rebuilt);
        assert_eq!(a.cmp(&rebuilt), std::cmp::Ordering::Equal);
        assert_eq!(fx_hash_of(&a), fx_hash_of(&rebuilt));
        assert_eq!(a.iter().copied().collect::<Vec<u8>>(), vec![1, 2]);
        assert_eq!((&a).into_iter().count(), 2);
        assert_eq!(a.as_set().len(), 2);
        assert_eq!(rebuilt.into_set(), [1u8, 2].into_iter().collect());
    }

    #[test]
    fn iteration_is_in_key_order() {
        let m: CowMap<u8, u8> = [(3, 30), (1, 10), (2, 20)].into_iter().collect();
        let keys: Vec<u8> = m.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 3]);
        let pairs: Vec<(u8, u8)> = (&m).into_iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(m.values().copied().sum::<u8>(), 60);
        assert!(m.contains_key(&1) && !m.contains_key(&9));
        assert!(!m.is_empty());
        assert!(CowMap::<u8, u8>::default().is_empty());
    }
}
