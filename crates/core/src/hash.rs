//! Fast, deterministic hashing for the id-indexed engine layer.
//!
//! The interning layer ([`crate::intern`]) and the id-indexed fixpoint
//! engines ([`crate::engine`]) key hash tables by machine states, addresses
//! and dense ids millions of times per run.  The standard library's default
//! SipHash is DoS-resistant but several times slower than necessary for
//! trusted, in-process keys, so this module provides the well-known
//! Fx multiply-rotate hash (the Firefox/rustc hasher) as a tiny, dependency
//! free [`std::hash::Hasher`], plus `HashMap`/`HashSet` aliases using it.
//!
//! The hash is deterministic across runs (no random seed), which also keeps
//! the experiment harness reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplier of the Fx hash (64-bit): `2^64 / φ`, the same constant
/// rustc and Firefox use.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// How far each ingested word is rotated before being mixed in.
const ROTATE: u32 = 5;

/// The Fx hasher: `hash = (hash.rotate_left(5) ^ word) * SEED` per word.
///
/// Not cryptographic and not DoS-resistant — use only for trusted,
/// in-process keys (which is all the analysis engines ever hash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A [`std::hash::BuildHasher`] producing [`FxHasher`]s (zero state, so
/// hashes are identical across tables and across runs).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hashes one value with the Fx hash — the precomputed-hash primitive the
/// interner stores alongside each id.
pub fn fx_hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_hash_equal_and_deterministically() {
        assert_eq!(fx_hash_of(&42u64), fx_hash_of(&42u64));
        assert_eq!(fx_hash_of("abc"), fx_hash_of("abc"));
        // Deterministic across hasher instances (no random seed).
        let a = fx_hash_of(&("state", 7u32));
        let b = fx_hash_of(&("state", 7u32));
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_values_hash_differently() {
        // Not a statistical test — just a sanity check that the mixer is
        // not the identity on small inputs.
        assert_ne!(fx_hash_of(&1u64), fx_hash_of(&2u64));
        assert_ne!(fx_hash_of("ab"), fx_hash_of("ba"));
    }

    #[test]
    fn fx_maps_behave_like_maps() {
        let mut m: FxHashMap<String, u32> = FxHashMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(3));
        assert!(!s.insert(3));
    }

    #[test]
    fn unaligned_byte_tails_are_hashed() {
        // 9 bytes: one full chunk plus a 1-byte tail; the tail must matter.
        assert_ne!(fx_hash_of(&b"12345678a"[..]), fx_hash_of(&b"12345678b"[..]));
    }
}
