//! Hash-consed interning: dense integer ids for structurally-equal values.
//!
//! The polyvariant machines treat abstract states as first-class map keys,
//! so every `BTreeMap<(Ps, G), …>` lookup in the fixpoint engines used to
//! pay a deep structural `Ord` walk over the whole state — environment,
//! continuation, context — and every frontier round deep-cloned states
//! wholesale.  *Abstracting Definitional Interpreters* leans on sharing of
//! configurations for exactly this reason: once each distinct state is
//! mapped to a dense id, clone and equality become O(1) and every engine
//! table (step cache, reverse dependency index, seen-set, frontier) becomes
//! a flat `Vec` indexed by the id.
//!
//! [`Interner<T, I>`] is that map: a per-run hash-consing table from values
//! to dense ids, keyed by precomputed [Fx hashes](crate::hash) so a value is
//! deeply hashed exactly once (on intern) and deeply compared only against
//! the rare same-hash candidates.  [`StateId`] and [`EnvId`] are the two id
//! currencies of the framework — machine states (paired with their guts)
//! and environments — kept as distinct newtypes so they cannot be mixed up.
//!
//! Interning is *per run*: an id is meaningful only relative to the
//! interner that produced it, and the engines un-intern (resolve) back to
//! structural values only at the language boundary.
//!
//! Two interners are provided.  [`Interner`] is the single-threaded table
//! the sequential engines use.  [`ShardedInterner`] is its thread-safe
//! counterpart for the sharded parallel engine
//! ([`crate::engine::parallel`]): the table is split into
//! [`STRIPES`] lock stripes selected by the value's precomputed Fx hash,
//! so workers interning unrelated states almost never contend, and the
//! hit/miss accounting lives in atomics.  Ids are minted *per stripe*
//! (`id = local_index · STRIPES + stripe`), which keeps allocation
//! lock-free across stripes while still yielding a dense-enough id space
//! for flat `Vec` engine tables — and, crucially, makes the *set* of ids
//! minted for a given set of distinct values deterministic (each value's
//! stripe is a pure function of its hash), even though the id⇄value
//! assignment within a stripe depends on thread interleaving.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::hash::{fx_hash_of, FxHashMap};

/// A dense integer id handed out by an [`Interner`].
///
/// Implementations are trivial `u32` newtypes; the trait exists so the
/// interner (and the engines built on it) can be generic over the id
/// currency while keeping [`StateId`] and [`EnvId`] unmixable.
pub trait InternKey: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Wraps a dense index as an id.
    fn from_index(index: usize) -> Self;

    /// The dense index of this id (always `< interner.len()`).
    fn index(self) -> usize;
}

macro_rules! intern_key {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl InternKey for $name {
            #[inline]
            fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

intern_key! {
    /// The id of an interned `(state, guts)` pair — the engines' currency.
    StateId, "σ"
}

intern_key! {
    /// The id of an interned environment.
    EnvId, "ρ"
}

/// A per-run hash-consing table: every distinct value is assigned a dense
/// id on first sight and the same id forever after.
///
/// The table stores each value exactly once (in insertion order) and keys
/// the lookup by the value's precomputed [Fx hash](crate::hash::fx_hash_of),
/// so interning an already-seen value costs one hash walk plus (usually) one
/// deep equality check, and everything downstream can work with O(1)
/// id copies and comparisons instead.
///
/// ```rust
/// use mai_core::intern::{Interner, StateId};
///
/// let mut interner: Interner<String, StateId> = Interner::new();
/// let a = interner.intern("state".to_string());
/// let b = interner.intern("state".to_string());
/// let c = interner.intern("other".to_string());
/// assert_eq!(a, b);           // ids agree with structural equality
/// assert_ne!(a, c);
/// assert_eq!(interner.resolve(a), "state");
/// assert_eq!(interner.len(), 2);
/// assert_eq!((interner.hits(), interner.misses()), (1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T, I: InternKey = StateId> {
    /// Precomputed hash → candidate ids (almost always a single candidate).
    buckets: FxHashMap<u64, Vec<I>>,
    /// The interned values, indexed by id (insertion order).
    values: Vec<T>,
    hits: usize,
}

impl<T, I: InternKey> Default for Interner<T, I> {
    fn default() -> Self {
        Interner {
            buckets: FxHashMap::default(),
            values: Vec::new(),
            hits: 0,
        }
    }
}

impl<T: std::hash::Hash + Eq, I: InternKey> Interner<T, I> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its dense id: the existing id if a
    /// structurally-equal value was interned before, a fresh one otherwise.
    pub fn intern(&mut self, value: T) -> I {
        let hash = fx_hash_of(&value);
        let candidates = self.buckets.entry(hash).or_default();
        for &id in candidates.iter() {
            if self.values[id.index()] == value {
                self.hits += 1;
                return id;
            }
        }
        let id = I::from_index(self.values.len());
        candidates.push(id);
        self.values.push(value);
        id
    }

    /// The id of an already-interned value, if any (no stats, no insert).
    pub fn get(&self, value: &T) -> Option<I> {
        let candidates = self.buckets.get(&fx_hash_of(value))?;
        candidates
            .iter()
            .copied()
            .find(|id| &self.values[id.index()] == value)
    }

    /// Un-interns an id back to the value it stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: I) -> &T {
        &self.values[id.index()]
    }

    /// How many distinct values have been interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned values in id (insertion) order; `values()[id.index()]`
    /// is `resolve(id)`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// How many [`Interner::intern`] calls found an existing id.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many [`Interner::intern`] calls allocated a fresh id — by
    /// construction, one per distinct value, so this is [`Interner::len`].
    pub fn misses(&self) -> usize {
        self.values.len()
    }
}

/// How many lock stripes a [`ShardedInterner`] uses (a power of two, so
/// stripe selection is a mask).  16 stripes keep contention negligible at
/// the 4–8 worker threads the parallel engine targets while bounding the
/// id-space slack of per-stripe minting.
pub const STRIPES: usize = 16;

/// One lock stripe of a [`ShardedInterner`]: a miniature [`Interner`] over
/// the values whose hash lands on this stripe, minting *local* indices.
struct Stripe<T, I> {
    /// Precomputed hash → candidate ids (almost always a single candidate).
    buckets: FxHashMap<u64, Vec<I>>,
    /// The interned values, indexed by **local** index (insertion order
    /// within this stripe).
    values: Vec<T>,
}

impl<T, I> Default for Stripe<T, I> {
    fn default() -> Self {
        Stripe {
            buckets: FxHashMap::default(),
            values: Vec::new(),
        }
    }
}

/// The thread-safe, lock-striped hash-consing table of the parallel engine.
///
/// Functionally equivalent to [`Interner`] — every distinct value gets one
/// id, ids agree with structural equality — but safely shareable across
/// worker threads: interning takes one stripe mutex (selected by the
/// value's Fx hash, so distinct states spread across [`STRIPES`] locks) and
/// the hit/miss counters are relaxed atomics.
///
/// The id encoding is `local_index * STRIPES + stripe`: dense within each
/// stripe, globally unique, and bounded by [`ShardedInterner::id_bound`]
/// (at most `STRIPES - 1` unused slots per occupied local level), so flat
/// `Vec` engine tables indexed by [`InternKey::index`] stay practical.
///
/// ```rust
/// use mai_core::intern::{ShardedInterner, StateId};
///
/// let interner: ShardedInterner<String, StateId> = ShardedInterner::new();
/// let a = interner.intern("state".to_string());
/// let b = interner.intern("state".to_string());
/// let c = interner.intern("other".to_string());
/// assert_eq!(a, b);           // ids agree with structural equality
/// assert_ne!(a, c);
/// assert_eq!(interner.resolve_cloned(a), "state");
/// assert_eq!(interner.len(), 2);
/// assert_eq!((interner.hits(), interner.misses()), (1, 2));
/// ```
pub struct ShardedInterner<T, I: InternKey = StateId> {
    stripes: Vec<Mutex<Stripe<T, I>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl<T, I: InternKey> Default for ShardedInterner<T, I> {
    fn default() -> Self {
        ShardedInterner {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }
}

impl<T: std::hash::Hash + Eq, I: InternKey> ShardedInterner<T, I> {
    /// Creates an empty sharded interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe a hash selects (the Fx-hash striping of the lock table).
    #[inline]
    fn stripe_of(hash: u64) -> usize {
        (hash as usize) & (STRIPES - 1)
    }

    /// Interns a value, returning its dense id: the existing id if a
    /// structurally-equal value was interned before (by any thread), a
    /// fresh one otherwise.  Takes exactly one stripe lock.
    pub fn intern(&self, value: T) -> I {
        let hash = fx_hash_of(&value);
        let stripe_index = Self::stripe_of(hash);
        let mut stripe = self.stripes[stripe_index].lock().expect("stripe poisoned");
        let Stripe { buckets, values } = &mut *stripe;
        let candidates = buckets.entry(hash).or_default();
        for &id in candidates.iter() {
            if values[id.index() / STRIPES] == value {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return id;
            }
        }
        let id = I::from_index(values.len() * STRIPES + stripe_index);
        candidates.push(id);
        values.push(value);
        self.misses.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// Un-interns an id back to (a clone of) the value it stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve_cloned(&self, id: I) -> T
    where
        T: Clone,
    {
        let stripe = self.stripes[id.index() % STRIPES]
            .lock()
            .expect("stripe poisoned");
        stripe.values[id.index() / STRIPES].clone()
    }

    /// How many distinct values have been interned (across all stripes).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").values.len())
            .sum()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An exclusive upper bound on every id handed out so far — the size a
    /// flat `Vec` table indexed by [`InternKey::index`] must have.  At most
    /// `STRIPES - 1` of the covered slots are unoccupied per level of
    /// stripe imbalance.
    pub fn id_bound(&self) -> usize {
        self.stripes
            .iter()
            .enumerate()
            .map(|(stripe_index, s)| {
                let len = s.lock().expect("stripe poisoned").values.len();
                if len == 0 {
                    0
                } else {
                    (len - 1) * STRIPES + stripe_index + 1
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// The per-stripe value counts — a *watermark* the parallel engine
    /// snapshots at the start of a round; ids minted later are exactly
    /// those reported by [`ShardedInterner::fresh_since`] for it.
    pub fn watermarks(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").values.len())
            .collect()
    }

    /// Every id minted since the watermark was taken, in ascending id
    /// order.  The *set* is deterministic for a deterministic round (which
    /// values exist is a pure function of the round's steps), even though
    /// which thread minted each id is not.
    pub fn fresh_since(&self, watermarks: &[usize]) -> Vec<I> {
        let mut fresh: Vec<I> = Vec::new();
        for (stripe_index, s) in self.stripes.iter().enumerate() {
            let len = s.lock().expect("stripe poisoned").values.len();
            for local in watermarks[stripe_index]..len {
                fresh.push(I::from_index(local * STRIPES + stripe_index));
            }
        }
        fresh.sort_unstable();
        fresh
    }

    /// Every `(id, value)` interned so far, cloned out in ascending id
    /// order — the language-boundary un-intern of the parallel engine.
    pub fn entries_cloned(&self) -> Vec<(I, T)>
    where
        T: Clone,
    {
        let mut out: Vec<(I, T)> = Vec::new();
        for (stripe_index, s) in self.stripes.iter().enumerate() {
            let stripe = s.lock().expect("stripe poisoned");
            for (local, value) in stripe.values.iter().enumerate() {
                out.push((I::from_index(local * STRIPES + stripe_index), value.clone()));
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// How many [`ShardedInterner::intern`] calls found an existing id.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many [`ShardedInterner::intern`] calls allocated a fresh id —
    /// one per distinct value, so this equals [`ShardedInterner::len`].
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Counts the distinct values of an iterator by interning them — the shared
/// implementation behind the language crates' `distinct_env_count` helpers
/// (the language-boundary half of the engine's intern statistics).
pub fn distinct_count<T: std::hash::Hash + Eq, I: IntoIterator<Item = T>>(items: I) -> usize {
    let mut interner: Interner<T, EnvId> = Interner::new();
    for item in items {
        interner.intern(item);
    }
    interner.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i: Interner<u64, StateId> = Interner::new();
        let ids: Vec<StateId> = (0..100).map(|n| i.intern(n % 10)).collect();
        assert_eq!(i.len(), 10);
        assert_eq!(i.misses(), 10);
        assert_eq!(i.hits(), 90);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(*i.resolve(*id), (n % 10) as u64);
            assert!(id.index() < i.len());
        }
        // Values are stored in first-sight order.
        assert_eq!(i.values(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i: Interner<&'static str, EnvId> = Interner::new();
        assert_eq!(i.get(&"x"), None);
        let id = i.intern("x");
        assert_eq!(i.get(&"x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn state_and_env_ids_display_distinctly() {
        assert_eq!(StateId::from_index(3).to_string(), "σ3");
        assert_eq!(EnvId::from_index(3).to_string(), "ρ3");
    }

    #[test]
    fn sharded_interner_agrees_with_sequential_semantics() {
        let sharded: ShardedInterner<(u16, u16), StateId> = ShardedInterner::new();
        let values: Vec<(u16, u16)> = (0..200).map(|n| (n % 40, n % 7)).collect();
        let ids: Vec<StateId> = values.iter().map(|v| sharded.intern(*v)).collect();
        // Ids agree with structural equality and resolution round-trips.
        for (a, ia) in values.iter().zip(ids.iter()) {
            for (b, ib) in values.iter().zip(ids.iter()) {
                assert_eq!(a == b, ia == ib);
            }
            assert_eq!(sharded.resolve_cloned(*ia), *a);
        }
        // Accounting: one miss per distinct value, the rest hits.
        let distinct: std::collections::BTreeSet<_> = values.iter().collect();
        assert_eq!(sharded.len(), distinct.len());
        assert_eq!(sharded.misses(), distinct.len());
        assert_eq!(sharded.hits() + sharded.misses(), values.len());
        // Every id is inside the declared bound and the bound is tight
        // enough for flat tables (≤ STRIPES - 1 slack per stripe level).
        let bound = sharded.id_bound();
        for id in &ids {
            assert!(id.index() < bound);
        }
        assert!(bound <= sharded.len() * STRIPES);
        // entries_cloned un-interns everything, in ascending id order.
        let entries = sharded.entries_cloned();
        assert_eq!(entries.len(), distinct.len());
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sharded_interner_watermarks_report_fresh_ids() {
        let sharded: ShardedInterner<u32, StateId> = ShardedInterner::new();
        let a = sharded.intern(1);
        let b = sharded.intern(2);
        let marks = sharded.watermarks();
        assert!(sharded.fresh_since(&marks).is_empty());
        let c = sharded.intern(3);
        let _again = sharded.intern(1); // hit: not fresh
        let fresh = sharded.fresh_since(&marks);
        assert_eq!(fresh, vec![c]);
        assert!(!fresh.contains(&a) && !fresh.contains(&b));
    }

    /// The loom-free lock-striping agreement test: several threads intern
    /// overlapping value ranges concurrently; afterwards the table must be
    /// indistinguishable from a sequential build — ids agree with
    /// structural equality, every value resolves, and misses equal the
    /// distinct count (no value was ever interned twice).
    #[test]
    fn sharded_interner_threads_agree_on_ids() {
        let sharded: ShardedInterner<(u8, u8), StateId> = ShardedInterner::new();
        let threads = 4;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move || {
                    // Overlapping ranges: every value is interned by at
                    // least two threads, racing on the same stripes.
                    for round in 0..3u8 {
                        for n in 0..128u8 {
                            let value = ((n + t) % 128, round % 2);
                            let id = sharded.intern(value);
                            assert_eq!(sharded.resolve_cloned(id), value);
                            // A second intern from this thread must agree.
                            assert_eq!(sharded.intern(value), id);
                        }
                    }
                });
            }
        });
        // 128 × 2 distinct values, interned exactly once each.
        assert_eq!(sharded.len(), 256);
        assert_eq!(sharded.misses(), 256);
        assert_eq!(
            sharded.hits() + sharded.misses(),
            threads as usize * 3 * 128 * 2
        );
        // Post-hoc sequential interning returns the established ids.
        let mut seen = std::collections::BTreeSet::new();
        for (id, value) in sharded.entries_cloned() {
            assert_eq!(sharded.intern(value), id);
            assert!(seen.insert(id), "duplicate id {id:?}");
        }
    }

    proptest! {
        /// The hash-consing law: ids agree with structural equality.
        #[test]
        fn prop_ids_agree_with_structural_equality(
            values in proptest::collection::vec((0u8..16, 0u8..16), 0..64)
        ) {
            let mut interner: Interner<(u8, u8), StateId> = Interner::new();
            let ids: Vec<StateId> =
                values.iter().map(|v| interner.intern(*v)).collect();
            for (a, ia) in values.iter().zip(ids.iter()) {
                for (b, ib) in values.iter().zip(ids.iter()) {
                    prop_assert_eq!(a == b, ia == ib);
                }
            }
            // Resolution round-trips.
            for (v, id) in values.iter().zip(ids.iter()) {
                prop_assert_eq!(interner.resolve(*id), v);
            }
            // Accounting: every intern is a hit or a miss, misses == len.
            prop_assert_eq!(interner.hits() + interner.misses(), values.len());
            prop_assert_eq!(interner.misses(), interner.len());
        }
    }
}
