//! Hash-consed interning: dense integer ids for structurally-equal values.
//!
//! The polyvariant machines treat abstract states as first-class map keys,
//! so every `BTreeMap<(Ps, G), …>` lookup in the fixpoint engines used to
//! pay a deep structural `Ord` walk over the whole state — environment,
//! continuation, context — and every frontier round deep-cloned states
//! wholesale.  *Abstracting Definitional Interpreters* leans on sharing of
//! configurations for exactly this reason: once each distinct state is
//! mapped to a dense id, clone and equality become O(1) and every engine
//! table (step cache, reverse dependency index, seen-set, frontier) becomes
//! a flat `Vec` indexed by the id.
//!
//! [`Interner<T, I>`] is that map: a per-run hash-consing table from values
//! to dense ids, keyed by precomputed [Fx hashes](crate::hash) so a value is
//! deeply hashed exactly once (on intern) and deeply compared only against
//! the rare same-hash candidates.  [`StateId`] and [`EnvId`] are the two id
//! currencies of the framework — machine states (paired with their guts)
//! and environments — kept as distinct newtypes so they cannot be mixed up.
//!
//! Interning is *per run*: an id is meaningful only relative to the
//! interner that produced it, and the engines un-intern (resolve) back to
//! structural values only at the language boundary.
//!
//! Two interners are provided.  [`Interner`] is the single-threaded table
//! the sequential engines use.  [`ShardedInterner`] is its thread-safe
//! counterpart for the sharded parallel engine
//! ([`crate::engine::parallel`]): the table is split into
//! [`STRIPES`] lock stripes selected by the value's precomputed Fx hash,
//! so workers interning unrelated states almost never contend, and the
//! hit/miss accounting lives in atomics.  Ids are minted *per stripe*
//! (`id = local_index · STRIPES + stripe`), which keeps allocation
//! lock-free across stripes while still yielding a dense-enough id space
//! for flat `Vec` engine tables — and, crucially, makes the *set* of ids
//! minted for a given set of distinct values deterministic (each value's
//! stripe is a pure function of its hash), even though the id⇄value
//! assignment within a stripe depends on thread interleaving.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::hash::{fx_hash_of, FxHashMap};

/// A dense integer id handed out by an [`Interner`].
///
/// Implementations are trivial `u32` newtypes; the trait exists so the
/// interner (and the engines built on it) can be generic over the id
/// currency while keeping [`StateId`] and [`EnvId`] unmixable.
pub trait InternKey: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Wraps a dense index as an id.
    fn from_index(index: usize) -> Self;

    /// The dense index of this id (always `< interner.len()`).
    fn index(self) -> usize;
}

macro_rules! intern_key {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl InternKey for $name {
            #[inline]
            fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

intern_key! {
    /// The id of an interned `(state, guts)` pair — the engines' currency.
    StateId, "σ"
}

intern_key! {
    /// The id of an interned environment.
    EnvId, "ρ"
}

/// A per-run hash-consing table: every distinct value is assigned a dense
/// id on first sight and the same id forever after.
///
/// The table stores each value exactly once (in insertion order) and keys
/// the lookup by the value's precomputed [Fx hash](crate::hash::fx_hash_of),
/// so interning an already-seen value costs one hash walk plus (usually) one
/// deep equality check, and everything downstream can work with O(1)
/// id copies and comparisons instead.
///
/// ```rust
/// use mai_core::intern::{Interner, StateId};
///
/// let mut interner: Interner<String, StateId> = Interner::new();
/// let a = interner.intern("state".to_string());
/// let b = interner.intern("state".to_string());
/// let c = interner.intern("other".to_string());
/// assert_eq!(a, b);           // ids agree with structural equality
/// assert_ne!(a, c);
/// assert_eq!(interner.resolve(a), "state");
/// assert_eq!(interner.len(), 2);
/// assert_eq!((interner.hits(), interner.misses()), (1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T, I: InternKey = StateId> {
    /// Precomputed hash → candidate ids (almost always a single candidate).
    buckets: FxHashMap<u64, Vec<I>>,
    /// The interned values, indexed by id (insertion order).
    values: Vec<T>,
    hits: usize,
}

impl<T, I: InternKey> Default for Interner<T, I> {
    fn default() -> Self {
        Interner {
            buckets: FxHashMap::default(),
            values: Vec::new(),
            hits: 0,
        }
    }
}

impl<T: std::hash::Hash + Eq, I: InternKey> Interner<T, I> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its dense id: the existing id if a
    /// structurally-equal value was interned before, a fresh one otherwise.
    pub fn intern(&mut self, value: T) -> I {
        let hash = fx_hash_of(&value);
        let candidates = self.buckets.entry(hash).or_default();
        for &id in candidates.iter() {
            if self.values[id.index()] == value {
                self.hits += 1;
                return id;
            }
        }
        let id = I::from_index(self.values.len());
        candidates.push(id);
        self.values.push(value);
        id
    }

    /// The id of an already-interned value, if any (no stats, no insert).
    pub fn get(&self, value: &T) -> Option<I> {
        let candidates = self.buckets.get(&fx_hash_of(value))?;
        candidates
            .iter()
            .copied()
            .find(|id| &self.values[id.index()] == value)
    }

    /// Un-interns an id back to the value it stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: I) -> &T {
        &self.values[id.index()]
    }

    /// How many distinct values have been interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned values in id (insertion) order; `values()[id.index()]`
    /// is `resolve(id)`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// How many [`Interner::intern`] calls found an existing id.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many [`Interner::intern`] calls allocated a fresh id — by
    /// construction, one per distinct value, so this is [`Interner::len`].
    pub fn misses(&self) -> usize {
        self.values.len()
    }
}

/// How many lock stripes a [`ShardedInterner`] uses (a power of two, so
/// stripe selection is a mask).  16 stripes keep contention negligible at
/// the 4–8 worker threads the parallel engine targets while bounding the
/// id-space slack of per-stripe minting.
pub const STRIPES: usize = 16;

/// One lock stripe of a [`ShardedInterner`]: a miniature [`Interner`] over
/// the values whose hash lands on this stripe, minting *local* indices.
struct Stripe<T, I> {
    /// Precomputed hash → candidate ids (almost always a single candidate).
    buckets: FxHashMap<u64, Vec<I>>,
    /// The interned values, indexed by **local** index (insertion order
    /// within this stripe).
    values: Vec<T>,
}

impl<T, I> Default for Stripe<T, I> {
    fn default() -> Self {
        Stripe {
            buckets: FxHashMap::default(),
            values: Vec::new(),
        }
    }
}

/// The thread-safe, lock-striped hash-consing table of the parallel engine.
///
/// Functionally equivalent to [`Interner`] — every distinct value gets one
/// id, ids agree with structural equality — but safely shareable across
/// worker threads: interning takes one stripe mutex (selected by the
/// value's Fx hash, so distinct states spread across [`STRIPES`] locks) and
/// the hit/miss counters are relaxed atomics.
///
/// The id encoding is `local_index * STRIPES + stripe`: dense within each
/// stripe, globally unique, and bounded by [`ShardedInterner::id_bound`]
/// (at most `STRIPES - 1` unused slots per occupied local level), so flat
/// `Vec` engine tables indexed by [`InternKey::index`] stay practical.
///
/// ```rust
/// use mai_core::intern::{ShardedInterner, StateId};
///
/// let interner: ShardedInterner<String, StateId> = ShardedInterner::new();
/// let a = interner.intern("state".to_string());
/// let b = interner.intern("state".to_string());
/// let c = interner.intern("other".to_string());
/// assert_eq!(a, b);           // ids agree with structural equality
/// assert_ne!(a, c);
/// assert_eq!(interner.resolve_cloned(a), "state");
/// assert_eq!(interner.len(), 2);
/// assert_eq!((interner.hits(), interner.misses()), (1, 2));
/// ```
pub struct ShardedInterner<T, I: InternKey = StateId> {
    stripes: Vec<Mutex<Stripe<T, I>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// How many *hot-path* stripe locks ([`ShardedInterner::intern`] /
    /// [`ShardedInterner::resolve_cloned`]) have been taken — the
    /// contention gauge a per-worker memo is meant to drive down.
    /// Coordinator-side bulk scans (`watermarks`, `fresh_since`, …) run
    /// once per round and are deliberately not counted.
    acquisitions: AtomicUsize,
}

impl<T, I: InternKey> Default for ShardedInterner<T, I> {
    fn default() -> Self {
        ShardedInterner {
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            acquisitions: AtomicUsize::new(0),
        }
    }
}

impl<T: std::hash::Hash + Eq, I: InternKey> ShardedInterner<T, I> {
    /// Creates an empty sharded interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The stripe a hash selects (the Fx-hash striping of the lock table).
    #[inline]
    fn stripe_of(hash: u64) -> usize {
        (hash as usize) & (STRIPES - 1)
    }

    /// Interns a value, returning its dense id: the existing id if a
    /// structurally-equal value was interned before (by any thread), a
    /// fresh one otherwise.  Takes exactly one stripe lock.
    pub fn intern(&self, value: T) -> I {
        self.intern_fresh(value).0
    }

    /// Like [`ShardedInterner::intern`], but also reports whether *this
    /// call* minted the id (`true` exactly once per distinct value, for
    /// whichever thread won the race).  The elastic parallel engine uses
    /// the flag to route freshly-discovered states into the minting
    /// worker's own sub-frontier without a global fresh-scan per epoch.
    pub fn intern_fresh(&self, value: T) -> (I, bool) {
        let hash = fx_hash_of(&value);
        let stripe_index = Self::stripe_of(hash);
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        // A panicked worker poisons its stripe mid-`intern_fresh` only
        // between infallible Vec pushes, so the table stays consistent:
        // recover the guard instead of cascading the panic into every
        // other worker that shares the stripe.
        let mut stripe = self.stripes[stripe_index]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let Stripe { buckets, values } = &mut *stripe;
        let candidates = buckets.entry(hash).or_default();
        for &id in candidates.iter() {
            if values[id.index() / STRIPES] == value {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (id, false);
            }
        }
        let id = I::from_index(values.len() * STRIPES + stripe_index);
        candidates.push(id);
        values.push(value);
        self.misses.fetch_add(1, Ordering::Relaxed);
        (id, true)
    }

    /// Un-interns an id back to (a clone of) the value it stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve_cloned(&self, id: I) -> T
    where
        T: Clone,
    {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
        let stripe = self.stripes[id.index() % STRIPES]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        stripe.values[id.index() / STRIPES].clone()
    }

    /// How many distinct values have been interned (across all stripes).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values
                    .len()
            })
            .sum()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An exclusive upper bound on every id handed out so far — the size a
    /// flat `Vec` table indexed by [`InternKey::index`] must have.  At most
    /// `STRIPES - 1` of the covered slots are unoccupied per level of
    /// stripe imbalance.
    pub fn id_bound(&self) -> usize {
        self.stripes
            .iter()
            .enumerate()
            .map(|(stripe_index, s)| {
                let len = s
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values
                    .len();
                if len == 0 {
                    0
                } else {
                    (len - 1) * STRIPES + stripe_index + 1
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// The per-stripe value counts — a *watermark* the parallel engine
    /// snapshots at the start of a round; ids minted later are exactly
    /// those reported by [`ShardedInterner::fresh_since`] for it.
    pub fn watermarks(&self) -> Vec<usize> {
        self.stripes
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values
                    .len()
            })
            .collect()
    }

    /// Every id minted since the watermark was taken, in ascending id
    /// order.  The *set* is deterministic for a deterministic round (which
    /// values exist is a pure function of the round's steps), even though
    /// which thread minted each id is not.
    pub fn fresh_since(&self, watermarks: &[usize]) -> Vec<I> {
        let mut fresh: Vec<I> = Vec::new();
        for (stripe_index, s) in self.stripes.iter().enumerate() {
            let len = s
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .values
                .len();
            for local in watermarks[stripe_index]..len {
                fresh.push(I::from_index(local * STRIPES + stripe_index));
            }
        }
        fresh.sort_unstable();
        fresh
    }

    /// Every `(id, value)` interned so far, cloned out in ascending id
    /// order — the language-boundary un-intern of the parallel engine.
    pub fn entries_cloned(&self) -> Vec<(I, T)>
    where
        T: Clone,
    {
        let mut out: Vec<(I, T)> = Vec::new();
        for (stripe_index, s) in self.stripes.iter().enumerate() {
            let stripe = s.lock().unwrap_or_else(PoisonError::into_inner);
            for (local, value) in stripe.values.iter().enumerate() {
                out.push((I::from_index(local * STRIPES + stripe_index), value.clone()));
            }
        }
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// How many [`ShardedInterner::intern`] calls found an existing id.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// How many [`ShardedInterner::intern`] calls allocated a fresh id —
    /// one per distinct value, so this equals [`ShardedInterner::len`].
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// How many hot-path stripe locks have been taken so far (one per
    /// [`ShardedInterner::intern`] / [`ShardedInterner::resolve_cloned`]
    /// call) — the contention gauge [`WorkerInternCache`] exists to
    /// reduce.
    pub fn stripe_acquisitions(&self) -> usize {
        self.acquisitions.load(Ordering::Relaxed)
    }
}

/// A small per-worker id⇄value memo fronting a shared [`ShardedInterner`].
///
/// The parallel engines resolve and re-intern the same hot states round
/// after round, and every such call takes a stripe mutex on the shared
/// table.  A worker-private memo answers re-touched values without any
/// lock: one bounded Fx-hash table caches `id → value` (serving
/// [`WorkerInternCache::resolve_cloned`] directly and providing the deep
/// comparison for [`WorkerInternCache::intern_fresh`] candidates), and a
/// companion `hash → candidate ids` index makes the value→id direction a
/// hash probe.  On overflow the memo is simply cleared — it is a cache,
/// never the source of truth, so eviction cannot affect results.
///
/// Hits and misses are counted locally and merged into
/// [`EngineStats`](crate::engine::EngineStats) as
/// `worker_cache_hits`/`worker_cache_misses` by the elastic driver.
#[derive(Debug)]
pub struct WorkerInternCache<T, I: InternKey = StateId> {
    /// Precomputed hash → candidate ids (mirrors the interner's buckets).
    by_hash: FxHashMap<u64, Vec<I>>,
    /// id index → cached value (the single value store of the memo).
    by_id: FxHashMap<usize, T>,
    /// Clear-on-full bound on `by_id` (entries, not bytes).
    capacity: usize,
    hits: usize,
    misses: usize,
}

/// The default [`WorkerInternCache`] bound: generously above the hot-set
/// size of the committed workloads while keeping the worst-case memo
/// footprint (states can be large) moderate.
pub const WORKER_CACHE_CAPACITY: usize = 1 << 14;

impl<T: std::hash::Hash + Eq + Clone, I: InternKey> WorkerInternCache<T, I> {
    /// Creates an empty memo bounded at `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        WorkerInternCache {
            by_hash: FxHashMap::default(),
            by_id: FxHashMap::default(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Memoised [`ShardedInterner::intern`]: lock-free on a memo hit.
    pub fn intern(&mut self, interner: &ShardedInterner<T, I>, value: T) -> I {
        self.intern_fresh(interner, value).0
    }

    /// Memoised [`ShardedInterner::intern_fresh`]: lock-free on a memo
    /// hit (a memoised value is never fresh).
    pub fn intern_fresh(&mut self, interner: &ShardedInterner<T, I>, value: T) -> (I, bool) {
        let hash = fx_hash_of(&value);
        if let Some(candidates) = self.by_hash.get(&hash) {
            for &id in candidates {
                if self.by_id.get(&id.index()) == Some(&value) {
                    self.hits += 1;
                    return (id, false);
                }
            }
        }
        self.misses += 1;
        let (id, minted) = interner.intern_fresh(value.clone());
        self.insert(hash, id, value);
        (id, minted)
    }

    /// Memoised [`ShardedInterner::resolve_cloned`]: lock-free on a memo
    /// hit.
    pub fn resolve_cloned(&mut self, interner: &ShardedInterner<T, I>, id: I) -> T {
        if let Some(value) = self.by_id.get(&id.index()) {
            self.hits += 1;
            return value.clone();
        }
        self.misses += 1;
        let value = interner.resolve_cloned(id);
        self.insert(fx_hash_of(&value), id, value.clone());
        value
    }

    fn insert(&mut self, hash: u64, id: I, value: T) {
        if self.by_id.len() >= self.capacity {
            self.by_id.clear();
            self.by_hash.clear();
        }
        self.by_hash.entry(hash).or_default().push(id);
        self.by_id.insert(id.index(), value);
    }

    /// How many memo lookups (either direction) were answered locally.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many memo lookups fell through to the shared interner.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Drains the hit/miss counters (for per-phase stats merging),
    /// leaving the memo contents intact.
    pub fn take_counters(&mut self) -> (usize, usize) {
        (
            std::mem::take(&mut self.hits),
            std::mem::take(&mut self.misses),
        )
    }
}

/// Counts the distinct values of an iterator by interning them — the shared
/// implementation behind the language crates' `distinct_env_count` helpers
/// (the language-boundary half of the engine's intern statistics).
pub fn distinct_count<T: std::hash::Hash + Eq, I: IntoIterator<Item = T>>(items: I) -> usize {
    let mut interner: Interner<T, EnvId> = Interner::new();
    for item in items {
        interner.intern(item);
    }
    interner.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i: Interner<u64, StateId> = Interner::new();
        let ids: Vec<StateId> = (0..100).map(|n| i.intern(n % 10)).collect();
        assert_eq!(i.len(), 10);
        assert_eq!(i.misses(), 10);
        assert_eq!(i.hits(), 90);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(*i.resolve(*id), (n % 10) as u64);
            assert!(id.index() < i.len());
        }
        // Values are stored in first-sight order.
        assert_eq!(i.values(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i: Interner<&'static str, EnvId> = Interner::new();
        assert_eq!(i.get(&"x"), None);
        let id = i.intern("x");
        assert_eq!(i.get(&"x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn state_and_env_ids_display_distinctly() {
        assert_eq!(StateId::from_index(3).to_string(), "σ3");
        assert_eq!(EnvId::from_index(3).to_string(), "ρ3");
    }

    #[test]
    fn sharded_interner_agrees_with_sequential_semantics() {
        let sharded: ShardedInterner<(u16, u16), StateId> = ShardedInterner::new();
        let values: Vec<(u16, u16)> = (0..200).map(|n| (n % 40, n % 7)).collect();
        let ids: Vec<StateId> = values.iter().map(|v| sharded.intern(*v)).collect();
        // Ids agree with structural equality and resolution round-trips.
        for (a, ia) in values.iter().zip(ids.iter()) {
            for (b, ib) in values.iter().zip(ids.iter()) {
                assert_eq!(a == b, ia == ib);
            }
            assert_eq!(sharded.resolve_cloned(*ia), *a);
        }
        // Accounting: one miss per distinct value, the rest hits.
        let distinct: std::collections::BTreeSet<_> = values.iter().collect();
        assert_eq!(sharded.len(), distinct.len());
        assert_eq!(sharded.misses(), distinct.len());
        assert_eq!(sharded.hits() + sharded.misses(), values.len());
        // Every id is inside the declared bound and the bound is tight
        // enough for flat tables (≤ STRIPES - 1 slack per stripe level).
        let bound = sharded.id_bound();
        for id in &ids {
            assert!(id.index() < bound);
        }
        assert!(bound <= sharded.len() * STRIPES);
        // entries_cloned un-interns everything, in ascending id order.
        let entries = sharded.entries_cloned();
        assert_eq!(entries.len(), distinct.len());
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sharded_interner_watermarks_report_fresh_ids() {
        let sharded: ShardedInterner<u32, StateId> = ShardedInterner::new();
        let a = sharded.intern(1);
        let b = sharded.intern(2);
        let marks = sharded.watermarks();
        assert!(sharded.fresh_since(&marks).is_empty());
        let c = sharded.intern(3);
        let _again = sharded.intern(1); // hit: not fresh
        let fresh = sharded.fresh_since(&marks);
        assert_eq!(fresh, vec![c]);
        assert!(!fresh.contains(&a) && !fresh.contains(&b));
    }

    /// The loom-free lock-striping agreement test: several threads intern
    /// overlapping value ranges concurrently; afterwards the table must be
    /// indistinguishable from a sequential build — ids agree with
    /// structural equality, every value resolves, and misses equal the
    /// distinct count (no value was ever interned twice).
    #[test]
    fn sharded_interner_threads_agree_on_ids() {
        let sharded: ShardedInterner<(u8, u8), StateId> = ShardedInterner::new();
        let threads = 4;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let sharded = &sharded;
                scope.spawn(move || {
                    // Overlapping ranges: every value is interned by at
                    // least two threads, racing on the same stripes.
                    for round in 0..3u8 {
                        for n in 0..128u8 {
                            let value = ((n + t) % 128, round % 2);
                            let id = sharded.intern(value);
                            assert_eq!(sharded.resolve_cloned(id), value);
                            // A second intern from this thread must agree.
                            assert_eq!(sharded.intern(value), id);
                        }
                    }
                });
            }
        });
        // 128 × 2 distinct values, interned exactly once each.
        assert_eq!(sharded.len(), 256);
        assert_eq!(sharded.misses(), 256);
        assert_eq!(
            sharded.hits() + sharded.misses(),
            threads as usize * 3 * 128 * 2
        );
        // Post-hoc sequential interning returns the established ids.
        let mut seen = std::collections::BTreeSet::new();
        for (id, value) in sharded.entries_cloned() {
            assert_eq!(sharded.intern(value), id);
            assert!(seen.insert(id), "duplicate id {id:?}");
        }
    }

    #[test]
    fn intern_fresh_reports_minting_exactly_once() {
        let sharded: ShardedInterner<u32, StateId> = ShardedInterner::new();
        let (a, minted_a) = sharded.intern_fresh(7);
        let (b, minted_b) = sharded.intern_fresh(7);
        assert_eq!(a, b);
        assert!(minted_a);
        assert!(!minted_b);
        // The hot-path gauge counts both intern calls and resolves.
        let before = sharded.stripe_acquisitions();
        let _ = sharded.resolve_cloned(a);
        let _ = sharded.intern(7);
        assert_eq!(sharded.stripe_acquisitions(), before + 2);
    }

    #[test]
    fn worker_cache_agrees_with_interner_and_skips_stripe_locks() {
        let sharded: ShardedInterner<(u8, u8), StateId> = ShardedInterner::new();
        let mut memo: WorkerInternCache<(u8, u8), StateId> = WorkerInternCache::new(64);
        // 30 distinct pairs (lcm(30, 6) = 30), comfortably under the
        // 64-entry capacity so the memo never clears mid-test.
        let values: Vec<(u8, u8)> = (0..120u16)
            .map(|n| ((n % 30) as u8, (n % 6) as u8))
            .collect();
        let direct: Vec<StateId> = values.iter().map(|v| sharded.intern(*v)).collect();
        let locks_before = sharded.stripe_acquisitions();
        let memoed: Vec<StateId> = values.iter().map(|v| memo.intern(&sharded, *v)).collect();
        assert_eq!(direct, memoed);
        // Only the first sight of each distinct value fell through.
        let distinct: std::collections::BTreeSet<_> = values.iter().collect();
        assert_eq!(memo.misses(), distinct.len());
        assert_eq!(memo.hits(), values.len() - distinct.len());
        assert_eq!(sharded.stripe_acquisitions(), locks_before + distinct.len());
        // Resolution is served from the memo once cached.
        let locks_before = sharded.stripe_acquisitions();
        for (v, id) in values.iter().zip(direct.iter()) {
            assert_eq!(memo.resolve_cloned(&sharded, *id), *v);
        }
        assert_eq!(sharded.stripe_acquisitions(), locks_before);
        // take_counters drains without touching the cached contents.
        let (h, m) = memo.take_counters();
        assert!(h > 0 && m > 0);
        assert_eq!((memo.hits(), memo.misses()), (0, 0));
        assert_eq!(memo.intern(&sharded, values[0]), direct[0]);
        assert_eq!((memo.hits(), memo.misses()), (1, 0));
    }

    #[test]
    fn worker_cache_overflow_clears_but_stays_correct() {
        let sharded: ShardedInterner<u32, StateId> = ShardedInterner::new();
        let mut memo: WorkerInternCache<u32, StateId> = WorkerInternCache::new(8);
        for round in 0..3u32 {
            for n in 0..100u32 {
                let id = memo.intern(&sharded, n);
                assert_eq!(sharded.intern(n), id);
                assert_eq!(memo.resolve_cloned(&sharded, id), n);
            }
            assert_eq!(sharded.len(), 100, "round {round}");
        }
    }

    proptest! {
        /// The hash-consing law: ids agree with structural equality.
        #[test]
        fn prop_ids_agree_with_structural_equality(
            values in proptest::collection::vec((0u8..16, 0u8..16), 0..64)
        ) {
            let mut interner: Interner<(u8, u8), StateId> = Interner::new();
            let ids: Vec<StateId> =
                values.iter().map(|v| interner.intern(*v)).collect();
            for (a, ia) in values.iter().zip(ids.iter()) {
                for (b, ib) in values.iter().zip(ids.iter()) {
                    prop_assert_eq!(a == b, ia == ib);
                }
            }
            // Resolution round-trips.
            for (v, id) in values.iter().zip(ids.iter()) {
                prop_assert_eq!(interner.resolve(*id), v);
            }
            // Accounting: every intern is a hit or a miss, misses == len.
            prop_assert_eq!(interner.hits() + interner.misses(), values.len());
            prop_assert_eq!(interner.misses(), interner.len());
        }
    }
}
