//! Hash-consed interning: dense integer ids for structurally-equal values.
//!
//! The polyvariant machines treat abstract states as first-class map keys,
//! so every `BTreeMap<(Ps, G), …>` lookup in the fixpoint engines used to
//! pay a deep structural `Ord` walk over the whole state — environment,
//! continuation, context — and every frontier round deep-cloned states
//! wholesale.  *Abstracting Definitional Interpreters* leans on sharing of
//! configurations for exactly this reason: once each distinct state is
//! mapped to a dense id, clone and equality become O(1) and every engine
//! table (step cache, reverse dependency index, seen-set, frontier) becomes
//! a flat `Vec` indexed by the id.
//!
//! [`Interner<T, I>`] is that map: a per-run hash-consing table from values
//! to dense ids, keyed by precomputed [Fx hashes](crate::hash) so a value is
//! deeply hashed exactly once (on intern) and deeply compared only against
//! the rare same-hash candidates.  [`StateId`] and [`EnvId`] are the two id
//! currencies of the framework — machine states (paired with their guts)
//! and environments — kept as distinct newtypes so they cannot be mixed up.
//!
//! Interning is *per run*: an id is meaningful only relative to the
//! interner that produced it, and the engines un-intern (resolve) back to
//! structural values only at the language boundary.

use std::fmt;

use crate::hash::{fx_hash_of, FxHashMap};

/// A dense integer id handed out by an [`Interner`].
///
/// Implementations are trivial `u32` newtypes; the trait exists so the
/// interner (and the engines built on it) can be generic over the id
/// currency while keeping [`StateId`] and [`EnvId`] unmixable.
pub trait InternKey: Copy + Eq + Ord + std::hash::Hash + fmt::Debug + 'static {
    /// Wraps a dense index as an id.
    fn from_index(index: usize) -> Self;

    /// The dense index of this id (always `< interner.len()`).
    fn index(self) -> usize;
}

macro_rules! intern_key {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl InternKey for $name {
            #[inline]
            fn from_index(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                $name(index as u32)
            }

            #[inline]
            fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

intern_key! {
    /// The id of an interned `(state, guts)` pair — the engines' currency.
    StateId, "σ"
}

intern_key! {
    /// The id of an interned environment.
    EnvId, "ρ"
}

/// A per-run hash-consing table: every distinct value is assigned a dense
/// id on first sight and the same id forever after.
///
/// The table stores each value exactly once (in insertion order) and keys
/// the lookup by the value's precomputed [Fx hash](crate::hash::fx_hash_of),
/// so interning an already-seen value costs one hash walk plus (usually) one
/// deep equality check, and everything downstream can work with O(1)
/// id copies and comparisons instead.
///
/// ```rust
/// use mai_core::intern::{Interner, StateId};
///
/// let mut interner: Interner<String, StateId> = Interner::new();
/// let a = interner.intern("state".to_string());
/// let b = interner.intern("state".to_string());
/// let c = interner.intern("other".to_string());
/// assert_eq!(a, b);           // ids agree with structural equality
/// assert_ne!(a, c);
/// assert_eq!(interner.resolve(a), "state");
/// assert_eq!(interner.len(), 2);
/// assert_eq!((interner.hits(), interner.misses()), (1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T, I: InternKey = StateId> {
    /// Precomputed hash → candidate ids (almost always a single candidate).
    buckets: FxHashMap<u64, Vec<I>>,
    /// The interned values, indexed by id (insertion order).
    values: Vec<T>,
    hits: usize,
}

impl<T, I: InternKey> Default for Interner<T, I> {
    fn default() -> Self {
        Interner {
            buckets: FxHashMap::default(),
            values: Vec::new(),
            hits: 0,
        }
    }
}

impl<T: std::hash::Hash + Eq, I: InternKey> Interner<T, I> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a value, returning its dense id: the existing id if a
    /// structurally-equal value was interned before, a fresh one otherwise.
    pub fn intern(&mut self, value: T) -> I {
        let hash = fx_hash_of(&value);
        let candidates = self.buckets.entry(hash).or_default();
        for &id in candidates.iter() {
            if self.values[id.index()] == value {
                self.hits += 1;
                return id;
            }
        }
        let id = I::from_index(self.values.len());
        candidates.push(id);
        self.values.push(value);
        id
    }

    /// The id of an already-interned value, if any (no stats, no insert).
    pub fn get(&self, value: &T) -> Option<I> {
        let candidates = self.buckets.get(&fx_hash_of(value))?;
        candidates
            .iter()
            .copied()
            .find(|id| &self.values[id.index()] == value)
    }

    /// Un-interns an id back to the value it stands for.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: I) -> &T {
        &self.values[id.index()]
    }

    /// How many distinct values have been interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The interned values in id (insertion) order; `values()[id.index()]`
    /// is `resolve(id)`.
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// How many [`Interner::intern`] calls found an existing id.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// How many [`Interner::intern`] calls allocated a fresh id — by
    /// construction, one per distinct value, so this is [`Interner::len`].
    pub fn misses(&self) -> usize {
        self.values.len()
    }
}

/// Counts the distinct values of an iterator by interning them — the shared
/// implementation behind the language crates' `distinct_env_count` helpers
/// (the language-boundary half of the engine's intern statistics).
pub fn distinct_count<T: std::hash::Hash + Eq, I: IntoIterator<Item = T>>(items: I) -> usize {
    let mut interner: Interner<T, EnvId> = Interner::new();
    for item in items {
        interner.intern(item);
    }
    interner.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ids_are_dense_and_stable() {
        let mut i: Interner<u64, StateId> = Interner::new();
        let ids: Vec<StateId> = (0..100).map(|n| i.intern(n % 10)).collect();
        assert_eq!(i.len(), 10);
        assert_eq!(i.misses(), 10);
        assert_eq!(i.hits(), 90);
        for (n, id) in ids.iter().enumerate() {
            assert_eq!(*i.resolve(*id), (n % 10) as u64);
            assert!(id.index() < i.len());
        }
        // Values are stored in first-sight order.
        assert_eq!(i.values(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i: Interner<&'static str, EnvId> = Interner::new();
        assert_eq!(i.get(&"x"), None);
        let id = i.intern("x");
        assert_eq!(i.get(&"x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn state_and_env_ids_display_distinctly() {
        assert_eq!(StateId::from_index(3).to_string(), "σ3");
        assert_eq!(EnvId::from_index(3).to_string(), "ρ3");
    }

    proptest! {
        /// The hash-consing law: ids agree with structural equality.
        #[test]
        fn prop_ids_agree_with_structural_equality(
            values in proptest::collection::vec((0u8..16, 0u8..16), 0..64)
        ) {
            let mut interner: Interner<(u8, u8), StateId> = Interner::new();
            let ids: Vec<StateId> =
                values.iter().map(|v| interner.intern(*v)).collect();
            for (a, ia) in values.iter().zip(ids.iter()) {
                for (b, ib) in values.iter().zip(ids.iter()) {
                    prop_assert_eq!(a == b, ia == ib);
                }
            }
            // Resolution round-trips.
            for (v, id) in values.iter().zip(ids.iter()) {
                prop_assert_eq!(interner.resolve(*id), v);
            }
            // Accounting: every intern is a hit or a miss, misses == len.
            prop_assert_eq!(interner.hits() + interner.misses(), values.len());
            prop_assert_eq!(interner.misses(), interner.len());
        }
    }
}
