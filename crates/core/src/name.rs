//! Interned identifiers and program-point labels.
//!
//! Every language substrate (CPS, direct-style λ-calculus, Featherweight
//! Java) refers to variables, fields and methods through [`Name`] and to
//! program points (call sites, allocation sites) through [`Label`].  Keeping
//! these in the core crate is what allows the polyvariance machinery of
//! [`crate::addr`] to be completely language-independent: a k-CFA context is
//! a bounded string of [`Label`]s no matter which calculus produced them.

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::hash::{fx_hash_of, FxHashSet};

/// How many lock stripes the global name pool (and the synthetic-name
/// cache) uses — the same Fx-hash striping discipline as the parallel
/// engine's [`ShardedInterner`](crate::intern::ShardedInterner), so the
/// workers of a parallel analysis minting continuation names concurrently
/// contend only when their names hash to the same stripe.
const NAME_STRIPES: usize = 16;

/// The global name pool: every [`Name`] ever created, deduplicated by
/// content.  Hot paths (parsers, allocators, synthetic continuation names)
/// construct the same handful of identifiers over and over; pooling makes
/// every such construction return the *same* `Arc<str>`, so no fresh
/// allocation happens after first sight and equality usually short-circuits
/// on pointer identity.
///
/// Deliberate trade-offs: entries are never evicted (identifier sets are
/// tiny and shared across the analyses of one process; a long-lived server
/// embedding many unrelated programs would retain their identifier
/// strings).  The pool is **lock-striped** by the content's Fx hash: the
/// sharded parallel engine's workers allocate names concurrently, and one
/// global mutex would serialise every transition that mints a
/// continuation name.
fn name_pool() -> &'static [Mutex<FxHashSet<Arc<str>>>] {
    static POOL: OnceLock<Vec<Mutex<FxHashSet<Arc<str>>>>> = OnceLock::new();
    POOL.get_or_init(|| {
        (0..NAME_STRIPES)
            .map(|_| Mutex::new(FxHashSet::default()))
            .collect()
    })
}

/// An identifier: a variable, field, method or class name.
///
/// Internally a cheaply-cloneable shared string, globally interned: two
/// `Name`s with the same content share one allocation.  `Name`s are ordered
/// and hashable so that they can serve as keys of environments and as
/// components of abstract addresses.
///
/// ```rust
/// use mai_core::name::Name;
/// let x = Name::from("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone)]
pub struct Name(Arc<str>);

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Pooled names with equal content share an allocation, so the
        // pointer check almost always decides; the content comparison keeps
        // equality structural unconditionally.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.0, &other.0) {
            return std::cmp::Ordering::Equal;
        }
        self.0.cmp(&other.0)
    }
}

impl std::hash::Hash for Name {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Content hash, consistent with the structural `PartialEq`.
        self.0.hash(state);
    }
}

impl Name {
    /// Creates a new name from anything string-like, deduplicated through
    /// the global name pool: the same content always yields the same shared
    /// allocation.
    pub fn new(s: impl AsRef<str>) -> Self {
        let s = s.as_ref();
        let stripe = (fx_hash_of(s) as usize) % NAME_STRIPES;
        let mut pool = name_pool()[stripe].lock().expect("name pool poisoned");
        if let Some(existing) = pool.get(s) {
            return Name(Arc::clone(existing));
        }
        let fresh: Arc<str> = Arc::from(s);
        pool.insert(Arc::clone(&fresh));
        Name(fresh)
    }

    /// A view of the underlying identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Derives a fresh, related name by appending a suffix.
    ///
    /// Used by the machine constructions that need synthetic names (for
    /// example store-allocated continuations use the name of the expression
    /// label they belong to).
    pub fn suffixed(&self, suffix: &str) -> Self {
        Name::new(format!("{}{}", self.0, suffix))
    }

    /// A synthetic name `<prefix><tag><index>`, cached by `(tag, index)`.
    ///
    /// Machine step functions mint the same synthetic names (continuation
    /// addresses per program point and frame kind) on every transition;
    /// this constructor skips even the `format!` after first sight, where
    /// [`Name::new`] would still build the string before pooling it.
    pub fn synthetic(prefix: &'static str, tag: &'static str, index: u32) -> Self {
        type Key = (&'static str, &'static str, u32);
        type Cache = std::collections::HashMap<Key, Name>;
        // Striped like the name pool itself: parallel workers mint the
        // same per-site synthetic names on every transition, and stripe
        // selection by the key's Fx hash keeps them off one global lock.
        static CACHE: OnceLock<Vec<Mutex<Cache>>> = OnceLock::new();
        let stripes = CACHE.get_or_init(|| {
            (0..NAME_STRIPES)
                .map(|_| Mutex::new(Cache::new()))
                .collect()
        });
        let key: Key = (prefix, tag, index);
        let stripe = (fx_hash_of(&key) as usize) % NAME_STRIPES;
        let mut cache = stripes[stripe]
            .lock()
            .expect("synthetic name cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| Name::new(format!("{prefix}{tag}{index}")))
            .clone()
    }

    /// Whether two names share their underlying allocation — true for any
    /// two pooled names with equal content (an O(1) equality witness).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A program-point label.
///
/// Labels are attached to call sites (and other interesting program points)
/// by each language front end; the context abstractions of [`crate::addr`]
/// record bounded sequences of them.  Label `0` is reserved for "no
/// particular program point" (used e.g. by synthetic halt continuations).
///
/// ```rust
/// use mai_core::name::Label;
/// let l = Label::new(42);
/// assert_eq!(l.index(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(u32);

impl Label {
    /// Creates a label with the given index.
    pub fn new(index: u32) -> Self {
        Label(index)
    }

    /// The reserved "nowhere" label.
    pub fn none() -> Self {
        Label(0)
    }

    /// The numeric index of this label.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A monotonically increasing supply of fresh labels.
///
/// Language front ends use one `LabelSupply` per program so that every call
/// site receives a unique [`Label`].
///
/// ```rust
/// use mai_core::name::LabelSupply;
/// let mut supply = LabelSupply::new();
/// let a = supply.fresh();
/// let b = supply.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelSupply {
    next: u32,
}

impl LabelSupply {
    /// Creates a supply whose first fresh label is `ℓ1` (`ℓ0` is reserved).
    pub fn new() -> Self {
        LabelSupply { next: 1 }
    }

    /// Produces the next unused label.
    pub fn fresh(&mut self) -> Label {
        let l = Label(self.next);
        self.next += 1;
        l
    }

    /// How many labels have been handed out so far.
    pub fn count(&self) -> u32 {
        self.next.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(Name::from("x"), Name::new(String::from("x")));
        assert!(Name::from("a") < Name::from("b"));
    }

    #[test]
    fn name_display_and_debug_are_nonempty() {
        let n = Name::from("foo");
        assert_eq!(n.to_string(), "foo");
        assert!(format!("{:?}", n).contains("foo"));
    }

    #[test]
    fn suffixed_derives_distinct_names() {
        let n = Name::from("k");
        let s = n.suffixed("$1");
        assert_ne!(n, s);
        assert_eq!(s.as_str(), "k$1");
    }

    #[test]
    fn labels_are_ordered_by_index() {
        assert!(Label::new(1) < Label::new(2));
        assert_eq!(Label::none().index(), 0);
    }

    #[test]
    fn label_supply_is_injective() {
        let mut supply = LabelSupply::new();
        let labels: BTreeSet<Label> = (0..100).map(|_| supply.fresh()).collect();
        assert_eq!(labels.len(), 100);
        assert!(!labels.contains(&Label::none()));
        assert_eq!(supply.count(), 100);
    }

    #[test]
    fn equal_names_share_one_pooled_allocation() {
        let a = Name::from("pooled-name-test");
        let b = Name::new(String::from("pooled-name-test"));
        assert!(a.ptr_eq(&b), "the pool must deduplicate equal content");
        assert_eq!(a, b);
        // Distinct content stays distinct.
        let c = Name::from("pooled-name-test-2");
        assert!(!a.ptr_eq(&c));
        assert_ne!(a, c);
    }

    #[test]
    fn synthetic_names_are_cached_and_formatted() {
        let a = Name::synthetic("$kont-", "ar", 7);
        let b = Name::synthetic("$kont-", "ar", 7);
        assert!(a.ptr_eq(&b));
        assert_eq!(a.as_str(), "$kont-ar7");
        assert_ne!(a, Name::synthetic("$kont-", "fn", 7));
        assert_ne!(a, Name::synthetic("$kont-", "ar", 8));
        // The cache and the pool agree: building the same text the long way
        // round yields the same allocation.
        assert!(a.ptr_eq(&Name::from("$kont-ar7")));
    }

    #[test]
    fn names_work_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Name::from("x"), 1);
        m.insert(Name::from("y"), 2);
        assert_eq!(m[&Name::from("x")], 1);
    }
}
