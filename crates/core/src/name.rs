//! Interned identifiers and program-point labels.
//!
//! Every language substrate (CPS, direct-style λ-calculus, Featherweight
//! Java) refers to variables, fields and methods through [`Name`] and to
//! program points (call sites, allocation sites) through [`Label`].  Keeping
//! these in the core crate is what allows the polyvariance machinery of
//! [`crate::addr`] to be completely language-independent: a k-CFA context is
//! a bounded string of [`Label`]s no matter which calculus produced them.

use std::fmt;
use std::sync::Arc;

/// An identifier: a variable, field, method or class name.
///
/// Internally a cheaply-cloneable shared string.  `Name`s are ordered and
/// hashable so that they can serve as keys of environments and as components
/// of abstract addresses.
///
/// ```rust
/// use mai_core::name::Name;
/// let x = Name::from("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a new name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// A view of the underlying identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Derives a fresh, related name by appending a suffix.
    ///
    /// Used by the machine constructions that need synthetic names (for
    /// example store-allocated continuations use the name of the expression
    /// label they belong to).
    pub fn suffixed(&self, suffix: &str) -> Self {
        Name::new(format!("{}{}", self.0, suffix))
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// A program-point label.
///
/// Labels are attached to call sites (and other interesting program points)
/// by each language front end; the context abstractions of [`crate::addr`]
/// record bounded sequences of them.  Label `0` is reserved for "no
/// particular program point" (used e.g. by synthetic halt continuations).
///
/// ```rust
/// use mai_core::name::Label;
/// let l = Label::new(42);
/// assert_eq!(l.index(), 42);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Label(u32);

impl Label {
    /// Creates a label with the given index.
    pub fn new(index: u32) -> Self {
        Label(index)
    }

    /// The reserved "nowhere" label.
    pub fn none() -> Self {
        Label(0)
    }

    /// The numeric index of this label.
    pub fn index(&self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A monotonically increasing supply of fresh labels.
///
/// Language front ends use one `LabelSupply` per program so that every call
/// site receives a unique [`Label`].
///
/// ```rust
/// use mai_core::name::LabelSupply;
/// let mut supply = LabelSupply::new();
/// let a = supply.fresh();
/// let b = supply.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelSupply {
    next: u32,
}

impl LabelSupply {
    /// Creates a supply whose first fresh label is `ℓ1` (`ℓ0` is reserved).
    pub fn new() -> Self {
        LabelSupply { next: 1 }
    }

    /// Produces the next unused label.
    pub fn fresh(&mut self) -> Label {
        let l = Label(self.next);
        self.next += 1;
        l
    }

    /// How many labels have been handed out so far.
    pub fn count(&self) -> u32 {
        self.next.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(Name::from("x"), Name::new(String::from("x")));
        assert!(Name::from("a") < Name::from("b"));
    }

    #[test]
    fn name_display_and_debug_are_nonempty() {
        let n = Name::from("foo");
        assert_eq!(n.to_string(), "foo");
        assert!(format!("{:?}", n).contains("foo"));
    }

    #[test]
    fn suffixed_derives_distinct_names() {
        let n = Name::from("k");
        let s = n.suffixed("$1");
        assert_ne!(n, s);
        assert_eq!(s.as_str(), "k$1");
    }

    #[test]
    fn labels_are_ordered_by_index() {
        assert!(Label::new(1) < Label::new(2));
        assert_eq!(Label::none().index(), 0);
    }

    #[test]
    fn label_supply_is_injective() {
        let mut supply = LabelSupply::new();
        let labels: BTreeSet<Label> = (0..100).map(|_| supply.fresh()).collect();
        assert_eq!(labels.len(), 100);
        assert!(!labels.contains(&Label::none()));
        assert_eq!(supply.count(), 100);
    }

    #[test]
    fn names_work_as_map_keys() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(Name::from("x"), 1);
        m.insert(Name::from("y"), 2);
        assert_eq!(m[&Name::from("x")], 1);
    }
}
