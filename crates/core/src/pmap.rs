//! A persistent, structurally-shared hash trie — the store spine.
//!
//! After PR 3 made state identity O(1), the remaining hot cost of every
//! engine was the store spine itself: `BasicStore` kept its bindings in a
//! flat `BTreeMap`, so the one store clone the store-passing monad performs
//! per transition copied the whole spine (O(n) nodes), and joining or
//! diffing two stores walked both in full even when they shared almost all
//! of their content — which, in a fixpoint engine folding small deltas into
//! one big accumulated store, they always do.
//!
//! [`PMap`] replaces that spine with a hash-array-mapped trie whose nodes
//! are shared behind [`Arc`]s and whose keys are placed by their
//! [Fx hash](crate::hash) (the same deterministic hash the PR-3 interning
//! layer precomputes for states):
//!
//! * **clone is O(1)** — bumping the root's reference count; writes copy
//!   only the O(log n) path from the root to the touched leaf;
//! * **eq / leq / diff / join short-circuit on pointer identity** per
//!   subtree: two snapshots that share structure are compared only where
//!   they actually diverged;
//! * **[`PMap::join_in_place`] preserves sharing** — subtrees present on
//!   only one side are adopted by reference, and subtrees equal by pointer
//!   are skipped entirely, so folding a k-address delta into an n-address
//!   accumulator costs O(k · log n), not O(n);
//! * **[`PMap::join_at_in_place`] and [`PMap::upsert_with`] are
//!   single-descent** — the join/update decision is carried down one
//!   copy-on-write descent (the way the internal `join_entry` always
//!   worked), with the replacement path built on the unwind only where the
//!   binding actually changed, instead of a read pre-check descent followed
//!   by a second write descent;
//! * **every node caches a content digest** — hashing a whole map is one
//!   `OnceLock` read per already-digested subtree (mirroring
//!   [`CowMap`](crate::env::CowMap)'s cached hashes), so the per-state
//!   engine's whole-store interning hash is O(1) amortised: a write
//!   invalidates only the O(log n) freshly-built path, and the next hash
//!   recomputes exactly those nodes.
//!
//! The trie shape is *canonical*: it is a pure function of the key/value
//! content (collision leaves keep their entries sorted by key, a branch
//! never holds a lone leaf child), so structural equality can recurse over
//! nodes, and the iteration order — and with it [`Ord`] and [`Hash`] — is
//! deterministic for a given content.
//!
//! The co-domain is an arbitrary [`Lattice`] for the joining operations;
//! plain map operations need only `Clone`.  [`BasicStore`](crate::store::BasicStore)
//! and [`CountingStore`](crate::store::CountingStore) are rebased on this
//! spine, which is what makes the whole-store clone in the step monad an
//! `Arc` bump and the engines' delta folds proportional to the delta.
//! Because every node is `Arc`-shared (never `Rc`), the spine is `Send +
//! Sync` whenever its keys and values are — the property the sharded
//! parallel engine ([`crate::engine::parallel`]) relies on to hand store
//! snapshots to its workers and join per-shard deltas at the sync barrier.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::hash::{fx_hash_of, FxHasher};
use crate::lattice::Lattice;

/// Bits of the key hash consumed per trie level.
const BITS: u32 = 5;

/// The fan-out of a branch node (`2^BITS`).
const FANOUT: u64 = 1 << BITS;

/// The 5-bit fragment of `hash` addressed at `level`.
#[inline]
fn fragment(hash: u64, level: u32) -> u32 {
    ((hash >> (level * BITS)) % FANOUT) as u32
}

/// One node of the trie: the structural content plus a lazily computed,
/// per-subtree content digest (see [`node_digest`]).
struct Node<K, V> {
    /// The cached Fx content digest of this subtree, computed on first
    /// hash and carried by clones (a clone has identical content).  Every
    /// in-place mutation through `Arc::make_mut` resets it; nodes rebuilt
    /// on a copy-on-write path start empty, so after a k-deep write only
    /// the k fresh path nodes need re-digesting — untouched subtrees keep
    /// their digests, which is what makes whole-map hashing O(1) amortised.
    digest: OnceLock<u64>,
    /// The structural content.
    kind: NodeKind<K, V>,
}

/// The structural content of a [`Node`].
///
/// Invariants (canonical form — the shape is a pure function of content):
///
/// * a `Leaf` holds at least one entry, all entries share the full 64-bit
///   `hash`, and entries are sorted by key;
/// * a `Branch` holds at least one child, its `bitmap` has exactly one set
///   bit per child (children sorted by fragment), and it never holds a
///   *single* child that is a `Leaf` (such a branch collapses to the leaf).
enum NodeKind<K, V> {
    Leaf {
        /// The shared Fx hash of every key in this leaf.
        hash: u64,
        /// The entries (same hash, sorted by key; length 1 outside
        /// genuine 64-bit collisions).
        entries: Vec<(K, V)>,
    },
    Branch {
        /// Which of the 32 fragments have a child.
        bitmap: u32,
        /// The children, one per set bitmap bit, in fragment order.
        children: Vec<Arc<Node<K, V>>>,
        /// Total entries in this subtree.
        len: usize,
    },
}

impl<K: Clone, V: Clone> Clone for Node<K, V> {
    fn clone(&self) -> Self {
        Node {
            // The clone has identical content, so the cached digest (if
            // any) remains valid; in-place mutators reset it explicitly
            // after `Arc::make_mut`.
            digest: self.digest.clone(),
            kind: match &self.kind {
                NodeKind::Leaf { hash, entries } => NodeKind::Leaf {
                    hash: *hash,
                    entries: entries.clone(),
                },
                NodeKind::Branch {
                    bitmap,
                    children,
                    len,
                } => NodeKind::Branch {
                    bitmap: *bitmap,
                    children: children.clone(),
                    len: *len,
                },
            },
        }
    }
}

impl<K, V> Node<K, V> {
    /// A fresh leaf node (digest not yet computed).
    fn leaf(hash: u64, entries: Vec<(K, V)>) -> Self {
        Node {
            digest: OnceLock::new(),
            kind: NodeKind::Leaf { hash, entries },
        }
    }

    /// A fresh branch node (digest not yet computed).
    fn branch(bitmap: u32, children: Vec<Arc<Node<K, V>>>, len: usize) -> Self {
        Node {
            digest: OnceLock::new(),
            kind: NodeKind::Branch {
                bitmap,
                children,
                len,
            },
        }
    }

    /// Resets the cached digest; must be called by every in-place mutation
    /// (after `Arc::make_mut`, before the content changes).
    fn reset_digest(&mut self) {
        self.digest = OnceLock::new();
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf { entries, .. } => entries.len(),
            NodeKind::Branch { len, .. } => *len,
        }
    }

    /// The position of `frag`'s child in `children`, if present.
    fn child_index(bitmap: u32, frag: u32) -> Result<usize, usize> {
        let bit = 1u32 << frag;
        let below = (bitmap & (bit - 1)).count_ones() as usize;
        if bitmap & bit != 0 {
            Ok(below)
        } else {
            Err(below)
        }
    }
}

/// The content digest of a subtree: leaves digest their entries, branches
/// fold their children's digests — so the digest of an untouched subtree is
/// one `OnceLock` read, and re-digesting after a write costs only the
/// freshly built path.  A pure function of the canonical content, hence
/// consistent with structural equality.
fn node_digest<K: Hash, V: Hash>(node: &Node<K, V>) -> u64 {
    *node.digest.get_or_init(|| {
        let mut hasher = FxHasher::default();
        match &node.kind {
            NodeKind::Leaf { hash, entries } => {
                hasher.write_u8(0);
                hasher.write_u64(*hash);
                for (k, v) in entries {
                    k.hash(&mut hasher);
                    v.hash(&mut hasher);
                }
            }
            NodeKind::Branch {
                bitmap, children, ..
            } => {
                hasher.write_u8(1);
                hasher.write_u32(*bitmap);
                for child in children {
                    hasher.write_u64(node_digest(child));
                }
            }
        }
        hasher.finish()
    })
}

/// A persistent hash-trie map with `Arc`-shared structure.  See the
/// [module docs](self) for the representation and the sharing guarantees.
///
/// ```rust
/// use mai_core::pmap::PMap;
///
/// let mut base: PMap<u32, &'static str> = PMap::new();
/// base.insert(1, "one");
/// let snapshot = base.clone();       // O(1): shares the whole spine
/// base.insert(2, "two");             // copies only the root path
/// assert_eq!(snapshot.len(), 1);
/// assert_eq!(base.get(&2), Some(&"two"));
/// ```
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        PMap { root: None }
    }
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
        }
    }
}

impl<K, V> PMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of entries.
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, |n| n.len())
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Whether two maps share the same root allocation (an O(1) witness of
    /// structural equality; the converse need not hold).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Iterates over the entries in trie (hash) order — deterministic for a
    /// given content, but *not* the key order a `BTreeMap` would use.
    pub fn iter(&self) -> Iter<'_, K, V> {
        Iter {
            stack: match &self.root {
                Some(root) => vec![Frame {
                    node: root.as_ref(),
                    next: 0,
                }],
                None => Vec::new(),
            },
        }
    }

    /// Iterates over the keys in trie order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over the values in trie order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// How many trie nodes the spine currently uses.
    pub fn spine_nodes(&self) -> usize {
        fn walk<K, V>(node: &Arc<Node<K, V>>) -> usize {
            match &node.as_ref().kind {
                NodeKind::Leaf { .. } => 1,
                NodeKind::Branch { children, .. } => 1 + children.iter().map(walk).sum::<usize>(),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }

    /// Approximate bytes of spine structure this map shares with *other
    /// live snapshots*: the summed footprint of every node whose `Arc`
    /// strong count exceeds one.  Deterministic for a deterministic run —
    /// the engines report its per-round peak as
    /// [`EngineStats::store_bytes_shared`](crate::engine::EngineStats::store_bytes_shared)
    /// so structural-sharing regressions are observable.
    ///
    /// The per-node accounting uses *nominal* sizes (a fixed node header
    /// plus fixed per-entry/per-child costs), **not** `std::mem::size_of`:
    /// the counter is gated by `mai-bench --check-regress` against a
    /// committed baseline, and real layouts vary across targets and
    /// compiler versions — a rustc upgrade must not be able to move the
    /// number.
    pub fn shared_spine_bytes(&self) -> usize {
        /// Nominal bytes of a node header (any variant).
        const NODE: usize = 48;
        /// Nominal bytes per leaf entry.
        const ENTRY: usize = 32;
        /// Nominal bytes per branch child pointer.
        const CHILD: usize = 8;
        fn node_bytes<K, V>(node: &Node<K, V>) -> usize {
            NODE + match &node.kind {
                NodeKind::Leaf { entries, .. } => entries.len() * ENTRY,
                NodeKind::Branch { children, .. } => children.len() * CHILD,
            }
        }
        fn walk<K, V>(node: &Arc<Node<K, V>>) -> usize {
            let own = if Arc::strong_count(node) > 1 {
                node_bytes(node.as_ref())
            } else {
                0
            };
            own + match &node.as_ref().kind {
                NodeKind::Leaf { .. } => 0,
                NodeKind::Branch { children, .. } => children.iter().map(walk).sum(),
            }
        }
        self.root.as_ref().map_or(0, walk)
    }
}

impl<K: Hash + Eq, V> PMap<K, V> {
    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let root = self.root.as_ref()?;
        lookup_node(root, fx_hash_of(key), key, 0)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

/// Builds the chain of branches separating two leaves whose hashes agree on
/// every fragment up to (but excluding) some deeper level.
fn split<K, V>(
    a: Arc<Node<K, V>>,
    a_hash: u64,
    b: Arc<Node<K, V>>,
    b_hash: u64,
    level: u32,
) -> Arc<Node<K, V>> {
    debug_assert_ne!(a_hash, b_hash);
    let fa = fragment(a_hash, level);
    let fb = fragment(b_hash, level);
    let len = a.len() + b.len();
    if fa == fb {
        let child = split(a, a_hash, b, b_hash, level + 1);
        Arc::new(Node::branch(1 << fa, vec![child], len))
    } else {
        let (children, bitmap) = if fa < fb {
            (vec![a, b], (1u32 << fa) | (1u32 << fb))
        } else {
            (vec![b, a], (1u32 << fa) | (1u32 << fb))
        };
        Arc::new(Node::branch(bitmap, children, len))
    }
}

impl<K: Hash + Eq + Ord + Clone, V: Clone> PMap<K, V> {
    /// Inserts a binding, replacing (and returning) any existing value for
    /// the key.  Copies only the root-to-leaf path; every untouched subtree
    /// stays shared.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let hash = fx_hash_of(&key);
        match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::leaf(hash, vec![(key, value)])));
                None
            }
            Some(root) => insert_node(root, 0, hash, key, value),
        }
    }

    /// Inserts or updates the binding of `key` through `decide`, preserving
    /// sharing when nothing changes: `decide` sees the current value (if
    /// any) and returns the replacement, or `None` to leave the map — and
    /// every shared subtree — untouched.  Returns whether a replacement was
    /// installed.
    ///
    /// The decision is carried down **one** descent: `decide` runs at the
    /// key's position in the trie, and the copy-on-write replacement path is
    /// built on the unwind only when it returned `Some` — there is no
    /// separate `get` pre-check descent.
    pub fn upsert_with<F>(&mut self, key: K, decide: F) -> bool
    where
        F: FnOnce(Option<&V>) -> Option<V>,
    {
        let hash = fx_hash_of(&key);
        match &mut self.root {
            None => match decide(None) {
                Some(value) => {
                    self.root = Some(Arc::new(Node::leaf(hash, vec![(key, value)])));
                    true
                }
                None => false,
            },
            Some(root) => match upsert_node(root, 0, hash, &key, decide) {
                Some(replacement) => {
                    *root = replacement;
                    true
                }
                None => false,
            },
        }
    }

    /// The restriction of the map to the given keys, built by direct
    /// descent: O(k · log n) for k keys instead of the O(n) full-spine walk
    /// [`PMap::retain`] performs — the difference between "extract this
    /// handful of changed bindings" and "filter the whole store", which is
    /// what makes the engines' per-branch delta extraction proportional to
    /// the delta.  Entry values are shared, not deep-copied.
    pub fn restricted_to<'a, I>(&self, keys: I) -> Self
    where
        K: 'a,
        I: IntoIterator<Item = &'a K>,
    {
        let mut out = PMap::new();
        for key in keys {
            if let Some(value) = self.get(key) {
                out.insert(key.clone(), value.clone());
            }
        }
        out
    }

    /// Restricts the map to the keys satisfying `keep`.  Untouched subtrees
    /// keep their allocations; emptied branches collapse canonically.
    pub fn retain<F>(&mut self, keep: F)
    where
        F: Fn(&K) -> bool,
    {
        fn walk<K: Clone, V: Clone>(
            node: &Arc<Node<K, V>>,
            keep: &impl Fn(&K) -> bool,
        ) -> Option<Arc<Node<K, V>>> {
            match &node.as_ref().kind {
                NodeKind::Leaf { hash, entries } => {
                    let kept: Vec<(K, V)> =
                        entries.iter().filter(|(k, _)| keep(k)).cloned().collect();
                    if kept.len() == entries.len() {
                        Some(Arc::clone(node))
                    } else if kept.is_empty() {
                        None
                    } else {
                        Some(Arc::new(Node::leaf(*hash, kept)))
                    }
                }
                NodeKind::Branch {
                    bitmap, children, ..
                } => {
                    let mut new_children: Vec<Arc<Node<K, V>>> = Vec::new();
                    let mut new_bitmap = 0u32;
                    let mut changed = false;
                    let mut frags = (0..32).filter(|f| bitmap & (1 << f) != 0);
                    for child in children {
                        let frag = frags.next().expect("bitmap/children agree");
                        match walk(child, keep) {
                            Some(kept_child) => {
                                changed |= !Arc::ptr_eq(child, &kept_child);
                                new_bitmap |= 1 << frag;
                                new_children.push(kept_child);
                            }
                            None => changed = true,
                        }
                    }
                    if !changed {
                        return Some(Arc::clone(node));
                    }
                    match new_children.len() {
                        0 => None,
                        1 if matches!(new_children[0].as_ref().kind, NodeKind::Leaf { .. }) => {
                            // Canonical collapse: a lone leaf child replaces
                            // the branch (and cascades upward).
                            Some(new_children.pop().expect("one child"))
                        }
                        _ => {
                            let len = new_children.iter().map(|c| c.len()).sum();
                            Some(Arc::new(Node::branch(new_bitmap, new_children, len)))
                        }
                    }
                }
            }
        }
        if let Some(root) = &self.root {
            self.root = walk(root, &keep);
        }
    }
}

/// The single-descent upsert behind [`PMap::upsert_with`]: locates the key,
/// runs `decide` at its position, and builds the replacement path on the
/// unwind — or returns `None` having touched (and copied) nothing.
fn upsert_node<K: Hash + Eq + Ord + Clone, V: Clone, F>(
    node: &Arc<Node<K, V>>,
    level: u32,
    hash: u64,
    key: &K,
    decide: F,
) -> Option<Arc<Node<K, V>>>
where
    F: FnOnce(Option<&V>) -> Option<V>,
{
    match &node.as_ref().kind {
        NodeKind::Leaf {
            hash: leaf_hash,
            entries,
        } => {
            if *leaf_hash != hash {
                // Vacant (off this leaf's hash): a `Some` decision splits.
                let value = decide(None)?;
                let fresh = Arc::new(Node::leaf(hash, vec![(key.clone(), value)]));
                return Some(split(Arc::clone(node), *leaf_hash, fresh, hash, level));
            }
            match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(i) => {
                    let value = decide(Some(&entries[i].1))?;
                    let mut entries = entries.clone();
                    entries[i].1 = value;
                    Some(Arc::new(Node::leaf(hash, entries)))
                }
                Err(i) => {
                    let value = decide(None)?;
                    let mut entries = entries.clone();
                    entries.insert(i, (key.clone(), value));
                    Some(Arc::new(Node::leaf(hash, entries)))
                }
            }
        }
        NodeKind::Branch {
            bitmap,
            children,
            len,
        } => {
            let frag = fragment(hash, level);
            match Node::<K, V>::child_index(*bitmap, frag) {
                Ok(i) => {
                    let replacement = upsert_node(&children[i], level + 1, hash, key, decide)?;
                    let grown = replacement.len() - children[i].len();
                    let mut children = children.clone();
                    children[i] = replacement;
                    Some(Arc::new(Node::branch(*bitmap, children, len + grown)))
                }
                Err(i) => {
                    let value = decide(None)?;
                    let mut children = children.clone();
                    children.insert(i, Arc::new(Node::leaf(hash, vec![(key.clone(), value)])));
                    Some(Arc::new(Node::branch(
                        bitmap | (1 << frag),
                        children,
                        len + 1,
                    )))
                }
            }
        }
    }
}

/// Inserts into an existing node, returning the displaced value (if any).
fn insert_node<K: Hash + Eq + Ord + Clone, V: Clone>(
    node: &mut Arc<Node<K, V>>,
    level: u32,
    hash: u64,
    key: K,
    value: V,
) -> Option<V> {
    // A same-hash leaf or a branch is mutated in place (copy-on-write);
    // a different-hash leaf splits into a branch chain.
    if let NodeKind::Leaf {
        hash: leaf_hash, ..
    } = &node.as_ref().kind
    {
        if *leaf_hash != hash {
            let fresh = Arc::new(Node::leaf(hash, vec![(key, value)]));
            let old_hash = *leaf_hash;
            *node = split(Arc::clone(node), old_hash, fresh, hash, level);
            return None;
        }
    }
    let inner = Arc::make_mut(node);
    inner.reset_digest();
    match &mut inner.kind {
        NodeKind::Leaf { entries, .. } => match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(std::mem::replace(&mut entries[i].1, value)),
            Err(i) => {
                entries.insert(i, (key, value));
                None
            }
        },
        NodeKind::Branch {
            bitmap,
            children,
            len,
        } => {
            let frag = fragment(hash, level);
            match Node::<K, V>::child_index(*bitmap, frag) {
                Ok(i) => {
                    let old = insert_node(&mut children[i], level + 1, hash, key, value);
                    if old.is_none() {
                        *len += 1;
                    }
                    old
                }
                Err(i) => {
                    children.insert(i, Arc::new(Node::leaf(hash, vec![(key, value)])));
                    *bitmap |= 1 << frag;
                    *len += 1;
                    None
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone, V: Lattice> PMap<K, V> {
    /// Joins `value` into the binding of `key` (the point-wise
    /// `σ ⊔ [k ↦ v]`), reporting whether the binding grew.  When nothing
    /// grows, the spine — including every shared subtree — is left
    /// untouched, so repeated no-op binds at a fixpoint never copy.
    ///
    /// The join is carried down **one** descent (`join_at_node`): the
    /// growth decision happens at the key's leaf and the copy-on-write
    /// replacement path is built on the unwind — the growing-bind path no
    /// longer pays a read pre-check descent followed by a write descent.
    pub fn join_at_in_place(&mut self, key: K, value: V) -> bool
    where
        K: Ord,
    {
        let hash = fx_hash_of(&key);
        match &mut self.root {
            None => {
                // Structural join semantics: an explicit ⊥ binding is
                // inserted but is no semantic growth.
                let grew = !value.is_bottom();
                self.root = Some(Arc::new(Node::leaf(hash, vec![(key, value)])));
                grew
            }
            Some(root) => {
                let (replacement, grew) = join_at_node(root, 0, hash, key, value);
                if let Some(replacement) = replacement {
                    *root = replacement;
                }
                grew
            }
        }
    }

    /// Grows `self` to `self ⊔ other`, reporting whether anything grew.
    /// Subtrees equal by pointer are skipped without a walk; subtrees
    /// present only in `other` are adopted by reference.
    pub fn join_map_in_place(&mut self, other: Self) -> bool
    where
        K: Ord,
    {
        let mut grew = false;
        self.merge_from(other, &mut |_k| grew = true);
        grew
    }

    /// Like [`PMap::join_map_in_place`], additionally reporting *which keys*
    /// grew — the per-address delta the incremental engines' dependency
    /// invalidation is built on.
    pub fn join_in_place_delta(&mut self, other: Self) -> BTreeSet<K>
    where
        K: Ord,
    {
        let mut changed = BTreeSet::new();
        self.merge_from(other, &mut |k| {
            changed.insert(k.clone());
        });
        changed
    }

    /// The shared merge engine behind the in-place joins: `on_grew` is
    /// invoked once per key whose binding semantically grew.
    fn merge_from(&mut self, other: Self, on_grew: &mut dyn FnMut(&K))
    where
        K: Ord,
    {
        match (self.root.as_mut(), other.root) {
            (_, None) => {}
            (None, Some(theirs)) => {
                report_subtree(&theirs, on_grew);
                self.root = Some(theirs);
            }
            (Some(ours), Some(theirs)) => {
                if let Some(merged) = merge_nodes(ours, &theirs, 0, on_grew) {
                    *ours = merged;
                }
            }
        }
    }

    /// Point-wise order: every binding of `self` is below the corresponding
    /// binding of `other` (missing keys read as `⊥`).  Shared subtrees are
    /// accepted without a walk.
    pub fn leq_map(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, _) => true,
            (Some(a), None) => node_all_bottom(a),
            (Some(a), Some(b)) => node_leq(a, b, 0),
        }
    }

    /// Whether every binding is `⊥` (missing keys are implicitly `⊥`, so an
    /// empty map is bottom and explicit `⊥` bindings keep it bottom).
    pub fn is_bottom_map(&self) -> bool {
        match &self.root {
            None => true,
            Some(root) => node_all_bottom(root),
        }
    }
}

/// The single-descent join behind [`PMap::join_at_in_place`]: carries the
/// value down to the key's position, decides growth there, and builds the
/// replacement path on the unwind.  Returns the replacement node (or `None`
/// when nothing changed structurally — in which case nothing was copied)
/// together with whether the binding *semantically* grew (an explicit `⊥`
/// insert changes the structure without growing).
fn join_at_node<K: Hash + Eq + Ord + Clone, V: Lattice>(
    node: &Arc<Node<K, V>>,
    level: u32,
    hash: u64,
    key: K,
    value: V,
) -> (Option<Arc<Node<K, V>>>, bool) {
    match &node.as_ref().kind {
        NodeKind::Leaf {
            hash: leaf_hash,
            entries,
        } => {
            if *leaf_hash != hash {
                // Vacant (off this leaf's hash): structural insert, growth
                // iff the value is not ⊥.
                let grew = !value.is_bottom();
                let fresh = Arc::new(Node::leaf(hash, vec![(key, value)]));
                return (
                    Some(split(Arc::clone(node), *leaf_hash, fresh, hash, level)),
                    grew,
                );
            }
            match entries.binary_search_by(|(k, _)| k.cmp(&key)) {
                Ok(i) => {
                    if value.leq(&entries[i].1) {
                        // No growth: the descent read, copied nothing.
                        return (None, false);
                    }
                    let mut entries = entries.clone();
                    entries[i].1.join_in_place(value);
                    (Some(Arc::new(Node::leaf(hash, entries))), true)
                }
                Err(i) => {
                    let grew = !value.is_bottom();
                    let mut entries = entries.clone();
                    entries.insert(i, (key, value));
                    (Some(Arc::new(Node::leaf(hash, entries))), grew)
                }
            }
        }
        NodeKind::Branch {
            bitmap,
            children,
            len,
        } => {
            let frag = fragment(hash, level);
            match Node::<K, V>::child_index(*bitmap, frag) {
                Ok(i) => {
                    let (replacement, grew) =
                        join_at_node(&children[i], level + 1, hash, key, value);
                    match replacement {
                        None => (None, grew),
                        Some(replacement) => {
                            let grown = replacement.len() - children[i].len();
                            let mut children = children.clone();
                            children[i] = replacement;
                            (
                                Some(Arc::new(Node::branch(*bitmap, children, len + grown))),
                                grew,
                            )
                        }
                    }
                }
                Err(i) => {
                    let grew = !value.is_bottom();
                    let mut children = children.clone();
                    children.insert(i, Arc::new(Node::leaf(hash, vec![(key, value)])));
                    (
                        Some(Arc::new(Node::branch(
                            bitmap | (1 << frag),
                            children,
                            len + 1,
                        ))),
                        grew,
                    )
                }
            }
        }
    }
}

impl<K: Hash + Eq + Clone + Ord, V: PartialEq + Clone> PMap<K, V> {
    /// The symmetric key-wise diff: every key bound on one side but not the
    /// other, or bound to different values.  Shared subtrees contribute
    /// nothing without being walked.
    pub fn changed_keys(&self, other: &Self) -> BTreeSet<K> {
        let mut out = BTreeSet::new();
        diff_nodes(self.root.as_ref(), other.root.as_ref(), 0, &mut out);
        out
    }
}

/// Reports every non-`⊥` key of a subtree (used when a whole subtree is
/// adopted from the other side of a join).
fn report_subtree<K, V: Lattice>(node: &Arc<Node<K, V>>, on_grew: &mut dyn FnMut(&K)) {
    match &node.as_ref().kind {
        NodeKind::Leaf { entries, .. } => {
            for (k, v) in entries {
                if !v.is_bottom() {
                    on_grew(k);
                }
            }
        }
        NodeKind::Branch { children, .. } => {
            for child in children {
                report_subtree(child, on_grew);
            }
        }
    }
}

/// Whether every entry of a subtree is `⊥`.
fn node_all_bottom<K, V: Lattice>(node: &Arc<Node<K, V>>) -> bool {
    match &node.as_ref().kind {
        NodeKind::Leaf { entries, .. } => entries.iter().all(|(_, v)| v.is_bottom()),
        NodeKind::Branch { children, .. } => children.iter().all(node_all_bottom),
    }
}

/// Looks a key up inside a subtree rooted at `level`.
fn lookup_node<'a, K: Eq, V>(
    node: &'a Arc<Node<K, V>>,
    hash: u64,
    key: &K,
    mut level: u32,
) -> Option<&'a V> {
    let mut node = node;
    loop {
        match &node.as_ref().kind {
            NodeKind::Leaf {
                hash: leaf_hash,
                entries,
            } => {
                if *leaf_hash != hash {
                    return None;
                }
                return entries.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            }
            NodeKind::Branch {
                bitmap, children, ..
            } => match Node::<K, V>::child_index(*bitmap, fragment(hash, level)) {
                Ok(i) => {
                    node = &children[i];
                    level += 1;
                }
                Err(_) => return None,
            },
        }
    }
}

/// Point-wise `⊑` between aligned subtrees.
fn node_leq<K: Hash + Eq, V: Lattice>(
    a: &Arc<Node<K, V>>,
    b: &Arc<Node<K, V>>,
    level: u32,
) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    match (&a.as_ref().kind, &b.as_ref().kind) {
        (NodeKind::Leaf { hash, entries }, _) => {
            entries
                .iter()
                .all(|(k, v)| match lookup_node(b, *hash, k, level) {
                    Some(vb) => v.leq(vb),
                    None => v.is_bottom(),
                })
        }
        (NodeKind::Branch { children, .. }, NodeKind::Leaf { .. }) => {
            // `b` covers a single hash: any `a` entry off that hash must be
            // ⊥; entries on it are probed individually.
            children.iter().all(|child| node_leq(child, b, level + 1))
        }
        (
            NodeKind::Branch {
                bitmap: ba,
                children: ca,
                ..
            },
            NodeKind::Branch {
                bitmap: bb,
                children: cb,
                ..
            },
        ) => {
            let mut frags = (0..32).filter(|f| ba & (1 << f) != 0);
            ca.iter().all(|child| {
                let frag = frags.next().expect("bitmap/children agree");
                match Node::<K, V>::child_index(*bb, frag) {
                    Ok(i) => node_leq(child, &cb[i], level + 1),
                    Err(_) => node_all_bottom(child),
                }
            })
        }
    }
}

/// Structural equality between aligned subtrees (pointer fast path).
fn node_eq<K: Eq, V: PartialEq>(a: &Arc<Node<K, V>>, b: &Arc<Node<K, V>>) -> bool {
    if Arc::ptr_eq(a, b) {
        return true;
    }
    match (&a.as_ref().kind, &b.as_ref().kind) {
        (
            NodeKind::Leaf {
                hash: ha,
                entries: ea,
            },
            NodeKind::Leaf {
                hash: hb,
                entries: eb,
            },
        ) => ha == hb && ea == eb,
        (
            NodeKind::Branch {
                bitmap: ba,
                children: ca,
                ..
            },
            NodeKind::Branch {
                bitmap: bb,
                children: cb,
                ..
            },
        ) => ba == bb && ca.iter().zip(cb).all(|(x, y)| node_eq(x, y)),
        _ => false,
    }
}

/// Collects every key of a subtree into `out`.
fn collect_keys<K: Clone + Ord, V>(node: &Arc<Node<K, V>>, out: &mut BTreeSet<K>) {
    match &node.as_ref().kind {
        NodeKind::Leaf { entries, .. } => out.extend(entries.iter().map(|(k, _)| k.clone())),
        NodeKind::Branch { children, .. } => {
            for child in children {
                collect_keys(child, out);
            }
        }
    }
}

/// The symmetric diff of two aligned (same hash-prefix) optional subtrees.
fn diff_nodes<K: Hash + Eq + Clone + Ord, V: PartialEq>(
    a: Option<&Arc<Node<K, V>>>,
    b: Option<&Arc<Node<K, V>>>,
    level: u32,
    out: &mut BTreeSet<K>,
) {
    match (a, b) {
        (None, None) => {}
        (Some(x), None) | (None, Some(x)) => collect_keys(x, out),
        (Some(a), Some(b)) => {
            if Arc::ptr_eq(a, b) {
                return;
            }
            match (&a.as_ref().kind, &b.as_ref().kind) {
                (
                    NodeKind::Branch {
                        bitmap: ba,
                        children: ca,
                        ..
                    },
                    NodeKind::Branch {
                        bitmap: bb,
                        children: cb,
                        ..
                    },
                ) => {
                    for frag in 0..32 {
                        let ia = Node::<K, V>::child_index(*ba, frag).ok();
                        let ib = Node::<K, V>::child_index(*bb, frag).ok();
                        if ia.is_some() || ib.is_some() {
                            diff_nodes(ia.map(|i| &ca[i]), ib.map(|i| &cb[i]), level + 1, out);
                        }
                    }
                }
                // At least one side is a leaf: probe entry-by-entry in both
                // directions.
                (NodeKind::Leaf { hash, entries }, _) => {
                    for (k, v) in entries {
                        if lookup_node(b, *hash, k, level) != Some(v) {
                            out.insert(k.clone());
                        }
                    }
                    diff_missing_from(b, a, level, out);
                }
                (_, NodeKind::Leaf { hash, entries }) => {
                    for (k, v) in entries {
                        if lookup_node(a, *hash, k, level) != Some(v) {
                            out.insert(k.clone());
                        }
                    }
                    diff_missing_from(a, b, level, out);
                }
            }
        }
    }
}

/// Adds every key of `walk` that is absent from `other` (values already
/// compared by the caller from the other direction).
fn diff_missing_from<K: Hash + Eq + Clone + Ord, V: PartialEq>(
    walk: &Arc<Node<K, V>>,
    other: &Arc<Node<K, V>>,
    level: u32,
    out: &mut BTreeSet<K>,
) {
    match &walk.as_ref().kind {
        NodeKind::Leaf { hash, entries } => {
            for (k, _) in entries {
                if lookup_node(other, *hash, k, level).is_none() {
                    out.insert(k.clone());
                }
            }
        }
        NodeKind::Branch { children, .. } => {
            for child in children {
                diff_missing_from(child, other, level + 1, out);
            }
        }
    }
}

/// Merges subtree `b` into subtree `a` (both rooted at the same hash
/// prefix), returning the replacement node — or `None` when `a` absorbs `b`
/// without changing, in which case nothing was copied.  `on_grew` fires for
/// every key whose binding semantically grew.
fn merge_nodes<K: Hash + Eq + Clone + Ord, V: Lattice>(
    a: &Arc<Node<K, V>>,
    b: &Arc<Node<K, V>>,
    level: u32,
    on_grew: &mut dyn FnMut(&K),
) -> Option<Arc<Node<K, V>>> {
    if Arc::ptr_eq(a, b) {
        return None;
    }
    match (&a.as_ref().kind, &b.as_ref().kind) {
        (
            NodeKind::Leaf {
                hash: ha,
                entries: ea,
            },
            NodeKind::Leaf {
                hash: hb,
                entries: eb,
            },
        ) => {
            if ha == hb {
                // Same collision bucket: key-wise join.
                enum Op {
                    Skip,
                    Join,
                    Insert,
                }
                let mut merged: Option<Vec<(K, V)>> = None;
                for (k, vb) in eb {
                    let op = {
                        let view = merged.as_deref().unwrap_or(ea);
                        match view.binary_search_by(|(ka, _)| ka.cmp(k)) {
                            Ok(i) if vb.leq(&view[i].1) => Op::Skip,
                            Ok(_) => Op::Join,
                            Err(_) => Op::Insert,
                        }
                    };
                    match op {
                        Op::Skip => {}
                        Op::Join => {
                            on_grew(k);
                            let entries = merged.get_or_insert_with(|| ea.clone());
                            let i = entries
                                .binary_search_by(|(ka, _)| ka.cmp(k))
                                .expect("key known present");
                            entries[i].1.join_in_place(vb.clone());
                        }
                        Op::Insert => {
                            if !vb.is_bottom() {
                                on_grew(k);
                            }
                            let entries = merged.get_or_insert_with(|| ea.clone());
                            let at = entries
                                .binary_search_by(|(ka, _)| ka.cmp(k))
                                .expect_err("key known absent");
                            entries.insert(at, (k.clone(), vb.clone()));
                        }
                    }
                }
                merged.map(|entries| Arc::new(Node::leaf(*ha, entries)))
            } else {
                // Disjoint hashes: every `b` entry is an addition.
                report_subtree(b, on_grew);
                Some(split(Arc::clone(a), *ha, Arc::clone(b), *hb, level))
            }
        }
        (
            NodeKind::Branch {
                bitmap: ba,
                children: ca,
                ..
            },
            NodeKind::Branch {
                bitmap: bb,
                children: cb,
                ..
            },
        ) => {
            let mut changed = false;
            let mut new_children: Vec<Arc<Node<K, V>>> = Vec::new();
            let mut ib = 0usize;
            let mut ia = 0usize;
            for frag in 0..32 {
                let in_a = ba & (1 << frag) != 0;
                let in_b = bb & (1 << frag) != 0;
                match (in_a, in_b) {
                    (true, true) => {
                        match merge_nodes(&ca[ia], &cb[ib], level + 1, on_grew) {
                            Some(node) => {
                                changed = true;
                                new_children.push(node);
                            }
                            None => new_children.push(Arc::clone(&ca[ia])),
                        }
                        ia += 1;
                        ib += 1;
                    }
                    (true, false) => {
                        new_children.push(Arc::clone(&ca[ia]));
                        ia += 1;
                    }
                    (false, true) => {
                        // Adopt the whole `b` subtree by reference.
                        report_subtree(&cb[ib], on_grew);
                        changed = true;
                        new_children.push(Arc::clone(&cb[ib]));
                        ib += 1;
                    }
                    (false, false) => {}
                }
            }
            if !changed {
                return None;
            }
            let len = new_children.iter().map(|c| c.len()).sum();
            Some(Arc::new(Node::branch(ba | bb, new_children, len)))
        }
        (NodeKind::Branch { .. }, NodeKind::Leaf { hash, entries }) => {
            // The common fold shape: a small (usually single-entry) delta
            // leaf joining a large accumulator branch.  When every `b` key
            // is vacant in `a` the whole leaf is *adopted by reference* —
            // the accumulator's spine then genuinely shares the cached
            // delta's allocation (and no entry is copied).
            if entries
                .iter()
                .all(|(k, _)| lookup_node(a, *hash, k, level).is_none())
            {
                for (k, vb) in entries {
                    if !vb.is_bottom() {
                        on_grew(k);
                    }
                }
                let mut node = Arc::clone(a);
                adopt_leaf(&mut node, level, *hash, b);
                return Some(node);
            }
            // Otherwise join each `b` entry into the branch individually.
            let mut result: Option<Arc<Node<K, V>>> = None;
            for (k, vb) in entries {
                let base = result.as_ref().unwrap_or(a);
                let (grew, vacant) = match lookup_node(base, *hash, k, level) {
                    Some(va) => (!vb.leq(va), false),
                    None => (!vb.is_bottom(), true),
                };
                if grew {
                    on_grew(k);
                }
                if grew || vacant {
                    let mut node = Arc::clone(base);
                    join_entry(&mut node, level, *hash, k, vb);
                    result = Some(node);
                }
            }
            result
        }
        (NodeKind::Leaf { hash, entries }, NodeKind::Branch { .. }) => {
            // The union lives in `b`'s (larger) shape: start from `b`,
            // join `a`'s entries in, and report `b`'s own contributions —
            // everything `b` binds beyond what `a` already had.
            report_beyond(b, a, level, on_grew);
            let mut node = Arc::clone(b);
            for (k, va) in entries {
                join_entry(&mut node, level, *hash, k, va);
            }
            Some(node)
        }
    }
}

/// Hangs the leaf `b` (whose keys are all vacant in the subtree) into the
/// trie by reference, copying only the descent path.
fn adopt_leaf<K: Hash + Eq + Clone + Ord, V: Lattice>(
    node: &mut Arc<Node<K, V>>,
    level: u32,
    hash: u64,
    b: &Arc<Node<K, V>>,
) {
    if let NodeKind::Leaf {
        hash: leaf_hash, ..
    } = &node.as_ref().kind
    {
        let old_hash = *leaf_hash;
        if old_hash != hash {
            // Two distinct hashes: both leaves survive, shared, under a
            // fresh branch chain.
            *node = split(Arc::clone(node), old_hash, Arc::clone(b), hash, level);
        } else {
            // Same-hash collision bucket with disjoint keys: the entries
            // must merge into one canonical leaf.
            let NodeKind::Leaf { entries: eb, .. } = &b.as_ref().kind else {
                unreachable!("adopt_leaf is only called with a leaf");
            };
            let eb = eb.clone();
            let inner = Arc::make_mut(node);
            inner.reset_digest();
            let NodeKind::Leaf { entries, .. } = &mut inner.kind else {
                unreachable!("checked to be a leaf above");
            };
            entries.extend(eb);
            entries.sort_by(|(ka, _), (kb, _)| ka.cmp(kb));
        }
        return;
    }
    let inner = Arc::make_mut(node);
    inner.reset_digest();
    match &mut inner.kind {
        NodeKind::Leaf { .. } => unreachable!("handled above"),
        NodeKind::Branch {
            bitmap,
            children,
            len,
        } => {
            let frag = fragment(hash, level);
            match Node::<K, V>::child_index(*bitmap, frag) {
                Ok(i) => {
                    let before = children[i].len();
                    adopt_leaf(&mut children[i], level + 1, hash, b);
                    *len += children[i].len() - before;
                }
                Err(i) => {
                    children.insert(i, Arc::clone(b));
                    *bitmap |= 1 << frag;
                    *len += b.len();
                }
            }
        }
    }
}

/// Reports every key of `b` whose binding exceeds its binding in `a`
/// (missing in `a` reads as `⊥`) — the growth report for a subtree adopted
/// shape-first from `b`.
fn report_beyond<K: Hash + Eq + Clone, V: Lattice>(
    b: &Arc<Node<K, V>>,
    a: &Arc<Node<K, V>>,
    a_level: u32,
    on_grew: &mut dyn FnMut(&K),
) {
    match &b.as_ref().kind {
        NodeKind::Leaf { hash, entries } => {
            for (k, vb) in entries {
                let grew = match lookup_node(a, *hash, k, a_level) {
                    Some(va) => !vb.leq(va),
                    None => !vb.is_bottom(),
                };
                if grew {
                    on_grew(k);
                }
            }
        }
        NodeKind::Branch { children, .. } => {
            for child in children {
                report_beyond(child, a, a_level, on_grew);
            }
        }
    }
}

/// Joins one value into a subtree at a known hash/key, copying only the
/// descent path.  The caller has already decided the entry must change (or
/// be inserted).
fn join_entry<K: Hash + Eq + Clone + Ord, V: Lattice>(
    node: &mut Arc<Node<K, V>>,
    level: u32,
    hash: u64,
    key: &K,
    value: &V,
) {
    if let NodeKind::Leaf {
        hash: leaf_hash, ..
    } = &node.as_ref().kind
    {
        if *leaf_hash != hash {
            let fresh = Arc::new(Node::leaf(hash, vec![(key.clone(), value.clone())]));
            let old_hash = *leaf_hash;
            *node = split(Arc::clone(node), old_hash, fresh, hash, level);
            return;
        }
    }
    let inner = Arc::make_mut(node);
    inner.reset_digest();
    match &mut inner.kind {
        NodeKind::Leaf { entries, .. } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
            Ok(i) => {
                entries[i].1.join_in_place(value.clone());
            }
            Err(i) => entries.insert(i, (key.clone(), value.clone())),
        },
        NodeKind::Branch {
            bitmap,
            children,
            len,
        } => {
            let frag = fragment(hash, level);
            match Node::<K, V>::child_index(*bitmap, frag) {
                Ok(i) => {
                    let before = children[i].len();
                    join_entry(&mut children[i], level + 1, hash, key, value);
                    *len += children[i].len() - before;
                }
                Err(i) => {
                    children.insert(
                        i,
                        Arc::new(Node::leaf(hash, vec![(key.clone(), value.clone())])),
                    );
                    *bitmap |= 1 << frag;
                    *len += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Iteration
// ---------------------------------------------------------------------------

struct Frame<'a, K, V> {
    node: &'a Node<K, V>,
    next: usize,
}

/// The borrowed entry iterator of a [`PMap`], in trie (hash) order.
pub struct Iter<'a, K, V> {
    stack: Vec<Frame<'a, K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let frame = self.stack.last_mut()?;
            match &frame.node.kind {
                NodeKind::Leaf { entries, .. } => {
                    if frame.next < entries.len() {
                        let (k, v) = &entries[frame.next];
                        frame.next += 1;
                        return Some((k, v));
                    }
                    self.stack.pop();
                }
                NodeKind::Branch { children, .. } => {
                    if frame.next < children.len() {
                        let child = children[frame.next].as_ref();
                        frame.next += 1;
                        self.stack.push(Frame {
                            node: child,
                            next: 0,
                        });
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

impl<'a, K, V> IntoIterator for &'a PMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

// ---------------------------------------------------------------------------
// Structural trait plumbing
// ---------------------------------------------------------------------------

impl<K: Eq, V: PartialEq> PartialEq for PMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => node_eq(a, b),
            _ => false,
        }
    }
}

impl<K: Eq, V: Eq> Eq for PMap<K, V> {}

impl<K: Ord, V: Ord> PartialOrd for PMap<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, V: Ord> Ord for PMap<K, V> {
    /// Lexicographic order over the trie-order entry sequence.  The
    /// sequence is a pure function of the content (the trie is canonical),
    /// so this is a lawful total order consistent with `Eq` — it is *not*
    /// the key-lexicographic order a `BTreeMap` would produce, but nothing
    /// in the framework relies on a specific order, only on a consistent
    /// one.
    fn cmp(&self, other: &Self) -> Ordering {
        if self.ptr_eq(other) {
            return Ordering::Equal;
        }
        let mut a = self.iter();
        let mut b = other.iter();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return Ordering::Equal,
                (None, Some(_)) => return Ordering::Less,
                (Some(_), None) => return Ordering::Greater,
                (Some(x), Some(y)) => match x.cmp(&y) {
                    Ordering::Equal => continue,
                    non_eq => return non_eq,
                },
            }
        }
    }
}

impl<K: Hash, V: Hash> Hash for PMap<K, V> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Feed the cached per-subtree digest to the caller's hasher: the
        // digest is a pure function of the canonical content, so this stays
        // consistent with the structural `PartialEq` — and costs one
        // `OnceLock` read per already-digested subtree instead of a full
        // entry walk.  This is what makes the per-state engine's
        // whole-store interning hash O(1) amortised.
        state.write_usize(self.len());
        if let Some(root) = &self.root {
            state.write_u64(node_digest(root));
        }
    }
}

impl<K: fmt::Debug, V: fmt::Debug> fmt::Debug for PMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Hash + Eq + Ord + Clone, V: Clone> FromIterator<(K, V)> for PMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut map = PMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K, V> Lattice for PMap<K, V>
where
    K: Hash + Eq + Ord + Clone,
    V: Lattice,
{
    fn bottom() -> Self {
        PMap::new()
    }

    fn join(mut self, other: Self) -> Self {
        self.join_map_in_place(other);
        self
    }

    fn leq(&self, other: &Self) -> bool {
        self.leq_map(other)
    }

    fn join_in_place(&mut self, other: Self) -> bool {
        self.join_map_in_place(other)
    }

    fn is_bottom(&self) -> bool {
        self.is_bottom_map()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::{BTreeMap, BTreeSet};

    type M = PMap<u16, BTreeSet<u8>>;

    fn set(xs: &[u8]) -> BTreeSet<u8> {
        xs.iter().copied().collect()
    }

    fn from_pairs(pairs: &[(u16, u8)]) -> M {
        let mut m = M::new();
        for (k, v) in pairs {
            m.join_at_in_place(*k, set(&[*v]));
        }
        m
    }

    fn as_btree(m: &M) -> BTreeMap<u16, BTreeSet<u8>> {
        m.iter().map(|(k, v)| (*k, v.clone())).collect()
    }

    #[test]
    fn insert_get_and_replace() {
        let mut m: PMap<u32, &'static str> = PMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(2, "two"), None);
        assert_eq!(m.insert(1, "uno"), Some("one"));
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&1), Some(&"uno"));
        assert_eq!(m.get(&3), None);
        assert!(m.contains_key(&2) && !m.contains_key(&3));
    }

    #[test]
    fn clone_shares_until_written() {
        let mut a = from_pairs(&[(1, 1), (2, 2), (3, 3)]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        a.insert(4, set(&[4]));
        assert!(!a.ptr_eq(&b));
        assert_eq!(b.len(), 3);
        assert_eq!(a.len(), 4);
        // The snapshot still shares the untouched subtrees.
        assert!(b.shared_spine_bytes() > 0);
    }

    #[test]
    fn join_at_in_place_reports_growth_and_preserves_sharing() {
        let mut m = from_pairs(&[(1, 1)]);
        let snapshot = m.clone();
        // A no-op bind must not copy anything.
        assert!(!m.join_at_in_place(1, set(&[1])));
        assert!(m.ptr_eq(&snapshot));
        // A growing bind copies the path and reports.
        assert!(m.join_at_in_place(1, set(&[2])));
        assert_eq!(m.get(&1), Some(&set(&[1, 2])));
        assert_eq!(snapshot.get(&1), Some(&set(&[1])));
        // An explicit ⊥ insert is structural but not semantic growth.
        assert!(!m.join_at_in_place(9, BTreeSet::new()));
        assert!(m.contains_key(&9));
        assert!(!PMap::<u16, BTreeSet<u8>>::new().join_at_in_place(7, BTreeSet::new()));
    }

    #[test]
    fn upsert_with_is_single_descent_and_preserves_sharing() {
        let mut m = from_pairs(&[(1, 1), (2, 2), (3, 3)]);
        let snapshot = m.clone();
        // A `None` decision touches nothing — same allocation.
        assert!(!m.upsert_with(2, |v| {
            assert_eq!(v, Some(&set(&[2])));
            None
        }));
        assert!(m.ptr_eq(&snapshot));
        // A `None` decision on a vacant key also touches nothing.
        assert!(!m.upsert_with(99, |v| {
            assert_eq!(v, None);
            None
        }));
        assert!(m.ptr_eq(&snapshot));
        // A replacement installs and leaves the snapshot at the old value.
        assert!(m.upsert_with(2, |v| v.map(|s| {
            let mut s = s.clone();
            s.insert(9);
            s
        })));
        assert_eq!(m.get(&2), Some(&set(&[2, 9])));
        assert_eq!(snapshot.get(&2), Some(&set(&[2])));
        // A vacant-key insert through the decision closure.
        assert!(m.upsert_with(42, |v| {
            assert_eq!(v, None);
            Some(set(&[7]))
        }));
        assert_eq!(m.get(&42), Some(&set(&[7])));
        assert_eq!(m.len(), 4);
        // Upsert into the empty map.
        let mut empty: M = PMap::new();
        assert!(!empty.upsert_with(1, |_| None));
        assert!(empty.is_empty());
        assert!(empty.upsert_with(1, |_| Some(set(&[1]))));
        assert_eq!(empty.get(&1), Some(&set(&[1])));
    }

    #[test]
    fn cached_digests_survive_clones_and_track_mutation() {
        let pairs: Vec<(u16, u8)> = (0..64).map(|i| (i as u16, (i % 5) as u8)).collect();
        let mut m = from_pairs(&pairs);
        let h1 = fx_hash_of(&m);
        // A clone replays the cached digest.
        let snapshot = m.clone();
        assert_eq!(fx_hash_of(&snapshot), h1);
        // Hashing twice is stable.
        assert_eq!(fx_hash_of(&m), h1);
        // Every mutation path refreshes the digest: insert…
        m.insert(1000, set(&[1]));
        let h2 = fx_hash_of(&m);
        assert_ne!(h1, h2);
        // …join_at_in_place…
        assert!(m.join_at_in_place(3, set(&[9])));
        let h3 = fx_hash_of(&m);
        assert_ne!(h2, h3);
        // …upsert_with…
        assert!(m.upsert_with(3, |v| v.map(|s| {
            let mut s = s.clone();
            s.insert(10);
            s
        })));
        let h4 = fx_hash_of(&m);
        assert_ne!(h3, h4);
        // …join_map_in_place…
        assert!(m.join_map_in_place(from_pairs(&[(2000, 2)])));
        let h5 = fx_hash_of(&m);
        assert_ne!(h4, h5);
        // …and retain.
        m.retain(|k| *k < 500);
        let h6 = fx_hash_of(&m);
        assert_ne!(h5, h6);
        // Throughout, the digest stays a pure content function: a map
        // rebuilt from scratch with the same content hashes identically.
        let rebuilt: M = m.iter().map(|(k, v)| (*k, v.clone())).collect();
        assert_eq!(m, rebuilt);
        assert_eq!(fx_hash_of(&m), fx_hash_of(&rebuilt));
        // The untouched snapshot still hashes as before.
        assert_eq!(fx_hash_of(&snapshot), h1);
    }

    #[test]
    fn retain_collapses_canonically() {
        let pairs: Vec<(u16, u8)> = (0..200).map(|i| (i as u16, (i % 7) as u8)).collect();
        let full = from_pairs(&pairs);
        let mut kept = full.clone();
        kept.retain(|k| *k % 2 == 0);
        assert_eq!(kept.len(), 100);
        // Canonical form: the filtered map equals one built from scratch.
        let rebuilt = from_pairs(
            &pairs
                .iter()
                .copied()
                .filter(|(k, _)| k % 2 == 0)
                .collect::<Vec<_>>(),
        );
        assert_eq!(kept, rebuilt);
        assert_eq!(kept.cmp(&rebuilt), Ordering::Equal);
        assert_eq!(
            crate::hash::fx_hash_of(&kept),
            crate::hash::fx_hash_of(&rebuilt)
        );
        // Retaining everything returns the same allocation.
        let mut same = full.clone();
        same.retain(|_| true);
        assert!(same.ptr_eq(&full));
        // Retaining nothing empties the map.
        let mut none = full.clone();
        none.retain(|_| false);
        assert!(none.is_empty());
    }

    #[test]
    fn ord_and_hash_are_content_functions() {
        let a = from_pairs(&[(3, 1), (1, 2), (2, 3)]);
        let b = from_pairs(&[(2, 3), (3, 1), (1, 2)]);
        assert_eq!(a, b);
        assert_eq!(a.cmp(&b), Ordering::Equal);
        assert_eq!(crate::hash::fx_hash_of(&a), crate::hash::fx_hash_of(&b));
        let c = from_pairs(&[(3, 1), (1, 2)]);
        assert_ne!(a, c);
        assert_ne!(a.cmp(&c), Ordering::Equal);
    }

    #[test]
    fn join_adopts_disjoint_subtrees_by_reference() {
        let a = from_pairs(&[(1, 1)]);
        let b = from_pairs(&[(2, 2), (3, 3)]);
        let mut joined = a.clone();
        assert!(joined.join_map_in_place(b.clone()));
        assert_eq!(joined.len(), 3);
        // `b`'s spine is now shared with `joined`.
        assert!(b.shared_spine_bytes() > 0);
        // Joining the (smaller) original back is a no-op that copies nothing.
        let before = joined.clone();
        assert!(!joined.join_map_in_place(a));
        assert!(joined.ptr_eq(&before));
    }

    /// A key whose `Hash` collapses to two buckets: every map with three or
    /// more of these keys holds genuine 64-bit hash collisions, driving the
    /// multi-entry collision-leaf paths (bucket insert, same-hash leaf
    /// merge, `adopt_leaf`'s entry union, retain/diff over buckets) that
    /// well-distributed keys never reach.
    #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
    struct Colliding(u8);

    impl std::hash::Hash for Colliding {
        fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
            state.write_u8(self.0 % 2);
        }
    }

    type CM = PMap<Colliding, BTreeSet<u8>>;

    fn colliding_from(pairs: &[(u8, u8)]) -> CM {
        let mut m = CM::new();
        for (k, v) in pairs {
            m.join_at_in_place(Colliding(*k), set(&[*v]));
        }
        m
    }

    fn colliding_as_btree(m: &CM) -> BTreeMap<u8, BTreeSet<u8>> {
        m.iter().map(|(k, v)| (k.0, v.clone())).collect()
    }

    #[test]
    fn collision_buckets_insert_replace_and_retain() {
        let mut m = CM::new();
        for k in 0u8..8 {
            assert_eq!(m.insert(Colliding(k), set(&[k])), None);
        }
        assert_eq!(m.len(), 8);
        // Replacement inside a bucket returns the displaced value.
        assert_eq!(m.insert(Colliding(3), set(&[9])), Some(set(&[3])));
        for k in 0u8..8 {
            let expected = if k == 3 { set(&[9]) } else { set(&[k]) };
            assert_eq!(m.get(&Colliding(k)), Some(&expected), "key {k}");
        }
        // Retain filters within buckets and stays canonical.
        m.retain(|k| k.0 < 4);
        assert_eq!(m.len(), 4);
        let rebuilt = colliding_from(&[(0, 0), (1, 1), (2, 2), (3, 9)]);
        assert_eq!(m, rebuilt);
        assert_eq!(
            crate::hash::fx_hash_of(&m),
            crate::hash::fx_hash_of(&rebuilt)
        );
    }

    proptest! {
        #[test]
        fn prop_collision_buckets_agree_with_btreemap_reference(
            xs in proptest::collection::vec((0u8..8, 0u8..5), 0..16),
            ys in proptest::collection::vec((0u8..8, 0u8..5), 0..16),
        ) {
            let a = colliding_from(&xs);
            let b = colliding_from(&ys);
            // Content identical to the structural reference.
            let mut reference: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
            for (k, v) in &xs {
                reference.entry(*k).or_default().insert(*v);
            }
            prop_assert_eq!(colliding_as_btree(&a), reference);

            // Join through the collision-leaf merge paths, with the flag
            // law and the delta report intact.
            let mut joined = a.clone();
            let grew = joined.join_map_in_place(b.clone());
            prop_assert_eq!(grew, !b.leq_map(&a));
            let mut delta_map = a.clone();
            let delta = delta_map.join_in_place_delta(b.clone());
            prop_assert_eq!(&delta_map, &joined);
            for k in 0u8..8 {
                let va = a.get(&Colliding(k)).cloned().unwrap_or_default();
                let vb = b.get(&Colliding(k)).cloned().unwrap_or_default();
                prop_assert_eq!(
                    delta.contains(&Colliding(k)),
                    !vb.is_subset(&va),
                    "key {}",
                    k
                );
                prop_assert_eq!(
                    joined.get(&Colliding(k)).cloned().unwrap_or_default(),
                    va.union(&vb).copied().collect::<BTreeSet<u8>>()
                );
            }

            // Symmetric diff across buckets.
            let changed = a.changed_keys(&b);
            for k in 0u8..8 {
                let expected = a.get(&Colliding(k)) != b.get(&Colliding(k));
                prop_assert_eq!(changed.contains(&Colliding(k)), expected, "key {}", k);
            }

            // Idempotent re-join, and lattice laws through the buckets.
            let snapshot = joined.clone();
            prop_assert!(!joined.join_map_in_place(b.clone()));
            prop_assert_eq!(&joined, &snapshot);
            prop_assert_eq!(a.clone().join(b.clone()), b.clone().join(a.clone()));
        }
    }

    proptest! {
        #[test]
        fn prop_pmap_agrees_with_btreemap_reference(
            xs in proptest::collection::vec((0u16..64, 0u8..6), 0..40),
            probe in 0u16..64,
        ) {
            let m = from_pairs(&xs);
            let mut reference: BTreeMap<u16, BTreeSet<u8>> = BTreeMap::new();
            for (k, v) in &xs {
                reference.entry(*k).or_default().insert(*v);
            }
            prop_assert_eq!(as_btree(&m), reference.clone());
            prop_assert_eq!(m.len(), reference.len());
            prop_assert_eq!(m.get(&probe), reference.get(&probe));
        }

        #[test]
        fn prop_join_matches_pointwise_reference(
            xs in proptest::collection::vec((0u16..48, 0u8..6), 0..30),
            ys in proptest::collection::vec((0u16..48, 0u8..6), 0..30),
        ) {
            let a = from_pairs(&xs);
            let b = from_pairs(&ys);

            // Reference join on BTreeMaps.
            let mut reference = as_btree(&a);
            for (k, v) in as_btree(&b) {
                reference.entry(k).or_default().extend(v);
            }

            let mut joined = a.clone();
            let grew = joined.join_map_in_place(b.clone());
            prop_assert_eq!(as_btree(&joined), reference);
            prop_assert_eq!(grew, !b.leq_map(&a));
            prop_assert!(a.leq_map(&joined) && b.leq_map(&joined));
            // Idempotence and the flag law on re-join.
            let again = joined.clone();
            prop_assert!(!joined.join_map_in_place(b.clone()));
            prop_assert_eq!(&joined, &again);

            // Delta join: same result, and exactly the grown keys reported.
            let mut delta_map = a.clone();
            let delta = delta_map.join_in_place_delta(b.clone());
            prop_assert_eq!(&delta_map, &joined);
            for k in 0u16..48 {
                let va = a.get(&k).cloned().unwrap_or_default();
                let vb = b.get(&k).cloned().unwrap_or_default();
                prop_assert_eq!(delta.contains(&k), !vb.is_subset(&va), "key {}", k);
            }

            // Symmetric diff against the reference.
            let changed = a.changed_keys(&b);
            for k in 0u16..48 {
                let expected = a.get(&k) != b.get(&k);
                prop_assert_eq!(changed.contains(&k), expected, "key {}", k);
            }
        }

        #[test]
        fn prop_join_at_agrees_with_insert_reference_and_caches_digests(
            xs in proptest::collection::vec((0u16..48, 0u8..6), 0..30),
            key in 0u16..48,
            v in 0u8..6,
        ) {
            let m = from_pairs(&xs);
            // join_at_in_place against the BTreeMap reference.
            let mut joined = m.clone();
            let grew = joined.join_at_in_place(key, set(&[v]));
            let mut reference = as_btree(&m);
            let slot = reference.entry(key).or_default();
            let expected_grew = !slot.contains(&v);
            slot.insert(v);
            prop_assert_eq!(grew, expected_grew);
            prop_assert_eq!(as_btree(&joined), reference);
            // No-growth re-bind copies nothing.
            let snapshot = joined.clone();
            prop_assert!(!joined.join_at_in_place(key, set(&[v])));
            prop_assert!(joined.ptr_eq(&snapshot));
            // Digest equality across structurally equal maps.
            let rebuilt: M = joined.iter().map(|(k, s)| (*k, s.clone())).collect();
            prop_assert_eq!(fx_hash_of(&joined), fx_hash_of(&rebuilt));
        }

        #[test]
        fn prop_retain_matches_reference(
            xs in proptest::collection::vec((0u16..48, 0u8..6), 0..30),
            modulus in 2u16..5,
        ) {
            let mut m = from_pairs(&xs);
            m.retain(|k| k % modulus != 0);
            let mut reference: BTreeMap<u16, BTreeSet<u8>> = BTreeMap::new();
            for (k, v) in &xs {
                if k % modulus != 0 {
                    reference.entry(*k).or_default().insert(*v);
                }
            }
            prop_assert_eq!(as_btree(&m), reference);
        }

        #[test]
        fn prop_lattice_laws_hold(
            xs in proptest::collection::vec((0u16..32, 0u8..5), 0..20),
            ys in proptest::collection::vec((0u16..32, 0u8..5), 0..20),
            zs in proptest::collection::vec((0u16..32, 0u8..5), 0..20),
        ) {
            let a = from_pairs(&xs);
            let b = from_pairs(&ys);
            let c = from_pairs(&zs);
            // Commutativity, associativity, idempotence, bottom identity.
            prop_assert_eq!(a.clone().join(b.clone()), b.clone().join(a.clone()));
            prop_assert_eq!(
                a.clone().join(b.clone()).join(c.clone()),
                a.clone().join(b.clone().join(c.clone()))
            );
            prop_assert_eq!(a.clone().join(a.clone()), a.clone());
            prop_assert_eq!(M::bottom().join(a.clone()), a.clone());
            prop_assert!(M::bottom().is_bottom());
            prop_assert!(M::bottom().leq(&a));
        }
    }
}
