//! # mai-core — the language-independent core of *Monadic Abstract Interpreters*
//!
//! This crate is the Rust counterpart of the "meta-level" half of Figure 3 in
//! the paper *Monadic Abstract Interpreters* (Sergey et al., PLDI 2013): the
//! pieces of a static analysis that are independent of any particular
//! programming language and of any particular semantics.
//!
//! The central idea of the paper is that, once a small-step semantics is
//! refactored into *monadic normal form* against a small semantic interface,
//! the **monad** — together with a handful of orthogonal type-class-like
//! parameters — determines every classical property of the resulting
//! analysis:
//!
//! * [`monad`] — the analysis monads themselves: a GAT-encoded monad
//!   hierarchy with the identity monad, the non-determinism (list) monad,
//!   the state monad and the state-transformer, from which the paper's
//!   `StorePassing` monad (`StateT g (StateT s [])`) is assembled.
//! * [`lattice`] — complete lattices, Kleene iteration and Galois
//!   connections (§5.1–§5.2 of the paper).
//! * [`addr`] — `Addressable` contexts controlling polyvariance and
//!   context-sensitivity (§6.1): concrete fresh addresses, the monovariant
//!   0CFA allocator and k-CFA call-string contexts.
//! * [`store`] — `StoreLike` abstract stores (§6.2) and the counting store
//!   implementing abstract counting (§6.3).
//! * [`gc`] — abstract garbage collection (§6.4) as a reusable reachability
//!   engine plus a pluggable [`gc::GcStrategy`].
//! * [`collect`] — the `Collecting` fixed-point interface (§5.2), the
//!   per-state-store ("heap-cloning") analysis domain (§5.3.3) and the
//!   shared-store widened domain obtained through a Galois connection
//!   (§6.5).
//! * [`engine`] — the frontier-driven worklist fixpoint engine: a drop-in
//!   replacement for naive Kleene iteration that only re-steps states whose
//!   store dependencies changed, with instrumentation for the experiment
//!   harness.
//! * [`intern`] — hash-consed state/environment interning: dense `u32` ids
//!   with precomputed hashes, the identity currency of the id-indexed
//!   engines (with [`hash`] supplying the fast deterministic hasher).
//! * [`telemetry`] — zero-cost-when-off structured tracing for the
//!   engines: per-round phase timings, per-worker spans, hot-spot
//!   attribution and Chrome-trace/CSV exporters.
//! * [`mod@env`] — shared copy-on-write environment maps, so state
//!   construction stops deep-cloning environments per transition.
//! * [`name`] — globally pooled identifiers and program-point labels shared
//!   by all language substrates.
//! * [`sexp`] — a small s-expression reader used by the CPS and
//!   direct-style λ-calculus front ends.
//!
//! Language substrates (CPS, direct-style λ-calculus, Featherweight Java)
//! live in their own crates and only supply a semantic interface plus a
//! monadic `mnext` step function; every knob above is reused unchanged —
//! which is precisely the unification the paper claims.
//!
//! ## Quick taste
//!
//! ```rust
//! use mai_core::monad::{MonadFamily, MonadPlus, VecM};
//!
//! // The non-determinism monad: the same list monad the paper uses to model
//! // the branching introduced by abstraction.
//! let branches = VecM::mplus(VecM::pure(1u32), VecM::pure(2u32));
//! let doubled = VecM::bind(branches, |n| VecM::pure(n * 2));
//! assert_eq!(doubled, vec![2, 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod collect;
pub mod engine;
pub mod env;
pub mod gc;
pub mod hash;
pub mod intern;
pub mod lattice;
pub mod monad;
pub mod name;
pub mod pmap;
pub mod sexp;
pub mod store;
pub mod telemetry;

pub use addr::{
    Address, BoundedAddr, BoundedCtx, ConcreteAddr, ConcreteCtx, Context, HasInitial, KCallAddr,
    KCallCtx, MonoAddr, MonoCtx, NamedAddress,
};
pub use collect::{
    explore_fp, explore_fp_traced, run_analysis, Collecting, PerStateDomain, SharedStoreDomain,
};
#[cfg(feature = "fault-inject")]
pub use engine::FaultGuard;
pub use engine::{
    explore_frontier_ladder, explore_frontier_ladder_traced, explore_worklist,
    explore_worklist_direct_stats, explore_worklist_direct_traced_stats,
    explore_worklist_parallel_stats, explore_worklist_parallel_traced_stats,
    explore_worklist_rescan_stats, explore_worklist_rescan_traced_stats, explore_worklist_stats,
    explore_worklist_structural_stats, explore_worklist_structural_traced_stats,
    explore_worklist_traced_stats, with_state_gc, Budget, CancelToken, DirectCollecting,
    EngineError, EngineStats, ExhaustReason, FaultAction, FaultPlan, FaultSpec, FrontierCollecting,
    LadderReport, LadderRung, Outcome, ParallelCollecting, ParallelConfig, ResumeSeed,
    SharedResumeSeed, SolveFrom, StateRoots, StepFn,
};
pub use env::{CowMap, CowSet};
pub use gc::{reachable, GcStrategy, NoGc, Touches};
pub use hash::{fx_hash_of, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use intern::{EnvId, InternKey, Interner, ShardedInterner, StateId};
pub use lattice::{
    kleene_it, kleene_it_bounded, kleene_it_governed, kleene_it_governed_from, AbsNat,
    KleeneOutcome, Lattice,
};
pub use monad::{MonadFamily, MonadPlus, MonadState, MonadTrans, StorePassing, Value};
pub use name::{Label, Name};
pub use pmap::PMap;
pub use store::{BasicStore, Counter, CountingStore, StoreDelta, StoreLike};
pub use telemetry::{
    GovernorTrace, GovernorTraceKind, HotAddr, HotState, NoopSink, PhaseTotals, RoundTrace,
    StealTrace, TraceBuffer, TraceSink, WorkerSpan,
};
