//! The monad-law property suite — both carriers, observable behaviour.
//!
//! The monad laws (left identity, right identity, associativity) are
//! checked for the plain state monad [`StateM`], the non-determinism
//! carrier [`VecM`], the assembled `StorePassing` stack and the
//! direct-style carrier [`DirectStep`], all over **observable `(result,
//! guts, store)` runs** — `Rc`-closure computations cannot be compared as
//! values, only by running them.  On top of the per-carrier laws, a
//! randomized program AST is interpreted into *both* the `Rc` and the
//! direct encodings and the two are asserted equal run-for-run, which is
//! what licenses the engines to select either carrier per entry point.

use std::collections::BTreeSet;

use mai_core::monad::direct::{into_runs, DirectStep, MonadStep, StepM};
use mai_core::monad::{
    run_state, run_store_passing, MonadFamily, MonadPlus, MonadState, MonadTrans, StateM, StateT,
    StorePassing, VecM,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// StateM
// ---------------------------------------------------------------------------

/// A small family of continuations `u64 -> StateM<u64>::M<u64>`, indexed so
/// the property can draw them randomly.
fn state_k(select: u8) -> impl Fn(u64) -> <StateM<u64> as MonadFamily>::M<u64> {
    type C = StateM<u64>;
    move |x: u64| match select % 4 {
        0 => C::pure(x.wrapping_mul(3)),
        1 => <C as MonadState<u64>>::gets(move |s| s.wrapping_add(x)),
        2 => C::then(
            <C as MonadState<u64>>::modify(move |s| s.wrapping_add(x)),
            C::pure(x),
        ),
        _ => C::bind(<C as MonadState<u64>>::get(), move |s| {
            C::then(
                <C as MonadState<u64>>::put(s ^ x),
                C::pure(s.wrapping_sub(x)),
            )
        }),
    }
}

proptest! {
    #[test]
    fn prop_state_monad_laws(a in any::<u64>(), s0 in any::<u64>(), ka in 0u8..4, kb in 0u8..4) {
        type C = StateM<u64>;
        let k = state_k(ka);
        let h = state_k(kb);

        // Left identity: bind(pure(a), k) == k(a).
        prop_assert_eq!(
            run_state(C::bind(C::pure(a), state_k(ka)), s0),
            run_state(k(a), s0)
        );
        // Right identity: bind(m, pure) == m.
        let m = k(a);
        prop_assert_eq!(run_state(C::bind(m.clone(), C::pure), s0), run_state(m.clone(), s0));
        // Associativity.
        let lhs = C::bind(C::bind(m.clone(), state_k(kb)), state_k(ka));
        let rhs = C::bind(m, move |x| C::bind(h(x), state_k(ka)));
        prop_assert_eq!(run_state(lhs, s0), run_state(rhs, s0));
    }
}

// ---------------------------------------------------------------------------
// VecM (the non-determinism carrier)
// ---------------------------------------------------------------------------

fn vec_k(select: u8) -> impl Fn(u8) -> Vec<u8> {
    move |x: u8| match select % 4 {
        0 => VecM::pure(x.wrapping_mul(2)),
        1 => VecM::mzero(),
        2 => VecM::mplus(VecM::pure(x), VecM::pure(x.wrapping_add(1))),
        _ => vec![x, x, x.wrapping_add(7)],
    }
}

proptest! {
    #[test]
    fn prop_nondet_monad_laws(
        a in any::<u8>(),
        m in proptest::collection::vec(any::<u8>(), 0..5),
        ka in 0u8..4,
        kb in 0u8..4,
    ) {
        let k = vec_k(ka);
        let h = vec_k(kb);

        // Left identity.
        prop_assert_eq!(VecM::bind(VecM::pure(a), vec_k(ka)), k(a));
        // Right identity.
        prop_assert_eq!(VecM::bind(m.clone(), VecM::pure), m.clone());
        // Associativity.
        let lhs = VecM::bind(VecM::bind(m.clone(), vec_k(ka)), vec_k(kb));
        let rhs = VecM::bind(m.clone(), move |x| VecM::bind(k(x), vec_k(kb)));
        prop_assert_eq!(lhs, rhs);
        // mzero is the unit of mplus and annihilates bind.
        let _ = &h;
        prop_assert_eq!(VecM::mplus(VecM::mzero(), m.clone()), m.clone());
        prop_assert_eq!(VecM::mplus(m.clone(), VecM::mzero()), m);
        prop_assert_eq!(VecM::bind(VecM::mzero::<u8>(), vec_k(kb)), Vec::<u8>::new());
    }
}

// ---------------------------------------------------------------------------
// StorePassing (Rc carrier) vs DirectStep — one program AST, two carriers
// ---------------------------------------------------------------------------

type G = u64;
type S = BTreeSet<u8>;
type Rc = StorePassing<G, S>;
type D = DirectStep<G, S>;

/// A small monadic program over guts `u64` and store `BTreeSet<u8>`,
/// generated randomly and interpreted into both carriers.
#[derive(Debug, Clone)]
enum Prog {
    /// `pure v`
    Pure(u8),
    /// Advance the guts deterministically, yield the tick tag.
    Tick(u8),
    /// Weak-update the store with a value, yield it.
    Write(u8),
    /// Read the store: one branch per element at most `cap` (bounded
    /// non-determinism straight out of the state, like `gets_nd_set`).
    ReadBranch(u8),
    /// Non-deterministic choice.
    Plus(Box<Prog>, Box<Prog>),
    /// Sequencing: run the left, feed its result into the right via an
    /// offset (exercises bind's context threading).
    Seq(Box<Prog>, Box<Prog>),
}

fn prog_strategy() -> BoxedStrategy<Prog> {
    let leaf = prop_oneof![
        (0u8..16).prop_map(Prog::Pure),
        (0u8..16).prop_map(Prog::Tick),
        (0u8..16).prop_map(Prog::Write),
        (0u8..6).prop_map(Prog::ReadBranch),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prog::Plus(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Prog::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

/// Interprets the program on the `Rc`-closure carrier.
fn interp_rc(p: &Prog) -> <Rc as MonadFamily>::M<u8> {
    match p {
        Prog::Pure(v) => Rc::pure(*v),
        Prog::Tick(v) => {
            let v = *v;
            Rc::bind(
                <Rc as MonadState<G>>::modify(move |g| g.wrapping_mul(31).wrapping_add(v as u64)),
                move |_| Rc::pure(v),
            )
        }
        Prog::Write(v) => {
            let v = *v;
            Rc::bind(
                <Rc as MonadTrans>::lift(<StateT<S, VecM> as MonadState<S>>::modify(
                    move |mut s: S| {
                        s.insert(v);
                        s
                    },
                )),
                move |_| Rc::pure(v),
            )
        }
        Prog::ReadBranch(cap) => {
            let cap = *cap;
            <Rc as MonadTrans>::lift(mai_core::monad::gets_nd_set::<StateT<S, VecM>, S, u8, _>(
                move |s| s.iter().copied().filter(|v| *v < cap).collect(),
            ))
        }
        Prog::Plus(a, b) => Rc::mplus(interp_rc(a), interp_rc(b)),
        Prog::Seq(a, b) => {
            let b = (**b).clone();
            Rc::bind(interp_rc(a), move |x| {
                Rc::bind(interp_rc(&b), move |y| Rc::pure(x.wrapping_add(y)))
            })
        }
    }
}

/// Interprets the program on the direct-style carrier.
fn interp_direct(p: &Prog, guts: G, store: S) -> StepM<u8, G, S> {
    match p {
        Prog::Pure(v) => D::pure(*v, guts, store),
        Prog::Tick(v) => D::pure(*v, guts.wrapping_mul(31).wrapping_add(*v as u64), store),
        Prog::Write(v) => {
            let mut store = store;
            store.insert(*v);
            D::pure(*v, guts, store)
        }
        Prog::ReadBranch(cap) => {
            let cap = *cap;
            store
                .iter()
                .copied()
                .filter(|v| *v < cap)
                .collect::<Vec<u8>>()
                .into_iter()
                .map(|v| (v, guts, store.clone()))
                .collect()
        }
        Prog::Plus(a, b) => D::mplus(
            interp_direct(a, guts, store.clone()),
            interp_direct(b, guts, store),
        ),
        Prog::Seq(a, b) => D::bind(interp_direct(a, guts, store), |x, g, s| {
            D::fmap(interp_direct(b, g, s), move |y| x.wrapping_add(y))
        }),
    }
}

proptest! {
    /// The two carriers are observationally identical on every generated
    /// program: same branches, same values, same guts, same stores, same
    /// order.
    #[test]
    fn prop_direct_carrier_equals_rc_carrier(
        p in prog_strategy(),
        guts in any::<u64>(),
        seed in proptest::collection::btree_set(0u8..8, 0..4),
    ) {
        let rc: Vec<((u8, G), S)> = run_store_passing(interp_rc(&p), guts, seed.clone());
        let direct = into_runs(interp_direct(&p, guts, seed));
        prop_assert_eq!(rc, direct);
    }

    /// The direct carrier satisfies the monad laws over observable branch
    /// vectors, with continuations drawn from the same program family.
    #[test]
    fn prop_direct_monad_laws(
        a in 0u8..16,
        p in prog_strategy(),
        q in prog_strategy(),
        guts in any::<u64>(),
        seed in proptest::collection::btree_set(0u8..8, 0..4),
    ) {
        let k = |x: u8, g: G, s: S| {
            D::fmap(interp_direct(&p, g, s), move |y| y.wrapping_add(x))
        };
        let h = |x: u8, g: G, s: S| {
            D::fmap(interp_direct(&q, g, s), move |y| y ^ x)
        };

        // Left identity.
        prop_assert_eq!(
            D::bind(D::pure(a, guts, seed.clone()), k),
            k(a, guts, seed.clone())
        );
        // Right identity.
        let m = interp_direct(&p, guts, seed.clone());
        prop_assert_eq!(D::bind(m.clone(), D::pure), m.clone());
        // Associativity.
        let lhs = D::bind(D::bind(m.clone(), k), h);
        let rhs = D::bind(m, |x, g, s| D::bind(k(x, g, s), h));
        prop_assert_eq!(lhs, rhs);
    }

    /// The Rc `StorePassing` stack satisfies the monad laws over observable
    /// runs, with continuations drawn from the program family.
    #[test]
    fn prop_store_passing_monad_laws(
        a in 0u8..16,
        p in prog_strategy(),
        q in prog_strategy(),
        guts in any::<u64>(),
        seed in proptest::collection::btree_set(0u8..8, 0..4),
    ) {
        let pk = p.clone();
        let k = move |x: u8| {
            Rc::fmap(interp_rc(&pk), move |y: u8| y.wrapping_add(x))
        };
        let qk = q.clone();
        let h = move |x: u8| Rc::fmap(interp_rc(&qk), move |y: u8| y ^ x);

        // Left identity.
        prop_assert_eq!(
            run_store_passing(Rc::bind(Rc::pure(a), k.clone()), guts, seed.clone()),
            run_store_passing(k(a), guts, seed.clone())
        );
        // Right identity.
        let m = interp_rc(&p);
        prop_assert_eq!(
            run_store_passing(Rc::bind(m.clone(), Rc::pure), guts, seed.clone()),
            run_store_passing(m.clone(), guts, seed.clone())
        );
        // Associativity.
        let lhs = Rc::bind(Rc::bind(m.clone(), k.clone()), h.clone());
        let rhs = Rc::bind(m, move |x| Rc::bind(k(x), h.clone()));
        prop_assert_eq!(
            run_store_passing(lhs, guts, seed.clone()),
            run_store_passing(rhs, guts, seed)
        );
    }
}
