//! The lattice-law property suite.
//!
//! Every [`Lattice`] instance reachable from the stores — the old
//! `BTreeMap` point-wise carrier, the new persistent [`PMap`] carrier, the
//! copy-on-write value sets, the counting entries and the assembled stores
//! themselves — is checked against the full law set:
//!
//! * `join` is **commutative**, **associative** and **idempotent**;
//! * `bottom` is the **identity** of `join`, and `is_bottom` agrees with
//!   `leq(⊥)`;
//! * `leq` is consistent with `join` (both operands are below the join,
//!   and the order is reflexive);
//! * the PR-2 **in-place law**: `join_in_place` produces the same value as
//!   `join` and its change flag equals `!(other ⊑ self)` — and re-joining
//!   an absorbed value reports no change.
//!
//! When the store representation changes (as it did when the spine moved
//! from `BTreeMap` to `PMap`), these are exactly the obligations that must
//! be re-established — see *Verified Functional Programming of an Abstract
//! Interpreter* (Franceschino et al.), which mechanises the same law set.

use std::collections::{BTreeMap, BTreeSet};

use mai_core::env::CowSet;
use mai_core::lattice::{AbsNat, Flat, Interval, Lattice, WidenLattice};
use mai_core::pmap::PMap;
use mai_core::store::{BasicStore, CountingStore, StoreLike};
use proptest::prelude::*;
use proptest::strategy::one_of;

/// The whole law set for one pair (plus one associativity witness).
fn assert_lattice_laws<L>(a: L, b: L, c: L)
where
    L: Lattice + PartialEq + std::fmt::Debug,
{
    // Commutativity.
    assert_eq!(a.clone().join(b.clone()), b.clone().join(a.clone()));
    // Associativity.
    assert_eq!(
        a.clone().join(b.clone()).join(c.clone()),
        a.clone().join(b.clone().join(c.clone()))
    );
    // Idempotence.
    assert_eq!(a.clone().join(a.clone()), a);
    // Bottom identity (both sides).
    assert_eq!(L::bottom().join(a.clone()), a);
    assert_eq!(a.clone().join(L::bottom()), a);
    // leq / join consistency and reflexivity.
    let j = a.clone().join(b.clone());
    assert!(a.leq(&j) && b.leq(&j));
    assert!(a.leq(&a));
    assert!(L::bottom().leq(&a));
    // The in-place law: same value as join, flag == !(other ⊑ self).
    let mut acc = a.clone();
    let changed = acc.join_in_place(b.clone());
    assert_eq!(acc, a.clone().join(b.clone()));
    assert_eq!(changed, !b.leq(&a));
    // Re-joining an absorbed value never reports growth.
    assert!(!acc.join_in_place(b.clone()));
    // is_bottom agrees with the order.
    assert_eq!(a.is_bottom(), a.leq(&L::bottom()));
    assert!(L::bottom().is_bottom());
}

/// Declares one law-checked instance: a module running the law set over
/// triples drawn from the given strategy.
macro_rules! lattice_laws {
    ($name:ident, $ty:ty, $strat:expr) => {
        mod $name {
            use super::*;

            proptest! {
                #[test]
                fn prop_laws(a in $strat, b in $strat, c in $strat) {
                    let _ = &c;
                    assert_lattice_laws::<$ty>(a, b, c);
                }
            }
        }
    };
}

fn absnat() -> BoxedStrategy<AbsNat> {
    one_of(vec![
        Just(AbsNat::Zero).boxed(),
        Just(AbsNat::One).boxed(),
        Just(AbsNat::Many).boxed(),
    ])
}

fn flat() -> BoxedStrategy<Flat<u8>> {
    prop_oneof![
        Just(Flat::Bottom),
        (0u8..4).prop_map(Flat::Exactly),
        Just(Flat::Top),
    ]
}

fn btree_set() -> BoxedStrategy<BTreeSet<u8>> {
    proptest::collection::btree_set(0u8..6, 0..5).boxed()
}

fn cow_set() -> BoxedStrategy<CowSet<u8>> {
    proptest::collection::vec(0u8..6, 0..5)
        .prop_map(|xs| xs.into_iter().collect())
        .boxed()
}

/// The *old* point-wise map carrier: `BTreeMap` with set values (no
/// explicit-⊥ bindings — the shape the stores actually produce).
fn btree_map_carrier() -> BoxedStrategy<BTreeMap<u8, BTreeSet<u8>>> {
    proptest::collection::vec((0u8..5, 1u8..6), 0..8)
        .prop_map(|pairs| {
            let mut map: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
            for (k, v) in pairs {
                map.entry(k).or_default().insert(v);
            }
            map
        })
        .boxed()
}

/// The *new* persistent spine carrier: `PMap` with copy-on-write set
/// values, built through the joining insert exactly as the stores do.
fn pmap_carrier() -> BoxedStrategy<PMap<u8, CowSet<u8>>> {
    proptest::collection::vec((0u8..5, 1u8..6), 0..8)
        .prop_map(|pairs| {
            let mut map: PMap<u8, CowSet<u8>> = PMap::new();
            for (k, v) in pairs {
                map.join_at_in_place(k, [v].into_iter().collect());
            }
            map
        })
        .boxed()
}

/// A counting-store entry: the pair lattice of a value set and a count.
fn counting_entry() -> BoxedStrategy<(CowSet<u8>, AbsNat)> {
    (cow_set(), absnat()).boxed()
}

/// Arbitrary intervals over a small window of ℤ, including the unbounded
/// shapes.  The vendored proptest only implements `Strategy` for unsigned
/// ranges, so bounds are sampled as offsets and shifted into `[-5, 6]`.
fn interval() -> BoxedStrategy<Interval> {
    let small = || (0u8..12).prop_map(|n| n as i64 - 5);
    prop_oneof![
        Just(Interval::Empty),
        small().prop_map(Interval::singleton),
        small().prop_map(Interval::at_least),
        small().prop_map(Interval::at_most),
        (small(), small()).prop_map(|(a, b)| Interval::range(a.min(b), a.max(b))),
        Just(Interval::Range(
            mai_core::lattice::Lo::NegInf,
            mai_core::lattice::Hi::PosInf
        )),
    ]
    .boxed()
}

fn basic_store() -> BoxedStrategy<BasicStore<u8, u8>> {
    proptest::collection::vec((0u8..5, 0u8..6), 0..8)
        .prop_map(|pairs| {
            pairs.into_iter().fold(BasicStore::new(), |s, (a, v)| {
                s.bind(a, [v].into_iter().collect())
            })
        })
        .boxed()
}

fn counting_store() -> BoxedStrategy<CountingStore<u8, u8>> {
    proptest::collection::vec((0u8..5, 0u8..6), 0..8)
        .prop_map(|pairs| {
            pairs.into_iter().fold(CountingStore::new(), |s, (a, v)| {
                s.bind(a, [v].into_iter().collect())
            })
        })
        .boxed()
}

lattice_laws!(unit_laws, (), Just(()));
lattice_laws!(bool_laws, bool, any::<bool>());
lattice_laws!(absnat_laws, AbsNat, absnat());
lattice_laws!(flat_laws, Flat<u8>, flat());
lattice_laws!(
    option_laws,
    Option<AbsNat>,
    prop_oneof![Just(None), absnat().prop_map(Some),]
);
lattice_laws!(pair_laws, (AbsNat, BTreeSet<u8>), (absnat(), btree_set()));
lattice_laws!(power_set_laws, BTreeSet<u8>, btree_set());
lattice_laws!(cow_set_laws, CowSet<u8>, cow_set());
lattice_laws!(
    btreemap_carrier_laws,
    BTreeMap<u8, BTreeSet<u8>>,
    btree_map_carrier()
);
lattice_laws!(pmap_carrier_laws, PMap<u8, CowSet<u8>>, pmap_carrier());
lattice_laws!(counting_entry_laws, (CowSet<u8>, AbsNat), counting_entry());
lattice_laws!(basic_store_laws, BasicStore<u8, u8>, basic_store());
lattice_laws!(counting_store_laws, CountingStore<u8, u8>, counting_store());
lattice_laws!(interval_laws, Interval, interval());

/// The widening laws that make `Interval` — an *infinite-height* lattice —
/// safe to iterate: `▽` is an upper bound of both arguments, it absorbs
/// like the join on the flag side, and every widened chain
/// `x_{n+1} = x_n ▽ f(x_n)` stabilises in finitely many steps.
mod interval_widening_laws {
    use super::*;

    proptest! {
        #[test]
        fn prop_widen_is_an_upper_bound(a in interval(), b in interval()) {
            let mut w = a;
            let changed = w.widen_in_place(b);
            prop_assert!(a.leq(&w), "{a:?} ⋢ {a:?} ▽ {b:?} = {w:?}");
            prop_assert!(b.leq(&w), "{b:?} ⋢ {a:?} ▽ {b:?} = {w:?}");
            // The flag mirrors the join law: no growth ⟺ other ⊑ self.
            prop_assert_eq!(changed, !b.leq(&a));
            // Re-widening an absorbed value never reports growth.
            prop_assert!(!{ let mut w2 = w; w2.widen_in_place(b) });
        }

        #[test]
        fn prop_narrow_refines_within_the_order(a in interval(), b in interval()) {
            // Narrowing from a value below self stays between it and self:
            // b ⊑ a  ⟹  b ⊑ (a △ b) ⊑ a.
            if b.leq(&a) {
                let mut n = a;
                n.narrow_in_place(b);
                prop_assert!(b.leq(&n), "{b:?} ⋢ {a:?} △ {b:?} = {n:?}");
                prop_assert!(n.leq(&a), "{a:?} △ {b:?} = {n:?} ⋢ {a:?}");
            }
        }

        #[test]
        fn prop_widened_chains_stabilise(start in interval(), step in 1u8..4) {
            // The ascending chain x ↦ x + [step, step] never stabilises
            // under plain join (infinite height); under widening it must,
            // within a small bound.  64 steps is far beyond the 2 or 3 an
            // interval can take (each bound jumps to ±∞ at most once).
            let step = Interval::singleton(step as i64);
            let mut x = start;
            let mut stable = false;
            for _ in 0..64 {
                let next = x + step;
                if !x.widen_in_place(next) {
                    stable = true;
                    break;
                }
            }
            prop_assert!(stable, "widened chain failed to stabilise at {x:?}");
        }

        #[test]
        fn prop_join_chains_do_not_stabilise_without_widening(lo in 0u8..5) {
            // The counterpoint pinning why widening is *needed*: the same
            // chain under plain join grows forever (here: checked to keep
            // growing for 64 steps from any small singleton).
            let mut x = Interval::singleton(lo as i64);
            for _ in 0..64 {
                let next = x + Interval::singleton(1);
                prop_assert!(x.join_in_place(next), "join chain stabilised at {x:?}");
            }
        }
    }
}

/// The two carriers implement the *same* point-wise lattice: building the
/// identical content on both and joining the identical other side yields
/// identical fetch results and identical change flags.
mod carriers_agree {
    use super::*;

    fn both(pairs: &[(u8, u8)]) -> (BTreeMap<u8, BTreeSet<u8>>, PMap<u8, CowSet<u8>>) {
        let mut old: BTreeMap<u8, BTreeSet<u8>> = BTreeMap::new();
        let mut new: PMap<u8, CowSet<u8>> = PMap::new();
        for (k, v) in pairs {
            old.entry(*k).or_default().insert(*v);
            new.join_at_in_place(*k, [*v].into_iter().collect());
        }
        (old, new)
    }

    proptest! {
        #[test]
        fn prop_joins_and_flags_agree(
            xs in proptest::collection::vec((0u8..5, 1u8..6), 0..8),
            ys in proptest::collection::vec((0u8..5, 1u8..6), 0..8),
        ) {
            let (old_a, new_a) = both(&xs);
            let (old_b, new_b) = both(&ys);

            prop_assert_eq!(old_a.leq(&old_b), new_a.leq(&new_b));
            prop_assert_eq!(old_a.is_bottom(), new_a.is_bottom());

            let mut old_acc = old_a.clone();
            let mut new_acc = new_a.clone();
            let old_flag = old_acc.join_in_place(old_b);
            let new_flag = new_acc.join_in_place(new_b);
            prop_assert_eq!(old_flag, new_flag);
            // Same point-wise content, key by key.
            for k in 0u8..5 {
                let old_v: Option<BTreeSet<u8>> = old_acc.get(&k).cloned();
                let new_v: Option<BTreeSet<u8>> =
                    new_acc.get(&k).map(|s| s.as_set().clone());
                prop_assert_eq!(old_v, new_v, "key {}", k);
            }
        }
    }
}
