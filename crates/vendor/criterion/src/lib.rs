//! A minimal, dependency-free stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! This workspace builds in environments without network access, so the real
//! crates.io criterion cannot be fetched.  The stub implements the subset of
//! the API the workspace's benches use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with honest wall-clock timing and a one-line
//! median report per benchmark, but none of criterion's statistics, plots or
//! baseline management.
//!
//! Like the real criterion, passing `--test` on the command line (i.e.
//! `cargo bench -- --test`) switches to *test mode*: every benchmark
//! routine runs exactly once, untimed, so CI can smoke-check that benches
//! still compile and execute without paying for measurement.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a value (`std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The identifier of one benchmark within a group: a function name plus a
/// parameter rendering, printed as `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// Runs the closure under measurement repeatedly and records the samples.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            durations: Vec::new(),
        }
    }

    /// Times `routine`: one untimed warm-up call followed by the configured
    /// number of timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.durations.is_empty() {
            return None;
        }
        self.durations.sort();
        Some(self.durations[self.durations.len() / 2])
    }
}

fn report(name: &str, bencher: &mut Bencher) {
    match bencher.median() {
        Some(median) => println!("{name:<55} time: [{median:>12.2?} median]"),
        None => println!("{name:<55} test: ok (ran once, untimed)"),
    }
}

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            // `cargo bench -- --test` forwards `--test` to every bench
            // binary, exactly as the real criterion's test mode.
            test_mode: std::env::args().any(|arg| arg == "--test"),
        }
    }
}

impl Criterion {
    fn samples(&self, configured: usize) -> usize {
        if self.test_mode {
            0
        } else {
            configured
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: fmt::Display>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            parent: self,
            name: group_name.to_string(),
            sample_size,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.samples(self.sample_size));
        f(&mut bencher);
        report(&id.to_string(), &mut bencher);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `group-name/id`.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: fmt::Display,
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.parent.samples(self.sample_size));
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &mut bencher);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<S, I, F>(&mut self, id: S, input: &I, mut f: F) -> &mut Self
    where
        S: fmt::Display,
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.parent.samples(self.sample_size));
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &mut bencher);
        self
    }

    /// Ends the group (a no-op in this stub, kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_bench(c: &mut Criterion) {
        c.bench_function("toy/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("toy-group");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        toy_bench(&mut c);
    }

    criterion_group!(benches, toy_bench);

    #[test]
    fn group_macro_builds_a_runner() {
        benches();
    }
}
